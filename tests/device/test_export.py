"""Model export to the device IR."""

import numpy as np
import pytest

from repro.device.export import export_model
from repro.models.builder import build_classifier, build_pointwise_ranker, build_ranknet

V, C, L, E = 200, 12, 8, 16
TECHNIQUES = [
    ("full", {}),
    ("memcom", dict(num_hash_embeddings=20)),
    ("memcom_nobias", dict(num_hash_embeddings=20)),
    ("qr_mult", dict(num_hash_embeddings=20)),
    ("qr_concat", dict(num_hash_embeddings=20)),
    ("hash", dict(num_hash_embeddings=20)),
    ("double_hash", dict(num_hash_embeddings=20)),
    ("factorized", dict(hidden_dim=4)),
    ("reduce_dim", dict(reduced_dim=4)),
    ("truncate_rare", dict(keep=50)),
    ("hashed_onehot", dict(num_hash_embeddings=20)),
]


class TestExportCoverage:
    @pytest.mark.parametrize("technique,hyper", TECHNIQUES)
    def test_every_technique_exports(self, technique, hyper):
        model = build_classifier(technique, V, C, input_length=L, embedding_dim=E, rng=0, **hyper)
        exported = export_model(model)
        assert exported.ops, technique
        assert exported.weights, technique
        assert exported.total_flops() >= 0

    @pytest.mark.parametrize("technique,hyper", TECHNIQUES)
    def test_weight_params_match_model(self, technique, hyper):
        """Exported blobs must carry exactly the trainable params plus the
        BatchNorm scale/shift fusions."""
        model = build_classifier(technique, V, C, input_length=L, embedding_dim=E, rng=0, **hyper)
        exported = export_model(model)
        exported_params = sum(w.num_params for w in exported.weights.values())
        # norm layers export 2e fused scale/shift == gamma+beta params: equal
        assert exported_params == model.num_parameters()

    def test_all_architectures_export(self):
        for build, kind in [
            (build_classifier, "classifier"),
            (build_pointwise_ranker, "pointwise"),
            (build_ranknet, "ranknet"),
        ]:
            model = build("memcom", V, C, input_length=L, embedding_dim=E, rng=0,
                          num_hash_embeddings=20)
            exported = export_model(model)
            assert exported.name == kind

    def test_unknown_model_rejected(self):
        with pytest.raises(TypeError):
            export_model(object())

    def test_bad_batch_size(self):
        model = build_classifier("full", V, C, input_length=L, embedding_dim=E, rng=0)
        with pytest.raises(ValueError):
            export_model(model, batch_size=0)


class TestStorageKinds:
    def test_lookup_tables_for_memcom(self):
        model = build_classifier("memcom", V, C, input_length=L, embedding_dim=E, rng=0,
                                 num_hash_embeddings=20)
        exported = export_model(model)
        emb_weights = [w for n, w in exported.weights.items() if n.startswith("embedding")]
        assert all(w.storage == "lookup" for w in emb_weights)

    def test_onehot_matrix_flagged(self):
        model = build_classifier("hashed_onehot", V, C, input_length=L, embedding_dim=E, rng=0,
                                 num_hash_embeddings=20)
        exported = export_model(model)
        assert exported.weights["embedding.hash_matrix"].storage == "onehot_dense"
        kinds = [op.kind for op in exported.ops]
        assert "one_hot" in kinds
        assert "mean_pool" not in kinds  # already pooled

    def test_lookup_models_have_pooling(self):
        model = build_classifier("full", V, C, input_length=L, embedding_dim=E, rng=0)
        kinds = [op.kind for op in export_model(model).ops]
        assert "mean_pool" in kinds
        assert "one_hot" not in kinds


class TestSizing:
    def test_on_disk_bytes_fp32(self):
        model = build_pointwise_ranker("full", V, C, input_length=L, embedding_dim=E, rng=0)
        exported = export_model(model)
        assert exported.on_disk_bytes() == pytest.approx(
            model.num_parameters() * 4 + 1024, rel=0.01
        )

    def test_quantized_copy_shrinks(self):
        # Honest packed accounting: int8 payloads are ~1/4 of FP32 plus
        # per-row scale overhead (at this tiny E=16 the scales and the 1 KiB
        # header keep the on-disk ratio near 0.36, not the relabeled 0.25).
        model = build_pointwise_ranker("full", V, C, input_length=L, embedding_dim=E, rng=0)
        exported = export_model(model)
        q8 = exported.quantized(8)
        assert q8.on_disk_bytes() < exported.on_disk_bytes() / 2
        assert len(q8.ops) == len(exported.ops)

    def test_touched_bytes_scale_with_batch(self):
        model = build_classifier("memcom", V, C, input_length=L, embedding_dim=E, rng=0,
                                 num_hash_embeddings=20)
        b1 = export_model(model, batch_size=1)
        b4 = export_model(model, batch_size=4)
        t1 = sum(op.touched_bytes for op in b1.ops)
        t4 = sum(op.touched_bytes for op in b4.ops)
        assert t4 == 4 * t1

    def test_duplicate_weight_rejected(self):
        model = build_classifier("full", V, C, input_length=L, embedding_dim=E, rng=0)
        exported = export_model(model)
        with pytest.raises(ValueError):
            exported.add_weight("embedding.table", (1, 1), "lookup")

    def test_peak_activation_positive(self):
        model = build_classifier("full", V, C, input_length=L, embedding_dim=E, rng=0)
        assert export_model(model).peak_activation_bytes() > 0
