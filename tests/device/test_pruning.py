"""Magnitude pruning and sparse storage accounting (§A.2 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.pruning import (
    csr_bytes,
    dense_bytes,
    effective_bytes,
    prune_array,
    prune_module,
    sparsity,
)
from repro.models import build_classifier


class TestPruneArray:
    def test_prunes_requested_fraction(self, rng):
        w = rng.normal(size=1000).astype(np.float32)
        out = prune_array(w, 0.5)
        assert sparsity(out) >= 0.5

    def test_keeps_largest_magnitudes(self):
        w = np.array([0.1, -5.0, 0.2, 4.0, -0.05], dtype=np.float32)
        out = prune_array(w, 0.6)
        np.testing.assert_array_equal(out != 0, [False, True, False, True, False])

    def test_zero_fraction_is_identity(self, rng):
        w = rng.normal(size=50).astype(np.float32)
        np.testing.assert_array_equal(prune_array(w, 0.0), w)

    def test_preserves_shape_and_dtype(self, rng):
        w = rng.normal(size=(7, 9)).astype(np.float32)
        out = prune_array(w, 0.3)
        assert out.shape == (7, 9) and out.dtype == np.float32

    def test_does_not_mutate_input(self, rng):
        w = rng.normal(size=100).astype(np.float32)
        before = w.copy()
        prune_array(w, 0.9)
        np.testing.assert_array_equal(w, before)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            prune_array(np.ones(3), 1.0)
        with pytest.raises(ValueError):
            prune_array(np.ones(3), -0.1)

    @given(frac=st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=30)
    def test_sparsity_at_least_fraction_minus_rounding(self, frac):
        rng = np.random.default_rng(0)
        w = rng.normal(size=200).astype(np.float32)
        out = prune_array(w, frac)
        assert (out == 0).sum() >= int(np.floor(frac * w.size))

    def test_surviving_weights_unchanged(self, rng):
        w = rng.normal(size=100).astype(np.float32)
        out = prune_array(w, 0.5)
        kept = out != 0
        np.testing.assert_array_equal(out[kept], w[kept])


class TestStorageAccounting:
    def test_dense_bytes(self):
        assert dense_bytes(1000, 32) == 4000
        assert dense_bytes(1000, 16) == 2000

    def test_csr_breakeven_near_half_density(self):
        # With equal value/index widths, CSR beats dense just below ~50% nnz.
        shape = (100, 100)
        assert csr_bytes(shape, 4000) < dense_bytes(10_000)
        assert csr_bytes(shape, 6000) > dense_bytes(10_000)

    def test_effective_bytes_picks_cheaper(self, rng):
        dense_w = rng.normal(size=(50, 50)).astype(np.float32)
        assert effective_bytes(dense_w) == dense_bytes(2500)
        sparse_w = prune_array(dense_w, 0.9)
        assert effective_bytes(sparse_w) < dense_bytes(2500)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dense_bytes(-1)
        with pytest.raises(ValueError):
            csr_bytes((3, 3), -1)


class TestPruneModule:
    def _model(self):
        return build_classifier(
            "memcom", 500, 20, input_length=16, embedding_dim=16, rng=0,
            num_hash_embeddings=50,
        )

    def test_report_accounts_all_parameters(self):
        model = self._model()
        report = prune_module(model, 0.8)
        assert report.num_params == model.num_parameters()
        assert report.sparsity >= 0.75  # floor-rounding across small tensors

    def test_high_sparsity_shrinks_disk_size(self):
        report = prune_module(self._model(), 0.9)
        assert report.size_reduction > 1.5

    def test_low_sparsity_stays_dense(self):
        report = prune_module(self._model(), 0.1)
        assert report.on_disk_bytes == report.dense_bytes

    def test_model_still_runs_after_pruning(self, rng):
        model = self._model()
        prune_module(model, 0.5)
        model.eval()
        out = model(rng.integers(0, 500, size=(2, 16)))
        assert np.isfinite(out.data).all()

    def test_pruned_accuracy_degrades_gracefully(self, rng):
        # Mild pruning must not destroy the forward pass outputs entirely.
        model = self._model()
        model.eval()
        x = rng.integers(0, 500, size=(8, 16))
        before = model(x).data
        prune_module(model, 0.3)
        after = model(x).data
        assert np.isfinite(after).all()
        # Outputs shift but stay correlated with the unpruned model.
        corr = np.corrcoef(before.ravel(), after.ravel())[0, 1]
        assert corr > 0.5
