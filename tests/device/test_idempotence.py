"""Idempotence properties of the post-training transforms.

Quantize-then-quantize and prune-then-prune must be fixed points: a second
application at the same setting cannot change the weights.  These are the
invariants that make the export pipeline order-insensitive to retries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.pruning import prune_array
from repro.device.quantize import quantize_array


@st.composite
def weight_arrays(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    scale = draw(st.floats(min_value=0.01, max_value=100.0))
    return (np.random.default_rng(seed).normal(size=n) * scale).astype(np.float32)


class TestQuantizeIdempotence:
    @pytest.mark.parametrize("bits", [16, 8, 4, 2])
    @given(w=weight_arrays())
    @settings(max_examples=25, deadline=None)
    def test_double_quantization_is_fixed_point(self, bits, w):
        once = quantize_array(w, bits)
        twice = quantize_array(once, bits)
        np.testing.assert_array_equal(once, twice)

    @given(w=weight_arrays())
    @settings(max_examples=25, deadline=None)
    def test_error_bounded_by_half_step(self, w):
        q = quantize_array(w, 8)
        qmax = 2**7 - 1
        step = np.abs(w).max() / qmax
        assert np.abs(q - w).max() <= step / 2 + 1e-7


class TestPruneIdempotence:
    @given(w=weight_arrays(), frac=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_double_pruning_is_fixed_point(self, w, frac):
        once = prune_array(w, frac)
        twice = prune_array(once, frac)
        # Zeros are the smallest magnitudes, so re-pruning re-selects them.
        np.testing.assert_array_equal(once, twice)

    @given(w=weight_arrays())
    @settings(max_examples=25, deadline=None)
    def test_pruning_monotone_in_fraction(self, w):
        sparser = prune_array(w, 0.8)
        denser = prune_array(w, 0.4)
        # Everything zeroed at 40% is also zeroed at 80%.
        assert set(np.flatnonzero(denser == 0)) <= set(np.flatnonzero(sparser == 0))


class TestComposition:
    @given(w=weight_arrays())
    @settings(max_examples=25, deadline=None)
    def test_prune_then_quantize_preserves_sparsity(self, w):
        pruned = prune_array(w, 0.5)
        quantized = quantize_array(pruned, 8)
        zeros_before = pruned == 0
        # Symmetric linear quantization maps 0 → 0 exactly.
        assert (quantized[zeros_before] == 0).all()
