"""Analytic latency/footprint model and device profiles."""

import pytest

from repro.device.cost_model import benchmark, estimate_footprint_mb, estimate_latency_ms
from repro.device.export import export_model
from repro.device.profiles import (
    DEVICES,
    IPHONE_12_PRO_COREML,
    PIXEL_2_TFLITE,
    UnsupportedOpError,
)
from repro.device.runtime import DeviceRuntime, benchmark_on_all_devices
from repro.models.builder import build_pointwise_ranker

# Table 3 shapes: hash size 10K, embedding 256, batch 1 (§5.3).
V, C, L, E = 100_000, 2_000, 128, 256
HASH = 10_000


def _exported(technique, **hyper):
    model = build_pointwise_ranker(
        technique, V, C, input_length=L, embedding_dim=E, rng=0, **hyper
    )
    return export_model(model)


@pytest.fixture(scope="module")
def memcom_exported():
    return _exported("memcom_nobias", num_hash_embeddings=HASH)


@pytest.fixture(scope="module")
def onehot_exported():
    return _exported("hashed_onehot", num_hash_embeddings=HASH)


class TestLatency:
    def test_positive_on_all_units(self, memcom_exported):
        for profile in DEVICES.values():
            for unit in profile.units:
                try:
                    latency = estimate_latency_ms(memcom_exported, profile, unit)
                except UnsupportedOpError:
                    continue
                assert latency > 0

    def test_table3_ordering_memcom_faster(self, memcom_exported, onehot_exported):
        """The paper's headline: MEmCom beats Weinberger on every unit."""
        for profile in DEVICES.values():
            for unit in profile.units:
                try:
                    lat_m = estimate_latency_ms(memcom_exported, profile, unit)
                    lat_o = estimate_latency_ms(onehot_exported, profile, unit)
                except UnsupportedOpError:
                    continue
                assert lat_m < lat_o, (profile.framework, unit)

    def test_tflite_gpu_rejects_mean_pool(self, memcom_exported):
        with pytest.raises(UnsupportedOpError):
            estimate_latency_ms(memcom_exported, PIXEL_2_TFLITE, "GPU")

    def test_unknown_unit_rejected(self, memcom_exported):
        with pytest.raises(KeyError, match="available"):
            estimate_latency_ms(memcom_exported, IPHONE_12_PRO_COREML, "npuOnly")

    def test_latency_grows_with_batch(self):
        small = export_model(
            build_pointwise_ranker("memcom_nobias", V, C, input_length=L,
                                   embedding_dim=E, rng=0, num_hash_embeddings=HASH),
            batch_size=1,
        )
        big = export_model(
            build_pointwise_ranker("memcom_nobias", V, C, input_length=L,
                                   embedding_dim=E, rng=0, num_hash_embeddings=HASH),
            batch_size=64,
        )
        assert estimate_latency_ms(big, IPHONE_12_PRO_COREML, "cpuOnly") > estimate_latency_ms(
            small, IPHONE_12_PRO_COREML, "cpuOnly"
        )


class TestFootprint:
    def test_memcom_footprint_far_below_onehot(self, memcom_exported, onehot_exported):
        for profile in DEVICES.values():
            fp_m = estimate_footprint_mb(memcom_exported, profile)
            fp_o = estimate_footprint_mb(onehot_exported, profile)
            assert fp_o > 2 * fp_m, profile.framework

    def test_footprint_far_below_table_size(self, memcom_exported, onehot_exported):
        """The mmap story: a lookup model's resident set must be far below
        its on-disk size (big tables, few touched pages)."""
        fp = estimate_footprint_mb(memcom_exported, IPHONE_12_PRO_COREML)
        # total model ~ (1000*64 + 2e4 + head 64*2000)*4B ≈ 1MB; with base 2.4
        assert fp < memcom_exported.on_disk_bytes() / 1e6 + IPHONE_12_PRO_COREML.base_footprint_mb + 1.0

    def test_footprint_includes_base(self, memcom_exported):
        for profile in DEVICES.values():
            assert estimate_footprint_mb(memcom_exported, profile) > profile.base_footprint_mb

    def test_missing_residency_factor_raises(self, memcom_exported):
        from dataclasses import replace

        broken = replace(IPHONE_12_PRO_COREML, residency={})
        with pytest.raises(KeyError, match="residency"):
            estimate_footprint_mb(_exported("hashed_onehot", num_hash_embeddings=HASH), broken)


class TestRuntime:
    def test_benchmark_report_fields(self, memcom_exported):
        report = benchmark(memcom_exported, IPHONE_12_PRO_COREML, "all")
        assert report.device == "iPhone 12 Pro"
        assert report.framework == "CoreML"
        assert report.latency_ms > 0
        assert report.footprint_mb > 0
        assert report.on_disk_mb > 0

    def test_all_devices_excludes_unsupported_units(self, memcom_exported):
        reports = benchmark_on_all_devices(memcom_exported)
        combos = {(r.framework, r.compute_unit) for r in reports}
        assert ("TF-Lite", "GPU") not in combos  # mean_pool unsupported
        assert ("CoreML", "all") in combos
        assert ("TF-Lite", "CPU") in combos

    def test_onehot_also_excluded_from_tflite_gpu(self, onehot_exported):
        reports = benchmark_on_all_devices(onehot_exported)
        combos = {(r.framework, r.compute_unit) for r in reports}
        assert ("TF-Lite", "GPU") not in combos  # one_hot CPU-delegation failure

    def test_runtime_accepts_device_name(self, memcom_exported):
        rt = DeviceRuntime("iphone12pro")
        assert rt.benchmark(memcom_exported, "cpuOnly").latency_ms > 0

    def test_unknown_device_name(self):
        with pytest.raises(KeyError, match="available"):
            DeviceRuntime("pixel9000")

    def test_jitter_mode_changes_latency_slightly(self, memcom_exported):
        rt = DeviceRuntime("pixel2")
        clean = rt.benchmark(memcom_exported, "CPU")
        noisy = rt.benchmark(memcom_exported, "CPU", jitter=0.05, runs=100, rng=0)
        assert noisy.latency_ms != clean.latency_ms
        assert abs(noisy.latency_ms - clean.latency_ms) / clean.latency_ms < 0.1

    def test_invalid_runs(self, memcom_exported):
        with pytest.raises(ValueError):
            DeviceRuntime("pixel2").benchmark(memcom_exported, "CPU", runs=0)
