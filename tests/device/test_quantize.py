"""Linear quantization (Figure 4 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.device.quantize import quantize_array, quantize_module
from repro.models.builder import build_classifier


class TestQuantizeArray:
    def test_32_bits_is_identity(self, rng):
        w = rng.standard_normal(20).astype(np.float32)
        np.testing.assert_array_equal(quantize_array(w, 32), w)

    def test_fp16_roundtrip_error_small(self, rng):
        w = rng.standard_normal(1000).astype(np.float32)
        q = quantize_array(w, 16)
        assert np.abs(q - w).max() < 1e-3

    def test_int8_error_bounded_by_scale(self, rng):
        w = rng.standard_normal(1000).astype(np.float32)
        q = quantize_array(w, 8)
        scale = np.abs(w).max() / 127
        assert np.abs(q - w).max() <= scale / 2 + 1e-7

    def test_lower_bits_more_error(self, rng):
        w = rng.standard_normal(5000).astype(np.float32)
        errors = [np.abs(quantize_array(w, b) - w).mean() for b in (16, 8, 4, 2)]
        assert errors == sorted(errors)

    def test_2bit_has_at_most_4_levels(self, rng):
        w = rng.standard_normal(1000).astype(np.float32)
        q = quantize_array(w, 2)
        assert np.unique(q).size <= 4

    def test_zeros_stay_zero(self):
        np.testing.assert_array_equal(quantize_array(np.zeros(5), 8), np.zeros(5))

    def test_max_value_representable(self, rng):
        w = rng.standard_normal(100).astype(np.float32)
        q = quantize_array(w, 8)
        i = np.abs(w).argmax()
        np.testing.assert_allclose(q[i], w[i], rtol=1e-5)

    def test_unsupported_bits(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), 7)


class TestQuantizeModule:
    def test_report_statistics(self):
        model = build_classifier(
            "memcom", 100, 10, input_length=8, embedding_dim=16, rng=0,
            num_hash_embeddings=10,
        )
        n = model.num_parameters()
        report = quantize_module(model, 8)
        assert report.num_params == n
        assert report.bits == 8
        assert report.bytes_per_param == 1.0
        assert report.max_abs_error > 0

    def test_weights_actually_quantized(self):
        model = build_classifier(
            "full", 100, 10, input_length=8, embedding_dim=16, rng=0
        )
        quantize_module(model, 2)
        emb = model.embedding.table.data
        assert np.unique(emb).size <= 4

    def test_running_variance_stays_positive(self):
        model = build_classifier("full", 100, 10, input_length=8, embedding_dim=16, rng=0)
        for m in model.modules():
            if hasattr(m, "running_var"):
                m.running_var = np.full_like(m.running_var, 1e-9)
        quantize_module(model, 8)
        for m in model.modules():
            if hasattr(m, "running_var"):
                assert (m.running_var > 0).all()


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float32, st.integers(1, 64), elements=st.floats(-100, 100, width=32)),
    st.sampled_from([16, 8, 4, 2]),
)
def test_quantization_error_bound_property(w, bits):
    """|q − w| ≤ scale/2 everywhere (linear symmetric quantization)."""
    q = quantize_array(w, bits)
    if bits == 16:
        bound = np.maximum(np.abs(w) * 1e-3, 1e-4)
        assert (np.abs(q - w) <= bound).all()
    else:
        qmax = 2 ** (bits - 1) - 1
        scale = np.abs(w).max() / qmax if np.abs(w).max() else 0.0
        assert np.abs(q - w).max() <= scale / 2 + 1e-6
