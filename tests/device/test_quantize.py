"""Linear quantization (Figure 4 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.device.quantize import quantize_array, quantize_module
from repro.models.builder import build_classifier


class TestQuantizeArray:
    def test_32_bits_is_identity(self, rng):
        w = rng.standard_normal(20).astype(np.float32)
        np.testing.assert_array_equal(quantize_array(w, 32), w)

    def test_fp16_roundtrip_error_small(self, rng):
        w = rng.standard_normal(1000).astype(np.float32)
        q = quantize_array(w, 16)
        assert np.abs(q - w).max() < 1e-3

    def test_int8_error_bounded_by_scale(self, rng):
        w = rng.standard_normal(1000).astype(np.float32)
        q = quantize_array(w, 8)
        scale = np.abs(w).max() / 127
        assert np.abs(q - w).max() <= scale / 2 + 1e-7

    def test_lower_bits_more_error(self, rng):
        w = rng.standard_normal(5000).astype(np.float32)
        errors = [np.abs(quantize_array(w, b) - w).mean() for b in (16, 8, 4, 2)]
        assert errors == sorted(errors)

    def test_2bit_has_at_most_4_levels(self, rng):
        w = rng.standard_normal(1000).astype(np.float32)
        q = quantize_array(w, 2)
        assert np.unique(q).size <= 4

    def test_zeros_stay_zero(self):
        np.testing.assert_array_equal(quantize_array(np.zeros(5), 8), np.zeros(5))

    def test_max_value_representable(self, rng):
        w = rng.standard_normal(100).astype(np.float32)
        q = quantize_array(w, 8)
        i = np.abs(w).argmax()
        np.testing.assert_allclose(q[i], w[i], rtol=1e-5)

    def test_unsupported_bits(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), 7)


class TestQuantizeModule:
    def test_report_statistics(self):
        model = build_classifier(
            "memcom", 100, 10, input_length=8, embedding_dim=16, rng=0,
            num_hash_embeddings=10,
        )
        n = model.num_parameters()
        report = quantize_module(model, 8)
        assert report.num_params == n
        assert report.bits == 8
        assert report.bytes_per_param == 1.0
        assert report.max_abs_error > 0

    def test_weights_actually_quantized(self):
        model = build_classifier(
            "full", 100, 10, input_length=8, embedding_dim=16, rng=0
        )
        quantize_module(model, 2)
        emb = model.embedding.table.data
        assert np.unique(emb).size <= 4

    def test_running_variance_stays_positive(self):
        model = build_classifier("full", 100, 10, input_length=8, embedding_dim=16, rng=0)
        for m in model.modules():
            if hasattr(m, "running_var"):
                m.running_var = np.full_like(m.running_var, 1e-9)
        quantize_module(model, 8)
        for m in model.modules():
            if hasattr(m, "running_var"):
                assert (m.running_var > 0).all()


class TestPerRowQuantization:
    """axis=0: one scale per table row (the repro.quant storage layout)."""

    def test_matches_manual_per_row(self, rng):
        w = rng.standard_normal((10, 12)).astype(np.float32)
        q = quantize_array(w, 8, axis=0)
        for i in range(10):
            np.testing.assert_array_equal(q[i], quantize_array(w[i : i + 1], 8)[0])

    def test_per_row_beats_per_tensor_on_disparate_rows(self, rng):
        # One loud row stretches the shared per-tensor grid; per-row scales
        # keep each quiet row's error bounded by its OWN magnitude.
        w = rng.uniform(-0.01, 0.01, (8, 32)).astype(np.float32)
        w[0] *= 1000.0
        for bits in (8, 4, 2):
            per_tensor_err = np.abs(quantize_array(w, bits) - w)[1:].max()
            per_row_err = np.abs(quantize_array(w, bits, axis=0) - w)[1:].max()
            assert per_row_err <= per_tensor_err
            qmax = 2 ** (bits - 1) - 1
            assert per_row_err <= np.abs(w[1:]).max(axis=1).max() / qmax / 2 + 1e-7

    def test_per_row_error_bound_each_row(self, rng):
        w = rng.standard_normal((20, 9)).astype(np.float32)
        q = quantize_array(w, 8, axis=0)
        scales = np.abs(w).max(axis=1) / 127
        assert (np.abs(q - w) <= scales[:, None] / 2 + 1e-7).all()

    def test_uniform_rows_identical_to_per_tensor(self, rng):
        # When every row shares the same absmax the two layouts coincide.
        w = np.tile(rng.standard_normal(6).astype(np.float32), (4, 1))
        np.testing.assert_allclose(
            quantize_array(w, 8, axis=0), quantize_array(w, 8), atol=1e-7
        )

    def test_float_modes_ignore_grid(self, rng):
        w = rng.standard_normal((5, 4)).astype(np.float32)
        np.testing.assert_array_equal(quantize_array(w, 32, axis=0), w)
        np.testing.assert_array_equal(
            quantize_array(w, 16, axis=0), quantize_array(w, 16)
        )

    def test_axis_validation(self, rng):
        w = rng.standard_normal((5, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            quantize_array(w, 8, axis=1)
        with pytest.raises(ValueError):
            quantize_array(w.ravel(), 8, axis=0)  # 1-D has no rows


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float32, st.integers(1, 64), elements=st.floats(-100, 100, width=32)),
    st.sampled_from([16, 8, 4, 2]),
)
def test_quantization_error_bound_property(w, bits):
    """|q − w| ≤ scale/2 everywhere (linear symmetric quantization)."""
    q = quantize_array(w, bits)
    if bits == 16:
        bound = np.maximum(np.abs(w) * 1e-3, 1e-4)
        assert (np.abs(q - w) <= bound).all()
    else:
        qmax = 2 ** (bits - 1) - 1
        scale = np.abs(w).max() / qmax if np.abs(w).max() else 0.0
        assert np.abs(q - w).max() <= scale / 2 + 1e-6
