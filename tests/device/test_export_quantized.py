"""Honest quantized export sizing: ceil-packed codes + per-row scales.

Regression for the relabeled-FP32 accounting bug: ``ExportedModel.quantized``
used to keep FP32 payload math and only change the ``bits`` label, so int4
"sizes" ignored packing granularity and scale overhead entirely.
"""

import numpy as np
import pytest

from repro.device.export import WeightTensor, export_model
from repro.models.builder import build_pointwise_ranker

V, C, L, E = 200, 12, 8, 16


def _exported():
    model = build_pointwise_ranker("full", V, C, input_length=L, embedding_dim=E, rng=0)
    return export_model(model)


class TestWeightTensorPacking:
    def test_fp32_and_fp16_stay_dtype_casts(self):
        w = WeightTensor("t", (100, 16), "lookup")
        assert w.bytes == 100 * 16 * 4
        assert WeightTensor("t", (100, 16), "lookup", bits=16).bytes == 100 * 16 * 2

    def test_int8_per_row_scales(self):
        w = WeightTensor("t", (100, 16), "lookup", bits=8)
        assert w.bytes == 100 * (16 + 4)

    def test_int4_ceil_packs_odd_rows(self):
        w = WeightTensor("t", (10, 7), "lookup", bits=4)
        assert w.bytes == 10 * (4 + 4)  # ceil(7/2)=4 code bytes + scale

    def test_int2_packs_four_per_byte(self):
        w = WeightTensor("t", (10, 16), "lookup", bits=2)
        assert w.bytes == 10 * (4 + 4)

    def test_single_column_uses_per_tensor_scale(self):
        # A (v, 1) table at int8 must cost ~v bytes + one scale, not 5v.
        w = WeightTensor("t", (200, 1), "lookup", bits=8)
        assert w.bytes == 200 + 4

    def test_1d_vector_uses_per_tensor_scale(self):
        w = WeightTensor("t", (33,), "lookup", bits=4)
        assert w.bytes == -(-33 * 4 // 8) + 4


class TestQuantizedExport:
    def test_size_ordering_int4_lt_int8_lt_fp32(self):
        exported = _exported()
        sizes = {b: exported.quantized(b).on_disk_bytes() for b in (8, 4)}
        assert sizes[4] < sizes[8] < exported.on_disk_bytes()

    def test_int8_embedding_payload_exact(self):
        exported = _exported()
        q8 = exported.quantized(8)
        assert q8.weights["embedding.table"].bytes == V * (E + 4)

    def test_quantized_gathers_touch_fewer_bytes(self):
        exported = _exported()
        for bits in (8, 4):
            q = exported.quantized(bits)
            for op, qop in zip(exported.ops, q.ops):
                if op.kind == "gather":
                    # row-granular re-pricing: rows × packed row bytes
                    table = exported.weights[op.weights[0]]
                    rows = op.touched_bytes // (table.row_width * 4)
                    expected = rows * q.weights[op.weights[0]].gathered_row_bytes()
                    assert qop.touched_bytes == expected
                    assert qop.touched_bytes < op.touched_bytes
                else:
                    assert qop.touched_bytes == op.touched_bytes
                # activations stay FP32: arithmetic is dequantized
                assert qop.activation_bytes == op.activation_bytes

    def test_single_column_gathers_floor_at_one_byte_per_row(self):
        # The MEmCom (v, 1) multiplier/bias gathers touch L rows of one
        # element each; at int4 that must price as L whole bytes, not L/2.
        model = build_pointwise_ranker(
            "memcom", V, C, input_length=L, embedding_dim=E, rng=0,
            num_hash_embeddings=20,
        )
        q4 = export_model(model, batch_size=1).quantized(4)
        for name in ("embedding.mult", "embedding.biasrow"):
            op = next(o for o in q4.ops if o.name == name)
            assert op.touched_bytes == L  # one byte per touched row

    def test_requantizing_a_quantized_export_is_consistent(self):
        exported = _exported()
        via_int8 = exported.quantized(8).quantized(4)
        direct = exported.quantized(4)
        assert via_int8.on_disk_bytes() == direct.on_disk_bytes()
        for a, b in zip(via_int8.ops, direct.ops):
            assert a.touched_bytes == b.touched_bytes

    def test_quantized_is_a_copy(self):
        exported = _exported()
        q = exported.quantized(4)
        assert q.name.endswith("@4bit")
        assert exported.weights["embedding.table"].bits == 32
        assert np.isclose(
            exported.on_disk_bytes(),
            sum(w.num_params * 4 for w in exported.weights.values()) + 1024,
        )


@pytest.mark.parametrize("bits,expected_ratio", [(8, 0.27), (4, 0.15)])
def test_big_table_ratio_approaches_bits_over_32(bits, expected_ratio):
    # With a wide row the scale overhead amortizes: ratio → bits/32 + 4/(4e).
    w = WeightTensor("t", (1000, 64), "lookup", bits=bits)
    fp32 = 1000 * 64 * 4
    assert w.bytes / fp32 == pytest.approx(expected_ratio, abs=0.012)
