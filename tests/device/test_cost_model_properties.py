"""Monotonicity properties of the analytic device cost model.

These invariants are what make Table 3's comparisons meaningful: more work
can never cost less, and reading more weight bytes can never shrink the
resident footprint.
"""

import pytest

from repro.device.cost_model import benchmark, estimate_footprint_mb, estimate_latency_ms
from repro.device.export import ExportedModel, Op
from repro.device.profiles import DEVICES, IPHONE_12_PRO_COREML


def _model(flops=1_000_000, act=4096, lookup_rows=0, dense_params=0):
    m = ExportedModel(name="synthetic", batch_size=1)
    weights = []
    if lookup_rows:
        w = m.add_weight("table", (lookup_rows, 64), "lookup")
        m.ops.append(Op("gather", "g", 0, act, (w,), touched_bytes=64 * 4 * 8))
        weights.append(w)
    if dense_params:
        w = m.add_weight("dense", (dense_params // 64, 64), "onehot_dense")
        weights.append(w)
        m.ops.append(Op("matmul", "mm", flops, act, (w,)))
    else:
        m.ops.append(Op("matmul", "mm", flops, act))
    return m


class TestLatencyMonotonicity:
    def test_more_flops_never_faster(self):
        profile = IPHONE_12_PRO_COREML
        lat = [
            estimate_latency_ms(_model(flops=f), profile, "cpuOnly")
            for f in (10_000, 1_000_000, 100_000_000)
        ]
        assert lat == sorted(lat)
        assert lat[-1] > lat[0]

    def test_more_ops_add_dispatch_overhead(self):
        profile = IPHONE_12_PRO_COREML
        one = _model(flops=1000)
        many = _model(flops=1000)
        for i in range(20):
            many.ops.append(Op("relu", f"r{i}", 10, 64))
        assert estimate_latency_ms(many, profile, "cpuOnly") > estimate_latency_ms(
            one, profile, "cpuOnly"
        )

    def test_latency_positive_even_for_empty_ops(self):
        profile = IPHONE_12_PRO_COREML
        empty = ExportedModel(name="empty", batch_size=1)
        assert estimate_latency_ms(empty, profile, "cpuOnly") >= 0.0


class TestFootprintMonotonicity:
    def test_bigger_dense_weights_bigger_footprint(self):
        profile = IPHONE_12_PRO_COREML
        small = estimate_footprint_mb(_model(dense_params=64 * 64), profile)
        large = estimate_footprint_mb(_model(dense_params=64 * 4096), profile)
        assert large > small

    def test_lookup_footprint_charges_touched_pages_not_table(self):
        profile = IPHONE_12_PRO_COREML
        small_table = estimate_footprint_mb(_model(lookup_rows=100), profile)
        huge_table = estimate_footprint_mb(_model(lookup_rows=1_000_000), profile)
        # Same touched rows — the mmap'd table size must barely matter.
        assert huge_table == pytest.approx(small_table, rel=0.05)

    def test_base_footprint_floor(self):
        for device in DEVICES.values():
            empty = ExportedModel(name="empty", batch_size=1)
            assert estimate_footprint_mb(empty, device) >= device.base_footprint_mb


class TestBenchmarkReport:
    def test_report_fields_consistent(self):
        profile = IPHONE_12_PRO_COREML
        model = _model(flops=1_000_000, dense_params=64 * 64)
        report = benchmark(model, profile, "cpuOnly")
        assert report.device == "iPhone 12 Pro"
        assert report.framework == "CoreML"
        assert report.latency_ms > 0
        assert report.on_disk_mb == pytest.approx(model.on_disk_bytes() / 1e6)

    def test_unknown_unit_rejected(self):
        with pytest.raises(KeyError):
            benchmark(_model(), IPHONE_12_PRO_COREML, "npu")
