"""Every registered technique must export to the device IR and be costable."""

import numpy as np
import pytest

from repro.core.registry import available_techniques
from repro.device.cost_model import benchmark
from repro.device.export import export_model
from repro.device.profiles import DEVICES, UnsupportedOpError
from repro.models.builder import build_classifier

V, E, L = 200, 16, 8

HYPER = {
    "full": {},
    "memcom": dict(num_hash_embeddings=20),
    "memcom_nobias": dict(num_hash_embeddings=20),
    "qr_mult": dict(num_hash_embeddings=20),
    "qr_concat": dict(num_hash_embeddings=20),
    "hash": dict(num_hash_embeddings=20),
    "double_hash": dict(num_hash_embeddings=20),
    "freq_double_hash": dict(num_hash_embeddings=20),
    "factorized": dict(hidden_dim=4),
    "reduce_dim": dict(reduced_dim=4),
    "truncate_rare": dict(keep=40),
    "hashed_onehot": dict(num_hash_embeddings=20),
    "tt_rec": dict(tt_rank=2),
    "mixed_dim": dict(num_blocks=3),
}


def _model(technique):
    return build_classifier(
        technique, V, 10, input_length=L, embedding_dim=E, rng=0, **HYPER[technique]
    )


def test_hyper_covers_registry():
    assert set(HYPER) == set(available_techniques())


@pytest.mark.parametrize("technique", sorted(HYPER))
class TestExportEveryTechnique:
    def test_exports_without_error(self, technique):
        exported = export_model(_model(technique), batch_size=1)
        assert exported.ops
        assert exported.weights

    def test_disk_bytes_match_fp32_parameters(self, technique):
        model = _model(technique)
        exported = export_model(model, batch_size=1)
        # Exported blobs cover at least the trainable parameters (BatchNorm
        # scale/shift pairs are fused, adding a small constant).
        assert exported.on_disk_bytes() >= model.num_parameters() * 4

    def test_costable_on_every_device_profile(self, technique):
        exported = export_model(_model(technique), batch_size=1)
        for device in DEVICES.values():
            for unit_name, unit in device.units.items():
                if unit.unsupported:
                    # TF-Lite GPU has no kernel for some ops — the failure
                    # the paper itself reports for its GPU column.
                    with pytest.raises(UnsupportedOpError):
                        benchmark(exported, device, unit_name)
                    continue
                report = benchmark(exported, device, unit_name)
                assert report.latency_ms > 0
                assert report.footprint_mb > 0

    def test_batch_scaling_monotonic(self, technique):
        model = _model(technique)
        device = next(iter(DEVICES.values()))
        unit = next(iter(device.units))
        lat = [
            benchmark(export_model(model, batch_size=b), device, unit).latency_ms
            for b in (1, 8)
        ]
        assert lat[1] >= lat[0]


class TestLookupVsMatrixContrast:
    def test_onehot_footprint_dominates_lookup_family(self):
        """The Table 3 mechanism: the matrix approach's resident memory is
        table-sized, the lookup family's is touched-rows-sized.  Uses the
        paper's setting (hash size 10K) where the contrast is visible."""
        device = next(iter(DEVICES.values()))
        unit = next(iter(device.units))

        def build(technique, **hyper):
            return export_model(
                build_classifier(
                    technique, 20_000, 10, input_length=32, embedding_dim=64, rng=0, **hyper
                )
            )

        onehot = benchmark(build("hashed_onehot", num_hash_embeddings=10_000), device, unit)
        for technique in ("memcom", "hash", "freq_double_hash"):
            lookup = benchmark(
                build(technique, num_hash_embeddings=10_000), device, unit
            )
            assert lookup.footprint_mb < onehot.footprint_mb
            assert lookup.latency_ms < onehot.latency_ms
        ttrec = benchmark(build("tt_rec", tt_rank=8), device, unit)
        assert ttrec.footprint_mb < onehot.footprint_mb
