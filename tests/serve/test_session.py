"""`ServeSession` / `ServeConfig` — the unified serving front door."""

import numpy as np
import pytest

from repro.artifact import ArtifactFormatError, save_artifact
from repro.models.builder import build_pointwise_ranker
from repro.serve import Batcher, InferenceEngine, ServeConfig, ServeSession


def _model(seed=0):
    return build_pointwise_ranker(
        "memcom", 400, 10, input_length=5, embedding_dim=16, rng=seed,
        num_hash_embeddings=32,
    )


def _ids(n=24, seed=3):
    return np.random.default_rng(seed).integers(0, 400, size=(n, 5))


class TestConfigValidation:
    def test_default_config_is_valid(self):
        assert ServeConfig().validate() == ServeConfig()

    @pytest.mark.parametrize(
        "field, value, match",
        [
            ("bits", 16, "bits"),
            ("bits", 0, "bits"),
            ("calibration_percentile", 0.0, "percentile"),
            ("calibration_percentile", 101.0, "percentile"),
            ("cache_rows", 0, "cache_rows"),
            ("cache_rows", -4, "cache_rows"),
            ("cache_min_count", 0, "cache_min_count"),
            ("cache_ttl_batches", 0, "cache_ttl_batches"),
            ("max_batch", 0, "max_batch"),
            ("max_delay_ms", -1.0, "max_delay_ms"),
        ],
    )
    def test_each_bad_knob_fails_fast_with_its_name(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            ServeConfig(**{field: value}).validate()

    def test_from_model_validates_before_freezing(self):
        with pytest.raises(ValueError, match="cache_rows"):
            ServeSession.from_model(_model(), cache_rows=-1)


class TestFromModel:
    def test_matches_direct_engine_bytes(self):
        model = _model()
        session = ServeSession.from_model(model, ServeConfig(bits=8, cache_rows=32))
        engine = InferenceEngine(model, bits=8, cache_rows=32)
        ids = _ids()
        np.testing.assert_array_equal(session.predict(ids), engine.predict(ids))
        assert session.bits == 8

    def test_overrides_patch_the_config(self):
        session = ServeSession.from_model(_model(), ServeConfig(bits=8), cache_rows=16)
        assert session.config.bits == 8
        assert session.engine.cache is not None
        assert session.engine.cache.capacity == 16

    def test_config_reaches_cache_and_batcher(self):
        session = ServeSession.from_model(
            _model(),
            ServeConfig(
                cache_rows=32, cache_min_count=2, cache_ttl_batches=7, max_batch=9
            ),
        )
        assert session.engine.cache.min_count == 2
        assert session.engine.cache.count_ttl == 7
        assert session.batcher.max_batch == 9

    def test_submit_flush_equals_predict(self):
        model = _model()
        session = ServeSession.from_model(model, max_batch=8)
        ids = _ids(20)
        for row in ids:
            session.submit(row)
        flushed = np.stack(session.flush())
        np.testing.assert_array_equal(flushed, InferenceEngine(model).predict(ids))

    def test_max_delay_zero_flushes_every_submit(self):
        session = ServeSession.from_model(_model(), max_delay_ms=0.0, max_batch=64)
        first = session.submit(_ids(1)[0])
        assert first.done  # deadline 0: no request ever waits for co-riders
        assert session.batcher.auto_flushes >= 1
        assert len(session.batcher) == 0

    def test_stats_reports_the_full_picture(self):
        session = ServeSession.from_model(_model(), ServeConfig(cache_rows=32))
        session.predict(_ids())
        stats = session.stats()
        assert stats["requests_served"] == 24
        assert stats["batches_served"] == 1
        assert stats["bits"] == 32
        assert stats["cache_capacity"] == 32
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert stats["table_resident_bytes"] > 0


class TestLoaded:
    def test_loaded_session_cannot_resave(self, tmp_path):
        save_artifact(_model(), str(tmp_path / "a"))
        loaded = ServeSession.load(str(tmp_path / "a"))
        with pytest.raises(ArtifactFormatError, match="from_model"):
            loaded.save(str(tmp_path / "b"))

    def test_width_conflict_is_a_typed_error(self, tmp_path):
        save_artifact(_model(), str(tmp_path / "q"), bits=8)
        with pytest.raises(ArtifactFormatError, match="int8"):
            ServeSession.load(str(tmp_path / "q"), ServeConfig(bits=4))

    def test_loaded_stats_name_the_artifact(self, tmp_path):
        save_artifact(_model(), str(tmp_path / "a"), bits=4)
        session = ServeSession.load(str(tmp_path / "a"))
        stats = session.stats()
        assert stats["artifact_path"] == str(tmp_path / "a")
        assert stats["artifact_bytes"] > 0
        assert stats["bits"] == 4


class TestShims:
    def test_device_runtime_serving_shim_still_reports(self):
        from repro.device.runtime import DeviceRuntime

        report = DeviceRuntime("pixel2").benchmark_serving(
            _model(), num_requests=96, batch_size=16, cache_rows=32, rng=0
        )
        assert report.requests_per_sec > 0
        assert report.cache_hit_rate is not None

    def test_batcher_remains_manually_flushable(self):
        engine = InferenceEngine(_model())
        batcher = Batcher(engine, max_batch=4)
        for row in _ids(6):
            batcher.submit(row)
        assert len(batcher) == 6  # no auto-flush without a deadline
        assert len(batcher.flush()) == 6
