"""InferenceEngine correctness: frozen plan ≡ eager eval-mode forward.

The engine mirrors the eval forward operation for operation, so agreement is
asserted *bitwise* for the snapshot-frozen techniques and to tight allclose
for the module-fallback ones (same code path, so those are bitwise too in
practice).  Also pinned: freezing snapshots weights (later training must not
change engine outputs), sharded engines serve through the routed layout,
and input validation mirrors the models'.
"""

import numpy as np
import pytest

from repro.models.builder import (
    build_classifier,
    build_pointwise_ranker,
    build_ranknet,
    shard_model,
)
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import SGD
from repro.nn.tensor import no_grad
from repro.serve.engine import InferenceEngine

V, L, E, C = 250, 8, 16, 12

BUILDERS = {
    "classifier": build_classifier,
    "pointwise": build_pointwise_ranker,
    "ranknet": build_ranknet,
}

TECHNIQUES = {
    "memcom": {"num_hash_embeddings": 32},
    "memcom_nobias": {"num_hash_embeddings": 32},
    "full": {},
    "qr_mult": {"num_hash_embeddings": 32},
    "double_hash": {"num_hash_embeddings": 32},
    "tt_rec": {"tt_rank": 4},
    "factorized": {"hidden_dim": 4},
    "hashed_onehot": {"num_hash_embeddings": 32},
}


def _model(architecture="pointwise", technique="memcom", seed=3):
    return BUILDERS[architecture](
        technique, V, C, input_length=L, embedding_dim=E, rng=seed,
        **TECHNIQUES[technique],
    )


def _eager(model, x):
    model.eval()
    with no_grad():
        return model(x).numpy()


class TestEngineMatchesEager:
    @pytest.mark.parametrize("architecture", sorted(BUILDERS))
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_random_batches(self, architecture, technique):
        model = _model(architecture, technique)
        engine = InferenceEngine(model)
        rng = np.random.default_rng(0)
        for _ in range(3):
            x = rng.integers(0, V, size=(7, L))
            np.testing.assert_allclose(
                engine.predict(x), _eager(model, x), rtol=1e-6, atol=1e-7
            )

    @pytest.mark.parametrize("architecture", sorted(BUILDERS))
    def test_bitwise_for_frozen_techniques(self, architecture):
        model = _model(architecture, "memcom")
        engine = InferenceEngine(model)
        x = np.random.default_rng(1).integers(0, V, size=(5, L))
        np.testing.assert_array_equal(engine.predict(x), _eager(model, x))

    def test_matches_after_batchnorm_statistics_move(self):
        """A *trained* model (non-trivial running stats) must still agree."""
        model = _model("classifier", "memcom")
        model.train()
        opt = SGD(model.parameters(), lr=0.05)
        rng = np.random.default_rng(2)
        for _ in range(4):
            x = rng.integers(0, V, size=(16, L))
            y = rng.integers(0, C, size=16)
            opt.zero_grad()
            softmax_cross_entropy(model(x), y).backward()
            opt.step()
        engine = InferenceEngine(model)
        x = rng.integers(0, V, size=(6, L))
        np.testing.assert_array_equal(engine.predict(x), _eager(model, x))

    def test_sharded_model_served_through_routed_layout(self):
        mono = _model("pointwise", "memcom")
        x = np.random.default_rng(3).integers(0, V, size=(4, L))
        want = _eager(mono, x)
        sharded = shard_model(_model("pointwise", "memcom"), 5)
        engine = InferenceEngine(sharded)
        np.testing.assert_array_equal(engine.predict(x), want)

    def test_plan_is_a_snapshot(self):
        """Training the live model must not change the frozen plan."""
        model = _model("pointwise", "memcom")
        x = np.random.default_rng(4).integers(0, V, size=(3, L))
        engine = InferenceEngine(model)
        before = engine.predict(x).copy()
        model.embedding.multiplier.data += 1.0
        np.testing.assert_array_equal(engine.predict(x), before)

    @pytest.mark.parametrize("technique", ["tt_rec", "qr_mult"])
    def test_fallback_plan_is_a_snapshot_too(self, technique):
        """Module-fallback techniques must not mix cached (stale) rows with
        live-weight composes after the model trains on."""
        model = _model("pointwise", technique)
        x = np.random.default_rng(5).integers(0, V, size=(4, L))
        engine = InferenceEngine(model, cache_rows=8)  # tiny: constant misses
        before = engine.predict(x).copy()
        for p in model.embedding.parameters():
            p.data += 0.5
        np.testing.assert_array_equal(engine.predict(x), before)

    def test_predict_one_matches_batch_row(self):
        engine = InferenceEngine(_model())
        rng = np.random.default_rng(5)
        batch = rng.integers(0, V, size=(4, L))
        rows = engine.predict(batch)
        for i in range(4):
            np.testing.assert_array_equal(engine.predict_one(batch[i]), rows[i])


class TestEngineValidation:
    def test_rejects_wrong_length(self):
        engine = InferenceEngine(_model())
        with pytest.raises(ValueError):
            engine.predict(np.zeros((2, L + 1), dtype=np.int64))

    def test_rejects_out_of_range_ids(self):
        engine = InferenceEngine(_model())
        with pytest.raises(IndexError):
            engine.predict(np.full((1, L), V, dtype=np.int64))
        with pytest.raises(IndexError):
            engine.predict(np.full((1, L), -1, dtype=np.int64))

    def test_rejects_unknown_model(self):
        with pytest.raises(TypeError):
            InferenceEngine(object())

    def test_counts_requests(self):
        engine = InferenceEngine(_model())
        x = np.zeros((3, L), dtype=np.int64)
        engine.predict(x)
        engine.predict(x)
        assert engine.requests_served == 6
        assert engine.batches_served == 2

    def test_pooled_encoder_has_no_cache(self):
        engine = InferenceEngine(_model(technique="hashed_onehot"), cache_rows=64)
        assert engine.cache is None  # not per-id: caching would be unsound
