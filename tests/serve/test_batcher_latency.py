"""Per-request latency attribution in the Batcher.

A request's ``latency_ms`` must measure *its own* wall-clock wait —
submit→resolve — not the flush's batch-compute time.  Before this was
pinned, every rider of a flush reported the same number, which hid exactly
the queueing delay a latency SLO exists to bound: a request that sat in
the queue for 30 ms while co-riders trickled in looked as fast as the one
submitted a microsecond before the flush.
"""

import time

import numpy as np
import pytest

from repro.models.builder import build_pointwise_ranker
from repro.serve.batcher import Batcher
from repro.serve.engine import InferenceEngine

V, L, E, C = 300, 6, 16, 10


def _engine(seed=0):
    model = build_pointwise_ranker(
        "memcom", V, C, input_length=L, embedding_dim=E,
        num_hash_embeddings=32, rng=seed,
    )
    return InferenceEngine(model), model


def _request(rng):
    return rng.integers(0, V, size=L)


class TestLatencyAttribution:
    def test_latency_unset_until_flush(self):
        engine, _ = _engine()
        batcher = Batcher(engine)
        pending = batcher.submit(_request(np.random.default_rng(0)))
        assert pending.latency_ms is None
        batcher.flush()
        assert pending.latency_ms is not None
        assert pending.latency_ms >= 0.0

    def test_delayed_flush_charges_queueing_time_to_the_early_request(self):
        """The regression this file exists for: two riders of one flush must
        report different latencies when one queued measurably longer."""
        engine, _ = _engine()
        batcher = Batcher(engine)
        rng = np.random.default_rng(1)
        early = batcher.submit(_request(rng))
        time.sleep(0.03)
        late = batcher.submit(_request(rng))
        batcher.flush()
        # ``early`` waited ~30 ms longer than ``late``; allow generous
        # scheduler slop but require the bulk of the sleep to be attributed.
        assert early.latency_ms - late.latency_ms >= 20.0
        assert late.latency_ms < early.latency_ms

    def test_latency_covers_submit_to_resolve_wall_clock(self):
        engine, _ = _engine()
        batcher = Batcher(engine)
        before = time.perf_counter()
        pending = batcher.submit(_request(np.random.default_rng(2)))
        time.sleep(0.01)
        batcher.flush()
        elapsed_ms = 1e3 * (time.perf_counter() - before)
        assert 10.0 <= pending.latency_ms <= elapsed_ms + 1.0

    def test_serve_sets_latencies_for_every_request(self):
        engine, _ = _engine()
        batcher = Batcher(engine, max_batch=4)
        rng = np.random.default_rng(3)
        requests = [_request(rng) for _ in range(11)]
        pendings = [batcher.submit(ids) for ids in requests]
        batcher.flush()
        assert all(p.latency_ms is not None for p in pendings)
        # Submission order is resolution order; earlier sub-batches resolve
        # first, so a later request can never report *more* elapsed time
        # from a shared resolve point than an earlier one within its batch.
        for a, b in zip(pendings, pendings[1:]):
            if a.done and b.done:
                assert a.latency_ms >= 0 and b.latency_ms >= 0

    def test_requeued_request_keeps_its_original_clock(self):
        """A failed flush requeues undelivered requests with their original
        ``submitted_at`` — recovery time counts against their latency."""
        engine, _ = _engine()
        batcher = Batcher(engine)
        pending = batcher.submit(_request(np.random.default_rng(4)))
        started_at = pending.submitted_at

        real_predict = engine.predict
        calls = {"n": 0}

        def failing_predict(batch):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient engine failure")
            return real_predict(batch)

        engine.predict = failing_predict
        with pytest.raises(RuntimeError):
            batcher.flush()
        assert pending.latency_ms is None  # undelivered: no latency yet
        assert pending.submitted_at == started_at
        time.sleep(0.02)
        batcher.flush()
        assert pending.done
        # The ~20 ms the engine spent "down" is charged to the request.
        assert pending.latency_ms >= 20.0
