"""Quantized serving plan: bit-exactness, storage accounting, cache of codes.

The acceptance contract (ISSUE 3): int8-served predictions match the
dequantized-FP32 reference bit-for-bit (same rounding path — the reference
model's embedding is ``QuantizedEmbedding.dequantized()``); quantize→shard
and quantize→monolithic agree bit-for-bit; the cache of codes holds ≥3.5×
more rows per byte than FP32 at int8; cached and uncached quantized
engines serve identical values.
"""

import numpy as np
import pytest

from repro.models.builder import (
    build_classifier,
    build_pointwise_ranker,
    build_ranknet,
    shard_model,
)
from repro.serve.cache import QuantizedRowCache, rows_for_budget
from repro.serve.engine import InferenceEngine

V, L, E, C = 250, 8, 16, 12

BUILDERS = {
    "classifier": build_classifier,
    "pointwise": build_pointwise_ranker,
    "ranknet": build_ranknet,
}

TECHNIQUES = {
    "memcom": {"num_hash_embeddings": 32},
    "full": {},
    "tt_rec": {"tt_rank": 4},
    "qr_mult": {"num_hash_embeddings": 32},
}


def _model(architecture="pointwise", technique="memcom", seed=3):
    return BUILDERS[architecture](
        technique, V, C, input_length=L, embedding_dim=E, rng=seed,
        **TECHNIQUES[technique],
    )


def _requests(n=48, seed=0):
    return np.random.default_rng(seed).integers(0, V, (n, L))


class TestQuantizedMatchesDequantizedReference:
    @pytest.mark.parametrize("architecture", sorted(BUILDERS))
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    @pytest.mark.parametrize("bits", [8, 4])
    def test_bit_for_bit(self, architecture, technique, bits):
        ids = _requests()
        engine = InferenceEngine(_model(architecture, technique), bits=bits)
        reference = _model(architecture, technique)
        reference.embedding = engine._qemb.dequantized()
        ref_engine = InferenceEngine(reference)
        np.testing.assert_array_equal(
            engine.predict(ids), ref_engine.predict(ids)
        )

    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_cached_equals_uncached(self, technique):
        ids = _requests(96)
        for bits in (8, 4):
            plain = InferenceEngine(_model(technique=technique), bits=bits)
            cached = InferenceEngine(
                _model(technique=technique), bits=bits, cache_rows=40
            )
            # two passes: second is cache-hit dominated
            first = cached.predict(ids).copy()
            np.testing.assert_array_equal(first, cached.predict(ids))
            np.testing.assert_array_equal(first, plain.predict(ids))
            assert cached.cache.hits > 0

    def test_predict_one_matches_batched(self):
        ids = _requests(5)
        engine = InferenceEngine(_model(), bits=8, cache_rows=32)
        batched = engine.predict(ids)
        for k in range(ids.shape[0]):
            np.testing.assert_array_equal(batched[k], engine.predict_one(ids[k]))

    @pytest.mark.parametrize("technique", ["full", "memcom"])
    def test_quantize_then_shard_equals_monolithic(self, technique):
        ids = _requests()
        mono = InferenceEngine(_model(technique=technique), bits=8)
        sharded = InferenceEngine(
            shard_model(_model(technique=technique), 3), bits=8
        )
        np.testing.assert_array_equal(mono.predict(ids), sharded.predict(ids))

    def test_close_to_fp32_engine(self):
        ids = _requests()
        fp32 = InferenceEngine(_model()).predict(ids)
        q8 = InferenceEngine(_model(), bits=8).predict(ids)
        q4 = InferenceEngine(_model(), bits=4).predict(ids)
        assert np.abs(q8 - fp32).max() < 5e-3  # DESIGN.md §7 tolerances
        assert np.abs(q4 - fp32).max() < 1e-1
        assert np.abs(q8 - fp32).max() < np.abs(q4 - fp32).max()


class TestQuantizedStorage:
    def test_table_resident_bytes_shrink(self):
        fp32 = InferenceEngine(_model(technique="full"))
        q8 = InferenceEngine(_model(technique="full"), bits=8)
        q4 = InferenceEngine(_model(technique="full"), bits=4)
        assert fp32.table_resident_bytes() == V * E * 4
        assert q8.table_resident_bytes() == V * (E + 4)
        assert q4.table_resident_bytes() == V * (E // 2 + 4)
        assert q4.table_resident_bytes() < q8.table_resident_bytes()

    def test_engine_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            InferenceEngine(_model(), bits=16)

    def test_pooled_onehot_cannot_quantize(self):
        model = build_pointwise_ranker(
            "hashed_onehot", V, C, input_length=L, embedding_dim=E, rng=0,
            num_hash_embeddings=32,
        )
        with pytest.raises(TypeError, match="pooled"):
            InferenceEngine(model, bits=8)


class TestCacheOfCodes:
    def test_rows_per_byte_budget(self):
        # Acceptance: ≥3.5× more cached rows at an equal byte budget (int8).
        budget = 1 << 16
        dim = 64
        fp32_rows = rows_for_budget(budget, dim, 32)
        int8_rows = rows_for_budget(budget, dim, 8)
        int4_rows = rows_for_budget(budget, dim, 4)
        assert int8_rows / fp32_rows >= 3.5
        assert int4_rows / fp32_rows >= 7.0
        # the built cache actually fits the budget it was priced for
        c8 = QuantizedRowCache(int8_rows, dim, 8, id_range=V)
        assert c8.store_nbytes() <= budget
        assert c8.capacity * c8.bytes_per_row() == c8.store_nbytes()

    def test_hit_decodes_exactly_what_miss_stored(self):
        engine = InferenceEngine(_model(technique="tt_rec"), bits=4, cache_rows=300)
        flat = np.arange(V)
        miss_rows = engine._embed(flat).copy()  # fills the cache
        hit_rows = engine._embed(flat)  # all hits now
        assert engine.cache.hits >= V
        np.testing.assert_array_equal(miss_rows, hit_rows)

    def test_quantized_cache_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            QuantizedRowCache(10, 8, bits=2)
