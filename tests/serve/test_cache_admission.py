"""Frequency-based cache admission (``min_count``): one-hit wonders stay out."""

import numpy as np
import pytest

from repro.models.builder import build_pointwise_ranker
from repro.serve.cache import LRUCache
from repro.serve.engine import InferenceEngine


def _rows(ids, dim=4):
    ids = np.asarray(ids, dtype=np.int64)
    return np.repeat(ids[:, None], dim, axis=1).astype(np.float32)


class TestAdmission:
    def test_first_attempt_rejected_second_admitted(self):
        cache = LRUCache(8, 4, id_range=100, min_count=2)
        ids = np.array([1, 2, 3])
        assert (cache.insert(ids, _rows(ids)) == -1).all()
        assert len(cache) == 0
        assert cache.rejected == 3
        slots = cache.insert(ids, _rows(ids))
        assert (slots >= 0).all()
        np.testing.assert_array_equal(cache.rows(slots), _rows(ids))

    def test_min_count_one_admits_immediately(self):
        cache = LRUCache(8, 4, id_range=100)  # default min_count=1
        slots = cache.insert(np.array([5]), _rows([5]))
        assert slots[0] >= 0 and cache.rejected == 0

    def test_partial_admission_within_one_insert(self):
        cache = LRUCache(8, 4, id_range=100, min_count=2)
        cache.insert(np.array([1, 2]), _rows([1, 2]))  # counts: {1:1, 2:1}
        slots = cache.insert(np.array([1, 7]), _rows([1, 7]))
        assert slots[0] >= 0  # id 1 on its second attempt
        assert slots[1] == -1  # id 7 on its first
        lookup = cache.lookup(np.array([1, 7]))
        assert lookup[0] >= 0 and lookup[1] == -1

    def test_dict_backed_counts_without_id_range(self):
        cache = LRUCache(8, 4, min_count=3)
        ids = np.array([42])
        for expect in (-1, -1):
            assert cache.insert(ids, _rows(ids))[0] == expect
        assert cache.insert(ids, _rows(ids))[0] >= 0

    def test_one_hit_wonders_stop_evicting_the_zipf_head(self):
        head = np.arange(16)
        protected = LRUCache(16, 4, id_range=10_000, min_count=2)
        for _ in range(2):  # head ids clear admission and fill the cache
            protected.lookup(head)
            protected.insert(head, _rows(head))
        unprotected = LRUCache(16, 4, id_range=10_000)
        unprotected.lookup(head)
        unprotected.insert(head, _rows(head))

        # a long stream of unique one-hit-wonder tail ids
        for start in range(100, 400, 10):
            tail = np.arange(start, start + 10)
            for cache in (protected, unprotected):
                cache.lookup(tail)
                cache.insert(tail, _rows(tail))

        # admission keeps every head row resident; plain LRU lost them all
        assert (protected.lookup(head) >= 0).all()
        assert protected.evictions == 0
        assert (unprotected.lookup(head) == -1).all()
        assert unprotected.evictions > 0

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            LRUCache(8, 4, min_count=0)

    def test_dict_counters_stay_bounded(self):
        # Open-ended id universe (no id_range): the one-hit-wonder counter
        # dict must be swept, not grow one entry per distinct id forever.
        cache = LRUCache(4, 2, min_count=2)
        bound = cache._COUNT_SWEEP_FACTOR * cache.capacity
        for start in range(0, 20 * bound, 4):
            ids = np.arange(start, start + 4)
            cache.insert(ids, _rows(ids, dim=2))
        assert len(cache._count_dict) <= bound + 4

    def test_cold_quantized_cache_splice_has_no_garbage_arithmetic(self):
        # First batch against a min_count-gated quantized cache: every slot
        # is -1, so the engine decodes slot 0 before any insert — scales
        # must be zero-initialized so the dead multiply stays finite.
        from repro.serve.cache import QuantizedRowCache

        cache = QuantizedRowCache(8, 4, bits=8, id_range=100, min_count=2)
        with np.errstate(invalid="raise", over="raise"):
            rows = cache.rows(np.zeros(3, dtype=np.int64))
        assert np.isfinite(rows).all()

    def test_clear_resets_counters(self):
        cache = LRUCache(8, 4, id_range=100, min_count=2)
        cache.insert(np.array([1]), _rows([1]))
        cache.clear()
        assert cache.insert(np.array([1]), _rows([1]))[0] == -1  # count restarted


class TestEngineWithAdmission:
    @pytest.mark.parametrize("bits", [None, 8])
    def test_served_values_unchanged(self, bits):
        def build():
            return build_pointwise_ranker(
                "memcom", 250, 12, input_length=8, embedding_dim=16, rng=3,
                num_hash_embeddings=32,
            )

        ids = np.random.default_rng(1).integers(0, 250, (64, 8))
        plain = InferenceEngine(build(), bits=bits)
        admitted = InferenceEngine(
            build(), bits=bits, cache_rows=64, cache_min_count=2
        )
        first = admitted.predict(ids).copy()
        np.testing.assert_array_equal(first, plain.predict(ids))
        # second pass: some rows now come from the cache, values identical
        np.testing.assert_array_equal(first, admitted.predict(ids))
        assert admitted.cache.rejected > 0


class TestAdmissionTTL:
    """``count_ttl``: admission counters decay so stale popularity expires."""

    def test_counts_halve_after_ttl_batches(self):
        cache = LRUCache(8, 4, id_range=100, min_count=2, count_ttl=3)
        ids = np.array([7])
        cache.insert(ids, _rows(ids))  # count 1 — below min_count
        for _ in range(3):  # advance 3 lookup ticks -> one decay (1 -> 0)
            cache.lookup(np.array([50]))
        # the earlier attempt has decayed away: still not admitted
        assert cache.insert(ids, _rows(ids))[0] == -1
        # two attempts close together clear min_count as always
        assert cache.insert(ids, _rows(ids))[0] >= 0

    def test_sustained_traffic_keeps_admission(self):
        # Attempts landing within one TTL window accumulate as before.
        cache = LRUCache(8, 4, id_range=100, min_count=2, count_ttl=10)
        ids = np.array([3])
        cache.lookup(ids)
        cache.insert(ids, _rows(ids))
        cache.lookup(ids)
        assert cache.insert(ids, _rows(ids))[0] >= 0  # second attempt, no gap

    def test_stale_id_must_reearn_admission(self):
        cache = LRUCache(4, 4, id_range=1000, min_count=2, count_ttl=4)
        hot = np.array([1])
        for _ in range(3):  # clearly admitted under yesterday's traffic
            if cache.lookup(hot)[0] == -1:
                cache.insert(hot, _rows(hot))
        # traffic moves on: recurring new ids clear admission themselves,
        # evict id 1 by LRU, and its counter decays to zero meanwhile
        for start in range(100, 200, 4):
            tail = np.arange(start, start + 4)
            for _ in range(2):  # recur within the window -> admitted
                cache.lookup(tail)
                cache.insert(tail, _rows(tail))
        assert cache.lookup(hot)[0] == -1  # evicted by LRU
        assert cache.insert(hot, _rows(hot))[0] == -1  # and must re-earn count

    def test_dict_backed_counts_decay_too(self):
        cache = LRUCache(8, 4, min_count=2, count_ttl=2)  # no id_range
        ids = np.array([42])
        cache.insert(ids, _rows(ids))
        for _ in range(4):
            cache.lookup(np.array([9]))
        assert 42 not in cache._count_dict  # halved to zero and dropped
        assert cache.insert(ids, _rows(ids))[0] == -1

    def test_ttl_validation(self):
        with pytest.raises(ValueError, match="count_ttl"):
            LRUCache(8, 4, count_ttl=0)

    def test_drifting_zipf_head_decayed_vs_sticky(self):
        """The PR-4 motivation end to end: the traffic's Zipf head *moves*.

        Phase A serves head ids 0..31; phase B drifts the head to
        2000..2031 with per-round one-hit-wonder tail noise.  A decaying
        cache must (1) admit the new head and serve it at full hit rate,
        (2) let the old head's counters decay so a stale id re-earns
        admission, while (3) a no-TTL control keeps honoring last week's
        popularity forever — the failure mode count_ttl exists to prevent.
        """
        def serve_round(cache, ids):
            # The engine's protocol: look everything up, insert the
            # (unique) misses; returns the lookup slots.
            slots = cache.lookup(ids)
            missed = np.unique(ids[slots == -1])
            if missed.size:
                cache.insert(missed, _rows(missed))
            return slots

        def attempts_until_admitted(cache, ids, limit=8):
            for attempt in range(1, limit + 1):
                if (cache.insert(ids, _rows(ids)) >= 0).all():
                    return attempt
            return limit + 1

        decayed = LRUCache(32, 4, id_range=10_000, min_count=3, count_ttl=5)
        sticky = LRUCache(32, 4, id_range=10_000, min_count=3)
        head_a, head_b = np.arange(32), np.arange(2000, 2032)
        rng = np.random.default_rng(7)

        for _ in range(6):  # phase A: old head earns admission in both
            for cache in (decayed, sticky):
                serve_round(cache, head_a)
        assert (decayed.lookup(head_a) >= 0).all()
        assert (sticky.lookup(head_a) >= 0).all()

        hits_late = 0
        for round_no in range(15):  # phase B: the head has drifted
            noise = rng.integers(3000, 10_000, size=8)  # one-hit wonders
            traffic = np.concatenate([head_b, noise])
            for cache in (decayed, sticky):
                slots = serve_round(cache, traffic)
                if cache is decayed and round_no >= 5:
                    hits_late += int((slots[:32] >= 0).sum())

        # (1) the new head is fully resident and serving at 100% hit rate
        # in the steady late-phase rounds; tail noise never got admitted.
        assert hits_late == 10 * 32
        assert (decayed.lookup(head_b) >= 0).all()
        assert decayed.rejected > 0
        # Both caches evicted the old head's rows by LRU...
        assert (decayed.lookup(head_a) == -1).all()
        assert (sticky.lookup(head_a) == -1).all()
        # (2)+(3) ...but only the decayed cache forgot its *popularity*:
        # a stale id walks straight back in under sticky counters, and
        # must re-earn min_count attempts under decayed ones.
        assert attempts_until_admitted(sticky, head_a) == 1
        assert attempts_until_admitted(decayed, head_a) >= 2

    def test_decay_never_changes_served_values(self):
        def build():
            return build_pointwise_ranker(
                "memcom", 250, 12, input_length=8, embedding_dim=16, rng=3,
                num_hash_embeddings=32,
            )

        rng = np.random.default_rng(5)
        plain = InferenceEngine(build())
        decaying = InferenceEngine(
            build(), cache_rows=32, cache_min_count=2, cache_ttl=2
        )
        for _ in range(8):  # several decay windows under shifting traffic
            ids = rng.integers(0, 250, (16, 8))
            np.testing.assert_array_equal(
                decaying.predict(ids), plain.predict(ids)
            )
        assert decaying.cache.count_ttl == 2
