"""The chaos matrix from the issue's acceptance bar: every fault class ×
technique × width must recover inside the retry budget with predictions
bit-identical to a fault-free run (``ChaosReport.ok`` checks both the
bit-identity and the per-scenario fault evidence)."""

import pytest

from repro.serve.runtime import CHAOS_SCENARIOS, run_chaos

from .conftest import FAST_RETRY

#: acceptance matrix: {full, memcom, tt_rec} × {32, 8}-ish — 8-bit exercised
#: on the technique whose artifact quantization is the paper's headline
_MODELS = [("full", 32), ("memcom", 32), ("memcom", 8), ("tt_rec", 32)]


def _run(artifact_for, scenario, technique, bits):
    report = run_chaos(
        artifact_for(technique, bits),
        scenario,
        workers=2,
        num_requests=48,
        batch_size=12,
        retry=FAST_RETRY,
        bits=None,  # the artifact is already stored at the target width
    )
    assert report.ok, (report.summary(), report.evidence, report.stats)
    return report


class TestChaosMatrix:
    @pytest.mark.parametrize("technique,bits", _MODELS)
    @pytest.mark.parametrize("scenario", ["kill", "delay", "corrupt-artifact"])
    def test_recovers_bit_identical(self, artifact_for, scenario, technique, bits):
        _run(artifact_for, scenario, technique, bits)

    def test_corrupt_payload_is_caught_by_checksum(self, artifact_for):
        report = _run(artifact_for, "corrupt", "memcom", 32)
        assert report.stats["corrupt_payloads"] >= 1
        assert report.stats["respawns"] == 0  # process was healthy; retry only

    def test_dropped_reply_is_timed_out_and_retried(self, artifact_for):
        report = _run(artifact_for, "drop", "memcom", 32)
        assert report.stats["timeouts"] >= 1

    def test_kill_reports_recovery_latency(self, artifact_for):
        report = _run(artifact_for, "kill", "memcom", 32)
        assert report.stats["respawns"] >= 1
        assert report.stats["recovery_latency_ms"] > 0.0


class TestScenarioRegistry:
    def test_registry_matches_cli_choices(self):
        assert set(CHAOS_SCENARIOS) == {
            "kill", "delay", "drop", "corrupt", "corrupt-artifact"
        }

    def test_unknown_scenario_raises(self, artifact_for):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_chaos(artifact_for(), "meteor-strike")
