"""RetryPolicy: pure data, pure functions — assertable to the decimal."""

import pytest

from repro.serve.runtime import RetryPolicy


class TestValidation:
    def test_defaults_validate(self):
        assert RetryPolicy().validate() is not None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_base_s": 2.0, "backoff_max_s": 1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"respawn_grace_s": -1.0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs).validate()


class TestBackoff:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=10.0, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_bounded_by_backoff_max(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=0.3, jitter=0.0)
        assert policy.backoff(10) == pytest.approx(0.3)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=1.0, jitter=0.25)
        for k in (1, 2, 5):
            base = min(0.1 * 2 ** (k - 1), 1.0)
            delay = policy.backoff(k)
            assert base <= delay <= base * 1.25
            assert delay == policy.backoff(k)  # reproducible per (seed, k)

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(seed=1, jitter=0.5).backoff(1)
        b = RetryPolicy(seed=2, jitter=0.5).backoff(1)
        assert a != b

    def test_retry_index_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff(0)


class TestDeadline:
    def test_fresh_worker_gets_spawn_grace(self):
        policy = RetryPolicy(timeout_s=2.0, respawn_grace_s=10.0)
        assert policy.deadline_s(fresh_worker=False) == pytest.approx(2.0)
        assert policy.deadline_s(fresh_worker=True) == pytest.approx(12.0)
