"""Supervisor behaviour under real process failures: respawn on idle
death, bounded retries with injected faults, and graceful degradation to
the local fallback path — always with bit-identical answers."""

import time

import numpy as np

from repro.serve import ServeSession, ServingRuntime
from repro.serve.runtime import FaultSpec, RetryPolicy

from .conftest import FAST_RETRY, LENGTH, VOCAB


def _traffic(n=24, seed=3):
    return np.random.default_rng(seed).integers(0, VOCAB, size=(n, LENGTH))


class TestRespawn:
    def test_idle_death_is_respawned_by_health_sweep(self, artifact_for):
        path = artifact_for()
        ids = _traffic()
        expected = ServeSession.load(path).predict(ids)
        with ServingRuntime(path, workers=2, retry=FAST_RETRY) as runtime:
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            victim = runtime.supervisor.workers[0].process
            victim.kill()
            victim.join()
            report = runtime.check_health()
            assert report["respawned"] >= 1
            assert runtime.qos.worker_deaths >= 1
            # the replacement serves the same bits as everyone else
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            assert runtime.check_health()["alive"] == 2

    def test_in_request_death_is_retried_transparently(self, artifact_for):
        path = artifact_for()
        ids = _traffic()
        expected = ServeSession.load(path).predict(ids)
        faults = {0: FaultSpec(kill_on=1)}
        with ServingRuntime(
            path, workers=2, retry=FAST_RETRY, faults=faults
        ) as runtime:
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            stats = runtime.stats()
            assert stats["worker_deaths"] >= 1
            assert stats["respawns"] >= 1
            assert stats["retries"] >= 1
            assert stats["workers_degraded"] == 0
            # respawned worker is clean (faults_persist defaults to False)
            np.testing.assert_array_equal(runtime.predict(ids), expected)


class TestDegradation:
    def test_exhausted_budget_degrades_to_local_fallback(self, artifact_for):
        path = artifact_for()
        ids = _traffic()
        expected = ServeSession.load(path).predict(ids)
        retry = RetryPolicy(
            timeout_s=0.5, max_attempts=1, backoff_base_s=0.02, backoff_max_s=0.2
        )
        faults = {0: FaultSpec(kill_on=1)}
        with ServingRuntime(path, workers=2, retry=retry, faults=faults) as runtime:
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            stats = runtime.stats()
            assert stats["workers_degraded"] == 1
            assert stats["degraded_workers"] >= 1
            assert stats["fallback_requests"] >= 1
            assert stats["respawns"] == 0  # budget spent, never respawned

    def test_persistent_fault_burns_retry_budget_then_degrades(self, artifact_for):
        path = artifact_for()
        ids = _traffic()
        expected = ServeSession.load(path).predict(ids)
        faults = {0: FaultSpec(kill_on=1)}
        with ServingRuntime(
            path, workers=2, retry=FAST_RETRY, faults=faults, faults_persist=True
        ) as runtime:
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            stats = runtime.stats()
            # every respawned replacement was re-armed and died again
            assert stats["respawns"] >= 2
            assert stats["worker_deaths"] >= FAST_RETRY.max_attempts
            assert stats["workers_degraded"] == 1

    def test_all_workers_degraded_falls_back_to_engine_predict(self, artifact_for):
        path = artifact_for()
        ids = _traffic()
        expected = ServeSession.load(path).predict(ids)
        retry = RetryPolicy(
            timeout_s=0.5, max_attempts=1, backoff_base_s=0.02, backoff_max_s=0.2
        )
        faults = {0: FaultSpec(kill_on=1), 1: FaultSpec(kill_on=1)}
        with ServingRuntime(path, workers=2, retry=retry, faults=faults) as runtime:
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            assert runtime.degraded
            assert runtime.stats()["workers_degraded"] == 2
            # fully degraded runtime keeps serving, single-process style
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            assert runtime.stats()["fallback_requests"] >= 1


class TestCleanShutdown:
    def test_close_reaps_every_worker_process(self, artifact_for):
        runtime = ServingRuntime(artifact_for(), workers=3, retry=FAST_RETRY)
        procs = [w.process for w in runtime.supervisor.workers]
        runtime.predict(_traffic(8))
        runtime.close()
        deadline = time.monotonic() + 10.0
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert all(not p.is_alive() for p in procs)
