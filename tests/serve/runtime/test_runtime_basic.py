"""Fault-free ServingRuntime: the multi-process plane is invisible in the
answers — bit-identical to the single-process engine for every technique
and width it can serve — and the session/batcher front doors drive it
unchanged."""

import numpy as np
import pytest

from repro.serve import Batcher, ServeSession, ServingRuntime
from repro.serve.runtime import RetryPolicy

from .conftest import FAST_RETRY, LENGTH, VOCAB, build_model


def _traffic(n=40, seed=1):
    return np.random.default_rng(seed).integers(0, VOCAB, size=(n, LENGTH))


class TestBitIdentical:
    @pytest.mark.parametrize(
        "technique,bits",
        [("memcom", 32), ("memcom", 8), ("full", 32), ("tt_rec", 32)],
    )
    def test_matches_single_process_engine(self, artifact_for, technique, bits):
        path = artifact_for(technique, bits)
        ids = _traffic()
        expected = ServeSession.load(path).predict(ids)
        with ServingRuntime(path, workers=2, retry=FAST_RETRY) as runtime:
            np.testing.assert_array_equal(runtime.predict(ids), expected)
            # serving again hits warm workers; still identical
            np.testing.assert_array_equal(runtime.predict(ids), expected)

    def test_single_worker_and_many_workers_agree(self, artifact_for):
        path = artifact_for()
        ids = _traffic(24)
        with ServingRuntime(path, workers=1, retry=FAST_RETRY) as one:
            with ServingRuntime(path, workers=4, retry=FAST_RETRY) as four:
                np.testing.assert_array_equal(one.predict(ids), four.predict(ids))

    def test_predict_one(self, artifact_for):
        path = artifact_for()
        row = _traffic(1)[0]
        expected = ServeSession.load(path).predict_one(row)
        with ServingRuntime(path, workers=2, retry=FAST_RETRY) as runtime:
            np.testing.assert_array_equal(runtime.predict_one(row), expected)


class TestFrontDoors:
    def test_batcher_coalesces_over_the_runtime(self, artifact_for):
        path = artifact_for()
        ids = _traffic(10)
        expected = ServeSession.load(path).predict(ids)
        with ServingRuntime(path, workers=2, retry=FAST_RETRY) as runtime:
            batcher = Batcher(runtime, max_batch=4)
            results = batcher.serve(list(ids))
            np.testing.assert_array_equal(np.stack(results), expected)

    def test_session_load_with_workers(self, artifact_for):
        path = artifact_for()
        ids = _traffic(16)
        expected = ServeSession.load(path).predict(ids)
        with ServeSession.load(path, workers=2, retry=FAST_RETRY) as session:
            assert session.runtime is not None
            np.testing.assert_array_equal(session.predict(ids), expected)
            for row in ids:
                session.submit(row)
            np.testing.assert_array_equal(np.stack(session.flush()), expected)
            stats = session.stats()
            assert stats["workers"] == 2
            assert stats["respawns"] == 0 and stats["retries"] == 0
            assert stats["latency_ms_p99"] > 0.0
            assert stats["requests_served"] == 2 * len(ids)

    def test_session_from_model_refuses_workers(self):
        with pytest.raises(ValueError, match="on-disk artifact"):
            ServeSession.from_model(build_model("memcom"), workers=2)

    def test_quantized_session_with_workers(self, artifact_for):
        path = artifact_for("memcom", 8)
        ids = _traffic(16)
        expected = ServeSession.load(path).predict(ids)
        with ServeSession.load(path, workers=2, retry=FAST_RETRY) as session:
            np.testing.assert_array_equal(session.predict(ids), expected)

    def test_retry_without_workers_is_config_error(self, artifact_for):
        with pytest.raises(ValueError, match="workers"):
            ServeSession.load(artifact_for(), retry=RetryPolicy())


class TestLifecycleAndErrors:
    def test_workers_must_be_positive(self, artifact_for):
        with pytest.raises(ValueError, match="workers"):
            ServingRuntime(artifact_for(), workers=0)

    def test_missing_artifact_fails_at_init(self, tmp_path):
        with pytest.raises(Exception):
            ServingRuntime(str(tmp_path / "nope"), workers=2, retry=FAST_RETRY)

    def test_pooled_embedding_is_rejected(self, artifact_for):
        from repro.serve.engine import InferenceEngine

        pooled = InferenceEngine(build_model("memcom"))
        pooled._embed_pooled, pooled._embed_rows = (lambda ids: None), None
        with pytest.raises(ValueError, match="not per-id"):
            ServingRuntime(artifact_for(), workers=2, engine=pooled)

    def test_close_is_idempotent_and_final(self, artifact_for):
        runtime = ServingRuntime(artifact_for(), workers=2, retry=FAST_RETRY)
        procs = [w.process for w in runtime.supervisor.workers]
        runtime.predict(_traffic(4))
        runtime.close()
        runtime.close()
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(RuntimeError, match="closed"):
            runtime.predict(_traffic(4))

    def test_stats_and_health_report_shape(self, artifact_for):
        with ServingRuntime(artifact_for(), workers=2, retry=FAST_RETRY) as runtime:
            runtime.predict(_traffic(8))
            stats = runtime.stats()
            for key in (
                "workers", "workers_degraded", "latency_ms_p50", "latency_ms_p95",
                "latency_ms_p99", "recovery_latency_ms", "retries", "respawns",
                "worker_deaths", "timeouts", "corrupt_payloads",
                "heartbeats_missed", "fallback_requests", "degraded_workers",
                "faults_detected", "requests_served", "batches_served",
            ):
                assert key in stats, key
            health = runtime.check_health()
            assert health["alive"] == 2 and health["degraded"] == 0
