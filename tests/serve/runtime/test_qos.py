"""QoSStats: per-request latency percentiles + failure/recovery counters.

``TestPercentileMathVsNumpy`` cross-checks the compressed ``(ms, count)``
ledger against ``numpy.percentile`` on the explicitly expanded per-request
array — the ledger is an encoding, never an approximation — on the
adversarial shapes that break naive percentile code: a single sample,
all-equal ledgers, heavy tails hiding behind big counts, and randomized
weighted ledgers.
"""

import numpy as np
import pytest

from repro.serve.runtime import QoSStats
from repro.serve.runtime.qos import PERCENTILES


class TestLatencyPercentiles:
    def test_empty_is_all_zero(self):
        snap = QoSStats().snapshot()
        assert snap["latency_ms_p50"] == 0.0
        assert snap["latency_ms_p99"] == 0.0
        assert snap["recovery_latency_ms"] == 0.0
        assert snap["faults_detected"] == 0

    def test_percentiles_are_per_request_weighted(self):
        # 90 requests rode 10 ms batches, 10 rode a 100 ms recovery batch:
        # the tail percentiles must see the recovery, the median must not.
        qos = QoSStats()
        for _ in range(9):
            qos.record_batch(10.0, 10)
        qos.record_batch(100.0, 10)
        pct = qos.latency_percentiles()
        assert pct["p50"] == pytest.approx(10.0)
        assert pct["p95"] == pytest.approx(100.0)
        assert pct["p99"] == pytest.approx(100.0)
        assert qos.requests_recorded == 100

    def test_empty_batches_are_not_recorded(self):
        qos = QoSStats()
        qos.record_batch(5.0, 0)
        assert qos.requests_recorded == 0


def _numpy_reference(ledger):
    """Ground truth: expand (ms, count) pairs and ask numpy directly."""
    expanded = np.repeat(
        np.asarray([ms for ms, _ in ledger], dtype=np.float64),
        np.asarray([n for _, n in ledger], dtype=np.int64),
    )
    return dict(
        zip(
            (f"p{int(p)}" for p in PERCENTILES),
            (float(v) for v in np.percentile(expanded, PERCENTILES)),
        )
    )


def _record(ledger):
    qos = QoSStats()
    for ms, n in ledger:
        qos.record_batch(ms, n)
    return qos


class TestPercentileMathVsNumpy:
    def test_single_sample_every_percentile_is_that_sample(self):
        qos = _record([(7.25, 1)])
        pct = qos.latency_percentiles()
        assert pct == _numpy_reference([(7.25, 1)])
        assert pct["p50"] == pct["p95"] == pct["p99"] == 7.25

    def test_single_batch_many_riders_is_degenerate(self):
        ledger = [(3.5, 1_000)]
        assert _record(ledger).latency_percentiles() == _numpy_reference(ledger)

    def test_all_equal_ledger(self):
        ledger = [(2.0, 17), (2.0, 1), (2.0, 400)]
        pct = _record(ledger).latency_percentiles()
        assert pct == _numpy_reference(ledger)
        assert pct["p50"] == pct["p99"] == 2.0

    def test_heavy_tail_hides_behind_big_counts(self):
        # 9,999 fast riders and one 10-second straggler: p99 must stay fast
        # (the straggler is past the 99th rank) but the ledger must still
        # agree with numpy on exactly where the interpolation lands.
        ledger = [(1.0, 9_999), (10_000.0, 1)]
        pct = _record(ledger).latency_percentiles()
        assert pct == _numpy_reference(ledger)
        assert pct["p99"] == pytest.approx(1.0)

    def test_heavy_tail_crossing_the_p99_boundary(self):
        # 5% of riders saw the slow batch: p95/p99 land inside the tail.
        ledger = [(1.0, 95), (100.0, 5)]
        pct = _record(ledger).latency_percentiles()
        assert pct == _numpy_reference(ledger)
        assert pct["p50"] == pytest.approx(1.0)
        assert pct["p99"] > 1.0

    def test_two_samples_interpolate_like_numpy(self):
        # numpy's default (linear) interpolation between ranks — the ledger
        # must inherit it, not invent nearest-rank or midpoint semantics.
        ledger = [(1.0, 1), (3.0, 1)]
        pct = _record(ledger).latency_percentiles()
        assert pct == _numpy_reference(ledger)
        assert pct["p50"] == pytest.approx(2.0)

    def test_recording_order_is_irrelevant(self):
        ledger = [(5.0, 3), (1.0, 10), (50.0, 2), (0.25, 7)]
        assert (
            _record(ledger).latency_percentiles()
            == _record(list(reversed(ledger))).latency_percentiles()
            == _numpy_reference(ledger)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_weighted_ledgers_match_numpy_exactly(self, seed):
        rng = np.random.default_rng(seed)
        ledger = [
            (float(rng.lognormal(1.0, 2.0)), int(rng.integers(1, 500)))
            for _ in range(int(rng.integers(1, 60)))
        ]
        assert _record(ledger).latency_percentiles() == _numpy_reference(ledger)


class TestCounters:
    def test_faults_detected_sums_detection_paths(self):
        qos = QoSStats()
        qos.worker_deaths += 2
        qos.timeouts += 3
        qos.corrupt_payloads += 1
        assert qos.faults_detected == 6
        snap = qos.snapshot()
        assert snap["worker_deaths"] == 2
        assert snap["timeouts"] == 3
        assert snap["corrupt_payloads"] == 1
        assert snap["faults_detected"] == 6

    def test_recovery_latency_reports_worst_case(self):
        qos = QoSStats()
        qos.record_recovery(12.0)
        qos.record_recovery(40.0)
        qos.record_recovery(7.0)
        assert qos.recovery_latency_ms() == pytest.approx(40.0)
        assert qos.snapshot()["recoveries"] == 3
