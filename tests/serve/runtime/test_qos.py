"""QoSStats: per-request latency percentiles + failure/recovery counters."""

import pytest

from repro.serve.runtime import QoSStats


class TestLatencyPercentiles:
    def test_empty_is_all_zero(self):
        snap = QoSStats().snapshot()
        assert snap["latency_ms_p50"] == 0.0
        assert snap["latency_ms_p99"] == 0.0
        assert snap["recovery_latency_ms"] == 0.0
        assert snap["faults_detected"] == 0

    def test_percentiles_are_per_request_weighted(self):
        # 90 requests rode 10 ms batches, 10 rode a 100 ms recovery batch:
        # the tail percentiles must see the recovery, the median must not.
        qos = QoSStats()
        for _ in range(9):
            qos.record_batch(10.0, 10)
        qos.record_batch(100.0, 10)
        pct = qos.latency_percentiles()
        assert pct["p50"] == pytest.approx(10.0)
        assert pct["p95"] == pytest.approx(100.0)
        assert pct["p99"] == pytest.approx(100.0)
        assert qos.requests_recorded == 100

    def test_empty_batches_are_not_recorded(self):
        qos = QoSStats()
        qos.record_batch(5.0, 0)
        assert qos.requests_recorded == 0


class TestCounters:
    def test_faults_detected_sums_detection_paths(self):
        qos = QoSStats()
        qos.worker_deaths += 2
        qos.timeouts += 3
        qos.corrupt_payloads += 1
        assert qos.faults_detected == 6
        snap = qos.snapshot()
        assert snap["worker_deaths"] == 2
        assert snap["timeouts"] == 3
        assert snap["corrupt_payloads"] == 1
        assert snap["faults_detected"] == 6

    def test_recovery_latency_reports_worst_case(self):
        qos = QoSStats()
        qos.record_recovery(12.0)
        qos.record_recovery(40.0)
        qos.record_recovery(7.0)
        assert qos.recovery_latency_ms() == pytest.approx(40.0)
        assert qos.snapshot()["recoveries"] == 3
