"""Fixtures for the multi-process runtime tests.

Two things every test here gets:

* a **hard per-test timeout** (SIGALRM — pytest-timeout is not a
  dependency): a supervisor bug that deadlocks the gather loop must fail
  the test in seconds, not hang the suite until CI's global kill;
* session-scoped **artifacts** (one per technique × width), because
  spawning workers re-reads the artifact from disk — building and saving
  the model once per combination keeps the whole directory fast.
"""

import os
import signal

import pytest

from repro.artifact.container import save_artifact
from repro.models.builder import build_pointwise_ranker
from repro.serve.runtime import RetryPolicy

#: generous ceiling: the slowest single test (chaos matrix cell with a
#: delayed shard) finishes in a few seconds; a hang hits this instead
HARD_TIMEOUT_S = 120

#: test-tempo failure budget — sub-second timeout, quick backoff
FAST_RETRY = RetryPolicy(
    timeout_s=0.5, max_attempts=3, backoff_base_s=0.02, backoff_max_s=0.2
)

VOCAB, ITEMS, LENGTH, DIM = 600, 7, 4, 16

_HYPER = {
    "memcom": {"num_hash_embeddings": 64},
    "full": {},
    "tt_rec": {"tt_rank": 2},
}


@pytest.fixture(autouse=True)
def hard_test_timeout():
    """Fail (don't hang) any test that wedges in supervisor/worker code."""

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"runtime test exceeded the {HARD_TIMEOUT_S}s hard timeout "
            "(supervisor or worker deadlock?)"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def build_model(technique: str, seed: int = 0):
    return build_pointwise_ranker(
        technique, VOCAB, ITEMS, input_length=LENGTH, embedding_dim=DIM,
        rng=seed, **_HYPER[technique],
    )


@pytest.fixture(scope="session")
def artifact_for(tmp_path_factory):
    """``artifact_for(technique, bits) -> path`` (built once per combo)."""
    root = tmp_path_factory.mktemp("runtime-artifacts")
    cache: dict[tuple, str] = {}

    def factory(technique: str = "memcom", bits: int = 32) -> str:
        key = (technique, bits)
        if key not in cache:
            path = os.path.join(root, f"{technique}-{bits}")
            save_artifact(build_model(technique), path, bits=bits)
            cache[key] = path
        return cache[key]

    return factory
