"""Live hot swap: adopt a new artifact mid-traffic without dropping a
request.

The contract under test (``ServeSession.hot_swap``): pending requests
drain against the *old* plan, every post-swap prediction is bit-identical
to a cold load of the new artifact — single-process, ``workers=2`` and
mmap alike — a failed swap leaves the session untouched, and delta
artifacts swap the same as full ones.
"""

import numpy as np
import pytest

from repro.artifact import save_artifact, save_delta
from repro.artifact.errors import ArtifactError
from repro.serve.session import ServeConfig, ServeSession

VOCAB, DIM, LENGTH, CATALOG = 240, 8, 6, 10


def _model(seed=0):
    from repro.models.builder import build_pointwise_ranker

    return build_pointwise_ranker(
        "full", VOCAB, CATALOG, input_length=LENGTH, embedding_dim=DIM, rng=seed,
    )


def _requests(n=24, seed=1):
    return np.random.default_rng(seed).integers(0, VOCAB, size=(n, LENGTH))


@pytest.fixture
def two_artifacts(tmp_path):
    old = str(tmp_path / "old")
    new = str(tmp_path / "new")
    save_artifact(_model(seed=0), old)
    save_artifact(_model(seed=7), new)
    return old, new


class TestHotSwapSingleProcess:
    def test_pending_drain_on_the_old_plan(self, two_artifacts):
        old, new = two_artifacts
        ids = _requests()
        with ServeSession.load(old) as cold_old:
            want_old = cold_old.predict(ids)
        with ServeSession.load(new) as cold_new:
            want_new = cold_new.predict(ids)
        with ServeSession.load(old) as session:
            pending = [session.submit(row) for row in ids]
            session.hot_swap(new)  # must flush the queue first
            drained = np.stack([req.result for req in pending])
            assert np.array_equal(drained, want_old)
            assert np.array_equal(session.predict(ids), want_new)
            assert session.swaps == 1
            assert session.stats()["hot_swaps"] == 1

    def test_post_swap_equals_cold_load(self, two_artifacts):
        old, new = two_artifacts
        ids = _requests()
        with ServeSession.load(new) as cold:
            want = cold.predict(ids)
        with ServeSession.load(old) as session:
            session.hot_swap(new)
            assert np.array_equal(session.predict(ids), want)
            assert session.artifact.path == new

    def test_mmap_session_swaps_mmap(self, two_artifacts):
        old, new = two_artifacts
        ids = _requests()
        with ServeSession.load(new) as cold:
            want = cold.predict(ids)
        with ServeSession.load(old, ServeConfig(mmap=True)) as session:
            adopted = session.hot_swap(new)
            assert adopted.mmap_backed
            assert np.array_equal(session.predict(ids), want)

    def test_failed_swap_leaves_session_intact(self, two_artifacts, tmp_path):
        old, _new = two_artifacts
        ids = _requests()
        with ServeSession.load(old) as session:
            want = session.predict(ids)
            with pytest.raises(ArtifactError):
                session.hot_swap(str(tmp_path / "nowhere"))
            assert session.swaps == 0
            assert np.array_equal(session.predict(ids), want)

    def test_swap_to_delta_artifact(self, tmp_path):
        model = _model()
        parent = str(tmp_path / "parent")
        save_artifact(model, parent)
        model.embedding.table.data[[3, 11]] += 0.25
        delta = str(tmp_path / "delta")
        save_delta(model, delta, parent, touched_rows=[3, 11])
        full = str(tmp_path / "full")
        save_artifact(model, full)
        ids = _requests()
        with ServeSession.load(full) as cold:
            want = cold.predict(ids)
        with ServeSession.load(parent) as session:
            session.hot_swap(delta)
            assert np.array_equal(session.predict(ids), want)

    def test_from_model_session_swaps_and_then_cannot_save(self, two_artifacts):
        _old, new = two_artifacts
        session = ServeSession.from_model(_model(seed=3))
        session.hot_swap(new)
        with pytest.raises(ArtifactError, match="from_model"):
            session.save("unused")


class TestHotSwapWorkers:
    @pytest.mark.parametrize("mmap", [False, True])
    def test_post_swap_equals_cold_load(self, two_artifacts, mmap):
        old, new = two_artifacts
        ids = _requests()
        with ServeSession.load(new) as cold:
            want = cold.predict(ids)
        config = ServeConfig(workers=2, mmap=mmap)
        with ServeSession.load(old, config) as session:
            pending = [session.submit(row) for row in ids]
            session.hot_swap(new)
            assert all(req.result is not None for req in pending)
            got = session.predict(ids)
            assert np.array_equal(got, want)
            assert session.stats()["hot_swaps"] == 1
            assert session.runtime.stats()["hot_swaps"] == 1

    def test_swap_on_closed_runtime_raises(self, two_artifacts):
        old, new = two_artifacts
        session = ServeSession.load(old, ServeConfig(workers=2))
        session.close()
        with pytest.raises(RuntimeError):
            session.hot_swap(new)
