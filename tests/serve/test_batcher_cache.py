"""Batcher coalescing and LRU hot-row cache semantics.

Pins the three serving contracts: (1) coalescing many single requests into
batches preserves each request's result exactly; (2) the cache hit path is
bit-identical to the miss path (a cached row is the same bytes the compose
produces); (3) LRU bookkeeping — batch-granularity recency, eviction of the
least-recent rows, never a slot the current batch still needs.
"""

import numpy as np
import pytest

from repro.models.builder import build_pointwise_ranker
from repro.nn.tensor import no_grad
from repro.serve.batcher import Batcher
from repro.serve.cache import LRUCache
from repro.serve.engine import InferenceEngine

V, L, E, C = 300, 6, 16, 10


def _engine(cache_rows=None, input_length=L, seed=0):
    model = build_pointwise_ranker(
        "memcom", V, C, input_length=input_length, embedding_dim=E,
        num_hash_embeddings=32, rng=seed,
    )
    return InferenceEngine(model, cache_rows=cache_rows), model


class TestBatcherCoalescing:
    @pytest.mark.parametrize("max_batch", [1, 4, 256])
    def test_preserves_per_request_results(self, max_batch):
        engine, _ = _engine()
        batcher = Batcher(engine, max_batch=max_batch)
        rng = np.random.default_rng(0)
        requests = [rng.integers(0, V, size=L) for _ in range(11)]
        pendings = [batcher.submit(ids) for ids in requests]
        assert len(batcher) == 11
        results = batcher.flush()
        assert len(batcher) == 0
        for ids, pending, result in zip(requests, pendings, results):
            assert pending.done
            np.testing.assert_array_equal(pending.result, result)
            np.testing.assert_array_equal(result, engine.predict_one(ids))

    def test_single_id_requests_coalesce_into_one_lookup(self):
        """The 'many single-id requests → one batched lookup' path (L=1)."""
        engine, model = _engine(input_length=1)
        batcher = Batcher(engine, max_batch=64)
        ids = list(range(10))
        results = batcher.serve(ids)  # bare ints are accepted as requests
        assert engine.batches_served == 1
        model.eval()
        with no_grad():
            want = model(np.arange(10)[:, None]).numpy()
        np.testing.assert_array_equal(np.stack(results), want)

    def test_flush_empty_is_noop(self):
        engine, _ = _engine()
        assert Batcher(engine).flush() == []

    def test_rejects_wrong_shapes(self):
        engine, _ = _engine()
        batcher = Batcher(engine)
        with pytest.raises(ValueError):
            batcher.submit(np.zeros((2, L), dtype=np.int64))
        with pytest.raises(ValueError):
            batcher.submit(np.zeros(L + 2, dtype=np.int64))
        with pytest.raises(ValueError):
            Batcher(engine, max_batch=0)

    def test_rejects_out_of_range_ids_at_submit(self):
        """One bad request must never poison a coalesced flush."""
        engine, _ = _engine()
        batcher = Batcher(engine)
        batcher.submit(np.zeros(L, dtype=np.int64))
        with pytest.raises(ValueError):
            batcher.submit(np.full(L, V, dtype=np.int64))
        with pytest.raises(ValueError):
            batcher.submit(np.full(L, -1, dtype=np.int64))
        assert len(batcher) == 1  # the valid request is still queued
        assert len(batcher.flush()) == 1

    def test_flush_failure_keeps_served_results_and_requeues_rest(self):
        engine, _ = _engine()
        batcher = Batcher(engine, max_batch=2)
        rng = np.random.default_rng(9)
        pendings = [batcher.submit(rng.integers(0, V, size=L)) for _ in range(5)]
        calls = {"n": 0}
        real_predict = engine.predict

        def failing_predict(ids):
            calls["n"] += 1
            if calls["n"] == 2:  # second sub-batch dies
                raise RuntimeError("engine fell over")
            return real_predict(ids)

        engine.predict = failing_predict
        with pytest.raises(RuntimeError):
            batcher.flush()
        # First sub-batch (2 requests) served; the other 3 are requeued.
        assert pendings[0].done and pendings[1].done
        assert not pendings[2].done
        assert len(batcher) == 3
        engine.predict = real_predict
        results = batcher.flush()
        assert len(results) == 3 and all(p.done for p in pendings)

    def test_flush_interrupted_by_base_exception_requeues_everything(self):
        """KeyboardInterrupt (or an alarm-driven timeout) is not `Exception`
        — a flush killed by one must still requeue undelivered requests
        instead of silently dropping them with the already-cleared queue."""
        engine, _ = _engine()
        batcher = Batcher(engine, max_batch=2)
        rng = np.random.default_rng(11)
        pendings = [batcher.submit(rng.integers(0, V, size=L)) for _ in range(5)]
        calls = {"n": 0}
        real_predict = engine.predict

        def interrupted_predict(ids):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real_predict(ids)

        engine.predict = interrupted_predict
        with pytest.raises(KeyboardInterrupt):
            batcher.flush()
        assert pendings[0].done and pendings[1].done
        assert len(batcher) == 3  # interrupted + unserved requests survive
        engine.predict = real_predict
        results = batcher.flush()
        assert len(results) == 3 and all(p.done for p in pendings)

    def test_flush_failure_preserves_latency_deadline_clock(self):
        """A requeued request keeps its original wait start: max_delay_ms
        counts from first submission, not from when the engine recovered."""
        engine, _ = _engine()
        batcher = Batcher(engine, max_batch=64, max_delay_ms=10_000.0)
        rng = np.random.default_rng(13)
        batcher.submit(rng.integers(0, V, size=L))
        started_waiting = batcher._oldest_pending_at
        assert started_waiting is not None

        def failing_predict(ids):
            raise RuntimeError("engine fell over")

        real_predict = engine.predict
        engine.predict = failing_predict
        with pytest.raises(RuntimeError):
            batcher.flush()
        engine.predict = real_predict
        # The requeued request's deadline clock was not reset (a reset
        # would let it wait up to 2x max_delay_ms across a failure).
        assert batcher._oldest_pending_at == started_waiting
        # And an overdue requeued request auto-flushes on the next submit.
        batcher._oldest_pending_at -= 11.0  # simulate 11s already waited
        batcher.submit(rng.integers(0, V, size=L))
        assert batcher.auto_flushes == 1 and len(batcher) == 0

    def test_cached_engine_through_batcher_matches_uncached(self):
        cached, _ = _engine(cache_rows=64)
        uncached, _ = _engine()
        rng = np.random.default_rng(1)
        requests = [rng.integers(0, V, size=L) for _ in range(40)]
        got = Batcher(cached, max_batch=8).serve(requests)
        want = Batcher(uncached, max_batch=8).serve(requests)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)


class TestCacheHitPathBitIdentical:
    def test_hit_equals_miss_bytes(self):
        """Same batch twice: first pass all misses, second all hits."""
        engine, _ = _engine(cache_rows=V)
        x = np.random.default_rng(2).integers(0, V, size=(9, L))
        first = engine.predict(x)
        assert engine.cache.misses > 0 and engine.cache.hits >= 0
        second = engine.predict(x)
        assert engine.cache.hit_rate > 0
        np.testing.assert_array_equal(first, second)

    def test_cached_equals_eager_across_evicting_traffic(self):
        """Tiny cache forces constant eviction/drops; results must not drift."""
        engine, model = _engine(cache_rows=7)
        model.eval()
        rng = np.random.default_rng(3)
        for _ in range(30):
            x = rng.integers(0, V, size=(8, L))
            with no_grad():
                want = model(x).numpy()
            np.testing.assert_array_equal(engine.predict(x), want)

    def test_hit_rate_rises_on_zipf_traffic(self):
        from repro.serve.bench import zipf_requests

        engine, _ = _engine(cache_rows=128)
        requests = zipf_requests(V, L, 512, alpha=1.1, rng=0)
        for start in range(0, 512, 32):
            engine.predict(requests[start : start + 32])
        assert engine.cache.hit_rate > 0.5


class TestLRUCacheBookkeeping:
    def _fill(self, cache, ids):
        rows = np.asarray(ids, dtype=np.float32)[:, None] * np.ones(
            (1, cache.dim), np.float32
        )
        return cache.insert(np.asarray(ids), rows)

    @pytest.mark.parametrize("id_range", [None, 100])
    def test_lookup_insert_roundtrip(self, id_range):
        cache = LRUCache(8, 3, id_range=id_range)
        slots = self._fill(cache, [1, 2, 3])
        assert (slots >= 0).all()
        got = cache.lookup(np.array([1, 3, 7]))
        assert got[0] >= 0 and got[1] >= 0 and got[2] == -1
        np.testing.assert_array_equal(cache.rows(got[:2])[:, 0], [1.0, 3.0])
        assert cache.hits == 2 and cache.misses == 1
        assert len(cache) == 3

    @pytest.mark.parametrize("id_range", [None, 100])
    def test_evicts_least_recently_used(self, id_range):
        cache = LRUCache(4, 2, id_range=id_range)
        self._fill(cache, [0, 1, 2, 3])
        cache.lookup(np.array([0, 1]))  # 2, 3 become the LRU rows
        self._fill(cache, [4, 5])
        assert cache.evictions == 2
        kept = cache.lookup(np.array([0, 1, 2, 3, 4, 5]))
        assert (kept[[0, 1, 4, 5]] >= 0).all()
        assert (kept[[2, 3]] == -1).all()

    def test_never_evicts_rows_hit_this_tick(self):
        cache = LRUCache(4, 2)
        self._fill(cache, [0, 1, 2, 3])
        hit_slots = cache.lookup(np.array([0, 1, 2]))  # current tick
        returned = self._fill(cache, [10, 11, 12])
        # Only id 3 was evictable; the overflow is dropped, not thrashed.
        assert (returned >= 0).sum() == 1
        for i, s in zip([0, 1, 2], hit_slots.tolist()):
            assert cache.rows(np.array([s]))[0, 0] == float(i)

    def test_insert_more_than_capacity_keeps_head(self):
        cache = LRUCache(3, 2, id_range=100)
        returned = self._fill(cache, [0, 1, 2, 3, 4])
        assert (returned[:3] >= 0).all() and (returned[3:] == -1).all()

    def test_clear(self):
        cache = LRUCache(4, 2, id_range=50)
        self._fill(cache, [1, 2])
        cache.clear()
        assert len(cache) == 0
        assert (cache.lookup(np.array([1, 2])) == -1).all()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LRUCache(0, 4)
        with pytest.raises(ValueError):
            LRUCache(4, 0)
        cache = LRUCache(4, 2)
        with pytest.raises(ValueError):
            cache.insert(np.array([1]), np.zeros((1, 3), np.float32))

    def test_dict_and_array_maps_agree(self):
        """Same traffic through both map backends → same hits/evictions."""
        rng = np.random.default_rng(4)
        caches = [LRUCache(16, 2), LRUCache(16, 2, id_range=60)]
        for _ in range(50):
            flat = rng.integers(0, 60, size=20)
            outcomes = []
            for cache in caches:
                slots = cache.lookup(flat)
                miss_at = np.flatnonzero(slots < 0)
                ids = np.unique(flat[miss_at])
                cache.insert(ids, np.zeros((ids.size, 2), np.float32))
                outcomes.append((slots >= 0).tolist())
            assert outcomes[0] == outcomes[1]
        assert caches[0].hits == caches[1].hits
        assert caches[0].evictions == caches[1].evictions
