"""The three paper architectures with pluggable compression."""

import numpy as np
import pytest

from repro.metrics.evaluator import predict_scores
from repro.models.builder import (
    build_classifier,
    build_pointwise_ranker,
    build_ranknet,
    model_param_count,
)
from repro.models.classifier import EmbeddingClassifier, classifier_head_params
from repro.models.pointwise import PointwiseRanker, pointwise_head_params
from repro.models.ranknet import RankNet, ranknet_head_params
from repro.nn.tensor import no_grad

V, C, L, E = 120, 9, 8, 16
TECHNIQUES = [
    ("full", {}),
    ("memcom", dict(num_hash_embeddings=12)),
    ("memcom_nobias", dict(num_hash_embeddings=12)),
    ("qr_mult", dict(num_hash_embeddings=12)),
    ("qr_concat", dict(num_hash_embeddings=12)),
    ("hash", dict(num_hash_embeddings=12)),
    ("double_hash", dict(num_hash_embeddings=12)),
    ("factorized", dict(hidden_dim=4)),
    ("reduce_dim", dict(reduced_dim=4)),
    ("truncate_rare", dict(keep=30)),
    ("hashed_onehot", dict(num_hash_embeddings=12)),
]


def _ids(rng, n=6):
    return rng.integers(0, V, size=(n, L)).astype(np.int32)


class TestClassifier:
    @pytest.mark.parametrize("technique,hyper", TECHNIQUES)
    def test_forward_shape_for_every_technique(self, technique, hyper, rng):
        model = build_classifier(
            technique, V, C, input_length=L, embedding_dim=E, rng=0, **hyper
        )
        out = model(_ids(rng))
        assert out.shape == (6, C)
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("technique,hyper", TECHNIQUES)
    def test_param_count_matches_analytic(self, technique, hyper):
        model = build_classifier(
            technique, V, C, input_length=L, embedding_dim=E, rng=0, **hyper
        )
        assert model.num_parameters() == model_param_count(
            "classifier", technique, V, C, E, **hyper
        )

    def test_gradients_reach_every_parameter(self, rng):
        from repro.nn.losses import softmax_cross_entropy

        model = build_classifier(
            "memcom", V, C, input_length=L, embedding_dim=E, rng=0, num_hash_embeddings=12
        )
        loss = softmax_cross_entropy(model(_ids(rng)), rng.integers(0, C, 6))
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_eval_mode_is_deterministic(self, rng):
        model = build_classifier(
            "memcom", V, C, input_length=L, embedding_dim=E, rng=0, num_hash_embeddings=12
        )
        model.eval()
        x = _ids(rng)
        with no_grad():
            a, b = model(x).data, model(x).data
        np.testing.assert_array_equal(a, b)

    def test_train_mode_dropout_varies(self, rng):
        model = build_classifier(
            "full", V, C, input_length=L, embedding_dim=E, dropout=0.5, rng=0
        )
        x = _ids(rng)
        assert not np.array_equal(model(x).data, model(x).data)

    def test_head_params_formula(self):
        assert classifier_head_params(16, 9) == 2 * 16 + (16 * 8 + 8) + 2 * 8 + (8 * 9 + 9)

    def test_rejects_single_label(self):
        with pytest.raises(ValueError):
            build_classifier("full", V, 1, input_length=L, embedding_dim=E, rng=0)


class TestPointwise:
    def test_forward_shape(self, rng):
        model = build_pointwise_ranker(
            "memcom", V, C, input_length=L, embedding_dim=E, rng=0, num_hash_embeddings=12
        )
        assert model(_ids(rng)).shape == (6, C)

    def test_no_hidden_dense(self):
        model = build_pointwise_ranker("full", V, C, input_length=L, embedding_dim=E, rng=0)
        assert not hasattr(model, "hidden")

    def test_param_count(self):
        model = build_pointwise_ranker("full", V, C, input_length=L, embedding_dim=E, rng=0)
        assert model.num_parameters() == V * E + pointwise_head_params(E, C)

    def test_reduce_dim_shrinks_head(self):
        model = build_pointwise_ranker(
            "reduce_dim", V, C, input_length=L, embedding_dim=E, rng=0, reduced_dim=4
        )
        assert model.out.in_features == 4
        assert model.num_parameters() == model_param_count(
            "pointwise", "reduce_dim", V, C, E, reduced_dim=4
        )


class TestRankNet:
    def test_pair_scores_shapes(self, rng):
        model = build_ranknet(
            "memcom", V, C, input_length=L, embedding_dim=E, rng=0, num_hash_embeddings=12
        )
        x = _ids(rng)
        pos = rng.integers(0, C, 6)
        neg = rng.integers(0, C, 6)
        s_pos, s_neg = model.score_pair(x, pos, neg)
        assert s_pos.shape == (6,) and s_neg.shape == (6,)

    def test_forward_scores_full_catalog(self, rng):
        model = build_ranknet("full", V, C, input_length=L, embedding_dim=E, rng=0)
        assert model(_ids(rng)).shape == (6, C)

    def test_pair_scores_consistent_with_catalog_scores(self, rng):
        model = build_ranknet("full", V, C, input_length=L, embedding_dim=E, rng=0)
        model.eval()
        x = _ids(rng)
        items = rng.integers(0, C, 6)
        with no_grad():
            full = model(x).data
            s, _ = model.score_pair(x, items, items)
        np.testing.assert_allclose(s.data, full[np.arange(6), items], rtol=1e-4, atol=1e-5)

    def test_param_count(self):
        model = build_ranknet("full", V, C, input_length=L, embedding_dim=E, rng=0)
        assert model.num_parameters() == V * E + ranknet_head_params(E, C)

    def test_item_shape_validation(self, rng):
        model = build_ranknet("full", V, C, input_length=L, embedding_dim=E, rng=0)
        user = model.user_repr(_ids(rng))
        with pytest.raises(ValueError):
            model.score_items(user, rng.integers(0, C, 3))


class TestBuilder:
    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            model_param_count("transformer", "full", V, C, E)

    def test_evaluator_roundtrip(self, rng):
        model = build_classifier("full", V, C, input_length=L, embedding_dim=E, rng=0)
        scores = predict_scores(model, _ids(rng, 12), batch_size=5)
        assert scores.shape == (12, C)
        assert model.training  # mode restored
