"""Replay harness: per-phase QoS, SLO assertion, and the acceptance run.

The acceptance test at the bottom is the PR's headline contract: one
million distinct users of drifting-Zipf session traffic replayed through
``ServeSession.load(..., workers=2)`` must meet the default
:class:`SLOSpec` and be bit-deterministic (same checksum) across two runs
with the same seed.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.artifact import save_artifact
from repro.serve.session import ServeConfig, ServeSession
from repro.traffic.model import TrafficModel, TrafficSpec
from repro.traffic.replay import replay
from repro.traffic.slo import SLOSpec, SLOViolation

VOCAB, L = 2_000, 8

SPEC = TrafficSpec(
    vocab=VOCAB, input_length=L, num_users=1_000_000, num_phases=3,
    steps_per_phase=8, head_size=96, sessions_per_step=5.0, seed=3,
)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from repro.models.builder import build_pointwise_ranker

    model = build_pointwise_ranker(
        "memcom", VOCAB, 20, input_length=L, embedding_dim=16,
        num_hash_embeddings=128, rng=0,
    )
    path = str(tmp_path_factory.mktemp("traffic-replay") / "m.artifact")
    save_artifact(model, path, bits=32)
    return path


def _session(artifact, workers=0, cache_rows=512):
    return ServeSession.load(
        artifact,
        ServeConfig(cache_rows=cache_rows or None, cache_min_count=1,
                    max_batch=32, workers=workers),
    )


class TestReplayReport:
    def test_phases_and_rollup_account_for_every_request(self, artifact):
        model = TrafficModel(SPEC)
        with _session(artifact) as session:
            report = replay(session, model)
        assert len(report.phases) == SPEC.num_phases
        assert report.requests == sum(p.requests for p in report.phases)
        assert report.requests > 0
        assert report.spec == SPEC.to_dict()

    def test_latency_percentiles_ordered_and_positive(self, artifact):
        with _session(artifact) as session:
            report = replay(session, TrafficModel(SPEC))
        for ph in report.phases + [report.overall]:
            if ph.requests == 0:
                continue
            assert 0.0 < ph.p50_ms <= ph.p95_ms <= ph.p99_ms
            assert ph.rps > 0

    def test_cached_session_reports_hit_rate_uncached_none(self, artifact):
        with _session(artifact, cache_rows=512) as session:
            cached = replay(session, TrafficModel(SPEC))
        assert cached.hit_rate is not None
        assert 0.0 < cached.hit_rate < 1.0
        with _session(artifact, cache_rows=0) as session:
            uncached = replay(session, TrafficModel(SPEC))
        assert uncached.hit_rate is None
        # Results are the same bytes either way: the cache is transparent.
        assert cached.checksum == uncached.checksum

    def test_distinct_users_accumulate_from_million_user_space(self, artifact):
        with _session(artifact) as session:
            report = replay(session, TrafficModel(SPEC))
        # ~120 sessions over the run, each a fresh uniform draw from 1e6
        # users: collisions are vanishingly rare.
        assert report.distinct_users > 30
        assert report.to_dict()["distinct_users"] == report.distinct_users

    def test_replay_is_deterministic_across_sessions(self, artifact):
        with _session(artifact) as session:
            first = replay(session, TrafficModel(SPEC))
        with _session(artifact) as session:
            second = replay(session, TrafficModel(SPEC))
        assert first.checksum == second.checksum
        assert first.requests == second.requests

    def test_different_traffic_seed_changes_checksum(self, artifact):
        with _session(artifact) as session:
            first = replay(session, TrafficModel(SPEC))
        with _session(artifact) as session:
            second = replay(session, TrafficModel(SPEC.with_seed(99)))
        assert first.checksum != second.checksum


class TestSLOWiring:
    def test_replay_raises_on_violated_slo(self, artifact):
        slo = SLOSpec(max_p99_ms=1e-9)  # nothing real can meet this
        with _session(artifact) as session:
            with pytest.raises(SLOViolation) as err:
                replay(session, TrafficModel(SPEC), slo=slo)
        assert "p99" in str(err.value)

    def test_replay_passes_generous_slo(self, artifact):
        with _session(artifact) as session:
            report = replay(
                session, TrafficModel(SPEC), slo=SLOSpec(max_p99_ms=60_000.0)
            )
        assert report.requests > 0


class TestAcceptanceMillionUserWorkers:
    """ISSUE acceptance: 1M-user drifting-Zipf traffic through a two-worker
    session meets the default SLO and is deterministic across two runs."""

    def test_workers2_meets_default_slo_and_is_deterministic(self, artifact):
        spec = replace(SPEC, steps_per_phase=6)
        assert spec.num_users == 1_000_000
        checksums = []
        for _ in range(2):
            with _session(artifact, workers=2, cache_rows=0) as session:
                report = replay(session, TrafficModel(spec), slo=SLOSpec())
            checksums.append(report.checksum)
            assert report.requests > 0
        assert checksums[0] == checksums[1]

    def test_workers_and_single_process_serve_identical_bytes(self, artifact):
        """The runtime changes the execution plane, never the math."""
        spec = replace(SPEC, steps_per_phase=4)
        with _session(artifact, workers=0, cache_rows=0) as session:
            solo = replay(session, TrafficModel(spec))
        with _session(artifact, workers=2, cache_rows=0) as session:
            multi = replay(session, TrafficModel(spec))
        assert solo.checksum == multi.checksum
