"""The continuous-deployment scenario, end to end under live traffic.

Train → export → train one more epoch → export a *delta* → replay traffic
and ``hot_swap`` onto the delta mid-stream.  The acceptance contract: zero
requests dropped, the pre-swap bytes match the old artifact, and the
post-swap bytes are *identical* to a cold load of the new artifact over
the same stream — for the single-process engine and the ``workers=2``
runtime alike.  This is the same flow the ``artifact-plane`` CI job runs.
"""

import os
import sys

import numpy as np
import pytest

from repro.artifact import load_artifact
from repro.serve.session import ServeConfig, ServeSession
from repro.traffic.model import TrafficModel, TrafficSpec
from repro.traffic.replay import replay
from repro.traffic.slo import SLOSpec

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "pipeline"))
from pipeline_helpers import tiny_spec  # noqa: E402

from repro.pipeline import TrainSession  # noqa: E402

SWAP_STEP = 8


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    """old full export + delta export one epoch later + the traffic spec."""
    td = tmp_path_factory.mktemp("cd")
    spec = tiny_spec("full", optimizer="sgd", epochs=2)
    session = TrainSession(spec)
    session.fit(stop_after_epoch=1)
    old = str(td / "old")
    session.export(old)
    session.fit()  # one more epoch
    new = str(td / "new")
    session.export_delta(new, parent=old)

    art = load_artifact(old)
    tspec = TrafficSpec(
        vocab=int(art.manifest["embedding"]["vocab_size"]),
        input_length=art.input_length, num_users=1_000, num_phases=2,
        steps_per_phase=8, head_size=24, sessions_per_step=3.0, seed=13,
    )
    return old, new, tspec


class TestSwapUnderLoad:
    def test_delta_swap_serves_new_bytes_zero_drops(self, deployment):
        old, new, tspec = deployment
        with ServeSession.load(new) as cold:
            want = replay(cold, TrafficModel(tspec), swap_step=SWAP_STEP)
        with ServeSession.load(old) as cold_old:
            before = replay(cold_old, TrafficModel(tspec), swap_step=SWAP_STEP)
        with ServeSession.load(old) as session:
            swapped = replay(
                session, TrafficModel(tspec), swap_path=new, swap_step=SWAP_STEP
            )
            assert session.swaps == 1
        # every request answered (replay raises on drops), the split halves
        # each bit-identical to the artifact that served them
        assert swapped.checksum_pre == before.checksum_pre
        assert swapped.checksum_post == want.checksum_post
        assert swapped.checksum != before.checksum
        assert swapped.requests == before.requests

    def test_workers_runtime_swaps_under_load(self, deployment):
        old, new, tspec = deployment
        with ServeSession.load(new) as cold:
            want = replay(cold, TrafficModel(tspec), swap_step=SWAP_STEP)
        config = ServeConfig(workers=2)
        with ServeSession.load(old, config) as session:
            swapped = replay(
                session, TrafficModel(tspec), swap_path=new, swap_step=SWAP_STEP
            )
            assert session.runtime.stats()["hot_swaps"] == 1
        assert swapped.checksum_post == want.checksum_post

    def test_deadline_mode_swap(self, deployment):
        old, new, tspec = deployment
        with ServeSession.load(new) as cold:
            want = replay(cold, TrafficModel(tspec), swap_step=SWAP_STEP)
        config = ServeConfig(max_delay_ms=1.0, max_batch=16)
        with ServeSession.load(old, config) as session:
            swapped = replay(
                session, TrafficModel(tspec), swap_path=new, swap_step=SWAP_STEP
            )
        assert swapped.checksum_post == want.checksum_post

    def test_slo_holds_across_the_swap(self, deployment):
        old, new, tspec = deployment
        with ServeSession.load(old) as session:
            report = replay(
                session, TrafficModel(tspec),
                slo=SLOSpec(max_p99_ms=5_000.0),
                swap_path=new, swap_step=SWAP_STEP,
            )
        assert report.requests > 0

    def test_swap_path_requires_swap_step(self, deployment):
        old, new, tspec = deployment
        with ServeSession.load(old) as session:
            with pytest.raises(ValueError, match="swap_step"):
                replay(session, TrafficModel(tspec), swap_path=new)

    def test_swap_step_beyond_stream_raises(self, deployment):
        old, new, tspec = deployment
        with ServeSession.load(old) as session:
            with pytest.raises(RuntimeError, match="beyond the end"):
                replay(
                    session, TrafficModel(tspec),
                    swap_path=new, swap_step=10_000,
                )
