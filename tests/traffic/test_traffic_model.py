"""TrafficModel determinism, drift, and session-structure contracts.

The load-bearing promise is determinism: a :class:`TrafficSpec` is a pure
description and the stream a pure function of it, so a recorded
``BENCH_traffic.json`` names a workload any machine can regenerate
bit-for-bit.  The strongest test here spawns a *separate Python process*
and compares SHA-256 stream checksums — same seed must survive process
boundaries, different seeds must not collide.
"""

import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.traffic.model import TrafficModel, TrafficSpec

SPEC = TrafficSpec(
    vocab=5_000, input_length=8, num_users=1_000_000, num_phases=3,
    steps_per_phase=12, head_size=128, sessions_per_step=6.0, seed=11,
)


def _checksum_in_subprocess(spec: TrafficSpec) -> str:
    """Recompute the stream checksum in a fresh interpreter."""
    src = Path(__file__).resolve().parents[2] / "src"
    code = (
        "import json, sys\n"
        "from repro.traffic.model import TrafficModel, TrafficSpec\n"
        "spec = TrafficSpec(**json.loads(sys.argv[1]))\n"
        "print(TrafficModel(spec).checksum())\n"
    )
    import json

    out = subprocess.run(
        [sys.executable, "-c", code, json.dumps(spec.to_dict())],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
    )
    assert out.returncode == 0, out.stderr
    return out.stdout.strip()


class TestDeterminism:
    def test_same_seed_same_process_bit_identical(self):
        a, b = TrafficModel(SPEC), TrafficModel(SPEC)
        for sa, sb in zip(a.stream(), b.stream()):
            assert (sa.phase, sa.step, sa.burst) == (sb.phase, sb.step, sb.burst)
            np.testing.assert_array_equal(sa.requests, sb.requests)
            np.testing.assert_array_equal(sa.users, sb.users)

    def test_same_seed_across_processes_bit_identical(self):
        """The cross-process fingerprint: a fresh interpreter reproduces the
        exact stream (PCG64 is platform- and process-independent)."""
        assert TrafficModel(SPEC).checksum() == _checksum_in_subprocess(SPEC)

    def test_different_seeds_differ(self):
        assert TrafficModel(SPEC).checksum() != TrafficModel(
            SPEC.with_seed(SPEC.seed + 1)
        ).checksum()

    def test_checksum_is_stream_pure(self):
        """checksum() does not perturb or depend on prior stream() calls."""
        model = TrafficModel(SPEC)
        first = model.checksum()
        list(model.stream())
        assert model.checksum() == first


class TestDrift:
    def test_phase_zero_head_is_identity_ranks(self):
        model = TrafficModel(SPEC)
        np.testing.assert_array_equal(
            model.head_ids(0), np.arange(SPEC.head_size)
        )

    def test_phases_produce_measurably_different_heads(self):
        """Successive phases must swap ~drift_fraction of the head: overlap
        between any two phase head-sets ≈ 1 - drift_fraction."""
        model = TrafficModel(SPEC)
        heads = [set(model.head_ids(p).tolist()) for p in range(SPEC.num_phases)]
        for a in range(SPEC.num_phases):
            for b in range(a + 1, SPEC.num_phases):
                overlap = len(heads[a] & heads[b]) / SPEC.head_size
                # drift_fraction=0.6 → expect ~0.4 overlap; the fresh ids of
                # two phases are independent draws so allow wide slop, but
                # the heads must be far from identical and far from disjoint.
                assert 0.1 < overlap < 0.75, (a, b, overlap)

    def test_phase_map_is_a_permutation(self):
        model = TrafficModel(SPEC)
        for p in range(SPEC.num_phases):
            mapped = model._phase_maps[p]
            assert np.array_equal(np.sort(mapped), np.arange(SPEC.vocab))

    def test_zero_drift_never_remaps(self):
        spec = replace(SPEC, drift_fraction=0.0)
        model = TrafficModel(spec)
        for p in range(spec.num_phases):
            np.testing.assert_array_equal(
                model.head_ids(p), np.arange(spec.head_size)
            )


class TestStreamStructure:
    def test_ids_and_users_in_range(self):
        model = TrafficModel(SPEC)
        seen_users = set()
        total = 0
        for step in model.stream():
            assert step.requests.shape[1] == SPEC.input_length
            assert step.requests.dtype == np.int64
            if step.requests.size:
                assert step.requests.min() >= 0
                assert step.requests.max() < SPEC.vocab
                assert step.users.min() >= 0
                assert step.users.max() < SPEC.num_users
            assert step.users.shape[0] == step.requests.shape[0]
            seen_users.update(step.users.tolist())
            total += step.requests.shape[0]
        assert total > 0
        # Million-user space: sessions land on (almost) all-distinct users.
        assert len(seen_users) > 50

    def test_bursts_land_on_schedule_and_inflate_arrivals(self):
        model = TrafficModel(SPEC)
        burst_steps = [s.step for s in model.stream() if s.burst]
        assert burst_steps == [
            s for s in range(model.num_steps) if (s + 1) % SPEC.burst_every == 0
        ]
        # Burst steps admit ~burst_factor more sessions, so queue depth jumps.
        sizes = {s.step: s.requests.shape[0] for s in model.stream()}
        burst_mean = np.mean([sizes[s] for s in burst_steps])
        calm_mean = np.mean(
            [n for s, n in sizes.items() if s not in set(burst_steps)]
        )
        assert burst_mean > calm_mean

    def test_locality_concentrates_ids_within_sessions(self):
        """With locality=0.95 a request re-draws from a 12-item working set;
        with locality=0 it samples the global Zipf — distinct-ids-per-request
        must be far lower in the local regime."""

        def mean_distinct(locality):
            spec = replace(SPEC, locality=locality, input_length=12)
            counts = [
                len(np.unique(row))
                for step in TrafficModel(spec).stream()
                for row in step.requests
            ]
            return float(np.mean(counts))

        assert mean_distinct(0.95) < mean_distinct(0.0) - 1.0

    def test_num_steps_matches_stream_length(self):
        model = TrafficModel(SPEC)
        assert model.num_steps == SPEC.num_phases * SPEC.steps_per_phase
        assert sum(1 for _ in model.stream()) == model.num_steps


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vocab": 0},
            {"input_length": 0},
            {"num_users": -1},
            {"alpha": -0.5},
            {"drift_fraction": 1.5},
            {"head_size": 5_000},  # == vocab: no tail to draw fresh ids from
            {"sessions_per_step": 0.0},
            {"burst_factor": 0.5},
            {"locality": -0.1},
            {"steps_per_phase": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            replace(SPEC, **kwargs).validate()

    def test_to_dict_round_trips(self):
        assert TrafficSpec(**SPEC.to_dict()) == SPEC
