"""Property: admission TTL decay re-learns a drifted Zipf head; sticky can't.

The scenario DESIGN.md §8 built ``count_ttl`` for, replayed end to end with
:class:`TrafficModel`'s drift as the ground truth.  A cache sized exactly to
the head serves three traffic components after the head drifts:

* the **new head**, hot — a large random subset recurs every round;
* **stale old-head ids**, trickling back one batch at a time with a
  rotation period *longer than the decay window*, so each reappearance is
  rare (the signature of yesterday's traffic);
* one-hit-wonder **noise** from the tail.

Under TTL decay the old head's admission counters are forgotten, so every
stale reappearance is turned away (count 1 < min_count) and never evicts a
new-head row: the new head reaches ≥90% residency within one decay window
and stays there.  A sticky cache (no TTL) remembers the old head's
popularity forever — each stale id is instantly re-admitted, evicting
live rows, and new-head residency provably stalls measurably below the
decayed cache's.  Hypothesis drives the seed: the property holds for the
drift realization, not one lucky permutation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.cache import LRUCache
from repro.traffic.model import TrafficModel, TrafficSpec

HEAD, VOCAB, TTL = 64, 4_000, 6
WARMUP_ROUNDS, DRIFT_ROUNDS = 12, 24
HOT_PER_ROUND = 48  # per-round new-head coverage (rest stays evictable)
STALE_PER_ROUND = 8  # rotation period 64/8 = 8 rounds > TTL: decay wins


def _rows(ids, dim=4):
    ids = np.asarray(ids, dtype=np.int64)
    return np.repeat(ids[:, None], dim, axis=1).astype(np.float32)


def _serve_round(cache, ids):
    """The engine's cache protocol: lookup all, insert the unique misses."""
    ids = np.asarray(ids, dtype=np.int64)
    slots = cache.lookup(ids)
    miss = np.unique(ids[slots < 0])
    if miss.size:
        cache.insert(miss, _rows(miss))


def _residency(cache, ids) -> float:
    """Fraction of ``ids`` resident, read without perturbing recency/stats."""
    return float((cache._map[ids] >= 0).mean())


def _drive(seed: int, count_ttl: int | None) -> tuple[float, float]:
    """Warm an admission-gated cache on the old head, then drift.

    Returns new-head residency (one decay window into the drift, at the
    end).  ``count_ttl=None`` is the sticky control.
    """
    spec = TrafficSpec(
        vocab=VOCAB, input_length=4, head_size=HEAD, drift_fraction=1.0,
        num_phases=2, steps_per_phase=8, seed=seed,
    )
    model = TrafficModel(spec)
    old_head, new_head = model.head_ids(0), model.head_ids(1)
    assert not set(old_head.tolist()) & set(new_head.tolist())

    cache = LRUCache(
        HEAD, 4, id_range=VOCAB, min_count=2, count_ttl=count_ttl
    )
    rng = np.random.default_rng(seed + 1)
    for _ in range(WARMUP_ROUNDS):
        _serve_round(cache, old_head)
    assert _residency(cache, old_head) == 1.0  # warm cache = full old head

    at_one_window = None
    for r in range(DRIFT_ROUNDS):
        hot = rng.choice(new_head, size=HOT_PER_ROUND, replace=False)
        stale = old_head[(np.arange(STALE_PER_ROUND) + STALE_PER_ROUND * r) % HEAD]
        noise = rng.integers(2 * HEAD, VOCAB, size=4)
        _serve_round(cache, np.concatenate([hot, stale, noise]))
        if r + 1 == TTL:
            at_one_window = _residency(cache, new_head)
    return at_one_window, _residency(cache, new_head)


class TestTTLDecayUnderDrift:
    @given(seed=st.integers(min_value=0, max_value=199))
    @settings(max_examples=10, deadline=None)
    def test_decayed_readmits_new_head_sticky_provably_does_not(self, seed):
        decayed_early, decayed_final = _drive(seed, count_ttl=TTL)
        _, sticky_final = _drive(seed, count_ttl=None)

        # The headline property: within one decay window of the drift the
        # TTL cache already holds >= 90% of the new head...
        assert decayed_early >= 0.90, (seed, decayed_early)
        assert decayed_final >= 0.95, (seed, decayed_final)
        # ...while the sticky cache keeps re-admitting stale old-head ids
        # (instant admission off immortal counters), churning live rows out.
        assert sticky_final <= 0.875, (seed, sticky_final)
        assert decayed_final - sticky_final >= 0.10

    @given(seed=st.integers(min_value=0, max_value=199))
    @settings(max_examples=5, deadline=None)
    def test_sticky_failure_is_eviction_pressure_not_admission_lag(self, seed):
        """Pin the mechanism: the sticky cache admits stale ids (rejected
        under decay), and that is where its evictions come from."""
        spec = TrafficSpec(
            vocab=VOCAB, input_length=4, head_size=HEAD, drift_fraction=1.0,
            num_phases=2, steps_per_phase=8, seed=seed,
        )
        model = TrafficModel(spec)
        old_head, new_head = model.head_ids(0), model.head_ids(1)
        caches = {
            ttl: LRUCache(HEAD, 4, id_range=VOCAB, min_count=2, count_ttl=ttl)
            for ttl in (TTL, None)
        }
        rng_seed = np.random.default_rng(seed + 1)
        streams = {}
        for _ in range(WARMUP_ROUNDS):
            for cache in caches.values():
                _serve_round(cache, old_head)
        for r in range(DRIFT_ROUNDS):
            hot = rng_seed.choice(new_head, size=HOT_PER_ROUND, replace=False)
            stale = old_head[
                (np.arange(STALE_PER_ROUND) + STALE_PER_ROUND * r) % HEAD
            ]
            streams[r] = np.concatenate([hot, stale])
            for cache in caches.values():
                _serve_round(cache, streams[r])
        decayed, sticky = caches[TTL], caches[None]
        # Decay turns stale+noise attempts away; sticky admits the stale ids.
        assert decayed.rejected > sticky.rejected
        # Both evict while the new head displaces the old; the sticky cache
        # keeps evicting forever because admitted stale ids need victims.
        assert sticky.evictions > decayed.evictions
        assert _residency(sticky, old_head) > _residency(decayed, old_head)
