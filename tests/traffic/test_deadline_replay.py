"""Deadline-flush replay: ``Batcher(max_delay_ms)`` drives batching, the
books still balance.

With a batching deadline the harness stops force-flushing every arrival
step — batches fill or age out on the batcher's own clock, straddling step
boundaries.  The regression contract: the determinism checksum is
*byte-identical* to per-step-flush mode (same stream, same predictions,
same hash order), every request is accounted exactly once, and nothing is
dropped.
"""

import numpy as np
import pytest

from repro.artifact import save_artifact
from repro.serve.session import ServeConfig, ServeSession
from repro.traffic.model import TrafficModel, TrafficSpec
from repro.traffic.replay import replay

VOCAB, L = 500, 6

SPEC = TrafficSpec(
    vocab=VOCAB, input_length=L, num_users=2_000, num_phases=2,
    steps_per_phase=10, head_size=32, sessions_per_step=4.0, seed=11,
)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from repro.models.builder import build_pointwise_ranker

    model = build_pointwise_ranker(
        "full", VOCAB, 12, input_length=L, embedding_dim=8, rng=0,
    )
    path = str(tmp_path_factory.mktemp("deadline") / "m.artifact")
    save_artifact(model, path)
    return path


class TestDeadlineReplay:
    def test_checksum_identical_to_per_step_flush(self, artifact):
        with ServeSession.load(artifact) as session:
            stepwise = replay(session, TrafficModel(SPEC))
        with ServeSession.load(
            artifact, ServeConfig(max_delay_ms=1.0, max_batch=16)
        ) as session:
            deadline = replay(session, TrafficModel(SPEC))
        assert deadline.checksum == stepwise.checksum
        assert deadline.requests == stepwise.requests
        assert deadline.requests == sum(p.requests for p in deadline.phases)

    def test_deadline_batches_actually_coalesce(self, artifact):
        """The deadline path must be exercised, not silently degenerate to
        one flush per step: the batcher's auto-flush counter moves."""
        with ServeSession.load(
            artifact, ServeConfig(max_delay_ms=0.0, max_batch=8)
        ) as session:
            replay(session, TrafficModel(SPEC))
            assert session.batcher.auto_flushes > 0

    def test_cached_deadline_replay_same_bytes(self, artifact):
        with ServeSession.load(artifact) as session:
            want = replay(session, TrafficModel(SPEC)).checksum
        config = ServeConfig(
            max_delay_ms=1.0, cache_rows=64, cache_min_count=1, max_batch=16
        )
        with ServeSession.load(artifact, config) as session:
            got = replay(session, TrafficModel(SPEC))
        assert got.checksum == want

    def test_report_has_no_split_checksums_by_default(self, artifact):
        with ServeSession.load(artifact) as session:
            report = replay(session, TrafficModel(SPEC))
        assert report.swap_step is None
        assert report.checksum_pre is None
        assert "checksum_pre" not in report.to_dict()
