"""SLOSpec objectives and the perf-trajectory gate, end to end.

The gate's acceptance criterion from the issue is exercised literally: a
copy of the *committed* ``BENCH_traffic.json`` with one scenario's p99
doctored +20% must make ``benchmarks/gate.py`` exit nonzero, and an
identical copy must pass.  ``compare()`` unit tests pin the individual
rules (tolerance boundary, rps direction, missing scenarios, improvements,
calibration normalization).
"""

import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.traffic.gate import DEFAULT_TOLERANCE, compare, load_report
from repro.traffic.replay import PhaseReport, ReplayReport
from repro.traffic.slo import SLOSpec, SLOViolation

REPO = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO / "BENCH_traffic.json"
GATE = REPO / "benchmarks" / "gate.py"


def _phase(phase=0, p99=2.0, requests=100, hit=0.8):
    return PhaseReport(
        phase=phase, requests=requests, batches=10, distinct_users=50,
        elapsed_s=0.01, p50_ms=p99 / 2, p95_ms=p99 * 0.9, p99_ms=p99,
        rps=requests / 0.01, hit_rate=hit,
    )


def _report(p99=2.0, hit=0.8, num_phases=2):
    phases = [_phase(phase=p, p99=p99, hit=hit) for p in range(num_phases)]
    return ReplayReport(
        phases=phases, overall=_phase(phase=-1, p99=p99, hit=hit),
        checksum="0" * 64,
    )


class TestSLOSpec:
    def test_passing_report_returns_no_violations(self):
        assert SLOSpec(max_p99_ms=10.0).check(_report(p99=2.0)) == []

    def test_overall_and_per_phase_p99_checked(self):
        report = ReplayReport(
            phases=[_phase(phase=0, p99=1.0), _phase(phase=1, p99=50.0)],
            overall=_phase(phase=-1, p99=5.0), checksum="0" * 64,
        )
        violations = SLOSpec(max_p99_ms=10.0).check(report)
        assert len(violations) == 1 and "phase 1" in violations[0]

    def test_min_hit_rate_enforced_and_requires_a_cache(self):
        slo = SLOSpec(min_hit_rate=0.9)
        assert any("hit rate" in v for v in slo.check(_report(hit=0.5)))
        assert any("no cache" in v for v in slo.check(_report(hit=None)))
        assert slo.check(_report(hit=0.95)) == []

    def test_baseline_regression_objectives(self):
        slo = SLOSpec(max_p99_ms=None)
        base = {"p99_ms": 2.0, "rps": 10_000.0}
        ok = _report(p99=2.2)  # +10% p99: inside the 15% budget
        assert slo.check(ok, baseline=base) == []
        bad = _report(p99=2.5)  # +25% p99
        assert any("regressed" in v for v in slo.check(bad, baseline=base))

    def test_assert_ok_raises_with_every_violation(self):
        with pytest.raises(SLOViolation) as err:
            SLOSpec(max_p99_ms=0.001, min_hit_rate=0.99).assert_ok(
                _report(p99=2.0, hit=0.5)
            )
        # overall + 2 phases over p99, plus the hit-rate line
        assert len(err.value.violations) == 4

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_p99_ms": 0.0}, {"min_hit_rate": 1.5}, {"max_p99_regression": -0.1}],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            replace(SLOSpec(), **kwargs).validate()


def _doc(p99=2.0, rps=50_000.0, cal=None, key="memcom-fp32-w0"):
    doc = {"schema": 1, "scenarios": {key: {"p99_ms": p99, "rps": rps}}}
    if cal is not None:
        doc["calibration_ms"] = cal
    return doc


class TestCompare:
    def test_identical_docs_pass(self):
        doc = _doc()
        result = compare(doc, doc)
        assert result.ok and result.rows[0][-1] == "ok"

    def test_twenty_percent_p99_regression_fails(self):
        result = compare(_doc(p99=2.4), _doc(p99=2.0))
        assert not result.ok
        assert any("p99 regressed" in v for v in result.violations)

    def test_ten_percent_p99_regression_passes(self):
        assert compare(_doc(p99=2.2), _doc(p99=2.0)).ok

    def test_throughput_drop_fails_rise_passes(self):
        assert not compare(_doc(rps=40_000.0), _doc(rps=50_000.0)).ok
        assert compare(_doc(rps=80_000.0), _doc(rps=50_000.0)).ok

    def test_improvements_never_fail(self):
        assert compare(_doc(p99=0.5, rps=500_000.0), _doc()).ok

    def test_missing_scenario_is_a_violation(self):
        fresh = {"schema": 1, "scenarios": {}}
        result = compare(fresh, _doc())
        assert not result.ok
        assert any("missing" in v for v in result.violations)

    def test_extra_fresh_scenarios_are_ignored(self):
        fresh = _doc()
        fresh["scenarios"]["new-config-w0"] = {"p99_ms": 99.0, "rps": 1.0}
        assert compare(fresh, _doc()).ok

    def test_calibration_normalization_forgives_a_slower_machine(self):
        # Fresh machine is 2x slower (calibration 2x): raw p99 doubled and
        # rps halved, but normalized values are identical — no regression.
        fresh = _doc(p99=4.0, rps=25_000.0, cal=1.0)
        base = _doc(p99=2.0, rps=50_000.0, cal=0.5)
        assert compare(fresh, base).ok
        assert not compare(fresh, base, normalize=False).ok

    def test_normalization_still_catches_real_regressions(self):
        # Same machine speed, code actually 30% slower.
        fresh = _doc(p99=2.6, rps=38_000.0, cal=0.5)
        base = _doc(p99=2.0, rps=50_000.0, cal=0.5)
        assert not compare(fresh, base).ok

    def test_custom_tolerance(self):
        assert compare(_doc(p99=2.4), _doc(p99=2.0), tolerance=0.25).ok
        assert not compare(_doc(p99=2.2), _doc(p99=2.0), tolerance=0.05).ok

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare(_doc(), _doc(), tolerance=-0.1)

    def test_smoke_run_gates_against_the_smoke_section(self):
        # A full record embeds the grid at smoke duration; a fresh smoke
        # run must compare against that section (short runs have a larger
        # warm-up fraction — raw rps below a full run is not a regression).
        baseline = _doc(p99=2.0, rps=100_000.0)
        baseline["smoke_scenarios"] = {
            "memcom-fp32-w0": {"p99_ms": 2.0, "rps": 70_000.0}
        }
        fresh = _doc(p99=2.0, rps=68_000.0)
        fresh["smoke"] = True
        assert compare(fresh, baseline).ok  # vs 70k smoke, not 100k full
        fresh["smoke"] = False
        assert not compare(fresh, baseline).ok  # full-vs-full: -32% rps

    def test_smoke_run_without_smoke_section_uses_full(self):
        fresh = _doc(p99=2.4)
        fresh["smoke"] = True
        assert not compare(fresh, _doc(p99=2.0)).ok

    def test_load_report_rejects_non_bench_documents(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"not": "a bench"}))
        with pytest.raises(ValueError):
            load_report(str(path))
        assert DEFAULT_TOLERANCE == 0.15


def _run_gate(fresh_path, baseline_path):
    return subprocess.run(
        [sys.executable, str(GATE), str(fresh_path),
         "--baseline", str(baseline_path), "--no-normalize"],
        capture_output=True, text=True, timeout=120,
    )


class TestGateScript:
    """ISSUE acceptance: benchmarks/gate.py vs the committed perf record."""

    def test_committed_bench_document_exists_with_enough_scenarios(self):
        doc = load_report(str(BENCH_JSON))
        assert len(doc["scenarios"]) >= 6
        assert doc["smoke"] is False
        for entry in doc["scenarios"].values():
            assert entry["p99_ms"] > 0 and entry["rps"] > 0
            assert len(entry["phases"]) == doc["spec"]["num_phases"]
        # The embedded smoke-duration section CI smoke runs gate against.
        assert set(doc["smoke_scenarios"]) == set(doc["scenarios"])

    def test_identical_copy_passes(self, tmp_path):
        fresh = tmp_path / "fresh.json"
        fresh.write_text(BENCH_JSON.read_text())
        out = _run_gate(fresh, BENCH_JSON)
        assert out.returncode == 0, out.stdout + out.stderr
        assert "gate passed" in out.stdout

    def test_doctored_twenty_percent_p99_regression_fails(self, tmp_path):
        doc = json.loads(BENCH_JSON.read_text())
        key = sorted(doc["scenarios"])[0]
        doc["scenarios"][key]["p99_ms"] *= 1.20
        fresh = tmp_path / "doctored.json"
        fresh.write_text(json.dumps(doc))
        out = _run_gate(fresh, BENCH_JSON)
        assert out.returncode == 1, out.stdout + out.stderr
        assert "p99 regressed" in out.stdout

    def test_doctored_throughput_collapse_fails(self, tmp_path):
        doc = json.loads(BENCH_JSON.read_text())
        key = sorted(doc["scenarios"])[-1]
        doc["scenarios"][key]["rps"] *= 0.5
        fresh = tmp_path / "doctored.json"
        fresh.write_text(json.dumps(doc))
        out = _run_gate(fresh, BENCH_JSON)
        assert out.returncode == 1
        assert "throughput regressed" in out.stdout

    def test_dropped_scenario_fails(self, tmp_path):
        doc = json.loads(BENCH_JSON.read_text())
        del doc["scenarios"][sorted(doc["scenarios"])[0]]
        fresh = tmp_path / "shrunk.json"
        fresh.write_text(json.dumps(doc))
        out = _run_gate(fresh, BENCH_JSON)
        assert out.returncode == 1
        assert "missing" in out.stdout

    def test_unreadable_documents_exit_2(self, tmp_path):
        missing = tmp_path / "nope.json"
        out = _run_gate(missing, BENCH_JSON)
        assert out.returncode == 2
        assert "error" in out.stderr
