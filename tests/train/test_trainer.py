"""Training loops."""

import numpy as np
import pytest

from repro.models.builder import build_classifier, build_pointwise_ranker, build_ranknet
from repro.train.trainer import History, TrainConfig, Trainer


def _tiny(tiny_dataset):
    spec = tiny_dataset.spec
    return spec.input_vocab, spec.output_vocab, spec.input_length


class TestConfig:
    def test_defaults_valid(self):
        TrainConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            TrainConfig(early_stopping_patience=0)


class TestFitClassification:
    def test_loss_decreases(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        spec = ds.spec
        model = build_classifier(
            "memcom",
            spec.input_vocab,
            spec.output_vocab,
            input_length=spec.input_length,
            embedding_dim=16,
            rng=0,
            num_hash_embeddings=spec.input_vocab // 8,
        )
        cfg = TrainConfig(epochs=4, batch_size=64, lr=3e-3, seed=0)
        hist = Trainer(cfg).fit(model, ds.x_train, ds.y_train, ds.x_eval, ds.y_eval)
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert len(hist.val_metric) == len(hist.train_loss)
        assert hist.metric_name == "accuracy"

    def test_model_left_in_eval_mode(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        spec = ds.spec
        model = build_classifier(
            "full", spec.input_vocab, spec.output_vocab,
            input_length=spec.input_length, embedding_dim=8, rng=0,
        )
        Trainer(TrainConfig(epochs=1, batch_size=64)).fit(model, ds.x_train, ds.y_train)
        assert not model.training

    def test_no_validation_yields_nan_metric(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        spec = ds.spec
        model = build_classifier(
            "full", spec.input_vocab, spec.output_vocab,
            input_length=spec.input_length, embedding_dim=8, rng=0,
        )
        hist = Trainer(TrainConfig(epochs=1, batch_size=64)).fit(model, ds.x_train, ds.y_train)
        assert np.isnan(hist.val_metric[0])

    def test_unknown_task_rejected(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        model = build_classifier(
            "full", ds.spec.input_vocab, ds.spec.output_vocab,
            input_length=ds.spec.input_length, embedding_dim=8, rng=0,
        )
        with pytest.raises(ValueError):
            Trainer().fit(model, ds.x_train, ds.y_train, task="regression")

    def test_batch_size_larger_than_data_errors(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        model = build_classifier(
            "full", ds.spec.input_vocab, ds.spec.output_vocab,
            input_length=ds.spec.input_length, embedding_dim=8, rng=0,
        )
        with pytest.raises(ValueError, match="no batches"):
            Trainer(TrainConfig(epochs=1, batch_size=10_000)).fit(model, ds.x_train, ds.y_train)


class TestEarlyStopping:
    def test_stops_and_restores_best(self, tiny_dataset):
        ds = tiny_dataset
        spec = ds.spec
        model = build_pointwise_ranker(
            "full", spec.input_vocab, spec.output_vocab,
            input_length=spec.input_length, embedding_dim=8, rng=0,
        )
        cfg = TrainConfig(epochs=30, batch_size=64, lr=5e-2, seed=0, early_stopping_patience=2)
        hist = Trainer(cfg).fit(
            model, ds.x_train, ds.y_train, ds.x_eval, ds.y_eval, task="ranking"
        )
        assert len(hist.val_metric) < 30  # stopped early at this aggressive lr
        assert hist.best_epoch >= 0
        assert hist.best_metric == max(hist.val_metric)


class TestPairwise:
    def test_ranknet_loss_decreases(self, tiny_spec):
        from repro.data.synthetic import generate_pairwise

        pw = generate_pairwise(tiny_spec, np.random.default_rng(2))
        model = build_ranknet(
            "memcom",
            tiny_spec.input_vocab,
            tiny_spec.output_vocab,
            input_length=tiny_spec.input_length,
            embedding_dim=16,
            rng=0,
            num_hash_embeddings=tiny_spec.input_vocab // 8,
        )
        cfg = TrainConfig(epochs=3, batch_size=64, lr=3e-3, seed=0)
        hist = Trainer(cfg).fit_pairwise(
            model, pw.x_train, pw.pos_train, pw.neg_train, pw.x_eval, pw.pos_eval
        )
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert hist.metric_name == "ndcg"

    def test_pairwise_accuracy_above_chance(self, tiny_spec):
        """After training, the preferred item should outscore the other in
        well over half the evaluation pairs."""
        from repro.data.synthetic import generate_pairwise
        from repro.nn.tensor import no_grad

        pw = generate_pairwise(tiny_spec, np.random.default_rng(2))
        model = build_ranknet(
            "full", tiny_spec.input_vocab, tiny_spec.output_vocab,
            input_length=tiny_spec.input_length, embedding_dim=16, rng=0,
        )
        cfg = TrainConfig(epochs=12, batch_size=64, lr=5e-3, seed=0)
        Trainer(cfg).fit_pairwise(model, pw.x_train, pw.pos_train, pw.neg_train)
        model.eval()
        with no_grad():
            s_pos, s_neg = model.score_pair(pw.x_eval, pw.pos_eval, pw.neg_eval)
        frac = float((s_pos.data > s_neg.data).mean())
        assert frac > 0.55


class TestUnifiedFit:
    def test_pairwise_via_fit_matches_fit_pairwise(self, tiny_spec):
        """fit(task='pairwise') and the fit_pairwise shim are one loop."""
        from repro.data.synthetic import generate_pairwise

        pw = generate_pairwise(tiny_spec, np.random.default_rng(2))

        def build():
            return build_ranknet(
                "memcom", tiny_spec.input_vocab, tiny_spec.output_vocab,
                input_length=tiny_spec.input_length, embedding_dim=8, rng=0,
                num_hash_embeddings=tiny_spec.input_vocab // 8,
            )

        cfg = TrainConfig(epochs=2, batch_size=64, lr=3e-3, seed=0)
        m1, m2 = build(), build()
        h1 = Trainer(cfg).fit(
            m1, pw.x_train, pw.pos_train, task="pairwise", neg=pw.neg_train
        )
        h2 = Trainer(cfg).fit_pairwise(m2, pw.x_train, pw.pos_train, pw.neg_train)
        assert h1.train_loss == h2.train_loss
        for k, v in m1.state_dict().items():
            assert np.array_equal(v, m2.state_dict()[k]), k

    def test_pairwise_requires_neg(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        model = build_classifier(
            "full", ds.spec.input_vocab, ds.spec.output_vocab,
            input_length=ds.spec.input_length, embedding_dim=8, rng=0,
        )
        with pytest.raises(ValueError, match="neg"):
            Trainer().fit(model, ds.x_train, ds.y_train, task="pairwise")

    def test_pointwise_alias(self, tiny_dataset):
        ds = tiny_dataset
        model = build_pointwise_ranker(
            "full", ds.spec.input_vocab, ds.spec.output_vocab,
            input_length=ds.spec.input_length, embedding_dim=8, rng=0,
        )
        hist = Trainer(TrainConfig(epochs=1, batch_size=64)).fit(
            model, ds.x_train, ds.y_train, task="pointwise"
        )
        assert hist.metric_name == "ndcg"

    def test_steps_and_seconds_recorded(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        model = build_classifier(
            "full", ds.spec.input_vocab, ds.spec.output_vocab,
            input_length=ds.spec.input_length, embedding_dim=8, rng=0,
        )
        hist = Trainer(TrainConfig(epochs=2, batch_size=64)).fit(
            model, ds.x_train, ds.y_train
        )
        assert hist.steps == 2 * (len(ds.x_train) // 64)
        assert hist.seconds > 0


class TestHistory:
    def test_best_metric_requires_records(self):
        with pytest.raises(ValueError):
            History().best_metric

    def test_optimizer_variants_run(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        for opt in ("sgd", "adagrad"):
            model = build_classifier(
                "full", ds.spec.input_vocab, ds.spec.output_vocab,
                input_length=ds.spec.input_length, embedding_dim=8, rng=0,
            )
            cfg = TrainConfig(epochs=1, batch_size=64, optimizer=opt, lr=0.01)
            hist = Trainer(cfg).fit(model, ds.x_train, ds.y_train)
            assert len(hist.train_loss) == 1
