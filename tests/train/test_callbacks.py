"""Trainer callbacks: checkpointing, CSV curves, metric-target stopping."""

import csv

import numpy as np
import pytest

from repro.models.builder import build_classifier
from repro.nn.serialization import load_npz
from repro.train.callbacks import (
    Callback,
    CheckpointBest,
    CSVLogger,
    EpochEvent,
    LambdaCallback,
    StopOnMetric,
)
from repro.train.trainer import TrainConfig, Trainer


def _model(spec):
    return build_classifier(
        "full", spec.input_vocab, spec.output_vocab,
        input_length=spec.input_length, embedding_dim=8, rng=0,
    )


def _fit(ds, callbacks, epochs=3, with_val=True):
    model = _model(ds.spec)
    cfg = TrainConfig(epochs=epochs, batch_size=64, lr=3e-3, seed=0)
    args = (ds.x_eval, ds.y_eval) if with_val else (None, None)
    hist = Trainer(cfg, callbacks=callbacks).fit(model, ds.x_train, ds.y_train, *args)
    return model, hist


class TestCheckpointBest:
    def test_saves_and_restores(self, tiny_classification_dataset, tmp_path):
        ds = tiny_classification_dataset
        path = str(tmp_path / "best.npz")
        cb = CheckpointBest(path, verbose=False)
        model, _ = _fit(ds, [cb])
        assert cb.saves >= 1
        fresh = _model(ds.spec)
        load_npz(fresh, path)  # restoring must not raise

    def test_falls_back_to_train_loss_without_validation(
        self, tiny_classification_dataset, tmp_path
    ):
        ds = tiny_classification_dataset
        cb = CheckpointBest(str(tmp_path / "b.npz"), verbose=False)
        _fit(ds, [cb], with_val=False)
        assert cb.saves >= 1


class TestCSVLogger:
    def test_writes_one_row_per_epoch(self, tiny_classification_dataset, tmp_path):
        ds = tiny_classification_dataset
        path = str(tmp_path / "curve.csv")
        _fit(ds, [CSVLogger(path)], epochs=3)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 3
        assert rows[0]["metric_name"] == "accuracy"
        assert float(rows[-1]["train_loss"]) < float(rows[0]["train_loss"])

    def test_refitting_truncates(self, tiny_classification_dataset, tmp_path):
        ds = tiny_classification_dataset
        path = str(tmp_path / "curve.csv")
        logger = CSVLogger(path)
        _fit(ds, [logger], epochs=2)
        _fit(ds, [logger], epochs=1)
        with open(path) as f:
            assert len(list(csv.DictReader(f))) == 1


class TestStopOnMetric:
    def test_stops_when_target_reached(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        cb = StopOnMetric(target=0.0)  # any accuracy satisfies this
        _, hist = _fit(ds, [cb], epochs=5)
        assert cb.triggered_epoch == 0
        assert len(hist.train_loss) == 1

    def test_never_triggers_without_validation(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        cb = StopOnMetric(target=0.0)
        _, hist = _fit(ds, [cb], epochs=2, with_val=False)
        assert cb.triggered_epoch is None
        assert len(hist.train_loss) == 2


class TestCallbackProtocol:
    def test_all_callbacks_observe_every_epoch(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        seen = []
        stopper = LambdaCallback(lambda e: True)  # stop immediately
        watcher = LambdaCallback(lambda e: seen.append(e.epoch))
        _, hist = _fit(ds, [stopper, watcher], epochs=4)
        # watcher still ran for the epoch despite the earlier stop request
        assert seen == [0]
        assert len(hist.train_loss) == 1

    def test_train_begin_and_end_hooks(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        calls = []

        class Probe(Callback):
            def on_train_begin(self, model):
                calls.append("begin")

            def on_train_end(self, model):
                calls.append("end")

        _fit(ds, [Probe()], epochs=1)
        assert calls == ["begin", "end"]

    def test_event_carries_model_reference(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        captured = []
        _fit(ds, [LambdaCallback(lambda e: captured.append(e.model))], epochs=1)
        assert captured[0].num_parameters() > 0

    def test_event_has_validation_flag(self):
        event = EpochEvent(0, 1, 1.0, float("nan"), "accuracy", None)
        assert not event.has_validation
        event = EpochEvent(0, 1, 1.0, 0.5, "accuracy", None)
        assert event.has_validation
