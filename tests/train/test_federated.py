"""Federated averaging simulation."""

import numpy as np
import pytest

from repro.models.builder import build_classifier
from repro.train.federated import FederatedConfig, federated_train, split_clients


def _model(spec, seed=0):
    return build_classifier(
        "memcom",
        spec.input_vocab,
        spec.output_vocab,
        input_length=spec.input_length,
        embedding_dim=8,
        rng=seed,
        num_hash_embeddings=spec.input_vocab // 8,
    )


class TestSplit:
    def test_iid_partition_covers_everything(self, rng):
        y = rng.integers(0, 5, 100)
        shards = split_clients(y, 7, rng)
        all_idx = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(all_idx), np.arange(100))

    def test_non_iid_partition_covers_everything(self, rng):
        y = rng.integers(0, 5, 200)
        shards = split_clients(y, 6, rng, non_iid_alpha=0.2)
        all_idx = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(all_idx), np.arange(200))

    def test_non_iid_skews_labels(self, rng):
        y = rng.integers(0, 10, 2000)
        iid = split_clients(y, 5, np.random.default_rng(0))
        skew = split_clients(y, 5, np.random.default_rng(0), non_iid_alpha=0.05)

        def label_entropy(shards):
            ents = []
            for s in shards:
                p = np.bincount(y[s], minlength=10) / len(s)
                p = p[p > 0]
                ents.append(-(p * np.log(p)).sum())
            return np.mean(ents)

        assert label_entropy(skew) < label_entropy(iid) - 0.2

    def test_no_empty_clients(self, rng):
        y = rng.integers(0, 3, 50)
        shards = split_clients(y, 10, rng, non_iid_alpha=0.01)
        assert all(len(s) > 0 for s in shards)

    def test_bad_client_count(self, rng):
        with pytest.raises(ValueError):
            split_clients(np.zeros(5, dtype=int), 0, rng)
        with pytest.raises(ValueError):
            split_clients(np.zeros(5, dtype=int), 6, rng)


class TestConfig:
    def test_cohort_cannot_exceed_population(self):
        with pytest.raises(ValueError):
            FederatedConfig(num_clients=3, clients_per_round=5)

    def test_noise_requires_clip(self):
        with pytest.raises(ValueError):
            FederatedConfig(noise_multiplier=1.0, update_clip=None)


class TestFedAvg:
    def test_accuracy_improves_over_rounds(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        model = _model(ds.spec)
        cfg = FederatedConfig(
            num_clients=8,
            clients_per_round=6,
            rounds=10,
            local_epochs=2,
            local_batch_size=32,
            local_lr=0.1,
            seed=0,
        )
        history = federated_train(model, ds.x_train, ds.y_train, cfg, ds.x_eval, ds.y_eval)
        assert len(history) == 10
        assert history[-1] > 1.2 / ds.spec.output_vocab  # beat random guessing

    def test_dp_noise_path_runs(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        model = _model(ds.spec)
        cfg = FederatedConfig(
            num_clients=4,
            clients_per_round=2,
            rounds=2,
            update_clip=1.0,
            noise_multiplier=0.5,
            seed=0,
        )
        history = federated_train(model, ds.x_train, ds.y_train, cfg, ds.x_eval, ds.y_eval)
        assert len(history) == 2
        assert all(np.isfinite(h) for h in history)

    def test_no_validation_yields_nans(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        model = _model(ds.spec)
        cfg = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1, seed=0)
        history = federated_train(model, ds.x_train, ds.y_train, cfg)
        assert np.isnan(history[0])
