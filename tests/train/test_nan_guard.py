"""Trainer failure injection: non-finite losses fail fast and loud."""

import numpy as np
import pytest

from repro.models.builder import build_classifier
from repro.train.trainer import TrainConfig, Trainer


class TestNaNGuard:
    def test_diverging_lr_raises_floating_point_error(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        spec = ds.spec
        model = build_classifier(
            "full", spec.input_vocab, spec.output_vocab,
            input_length=spec.input_length, embedding_dim=8, rng=0,
        )
        # Poison a weight so the first forward produces a non-finite loss.
        model.parameters()[0].data[:] = np.inf
        cfg = TrainConfig(epochs=1, batch_size=64, lr=1e-3, seed=0)
        with pytest.raises(FloatingPointError, match="non-finite"):
            Trainer(cfg).fit(model, ds.x_train, ds.y_train)

    def test_error_message_names_epoch_and_lr(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        spec = ds.spec
        model = build_classifier(
            "full", spec.input_vocab, spec.output_vocab,
            input_length=spec.input_length, embedding_dim=8, rng=0,
        )
        model.parameters()[0].data[:] = np.nan
        with pytest.raises(FloatingPointError, match="epoch 1.*lr="):
            Trainer(TrainConfig(epochs=1, batch_size=64)).fit(model, ds.x_train, ds.y_train)

    def test_healthy_training_unaffected(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        spec = ds.spec
        model = build_classifier(
            "full", spec.input_vocab, spec.output_vocab,
            input_length=spec.input_length, embedding_dim=8, rng=0,
        )
        hist = Trainer(TrainConfig(epochs=1, batch_size=64)).fit(model, ds.x_train, ds.y_train)
        assert np.isfinite(hist.train_loss).all()
