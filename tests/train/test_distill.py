"""Knowledge distillation: loss arithmetic, teacher plumbing, acceptance.

The acceptance test at the bottom pins the subsystem's production claim at
the **artifact** level: the distilled student exports at 8 bits, so under
the same on-device byte budget it affords a 4× larger hash table than a
32-bit from-scratch baseline — and wins the held-out metric served from
the quantized artifact.  (At bench scale the full-table teacher does not
out-generalize a hashed student — hashing is itself a regularizer — so a
low soft-target weight is used and the byte budget does the heavy
lifting, which is exactly the paper's accuracy-per-byte framing.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import distillation_loss, softmax_cross_entropy
from repro.nn.tensor import Tensor
from repro.pipeline import PipelineSpec
from repro.pipeline.session import TrainSession
from repro.train import DistillConfig, TrainConfig
from repro.train.distill import teacher_spec_for

RNG = np.random.default_rng(0)


def _logits(b=8, c=5):
    return Tensor(RNG.normal(size=(b, c)).astype(np.float32), requires_grad=True)


def _labels(b=8, c=5):
    return RNG.integers(0, c, size=b)


class TestDistillationLoss:
    def test_alpha_zero_is_bitwise_cross_entropy(self):
        x1, x2 = _logits(), None
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        labels = _labels()
        teacher = RNG.normal(size=x1.shape).astype(np.float32)

        hard = softmax_cross_entropy(x1, labels)
        blended = distillation_loss(x2, teacher, labels, temperature=3.0, alpha=0.0)
        assert blended.data == hard.data  # bit-identical forward
        hard.backward()
        blended.backward()
        np.testing.assert_array_equal(x1.grad, x2.grad)  # bit-identical backward

    def test_pure_soft_ignores_labels(self):
        x = _logits()
        teacher = RNG.normal(size=x.shape).astype(np.float32)
        a = distillation_loss(x, teacher, _labels(), temperature=2.0, alpha=1.0)
        b = distillation_loss(
            Tensor(x.data.copy(), requires_grad=True),
            teacher,
            np.zeros(len(x.data), dtype=np.int64),
            temperature=2.0,
            alpha=1.0,
        )
        assert a.data == b.data

    def test_soft_term_minimized_when_student_matches_teacher(self):
        teacher = RNG.normal(size=(8, 5)).astype(np.float32)
        labels = _labels()
        matched = distillation_loss(
            Tensor(teacher.copy(), requires_grad=True), teacher, labels, alpha=1.0
        )
        perturbed = distillation_loss(
            Tensor(teacher + 1.5 * RNG.normal(size=teacher.shape).astype(np.float32),
                   requires_grad=True),
            teacher, labels, alpha=1.0,
        )
        assert matched.data < perturbed.data

    def test_matched_logits_have_zero_soft_gradient(self):
        teacher = RNG.normal(size=(8, 5)).astype(np.float32)
        x = Tensor(teacher.copy(), requires_grad=True)
        distillation_loss(x, teacher, _labels(), temperature=2.0, alpha=1.0).backward()
        np.testing.assert_allclose(x.grad, 0.0, atol=1e-7)

    def test_temperature_squared_scaling(self):
        # With teacher == student the soft CE equals the softened
        # distribution's entropy; doubling T must scale the soft term by
        # exactly T² × (entropy at 2T) / (entropy at T) — check the grad
        # instead, which is the invariant Hinton's T² buys: bounded, not
        # vanishing, as T grows.
        teacher = RNG.normal(size=(8, 5)).astype(np.float32)
        grads = []
        for t in (2.0, 20.0):
            x = _logits()
            distillation_loss(x, teacher, _labels(), temperature=t, alpha=1.0).backward()
            grads.append(np.abs(x.grad).mean())
        assert grads[1] > 0.05 * grads[0]  # T² keeps the gradient alive

    @pytest.mark.parametrize(
        "kwargs, err",
        [
            (dict(temperature=0.0), ValueError),
            (dict(temperature=-1.0), ValueError),
            (dict(alpha=-0.1), ValueError),
            (dict(alpha=1.5), ValueError),
        ],
    )
    def test_bad_hyperparameters(self, kwargs, err):
        x = _logits()
        teacher = np.zeros(x.shape, dtype=np.float32)
        with pytest.raises(err):
            distillation_loss(x, teacher, _labels(), **kwargs)

    def test_shape_mismatches(self):
        x = _logits(8, 5)
        with pytest.raises(ValueError, match="teacher"):
            distillation_loss(x, np.zeros((8, 4), np.float32), _labels())
        with pytest.raises(ValueError, match="labels"):
            distillation_loss(x, np.zeros((8, 5), np.float32), _labels(b=7))
        with pytest.raises(TypeError, match="integers"):
            distillation_loss(x, np.zeros((8, 5), np.float32), np.zeros(8))


class TestDistillConfig:
    def test_defaults_are_valid(self):
        cfg = DistillConfig()
        assert cfg.temperature == 2.0 and cfg.alpha == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(temperature=0.0),
            dict(alpha=-0.01),
            dict(alpha=1.01),
            dict(teacher_epochs=0),
            dict(teacher_path=123),
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            DistillConfig(**kwargs)


def _student_spec(**overrides) -> PipelineSpec:
    defaults = dict(
        dataset="movielens",
        technique="memcom",
        hyper={"num_hash_embeddings": 16},
        embedding_dim=8,
        scale=0.01,
        cap_train=384,
        cap_eval=128,
        input_length=16,
        train=TrainConfig(epochs=1, batch_size=64, lr=3e-3, seed=0),
        monitor=False,
        seed=0,
        distill=DistillConfig(alpha=0.3, temperature=2.0, teacher_epochs=1),
    )
    defaults.update(overrides)
    return PipelineSpec(**defaults)


class TestTeacherSpec:
    def test_full_table_fp32_teacher(self):
        spec = _student_spec()
        teacher = teacher_spec_for(spec)
        assert teacher.technique == "full"
        assert teacher.hyper == {}
        assert teacher.distill is None
        assert teacher.bits == 32 and teacher.shards == 0
        assert teacher.dataset == spec.dataset and teacher.seed == spec.seed

    def test_teacher_epochs_override(self):
        spec = _student_spec(distill=DistillConfig(teacher_epochs=7))
        assert teacher_spec_for(spec).train.epochs == 7
        spec = _student_spec(distill=DistillConfig())
        assert teacher_spec_for(spec).train.epochs == spec.train.epochs

    def test_requires_distill_config(self):
        with pytest.raises(ValueError, match="no distillation config"):
            teacher_spec_for(_student_spec(distill=None))


class TestSessionPlumbing:
    def test_task_dispatches_to_distillation(self):
        assert TrainSession(_student_spec()).task == "distillation"
        assert TrainSession(_student_spec(distill=None)).task in (
            "ranking", "pointwise",
        )

    def test_injected_logits_require_distill_config(self):
        with pytest.raises(ValueError, match="no distill config"):
            TrainSession(
                _student_spec(distill=None),
                teacher_logits=np.zeros((384, 4), np.float32),
            )

    def test_injected_logits_shape_checked(self):
        session = TrainSession(
            _student_spec(), teacher_logits=np.zeros((3, 4), np.float32)
        )
        with pytest.raises(ValueError, match="teacher logits shape"):
            session.teacher_logits()

    def test_injected_and_inline_teachers_train_identical_students(self):
        # The sweep runner pre-trains one shared teacher and injects its
        # logits; a standalone session trains the same teacher inline.
        # Both paths must produce bit-identical student weights.
        inline = TrainSession(_student_spec())
        logits = inline.teacher_logits()
        inline.fit()

        injected = TrainSession(_student_spec(), teacher_logits=logits.copy())
        injected.fit()
        for p_a, p_b in zip(inline.model.parameters(), injected.model.parameters()):
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_frozen_artifact_teacher_matches_inline(self, tmp_path):
        spec = _student_spec()
        teacher = TrainSession(teacher_spec_for(spec))
        teacher.fit()
        path = str(tmp_path / "teacher")
        teacher.export(path, bits=32)

        from_artifact = TrainSession(
            _student_spec(
                distill=DistillConfig(alpha=0.3, temperature=2.0, teacher_path=path)
            )
        ).teacher_logits()
        inline = TrainSession(spec).teacher_logits()
        np.testing.assert_allclose(from_artifact, inline, atol=1e-5)

    def test_distillation_moves_the_weights(self):
        plain = TrainSession(_student_spec(distill=None))
        plain.fit()
        distilled = TrainSession(_student_spec())
        distilled.fit()
        flat = lambda s: np.concatenate(
            [p.data.ravel() for p in s.model.parameters()]
        )
        assert not np.array_equal(flat(plain), flat(distilled))


class TestTrainerDispatch:
    @staticmethod
    def _model_and_batch(tiny_spec):
        from repro.models.builder import build_classifier

        model = build_classifier(
            "full",
            tiny_spec.input_vocab,
            tiny_spec.output_vocab,
            input_length=tiny_spec.input_length,
            embedding_dim=8,
            rng=0,
        )
        x = np.zeros((4, tiny_spec.input_length), dtype=np.int64)
        y = np.zeros(4, dtype=np.int64)
        return model, x, y

    def test_distillation_requires_config_and_teacher(self, tiny_spec):
        from repro.train.trainer import Trainer

        model, x, y = self._model_and_batch(tiny_spec)
        with pytest.raises(ValueError, match="requires a DistillConfig"):
            Trainer(TrainConfig(epochs=1)).fit(model, x, y, task="distillation")

    def test_distillation_cannot_wrap_pairwise(self, tiny_spec):
        from repro.train.trainer import Trainer

        model, x, y = self._model_and_batch(tiny_spec)
        with pytest.raises(ValueError, match="cannot wrap"):
            Trainer(TrainConfig(epochs=1)).fit(
                model, x, y,
                task="distillation",
                teacher=np.zeros((4, tiny_spec.output_vocab), np.float32),
                distill=DistillConfig(),
                hard_task="pairwise",
            )

    def test_teacher_row_count_must_match(self, tiny_spec):
        from repro.train.trainer import Trainer

        model, x, y = self._model_and_batch(tiny_spec)
        with pytest.raises(ValueError, match="teacher logits"):
            Trainer(TrainConfig(epochs=1)).fit(
                model, x, y,
                task="distillation",
                teacher=np.zeros((3, tiny_spec.output_vocab), np.float32),
                distill=DistillConfig(),
                hard_task="classification",
            )


class TestAcceptance:
    def test_distilled_artifact_beats_same_byte_budget_scratch(self, tmp_path):
        """The subsystem's production claim, end to end through the sweep
        front door: distill a student, export it quantized, and the served
        artifact beats a from-scratch 32-bit baseline that spends the same
        device bytes (8-bit export affords a 4× larger hash table)."""
        from repro.metrics.ndcg import ndcg_single_relevant
        from repro.serve.session import ServeSession
        from repro.sweep.runner import execute_point

        base = dict(
            dataset="movielens",
            technique="memcom",
            scale=0.02,
            cap_train=2000,
            cap_eval=800,
            monitor=False,
            seed=1,
        )
        train = TrainConfig(epochs=12, batch_size=128, lr=1e-3, seed=1)
        scratch_spec = PipelineSpec(
            **base, hyper={"num_hash_embeddings": 8}, train=train, bits=32
        )
        student_spec = PipelineSpec(
            **base, hyper={"num_hash_embeddings": 32}, train=train, bits=8,
            distill=DistillConfig(alpha=0.1, temperature=2.0, teacher_epochs=12),
        )
        data = scratch_spec.load_data()

        def served_ndcg(spec, tag):
            path = str(tmp_path / tag)
            result = execute_point(spec, data, artifact_path=path)
            session = ServeSession.load(path)
            scores = np.concatenate(
                [session.predict(data.x_eval[i:i + 512])
                 for i in range(0, len(data.x_eval), 512)]
            )
            return result, ndcg_single_relevant(scores, data.y_eval, k=10)

        scratch, scratch_ndcg = served_ndcg(scratch_spec, "scratch")
        student, student_ndcg = served_ndcg(student_spec, "student")

        # Same budget: the 8-bit student must not spend more device bytes.
        assert student.device_bytes <= scratch.device_bytes
        # And it must win the held-out metric, served from the artifact.
        assert student_ndcg > scratch_ndcg
