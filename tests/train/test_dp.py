"""Differentially private training and the RDP accountant."""

import numpy as np
import pytest

from repro.models.builder import build_classifier
from repro.train.dp import DPConfig, DPTrainer, rdp_epsilon
from repro.train.trainer import TrainConfig


def _model(spec, seed=0):
    return build_classifier(
        "memcom",
        spec.input_vocab,
        spec.output_vocab,
        input_length=spec.input_length,
        embedding_dim=8,
        rng=seed,
        num_hash_embeddings=spec.input_vocab // 8,
    )


class TestDPConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DPConfig(noise_multiplier=-1.0)
        with pytest.raises(ValueError):
            DPConfig(noise_multiplier=1.0, l2_clip=0.0)
        with pytest.raises(ValueError):
            DPConfig(noise_multiplier=1.0, delta=2.0)


class TestDPTrainer:
    def test_zero_noise_trains(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        trainer = DPTrainer(TrainConfig(epochs=2, batch_size=64, lr=3e-3), DPConfig(0.0))
        hist = trainer.fit(_model(ds.spec), ds.x_train, ds.y_train, ds.x_eval, ds.y_eval)
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert trainer.steps_taken > 0

    def test_zero_noise_uses_dense_optimizer_semantics(self, tiny_classification_dataset):
        """Every Figure 5 sweep point — including the σ=0 origin — must train
        with dense Adam: the σ>0 points densify via noise injection, so the
        origin densifies too or the curve conflates privacy noise with
        lazy-vs-dense Adam drift."""
        from repro.nn.optim import Adam
        from repro.nn.sparse_grad import SparseRowGrad

        ds = tiny_classification_dataset
        trainer = DPTrainer(TrainConfig(epochs=1, batch_size=64, lr=3e-3), DPConfig(0.0))
        seen: list[bool] = []
        original = Adam.step

        def spying_step(self):
            seen.extend(isinstance(p.raw_grad, SparseRowGrad) for p in self.params)
            return original(self)

        Adam.step = spying_step
        try:
            trainer.fit(_model(ds.spec), ds.x_train, ds.y_train)
        finally:
            Adam.step = original
        assert seen and not any(seen)

    def test_heavy_noise_degrades_metric(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        cfg = TrainConfig(epochs=3, batch_size=64, lr=3e-3, seed=0)
        clean = DPTrainer(cfg, DPConfig(0.0))
        noisy = DPTrainer(cfg, DPConfig(50.0))
        h_clean = clean.fit(_model(ds.spec, 0), ds.x_train, ds.y_train, ds.x_eval, ds.y_eval)
        h_noisy = noisy.fit(_model(ds.spec, 0), ds.x_train, ds.y_train, ds.x_eval, ds.y_eval)
        assert max(h_noisy.val_metric) <= max(h_clean.val_metric) + 0.02

    def test_epsilon_decreases_with_more_noise(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        cfg = TrainConfig(epochs=1, batch_size=64)
        eps = []
        for sigma in (0.5, 1.0, 2.0):
            t = DPTrainer(cfg, DPConfig(sigma))
            t.fit(_model(ds.spec), ds.x_train, ds.y_train)
            eps.append(t.epsilon(len(ds.x_train)))
        assert eps[0] > eps[1] > eps[2]

    def test_unknown_task_rejected(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        t = DPTrainer(TrainConfig(epochs=1, batch_size=64), DPConfig(1.0))
        with pytest.raises(ValueError):
            t.fit(_model(ds.spec), ds.x_train, ds.y_train, task="clustering")


class TestAccountant:
    def test_zero_noise_is_infinite(self):
        assert rdp_epsilon(0.0, 100, 1e-5) == float("inf")

    def test_zero_steps_is_zero(self):
        assert rdp_epsilon(1.0, 0, 1e-5) == 0.0

    def test_monotone_in_steps(self):
        e1 = rdp_epsilon(1.0, 100, 1e-5)
        e2 = rdp_epsilon(1.0, 1000, 1e-5)
        assert e2 > e1

    def test_monotone_in_noise(self):
        e1 = rdp_epsilon(0.5, 100, 1e-5)
        e2 = rdp_epsilon(4.0, 100, 1e-5)
        assert e2 < e1

    def test_monotone_in_delta(self):
        e1 = rdp_epsilon(1.0, 100, 1e-7)
        e2 = rdp_epsilon(1.0, 100, 1e-3)
        assert e2 < e1

    def test_validation(self):
        with pytest.raises(ValueError):
            rdp_epsilon(1.0, -1, 1e-5)
        with pytest.raises(ValueError):
            rdp_epsilon(1.0, 10, 0.0)

    def test_reasonable_magnitude(self):
        # σ=1, 1000 steps, δ=1e-5: ε should be in the usual single/double
        # digit range, not astronomically off
        eps = rdp_epsilon(1.0, 1000, 1e-5)
        assert 10 < eps < 1000
