"""Trainer extensions: LR schedules, gradient clipping, RMSProp."""

import numpy as np
import pytest

from repro.models.builder import build_classifier
from repro.train.trainer import TrainConfig, Trainer


def _model(spec, technique="full", **hyper):
    return build_classifier(
        technique,
        spec.input_vocab,
        spec.output_vocab,
        input_length=spec.input_length,
        embedding_dim=8,
        rng=0,
        **hyper,
    )


class TestConfigValidation:
    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            TrainConfig(lr_schedule="triangular")

    def test_rejects_nonpositive_clip(self):
        with pytest.raises(ValueError):
            TrainConfig(grad_clip_norm=0.0)

    def test_accepts_rmsprop(self):
        TrainConfig(optimizer="rmsprop")


class TestSchedulesInLoop:
    @pytest.mark.parametrize("schedule", ["cosine", "step", "exponential", "plateau"])
    def test_training_completes_under_every_schedule(
        self, schedule, tiny_classification_dataset
    ):
        ds = tiny_classification_dataset
        cfg = TrainConfig(epochs=3, batch_size=64, lr=3e-3, lr_schedule=schedule, seed=0)
        hist = Trainer(cfg).fit(_model(ds.spec), ds.x_train, ds.y_train)
        assert len(hist.train_loss) == 3
        assert np.isfinite(hist.train_loss).all()

    def test_cosine_reduces_loss_comparably_to_constant(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        losses = {}
        for schedule in ("constant", "cosine"):
            cfg = TrainConfig(epochs=4, batch_size=64, lr=3e-3, lr_schedule=schedule, seed=0)
            hist = Trainer(cfg).fit(_model(ds.spec), ds.x_train, ds.y_train)
            losses[schedule] = hist.train_loss[-1]
        # Both make real progress; cosine should not blow training up.
        assert losses["cosine"] < hist.train_loss[0]
        assert losses["cosine"] < losses["constant"] * 1.5

    def test_plateau_uses_train_loss_without_validation(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        cfg = TrainConfig(epochs=3, batch_size=64, lr=3e-3, lr_schedule="plateau", seed=0)
        hist = Trainer(cfg).fit(_model(ds.spec), ds.x_train, ds.y_train)  # no x_val
        assert len(hist.train_loss) == 3


class TestGradientClipping:
    def test_clipped_run_completes_and_learns(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        cfg = TrainConfig(epochs=3, batch_size=64, lr=3e-3, grad_clip_norm=1.0, seed=0)
        hist = Trainer(cfg).fit(_model(ds.spec), ds.x_train, ds.y_train)
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_tiny_clip_slows_but_does_not_break(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        tight = TrainConfig(epochs=2, batch_size=64, lr=3e-3, grad_clip_norm=1e-4, seed=0)
        hist = Trainer(tight).fit(_model(ds.spec), ds.x_train, ds.y_train)
        assert np.isfinite(hist.train_loss).all()
        # The clip bounds per-step motion; loss moves far less than an
        # unclipped run (which drops >1.0 nats over these epochs).
        assert abs(hist.train_loss[-1] - hist.train_loss[0]) < 0.5


class TestRMSPropInLoop:
    def test_rmsprop_trains_memcom_model(self, tiny_classification_dataset):
        ds = tiny_classification_dataset
        cfg = TrainConfig(epochs=3, batch_size=64, lr=1e-3, optimizer="rmsprop", seed=0)
        model = _model(ds.spec, "memcom", num_hash_embeddings=ds.spec.input_vocab // 8)
        hist = Trainer(cfg).fit(model, ds.x_train, ds.y_train)
        assert hist.train_loss[-1] < hist.train_loss[0]
