"""The paper's qualitative claims at reduced scale.

These are the assertions EXPERIMENTS.md is built on: not absolute numbers,
but *who wins*.  Sizes are chosen to keep this file under ~1 minute while
leaving enough signal that the orderings are stable for the fixed seed.
"""

import numpy as np
import pytest

from repro.data.spec import DatasetSpec
from repro.data.synthetic import generate_dataset
from repro.metrics.accuracy import relative_loss_percent
from repro.metrics.evaluator import evaluate_ranking
from repro.models.builder import build_pointwise_ranker
from repro.train.trainer import TrainConfig, Trainer


@pytest.fixture(scope="module")
def skewed():
    """A movielens-shaped dataset with strong popularity skew."""
    spec = DatasetSpec(
        name="skewed",
        num_train=4000,
        num_eval=800,
        input_vocab=600,
        output_vocab=80,
        task="ranking",
        input_length=32,
        examples_per_user=2,
        input_exponent=1.1,
        num_genres=120,
    )
    return generate_dataset(spec, np.random.default_rng(0))


def _train(data, technique, seed=0, **hyper):
    spec = data.spec
    model = build_pointwise_ranker(
        technique,
        spec.input_vocab,
        spec.output_vocab,
        input_length=spec.input_length,
        embedding_dim=32,
        rng=seed,
        **hyper,
    )
    cfg = TrainConfig(epochs=5, batch_size=128, lr=2e-3, seed=seed)
    Trainer(cfg).fit(model, data.x_train, data.y_train, task="ranking")
    ndcg = evaluate_ranking(model, data.x_eval, data.y_eval, k=10)["ndcg"]
    return ndcg, model.num_parameters()


@pytest.fixture(scope="module")
def baseline(skewed):
    return _train(skewed, "full")


class TestHeadlineOrderings:
    def test_memcom_beats_naive_hashing_at_aggressive_compression(self, skewed, baseline):
        """Figure 1/2's central shape: at the same hash size, MEmCom's
        per-entity multipliers recover most of what collision sharing
        destroys."""
        base_ndcg, _ = baseline
        m = skewed.spec.input_vocab // 32
        memcom, _ = _train(skewed, "memcom", num_hash_embeddings=m)
        hashed, _ = _train(skewed, "hash", num_hash_embeddings=m)
        loss_memcom = relative_loss_percent(base_ndcg, memcom)
        loss_hash = relative_loss_percent(base_ndcg, hashed)
        assert loss_memcom < loss_hash

    def test_memcom_loss_is_moderate_at_high_compression(self, skewed, baseline):
        """Paper: ≈4% nDCG loss at 16×–40× input-embedding compression.
        At our scale we accept single-digit-to-low-teens, far from collapse."""
        base_ndcg, base_params = baseline
        m = skewed.spec.input_vocab // 32
        memcom_ndcg, memcom_params = _train(skewed, "memcom", num_hash_embeddings=m)
        assert base_params / memcom_params > 1.5  # actually compressed
        assert relative_loss_percent(base_ndcg, memcom_ndcg) < 25.0

    def test_memcom_bias_and_nobias_perform_similarly(self, skewed):
        """Figure 3: 'MEmCom with and without bias performs exactly the
        same' — their curves overlap."""
        m = skewed.spec.input_vocab // 16
        with_bias, _ = _train(skewed, "memcom", num_hash_embeddings=m)
        without, _ = _train(skewed, "memcom_nobias", num_hash_embeddings=m)
        assert abs(with_bias - without) < 0.05

    def test_compression_is_real(self, skewed, baseline):
        _, base_params = baseline
        for tech, hyper in [
            ("memcom", dict(num_hash_embeddings=skewed.spec.input_vocab // 32)),
            ("hash", dict(num_hash_embeddings=skewed.spec.input_vocab // 32)),
            ("reduce_dim", dict(reduced_dim=4)),
        ]:
            _, params = _train(skewed, tech, **hyper)
            assert params < base_params
