"""Registry-wide contracts: every technique builds, trains, round-trips.

These tests iterate :func:`available_techniques` so newly registered
techniques are covered automatically — no per-technique wiring needed.
"""

import numpy as np
import pytest

from repro.core.registry import available_techniques, build_embedding, technique_spec
from repro.core.sizing import embedding_param_count
from repro.models.builder import build_classifier
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import Adam
from repro.nn.serialization import load_npz, save_npz
from repro.train.trainer import TrainConfig, Trainer

V, E = 120, 16

HYPER = {
    "full": {},
    "memcom": dict(num_hash_embeddings=12),
    "memcom_nobias": dict(num_hash_embeddings=12),
    "qr_mult": dict(num_hash_embeddings=12),
    "qr_concat": dict(num_hash_embeddings=12),
    "hash": dict(num_hash_embeddings=12),
    "double_hash": dict(num_hash_embeddings=12),
    "freq_double_hash": dict(num_hash_embeddings=12),
    "factorized": dict(hidden_dim=4),
    "reduce_dim": dict(reduced_dim=4),
    "truncate_rare": dict(keep=24),
    "hashed_onehot": dict(num_hash_embeddings=12),
    "tt_rec": dict(tt_rank=2),
    "mixed_dim": dict(num_blocks=3),
}


def test_hyper_table_covers_registry():
    assert set(HYPER) == set(available_techniques())


@pytest.mark.parametrize("technique", sorted(HYPER))
class TestEveryTechnique:
    def test_sizing_matches_built_module(self, technique):
        emb = build_embedding(technique, V, E, rng=0, **HYPER[technique])
        assert emb.num_parameters() == embedding_param_count(technique, V, E, **HYPER[technique])

    def test_forward_deterministic_per_seed(self, technique, rng):
        ids = rng.integers(0, V, size=(3, 5))
        a = build_embedding(technique, V, E, rng=3, **HYPER[technique])(ids).data
        b = build_embedding(technique, V, E, rng=3, **HYPER[technique])(ids).data
        np.testing.assert_array_equal(a, b)

    def test_gradients_flow_to_every_parameter(self, technique, rng):
        emb = build_embedding(technique, V, E, rng=0, **HYPER[technique])
        # Touch the whole vocabulary so every row/block/core is visited
        # ((batch, length) shape — hashed_onehot requires 2-D ids).
        emb(np.arange(V).reshape(8, V // 8)).sum().backward()
        for name, p in emb.named_parameters():
            assert p.grad is not None, f"{technique}.{name} got no gradient"
            assert np.abs(p.grad).sum() > 0, f"{technique}.{name} gradient all-zero"

    def test_state_dict_roundtrip_preserves_forward(self, technique, tmp_path, rng):
        ids = rng.integers(0, V, size=(2, 7))
        src = build_embedding(technique, V, E, rng=0, **HYPER[technique])
        dst = build_embedding(technique, V, E, rng=99, **HYPER[technique])
        path = str(tmp_path / "emb.npz")
        save_npz(src, path)
        load_npz(dst, path)
        np.testing.assert_allclose(src(ids).data, dst(ids).data, rtol=1e-6)

    def test_one_training_step_changes_parameters(self, technique, rng):
        emb = build_embedding(technique, V, E, rng=0, **HYPER[technique])
        before = {name: p.data.copy() for name, p in emb.named_parameters()}
        opt = Adam(emb.parameters(), lr=0.05)
        loss = (emb(np.arange(V).reshape(8, V // 8)) ** 2.0).sum()
        loss.backward()
        opt.step()
        moved = any(
            not np.array_equal(before[name], p.data) for name, p in emb.named_parameters()
        )
        assert moved

    def test_classifier_trains_end_to_end(self, technique, tiny_classification_dataset):
        ds = tiny_classification_dataset
        spec = ds.spec
        hyper = dict(HYPER[technique])
        # Rescale vocabulary-relative knobs to the fixture's vocab.
        if "num_hash_embeddings" in hyper:
            hyper["num_hash_embeddings"] = spec.input_vocab // 8
        if "keep" in hyper:
            hyper["keep"] = spec.input_vocab // 8
        model = build_classifier(
            technique,
            spec.input_vocab,
            spec.output_vocab,
            input_length=spec.input_length,
            embedding_dim=E,
            rng=0,
            **hyper,
        )
        cfg = TrainConfig(epochs=2, batch_size=64, lr=3e-3, seed=0)
        hist = Trainer(cfg).fit(model, ds.x_train, ds.y_train)
        assert np.isfinite(hist.train_loss).all()
        assert hist.train_loss[-1] < hist.train_loss[0]


def test_every_registry_entry_has_summary_and_requires():
    for name in available_techniques():
        spec = technique_spec(name)
        assert spec.summary
        assert isinstance(spec.requires, tuple)
