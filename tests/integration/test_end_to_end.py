"""Full-pipeline integration: data → train → evaluate → export → device →
quantize → audit.  This is the library's 'does everything compose' test."""

import numpy as np
import pytest

from repro.core.uniqueness import audit_uniqueness
from repro.device.quantize import quantize_module
from repro.device.runtime import benchmark_on_all_devices
from repro.metrics.evaluator import evaluate_ranking
from repro.models.builder import build_pointwise_ranker
from repro.nn.serialization import load_npz, save_npz
from repro.train.trainer import TrainConfig, Trainer


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    spec = tiny_dataset.spec
    model = build_pointwise_ranker(
        "memcom",
        spec.input_vocab,
        spec.output_vocab,
        input_length=spec.input_length,
        embedding_dim=16,
        rng=0,
        num_hash_embeddings=spec.input_vocab // 8,
        multiplier_init="uniform",
    )
    cfg = TrainConfig(epochs=5, batch_size=64, lr=3e-3, seed=0)
    history = Trainer(cfg).fit(
        model,
        tiny_dataset.x_train,
        tiny_dataset.y_train,
        tiny_dataset.x_eval,
        tiny_dataset.y_eval,
        task="ranking",
    )
    return model, history


class TestPipeline:
    def test_training_learned_something(self, trained, tiny_dataset):
        model, history = trained
        random_ndcg = evaluate_ranking(
            build_pointwise_ranker(
                "memcom",
                tiny_dataset.spec.input_vocab,
                tiny_dataset.spec.output_vocab,
                input_length=tiny_dataset.spec.input_length,
                embedding_dim=16,
                rng=123,
                num_hash_embeddings=tiny_dataset.spec.input_vocab // 8,
            ),
            tiny_dataset.x_eval,
            tiny_dataset.y_eval,
        )["ndcg"]
        trained_ndcg = max(history.val_metric)
        assert trained_ndcg > random_ndcg + 0.05

    def test_save_load_preserves_predictions(self, trained, tiny_dataset, tmp_path):
        model, _ = trained
        path = str(tmp_path / "model.npz")
        save_npz(model, path)
        clone = build_pointwise_ranker(
            "memcom",
            tiny_dataset.spec.input_vocab,
            tiny_dataset.spec.output_vocab,
            input_length=tiny_dataset.spec.input_length,
            embedding_dim=16,
            rng=999,
            num_hash_embeddings=tiny_dataset.spec.input_vocab // 8,
            multiplier_init="uniform",
        )
        load_npz(clone, path)
        # BatchNorm running stats are not parameters: copy to make clones agree.
        for m_src, m_dst in zip(model.modules(), clone.modules()):
            if hasattr(m_src, "running_mean"):
                m_dst.running_mean = m_src.running_mean.copy()
                m_dst.running_var = m_src.running_var.copy()
        a = evaluate_ranking(model, tiny_dataset.x_eval, tiny_dataset.y_eval)["ndcg"]
        b = evaluate_ranking(clone, tiny_dataset.x_eval, tiny_dataset.y_eval)["ndcg"]
        assert a == pytest.approx(b, abs=1e-6)

    def test_device_benchmarks_run_on_trained_model(self, trained):
        model, _ = trained
        reports = benchmark_on_all_devices(model)
        assert len(reports) == 4  # CoreML ×3 + TF-Lite CPU
        assert all(r.latency_ms > 0 and r.footprint_mb > 0 for r in reports)

    def test_int8_quantization_barely_moves_ndcg(self, trained, tiny_dataset):
        model, _ = trained
        before = evaluate_ranking(model, tiny_dataset.x_eval, tiny_dataset.y_eval)["ndcg"]
        state = model.state_dict()
        quantize_module(model, 8)
        after = evaluate_ranking(model, tiny_dataset.x_eval, tiny_dataset.y_eval)["ndcg"]
        model.load_state_dict(state)
        assert abs(after - before) < 0.05

    def test_uniqueness_audit_on_trained_embedding(self, trained):
        model, _ = trained
        report = audit_uniqueness(model.embedding, tolerance=1e-7)
        assert report.total_pairs > 0
        assert report.fraction_distinct > 0.99
