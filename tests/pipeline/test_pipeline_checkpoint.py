"""Resumable checkpoints: bit-identical continuation, typed corruption errors.

The acceptance matrix: for {full, memcom, tt_rec} × {classification,
pairwise} × {adam, sgd}, resuming a mid-run checkpoint must produce final
weights and a ``History`` bit-identical to an uninterrupted ``fit()``
(wall-clock ``seconds`` excepted — it is honest elapsed time).
"""

import json
import os

import numpy as np
import pytest

from repro.artifact import FORMAT_VERSION, load_artifact, save_artifact
from repro.artifact.errors import (
    ArtifactFormatError,
    ArtifactIntegrityError,
    ArtifactVersionError,
)
from repro.pipeline import TrainSession
from repro.train import DPConfig

from pipeline_helpers import tiny_spec


def _spec_for(technique: str, task: str, optimizer: str, **kw):
    if task == "classification":
        return tiny_spec(technique=technique, dataset="newsgroup",
                         optimizer=optimizer, **kw)
    return tiny_spec(technique=technique, architecture="ranknet",
                     optimizer=optimizer, **kw)


def _assert_bit_identical(run_a: TrainSession, run_b: TrainSession, label: str = ""):
    state_a, state_b = run_a.model.state_dict(), run_b.model.state_dict()
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), f"{label}: weight {key}"
    h_a, h_b = run_a.history, run_b.history
    assert h_a.train_loss == h_b.train_loss, label
    assert h_a.val_metric == h_b.val_metric or (  # NaN-tolerant equality
        len(h_a.val_metric) == len(h_b.val_metric)
        and all(
            (np.isnan(x) and np.isnan(y)) or x == y
            for x, y in zip(h_a.val_metric, h_b.val_metric)
        )
    ), label
    assert (h_a.steps, h_a.best_epoch, h_a.metric_name) == (
        h_b.steps, h_b.best_epoch, h_b.metric_name
    ), label


def _interrupt_and_resume(spec, tmp_path, stop_after: int = 1) -> TrainSession:
    """fit → checkpoint → kill at ``stop_after`` → resume from disk → finish."""
    path = str(tmp_path / "ckpt")
    killed = TrainSession(spec)
    killed.fit(checkpoint_path=path, checkpoint_every=1, stop_after_epoch=stop_after)
    assert not killed.finished
    resumed = TrainSession.resume(path)
    assert resumed.state.epoch == stop_after
    resumed.fit()
    assert resumed.finished
    return resumed


class TestResumeMatrix:
    @pytest.mark.parametrize("technique", ["full", "memcom", "tt_rec"])
    @pytest.mark.parametrize("task", ["classification", "pairwise"])
    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_resume_is_bit_identical(self, tmp_path, technique, task, optimizer):
        spec = _spec_for(technique, task, optimizer)
        uninterrupted = TrainSession(spec)
        uninterrupted.fit()
        resumed = _interrupt_and_resume(spec, tmp_path)
        _assert_bit_identical(
            uninterrupted, resumed, f"{technique}/{task}/{optimizer}"
        )


class TestResumeVariants:
    def test_checkpointing_does_not_perturb_training(self, tmp_path, spec):
        plain = TrainSession(spec)
        plain.fit()
        checkpointed = TrainSession(spec)
        checkpointed.fit(checkpoint_path=str(tmp_path / "ck"))
        _assert_bit_identical(plain, checkpointed, "checkpoint side effects")

    def test_resume_at_later_epoch(self, tmp_path):
        spec = tiny_spec(epochs=4)
        uninterrupted = TrainSession(spec)
        uninterrupted.fit()
        resumed = _interrupt_and_resume(spec, tmp_path, stop_after=3)
        _assert_bit_identical(uninterrupted, resumed, "late resume")

    def test_resume_with_rmsprop_and_scheduler(self, tmp_path):
        spec = tiny_spec(
            optimizer="rmsprop", epochs=4,
            train_overrides={"lr_schedule": "cosine"},
        )
        uninterrupted = TrainSession(spec)
        uninterrupted.fit()
        resumed = _interrupt_and_resume(spec, tmp_path, stop_after=2)
        _assert_bit_identical(uninterrupted, resumed, "rmsprop+cosine")
        assert resumed.state.optimizer.lr == uninterrupted.state.optimizer.lr

    def test_resume_with_early_stopping(self, tmp_path):
        spec = tiny_spec(
            epochs=8,
            train_overrides={"early_stopping_patience": 1, "lr": 5e-2},
        )
        uninterrupted = TrainSession(spec)
        uninterrupted.fit()
        resumed = _interrupt_and_resume(spec, tmp_path)
        _assert_bit_identical(uninterrupted, resumed, "early stopping")
        # Both runs stopped at the same epoch and restored the same best.
        assert resumed.state.epoch == uninterrupted.state.epoch
        assert resumed.state.stopped == uninterrupted.state.stopped

    def test_resume_dp_training(self, tmp_path):
        spec = tiny_spec(dataset="newsgroup", dp=DPConfig(0.5, l2_clip=1.0))
        uninterrupted = TrainSession(spec)
        uninterrupted.fit()
        resumed = _interrupt_and_resume(spec, tmp_path)
        _assert_bit_identical(uninterrupted, resumed, "dp")
        assert resumed.trainer.steps_taken == uninterrupted.trainer.steps_taken

    def test_zip_checkpoint_round_trip(self, tmp_path, spec):
        path = str(tmp_path / "ck.zip")
        uninterrupted = TrainSession(spec)
        uninterrupted.fit()
        killed = TrainSession(spec)
        killed.fit(checkpoint_path=path, stop_after_epoch=1)
        resumed = TrainSession.resume(path)
        resumed.fit()
        _assert_bit_identical(uninterrupted, resumed, "zip checkpoint")

    def test_finished_checkpoint_resumes_as_noop(self, tmp_path, spec):
        path = str(tmp_path / "done")
        session = TrainSession(spec)
        session.fit(checkpoint_path=path)
        resumed = TrainSession.resume(path)
        assert resumed.finished
        history = resumed.fit()  # no further epochs
        assert history.train_loss == session.history.train_loss

    def test_checkpoint_serves_directly(self, tmp_path, spec):
        from repro.serve.session import ServeSession

        path = str(tmp_path / "ck")
        session = TrainSession(spec)
        session.fit(checkpoint_path=path)
        serve = ServeSession.load(path)
        probe = session.data.x_eval[:16]
        direct = ServeSession.from_model(session.model)
        assert np.array_equal(serve.predict(probe), direct.predict(probe))

    def test_early_stopped_checkpoint_serves_best_weights(self, tmp_path):
        """The final checkpoint of a finished run is written *after* the
        best-weight restore, so loading it serves exactly what the
        session serves (review regression)."""
        from repro.serve.session import ServeSession

        spec = tiny_spec(
            epochs=8,
            train_overrides={"early_stopping_patience": 1, "lr": 5e-2},
        )
        path = str(tmp_path / "ck")
        session = TrainSession(spec)
        session.fit(checkpoint_path=path)
        assert session.finished
        probe = session.data.x_eval[:16]
        direct = ServeSession.from_model(session.model)
        assert np.array_equal(
            ServeSession.load(path).predict(probe), direct.predict(probe)
        )

    def test_failed_save_keeps_previous_checkpoint(self, tmp_path, spec, monkeypatch):
        """A crash mid-save must never destroy the last good checkpoint —
        the new bytes land at a temporary sibling and swap in atomically
        (review regression)."""
        import repro.pipeline.session as session_mod

        path = str(tmp_path / "ck")
        session = TrainSession(spec)
        session.fit(checkpoint_path=path, stop_after_epoch=1)
        good_epoch = TrainSession.resume(path).state.epoch

        real_collect = session_mod.collect_artifact

        def dying_collect(model, **kwargs):
            pending = real_collect(model, **kwargs)
            real_write = pending.write

            def dying_write(out):
                real_write(out)  # bytes hit the temp path...
                raise OSError("simulated kill mid-checkpoint")

            pending.write = dying_write
            return pending

        monkeypatch.setattr(session_mod, "collect_artifact", dying_collect)
        with pytest.raises(OSError, match="simulated"):
            session.fit(checkpoint_path=path, stop_after_epoch=2)
        monkeypatch.undo()
        # The original checkpoint is intact and still resumable.
        resumed = TrainSession.resume(path)
        assert resumed.state.epoch == good_epoch
        resumed.fit()
        assert resumed.finished

    def test_resumed_export_matches_uninterrupted_export(self, tmp_path, spec):
        uninterrupted = TrainSession(spec)
        uninterrupted.fit()
        resumed = _interrupt_and_resume(spec, tmp_path)
        a = uninterrupted.export(str(tmp_path / "a"), bits=8)
        b = resumed.export(str(tmp_path / "b"), bits=8)
        for name, meta in a.manifest["payloads"].items():
            assert meta["sha256"] == b.manifest["payloads"][name]["sha256"], name


class TestCheckpointErrors:
    def _checkpoint(self, tmp_path, spec) -> str:
        path = str(tmp_path / "ck")
        session = TrainSession(spec)
        session.fit(checkpoint_path=path, stop_after_epoch=1)
        return path

    def test_serving_artifact_has_no_checkpoint(self, tmp_path, spec):
        session = TrainSession(spec)
        session.fit()
        path = str(tmp_path / "serving")
        session.export(path)
        artifact = load_artifact(path)
        assert not artifact.has_checkpoint
        with pytest.raises(ArtifactFormatError, match="no training checkpoint"):
            TrainSession.resume(path)

    def test_corrupted_checkpoint_payload_is_typed(self, tmp_path, spec):
        path = self._checkpoint(tmp_path, spec)
        victim = next(
            f for f in sorted(os.listdir(os.path.join(path, "payloads")))
            if f.startswith("checkpoint.opt.")
        )
        full = os.path.join(path, "payloads", victim)
        blob = bytearray(open(full, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(full, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(ArtifactIntegrityError, match="hash mismatch"):
            TrainSession.resume(path)

    def test_truncated_checkpoint_payload_is_typed(self, tmp_path, spec):
        path = self._checkpoint(tmp_path, spec)
        # checkpoint/model/* aliases the serving payloads in v3, so only the
        # optimizer slots are guaranteed their own member files.
        victim = next(
            f for f in sorted(os.listdir(os.path.join(path, "payloads")))
            if f.startswith("checkpoint.opt.")
        )
        full = os.path.join(path, "payloads", victim)
        blob = open(full, "rb").read()
        with open(full, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(ArtifactIntegrityError, match="bytes"):
            TrainSession.resume(path)

    def test_tampered_spec_is_typed(self, tmp_path, spec):
        path = self._checkpoint(tmp_path, spec)
        manifest_path = os.path.join(path, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["checkpoint"]["meta"]["spec"]["optimizer_flavour"] = "quantum"
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ArtifactFormatError, match="spec"):
            TrainSession.resume(path)

    def test_checkpoint_requires_fp32(self, tmp_path, spec):
        session = TrainSession(spec)
        session.fit()
        from repro.train.checkpoint import capture_state

        payload = capture_state(session.trainer, session.model, session.state)
        with pytest.raises(ValueError, match="bits=32"):
            save_artifact(
                session.model, str(tmp_path / "x"), bits=8,
                checkpoint=({"spec": {}, "train_state": payload[0]}, payload[1]),
            )


class TestVersionCompat:
    def test_v1_artifacts_still_load(self, tmp_path, spec):
        """A PR 4 container (format_version 1, no checkpoint) must keep
        loading and serving under the v2 runtime."""
        from repro.serve.session import ServeSession

        session = TrainSession(spec)
        session.fit()
        path = str(tmp_path / "v1")
        session.export(path)
        manifest_path = os.path.join(path, "manifest.json")
        manifest = json.load(open(manifest_path))
        assert manifest["format_version"] == FORMAT_VERSION
        manifest["format_version"] = 1
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        artifact = load_artifact(path)
        assert artifact.manifest["format_version"] == 1
        assert not artifact.has_checkpoint
        probe = session.data.x_eval[:8]
        direct = ServeSession.from_model(session.model)
        assert np.array_equal(
            ServeSession.load(artifact).predict(probe), direct.predict(probe)
        )

    def test_future_version_rejected(self, tmp_path, spec):
        session = TrainSession(spec)
        session.fit()
        path = str(tmp_path / "v99")
        session.export(path)
        manifest_path = os.path.join(path, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["format_version"] = 99
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ArtifactVersionError):
            load_artifact(path)

    def test_new_exports_are_current_version(self, tmp_path, spec):
        session = TrainSession(spec)
        session.fit()
        artifact = session.export(str(tmp_path / "a"))
        assert artifact.manifest["format_version"] == FORMAT_VERSION
