"""Checkpoint rotation + async writes: keep the last k, never lose the run.

``TrainSession.save_checkpoint(path, keep=k)`` rotates the displaced
checkpoint to ``<path>.keep-<epoch>`` siblings and prunes beyond ``k``
total; every survivor — current or rotated — must resume bit-identically.
``blocking=False`` moves the container write off the training thread
behind a :class:`CheckpointWrite` handle.
"""

import glob
import os

import numpy as np
import pytest

from repro.artifact import load_artifact
from repro.pipeline import CheckpointWrite, TrainSession

from pipeline_helpers import tiny_spec


def _final_state(session, tmp_path, tag):
    path = str(tmp_path / f"export-{tag}")
    session.export(path)
    art = load_artifact(path)
    return {n: art.array(n) for n in art.manifest["payloads"]}


class TestRotation:
    def test_keeps_last_k_and_prunes_the_rest(self, tmp_path):
        spec = tiny_spec(epochs=5)
        session = TrainSession(spec)
        ck = str(tmp_path / "ck")
        session.fit(checkpoint_path=ck, checkpoint_keep=3)
        siblings = sorted(glob.glob(ck + ".keep-*"))
        # current + 2 rotated = 3 kept; epochs 1..5 checkpointed, 1-2 pruned
        assert [os.path.basename(s) for s in siblings] == [
            "ck.keep-00003", "ck.keep-00004",
        ]
        assert load_artifact(ck).checkpoint_meta()["train_state"]["epoch"] == 5
        for sib, epoch in zip(siblings, (3, 4)):
            assert (
                load_artifact(sib).checkpoint_meta()["train_state"]["epoch"] == epoch
            )

    def test_keep_one_leaves_no_siblings(self, tmp_path):
        session = TrainSession(tiny_spec(epochs=3))
        ck = str(tmp_path / "ck")
        session.fit(checkpoint_path=ck, checkpoint_keep=1)
        assert glob.glob(ck + ".keep-*") == []
        assert os.path.exists(ck)

    def test_zip_rotation(self, tmp_path):
        session = TrainSession(tiny_spec(epochs=3))
        ck = str(tmp_path / "ck.zip")
        session.fit(checkpoint_path=ck, checkpoint_keep=2)
        siblings = glob.glob(str(tmp_path / "ck.keep-*.zip"))
        assert len(siblings) == 1
        assert load_artifact(siblings[0]).has_checkpoint

    def test_rotated_sibling_resumes_bit_identical(self, tmp_path):
        spec = tiny_spec(epochs=4)
        baseline = TrainSession(spec)
        baseline.fit()
        want = _final_state(baseline, tmp_path, "base")

        session = TrainSession(spec)
        ck = str(tmp_path / "ck")
        session.fit(checkpoint_path=ck, checkpoint_keep=3)
        rotated = str(tmp_path / "ck.keep-00002")
        assert os.path.exists(rotated)
        resumed = TrainSession.resume(rotated)
        resumed.fit()
        got = _final_state(resumed, tmp_path, "resumed")
        assert want.keys() == got.keys()
        for name in want:
            assert np.array_equal(want[name], got[name]), name

    def test_keep_must_be_positive(self, tmp_path):
        session = TrainSession(tiny_spec(epochs=1))
        session.fit()
        with pytest.raises(ValueError, match="keep"):
            session.save_checkpoint(str(tmp_path / "ck"), keep=0)


class TestAsyncWrites:
    def test_nonblocking_save_returns_a_handle(self, tmp_path):
        session = TrainSession(tiny_spec(epochs=2))
        session.fit(stop_after_epoch=1)
        ck = str(tmp_path / "ck")
        handle = session.save_checkpoint(ck, blocking=False)
        assert isinstance(handle, CheckpointWrite)
        artifact = handle.wait()
        assert handle.done
        assert artifact.path == ck
        assert load_artifact(ck).checkpoint_meta()["train_state"]["epoch"] == 1

    def test_async_checkpoint_resumes_bit_identical(self, tmp_path):
        spec = tiny_spec(epochs=3)
        baseline = TrainSession(spec)
        baseline.fit()
        want = _final_state(baseline, tmp_path, "base")

        session = TrainSession(spec)
        ck = str(tmp_path / "ck")
        session.fit(
            checkpoint_path=ck, checkpoint_blocking=False, stop_after_epoch=2
        )
        resumed = TrainSession.resume(ck)
        resumed.fit()
        got = _final_state(resumed, tmp_path, "resumed")
        for name in want:
            assert np.array_equal(want[name], got[name]), name

    def test_wait_for_checkpoints_is_idempotent(self, tmp_path):
        session = TrainSession(tiny_spec(epochs=1))
        session.fit()
        session.save_checkpoint(str(tmp_path / "ck"), blocking=False)
        session.wait_for_checkpoints()
        session.wait_for_checkpoints()
        assert load_artifact(str(tmp_path / "ck")).has_checkpoint
