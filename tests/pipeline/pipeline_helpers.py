"""Shared pipeline-test helpers: tiny, fast specs over the Table 2 presets."""

from __future__ import annotations

from repro.pipeline import PipelineSpec
from repro.train import DPConfig, TrainConfig

#: Mid-sweep hyperparameters per technique at the tiny bench vocab (~256).
HYPER = {
    "full": {},
    "memcom": {"num_hash_embeddings": 32},
    "tt_rec": {"tt_rank": 2},
    "hash": {"num_hash_embeddings": 32},
    "factorized": {"hidden_dim": 4},
}


def tiny_spec(
    technique: str = "memcom",
    architecture: str = "auto",
    dataset: str = "movielens",
    optimizer: str = "adam",
    epochs: int = 3,
    dp: DPConfig | None = None,
    train_overrides: dict | None = None,
    **spec_overrides,
) -> PipelineSpec:
    """A CPU-milliseconds spec: tiny vocab, 16-wide inputs, 512 examples."""
    train_kwargs = dict(epochs=epochs, batch_size=64, lr=3e-3, optimizer=optimizer, seed=0)
    train_kwargs.update(train_overrides or {})
    train = TrainConfig(**train_kwargs)
    return PipelineSpec(
        dataset=dataset,
        architecture=architecture,
        technique=technique,
        hyper=HYPER[technique],
        embedding_dim=8,
        scale=0.01,
        cap_train=512,
        cap_eval=256,
        input_length=16,
        train=train,
        dp=dp,
        seed=0,
        **spec_overrides,
    )
