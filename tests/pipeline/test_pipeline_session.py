"""TrainSession: the fit → evaluate → export → serve lifecycle."""

import numpy as np
import pytest

from repro.pipeline import PipelineSpec, TrainSession
from repro.serve.session import ServeConfig, ServeSession

from pipeline_helpers import tiny_spec


class TestLifecycle:
    def test_fit_trains_and_records_history(self, spec):
        session = TrainSession(spec)
        history = session.fit()
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.steps == len(history.train_loss) * (512 // 64)
        assert history.seconds > 0
        assert session.finished
        assert session.history is history

    def test_monitor_records_val_metric(self, spec):
        session = TrainSession(spec)
        history = session.fit()
        assert len(history.val_metric) == len(history.train_loss)
        assert not np.isnan(history.val_metric[0])
        assert history.metric_name == "ndcg"

    def test_monitor_off_skips_validation(self):
        session = TrainSession(tiny_spec(monitor=False, epochs=1))
        history = session.fit()
        assert np.isnan(history.val_metric[0])

    def test_evaluate_returns_task_metrics(self, spec):
        session = TrainSession(spec)
        session.fit()
        metrics = session.evaluate()
        assert session.metric_name == "ndcg"
        assert 0.0 <= metrics["ndcg"] <= 1.0

    def test_classification_session(self):
        session = TrainSession(tiny_spec(dataset="newsgroup", epochs=2))
        assert session.architecture == "classifier"
        session.fit()
        assert session.metric_name == "accuracy"
        assert "accuracy" in session.evaluate()

    def test_ranknet_session(self):
        session = TrainSession(tiny_spec(architecture="ranknet", epochs=2))
        history = session.fit()
        assert history.metric_name == "ndcg"
        assert "ndcg" in session.evaluate()

    def test_in_memory_continuation(self, spec):
        # fit(stop_after_epoch) → fit() must equal one uninterrupted fit.
        full = TrainSession(spec)
        full.fit()
        split = TrainSession(spec)
        split.fit(stop_after_epoch=1)
        assert not split.finished
        split.fit()
        for k, v in full.model.state_dict().items():
            assert np.array_equal(v, split.model.state_dict()[k]), k
        assert full.history.train_loss == split.history.train_loss

    def test_data_kind_mismatch_rejected(self, spec):
        pairs = tiny_spec(architecture="ranknet").load_data()
        with pytest.raises(ValueError, match="pairwise"):
            TrainSession(spec, data=pairs)

    def test_spec_type_checked(self):
        with pytest.raises(TypeError):
            TrainSession({"dataset": "movielens"})

    def test_checkpoint_before_fit_rejected(self, spec):
        with pytest.raises(ValueError, match="fit"):
            TrainSession(spec).save_checkpoint("/tmp/nowhere")


class TestExportAndServe:
    @pytest.mark.parametrize("bits", [32, 8])
    def test_export_serves_bit_identically(self, tmp_path, spec, bits):
        session = TrainSession(spec)
        session.fit()
        path = str(tmp_path / f"artifact-{bits}")
        artifact = session.export(path, bits=bits)
        assert artifact.bits == bits
        loaded = ServeSession.load(path)
        direct = ServeSession.from_model(
            session.model, ServeConfig(bits=None if bits == 32 else bits)
        )
        probe = session.data.x_eval[:32]
        assert np.array_equal(loaded.predict(probe), direct.predict(probe))

    def test_export_spec_defaults(self, tmp_path):
        session = TrainSession(tiny_spec(bits=8, epochs=1))
        session.fit()
        artifact = session.export(str(tmp_path / "a"))
        assert artifact.bits == 8

    def test_sharded_export_keeps_session_monolithic(self, tmp_path):
        from repro.core.memcom import MEmComEmbedding

        session = TrainSession(tiny_spec(shards=2, epochs=1))
        session.fit()
        path = str(tmp_path / "sharded")
        session.export(path)
        assert type(session.model.embedding) is MEmComEmbedding
        loaded = ServeSession.load(path)
        probe = session.data.x_eval[:16]
        direct = ServeSession.from_model(session.model)
        assert np.array_equal(loaded.predict(probe), direct.predict(probe))

    def test_serve_session_matches_model(self, spec):
        session = TrainSession(spec)
        session.fit()
        serve = session.serve_session(max_batch=32)
        probe = session.data.x_eval[:16]
        direct = ServeSession.from_model(session.model)
        assert np.array_equal(serve.predict(probe), direct.predict(probe))


class TestRunnerIntegration:
    def test_train_point_routes_through_pipeline(self, tiny_dataset):
        from repro.experiments.runner import ExperimentConfig, train_point

        config = ExperimentConfig(embedding_dim=8, epochs=1)
        metric, params = train_point(
            "pointwise", "memcom", {"num_hash_embeddings": 16}, tiny_dataset, config
        )
        assert 0.0 <= metric <= 1.0 and params > 0
