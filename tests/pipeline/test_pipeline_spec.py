"""PipelineSpec: up-front validation and manifest round-tripping."""

import pytest

from repro.data.synthetic import Dataset, PairwiseDataset
from repro.pipeline import PipelineSpec
from repro.train import DPConfig, TrainConfig

from pipeline_helpers import tiny_spec


class TestValidation:
    def test_defaults_valid(self):
        PipelineSpec(dataset="movielens")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"dataset": ""},
            {"architecture": "transformer"},
            {"technique": "bloom_filter"},
            {"hyper": [("k", 1)]},
            {"embedding_dim": 0},
            {"dropout": 1.0},
            {"scale": 0.0},
            {"cap_train": 0},
            {"cap_eval": -1},
            {"input_length": 0},
            {"ndcg_k": 0},
            {"bits": 16},
            {"percentile": 150.0},
            {"shards": -1},
        ],
    )
    def test_each_bad_field_raises(self, overrides):
        fields = dict(dataset="movielens")
        fields.update(overrides)
        with pytest.raises(ValueError):
            PipelineSpec(**fields)

    def test_shards_require_shardable_technique(self):
        with pytest.raises(ValueError, match="shardable"):
            PipelineSpec(dataset="movielens", technique="tt_rec",
                         hyper={"tt_rank": 2}, shards=4)
        PipelineSpec(dataset="movielens", technique="memcom", shards=4)

    def test_train_and_dp_must_be_configs(self):
        with pytest.raises(ValueError):
            PipelineSpec(dataset="movielens", train={"epochs": 3})
        with pytest.raises(ValueError):
            PipelineSpec(dataset="movielens", dp={"noise_multiplier": 1.0})

    def test_unknown_dataset_fails_at_load(self):
        spec = tiny_spec(dataset="imagenet")
        with pytest.raises(KeyError, match="imagenet"):
            spec.load_data()


class TestResolution:
    def test_auto_maps_task_to_architecture(self):
        ranking = tiny_spec(dataset="movielens")
        assert ranking.resolve_architecture(ranking.data_spec()) == "pointwise"
        cls = tiny_spec(dataset="newsgroup")
        assert cls.resolve_architecture(cls.data_spec()) == "classifier"

    def test_explicit_mismatch_rejected(self):
        spec = tiny_spec(dataset="movielens", architecture="classifier")
        with pytest.raises(ValueError, match="classification"):
            spec.resolve_architecture(spec.data_spec())

    def test_ranknet_allowed_on_any_task(self):
        # Figure 3 derives pairs from a classification-task preset.
        spec = tiny_spec(dataset="newsgroup", architecture="ranknet")
        assert spec.resolve_architecture(spec.data_spec()) == "ranknet"
        assert isinstance(spec.load_data(), PairwiseDataset)

    def test_caps_and_length_override_apply(self, spec):
        ds = spec.data_spec()
        assert ds.num_train == 512 and ds.num_eval == 256 and ds.input_length == 16

    def test_load_data_deterministic_in_seed(self, spec):
        a, b = spec.load_data(), spec.load_data()
        assert isinstance(a, Dataset)
        assert (a.x_train == b.x_train).all() and (a.y_train == b.y_train).all()


class TestManifest:
    def test_round_trip_identity(self):
        spec = tiny_spec(
            technique="tt_rec", optimizer="sgd", dp=DPConfig(0.5, l2_clip=2.0),
            shards=0, bits=8, percentile=99.9,
        )
        rebuilt = PipelineSpec.from_manifest(spec.to_manifest())
        assert rebuilt == spec

    def test_manifest_is_plain_json(self):
        import json

        blob = json.dumps(tiny_spec().to_manifest())
        assert PipelineSpec.from_manifest(json.loads(blob)) == tiny_spec()

    def test_unknown_field_rejected(self):
        data = tiny_spec().to_manifest()
        data["quantum"] = True
        with pytest.raises(ValueError):
            PipelineSpec.from_manifest(data)

    def test_missing_train_rejected(self):
        data = tiny_spec().to_manifest()
        del data["train"]
        with pytest.raises((ValueError, KeyError)):
            PipelineSpec.from_manifest(data)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            PipelineSpec.from_manifest("movielens")


class TestBuilders:
    def test_build_model_matches_architecture(self, spec):
        ds = spec.data_spec()
        model = spec.build_model(ds)
        assert type(model).__name__ == "PointwiseRanker"
        assert model.input_length == ds.input_length

    def test_build_trainer_dispatches_dp(self):
        from repro.train import DPTrainer, Trainer

        assert type(tiny_spec().build_trainer()) is Trainer
        assert type(tiny_spec(dp=DPConfig(1.0)).build_trainer()) is DPTrainer

    def test_trainer_carries_config(self):
        spec = tiny_spec(optimizer="sgd", epochs=7)
        trainer = spec.build_trainer()
        assert trainer.config == TrainConfig(
            epochs=7, batch_size=64, lr=3e-3, optimizer="sgd", seed=0
        )
