"""Shared fixtures for the pipeline tests."""

from __future__ import annotations

import pytest

from pipeline_helpers import tiny_spec


@pytest.fixture
def spec():
    return tiny_spec()
