"""Learning-rate schedules."""

import math

import numpy as np
import pytest

from repro.nn.optim import SGD, RMSProp
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealing,
    ExponentialDecay,
    LinearWarmup,
    ReduceOnPlateau,
    StepDecay,
    build_scheduler,
)
from repro.nn.tensor import Parameter


def _opt(lr=0.1):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestSchedules:
    def test_constant_never_changes(self):
        sched = ConstantLR(_opt(0.1))
        for _ in range(10):
            assert sched.step() == pytest.approx(0.1)

    def test_step_decay_halves_on_schedule(self):
        sched = StepDecay(_opt(0.1), step_size=3, gamma=0.5)
        rates = [sched.step() for _ in range(9)]
        assert rates[:2] == [pytest.approx(0.1)] * 2
        assert rates[3] == pytest.approx(0.05)
        assert rates[8] == pytest.approx(0.0125)

    def test_exponential_decay(self):
        sched = ExponentialDecay(_opt(1.0), gamma=0.5)
        assert sched.step() == pytest.approx(0.5)
        assert sched.step() == pytest.approx(0.25)

    def test_cosine_anneals_to_min(self):
        opt = _opt(1.0)
        sched = CosineAnnealing(opt, t_max=10, min_lr=0.01)
        rates = [sched.step() for _ in range(10)]
        assert rates[0] < 1.0
        assert rates[-1] == pytest.approx(0.01)
        assert rates == sorted(rates, reverse=True)

    def test_cosine_midpoint_is_halfway(self):
        sched = CosineAnnealing(_opt(1.0), t_max=10, min_lr=0.0)
        assert sched.lr_at(5) == pytest.approx(0.5)

    def test_cosine_stays_at_floor_past_horizon(self):
        sched = CosineAnnealing(_opt(1.0), t_max=5, min_lr=0.1)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.1)

    def test_warmup_ramps_then_delegates(self):
        opt = _opt(1.0)
        sched = LinearWarmup(opt, warmup=4, after=ExponentialDecay(opt, gamma=0.5))
        ramp = [sched.step() for _ in range(4)]
        assert ramp == [pytest.approx(r) for r in (0.25, 0.5, 0.75, 1.0)]
        assert sched.step() == pytest.approx(0.5)  # decay clock starts after warmup

    def test_warmup_without_after_holds_base(self):
        sched = LinearWarmup(_opt(0.2), warmup=2)
        sched.step(), sched.step()
        assert sched.step() == pytest.approx(0.2)

    def test_warmup_rejects_foreign_optimizer(self):
        with pytest.raises(ValueError):
            LinearWarmup(_opt(), warmup=2, after=ConstantLR(_opt()))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            StepDecay(_opt(), step_size=0)
        with pytest.raises(ValueError):
            ExponentialDecay(_opt(), gamma=0.0)
        with pytest.raises(ValueError):
            CosineAnnealing(_opt(), t_max=0)
        with pytest.raises(ValueError):
            LinearWarmup(_opt(), warmup=0)


class TestReduceOnPlateau:
    def test_cuts_rate_after_patience(self):
        sched = ReduceOnPlateau(_opt(0.1), factor=0.5, patience=2)
        sched.step(0.5)  # new best
        sched.step(0.4)  # stale 1
        assert sched.step(0.4) == pytest.approx(0.05)  # stale 2 → cut

    def test_improvement_resets_patience(self):
        sched = ReduceOnPlateau(_opt(0.1), factor=0.5, patience=2)
        sched.step(0.5)
        sched.step(0.4)
        sched.step(0.6)  # improvement
        assert sched.step(0.5) == pytest.approx(0.1)  # stale 1 only — no cut

    def test_respects_min_lr(self):
        sched = ReduceOnPlateau(_opt(0.1), factor=0.1, patience=1, min_lr=0.01)
        sched.step(1.0)
        for _ in range(5):
            last = sched.step(0.0)
        assert last == pytest.approx(0.01)

    def test_requires_metric(self):
        with pytest.raises(ValueError):
            ReduceOnPlateau(_opt()).step()


class TestBuildScheduler:
    @pytest.mark.parametrize("name", ["constant", "cosine", "step", "exponential", "plateau"])
    def test_builds_every_name(self, name):
        sched = build_scheduler(name, _opt(), total_steps=10)
        assert sched.current_lr > 0

    def test_exponential_lands_near_five_percent(self):
        opt = _opt(1.0)
        sched = build_scheduler("exponential", opt, total_steps=20)
        for _ in range(20):
            sched.step()
        assert opt.lr == pytest.approx(0.05, rel=1e-6)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_scheduler("linear", _opt(), 10)


class TestRMSProp:
    def test_reduces_quadratic_loss(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = RMSProp([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 0.5

    def test_momentum_variant_also_converges(self):
        p = Parameter(np.array([5.0]))
        opt = RMSProp([p], lr=0.05, momentum=0.5)
        for _ in range(150):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(float(p.data[0])) < 0.5

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], rho=1.0)
        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], momentum=1.0)
