"""Learning-rate schedules."""

import math

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.optim import SGD, RMSProp
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealing,
    ExponentialDecay,
    LinearWarmup,
    ReduceOnPlateau,
    RowWarmup,
    StepDecay,
    build_scheduler,
)
from repro.nn.sparse_grad import sparse_grads
from repro.nn.tensor import Parameter


def _opt(lr=0.1):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestSchedules:
    def test_constant_never_changes(self):
        sched = ConstantLR(_opt(0.1))
        for _ in range(10):
            assert sched.step() == pytest.approx(0.1)

    def test_step_decay_halves_on_schedule(self):
        sched = StepDecay(_opt(0.1), step_size=3, gamma=0.5)
        rates = [sched.step() for _ in range(9)]
        assert rates[:2] == [pytest.approx(0.1)] * 2
        assert rates[3] == pytest.approx(0.05)
        assert rates[8] == pytest.approx(0.0125)

    def test_exponential_decay(self):
        sched = ExponentialDecay(_opt(1.0), gamma=0.5)
        assert sched.step() == pytest.approx(0.5)
        assert sched.step() == pytest.approx(0.25)

    def test_cosine_anneals_to_min(self):
        opt = _opt(1.0)
        sched = CosineAnnealing(opt, t_max=10, min_lr=0.01)
        rates = [sched.step() for _ in range(10)]
        assert rates[0] < 1.0
        assert rates[-1] == pytest.approx(0.01)
        assert rates == sorted(rates, reverse=True)

    def test_cosine_midpoint_is_halfway(self):
        sched = CosineAnnealing(_opt(1.0), t_max=10, min_lr=0.0)
        assert sched.lr_at(5) == pytest.approx(0.5)

    def test_cosine_stays_at_floor_past_horizon(self):
        sched = CosineAnnealing(_opt(1.0), t_max=5, min_lr=0.1)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.1)

    def test_warmup_ramps_then_delegates(self):
        opt = _opt(1.0)
        sched = LinearWarmup(opt, warmup=4, after=ExponentialDecay(opt, gamma=0.5))
        ramp = [sched.step() for _ in range(4)]
        assert ramp == [pytest.approx(r) for r in (0.25, 0.5, 0.75, 1.0)]
        assert sched.step() == pytest.approx(0.5)  # decay clock starts after warmup

    def test_warmup_without_after_holds_base(self):
        sched = LinearWarmup(_opt(0.2), warmup=2)
        sched.step(), sched.step()
        assert sched.step() == pytest.approx(0.2)

    def test_warmup_rejects_foreign_optimizer(self):
        with pytest.raises(ValueError):
            LinearWarmup(_opt(), warmup=2, after=ConstantLR(_opt()))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            StepDecay(_opt(), step_size=0)
        with pytest.raises(ValueError):
            ExponentialDecay(_opt(), gamma=0.0)
        with pytest.raises(ValueError):
            CosineAnnealing(_opt(), t_max=0)
        with pytest.raises(ValueError):
            LinearWarmup(_opt(), warmup=0)


class TestReduceOnPlateau:
    def test_cuts_rate_after_patience(self):
        sched = ReduceOnPlateau(_opt(0.1), factor=0.5, patience=2)
        sched.step(0.5)  # new best
        sched.step(0.4)  # stale 1
        assert sched.step(0.4) == pytest.approx(0.05)  # stale 2 → cut

    def test_improvement_resets_patience(self):
        sched = ReduceOnPlateau(_opt(0.1), factor=0.5, patience=2)
        sched.step(0.5)
        sched.step(0.4)
        sched.step(0.6)  # improvement
        assert sched.step(0.5) == pytest.approx(0.1)  # stale 1 only — no cut

    def test_respects_min_lr(self):
        sched = ReduceOnPlateau(_opt(0.1), factor=0.1, patience=1, min_lr=0.01)
        sched.step(1.0)
        for _ in range(5):
            last = sched.step(0.0)
        assert last == pytest.approx(0.01)

    def test_requires_metric(self):
        with pytest.raises(ValueError):
            ReduceOnPlateau(_opt()).step()


V, E = 8, 3


def _table_opt(lr=0.1):
    """An SGD over one (V, E) embedding table — the row clock's substrate."""
    table = Parameter(np.ones((V, E), dtype=np.float32), name="t")
    return SGD([table], lr=lr), table


def _train_step(opt, table, ids, sparse):
    """One lookup → backward → step over ``ids`` (row clock advances)."""
    with sparse_grads(sparse):
        opt.zero_grad()
        out = ops.embedding_lookup(table, np.asarray(ids, dtype=np.int64))
        ops.sum(ops.mul(out, out)).backward()
        opt.step()


class TestRowWarmup:
    def test_full_density_matches_linear_warmup(self):
        """With every row touched every step, a row target of W·V steps
        reproduces LinearWarmup(W) exactly — same ramp, same handoff to the
        after-schedule, same post-warmup clock."""
        warmup = 4
        rates = {}
        for kind in ("rows", "steps"):
            opt, table = _table_opt(1.0)
            after = ExponentialDecay(opt, gamma=0.5)
            if kind == "rows":
                sched = RowWarmup(opt, row_target=warmup * V, after=after)
            else:
                sched = LinearWarmup(opt, warmup=warmup, after=after)
            seq = []
            for _ in range(warmup + 3):
                _train_step(opt, table, list(range(V)), sparse=False)
                seq.append(sched.step())
            rates[kind] = seq
        assert rates["rows"] == rates["steps"]

    def test_sparse_batches_hold_lr_down(self):
        """The regression the row clock exists to fix: a step-counting
        warmup exits after W steps no matter how few rows those steps
        touched; the row clock keeps the rate ramping until the full row
        volume has actually landed."""
        warmup = 3
        opt_s, table_s = _table_opt(1.0)
        step_sched = LinearWarmup(opt_s, warmup=warmup)
        opt_r, table_r = _table_opt(1.0)
        row_sched = RowWarmup(opt_r, row_target=warmup * V)
        step_rates, row_rates = [], []
        for _ in range(warmup):
            # Sparse batches touching 2 of the 8 rows.
            _train_step(opt_s, table_s, [0, 3], sparse=True)
            step_rates.append(step_sched.step())
            _train_step(opt_r, table_r, [0, 3], sparse=True)
            row_rates.append(row_sched.step())
        # Step warmup declares itself done; the row clock knows only
        # 2/8 of the row volume arrived per step.
        assert step_rates[-1] == pytest.approx(1.0)
        assert row_rates[-1] == pytest.approx(warmup * 2 / (warmup * V))
        assert all(r < 1.0 for r in row_rates)

    def test_reaches_base_exactly_when_rows_land(self):
        opt, table = _table_opt(0.5)
        sched = RowWarmup(opt, row_target=2 * V)
        _train_step(opt, table, list(range(V)), sparse=False)
        assert sched.step() == pytest.approx(0.25)
        _train_step(opt, table, list(range(V)), sparse=False)
        assert sched.step() == pytest.approx(0.5)
        assert sched.step() == pytest.approx(0.5)  # stays at base

    def test_after_clock_starts_at_row_target(self):
        opt, table = _table_opt(1.0)
        sched = RowWarmup(opt, row_target=V, after=ExponentialDecay(opt, gamma=0.5))
        _train_step(opt, table, list(range(V)), sparse=False)
        assert sched.step() == pytest.approx(1.0)  # warmup ends this step
        assert sched.step() == pytest.approx(0.5)  # decay step 1
        assert sched.step() == pytest.approx(0.25)

    def test_checkpoint_meta_roundtrip(self):
        """`_done_t` survives capture → restore, so a resumed run's
        after-schedule clock continues where it stopped."""
        from repro.train.checkpoint import _restore_scheduler, _scheduler_meta

        opt, table = _table_opt(1.0)
        sched = RowWarmup(opt, row_target=V, after=ExponentialDecay(opt, gamma=0.5))
        _train_step(opt, table, list(range(V)), sparse=False)
        sched.step()
        sched.step()  # decay step 1 → lr 0.5
        meta = _scheduler_meta(sched)

        opt2, _ = _table_opt(1.0)
        opt2.rows_applied = opt.rows_applied
        fresh = RowWarmup(opt2, row_target=V, after=ExponentialDecay(opt2, gamma=0.5))
        _restore_scheduler(fresh, meta)
        assert fresh.step() == pytest.approx(0.25)  # continues the decay clock

    def test_validation(self):
        with pytest.raises(ValueError):
            RowWarmup(_opt(), row_target=0)
        with pytest.raises(ValueError):
            RowWarmup(_opt(), row_target=4, after=ConstantLR(_opt()))

    def test_rows_applied_counts_distinct_rows(self):
        opt, table = _table_opt()
        _train_step(opt, table, [1, 1, 5, 5, 5], sparse=True)
        assert opt.rows_applied == 2  # coalesced: 2 distinct rows
        _train_step(opt, table, [2], sparse=True)
        assert opt.rows_applied == 3
        _train_step(opt, table, [0, 1], sparse=False)
        assert opt.rows_applied == 3 + V  # dense grad = every row

    def test_rows_applied_survives_state_scalars(self):
        opt, table = _table_opt()
        _train_step(opt, table, [0, 1], sparse=True)
        scalars = opt.state_scalars()
        opt2, _ = _table_opt()
        opt2.load_state_scalars(scalars)
        assert opt2.rows_applied == 2


class TestBuildScheduler:
    @pytest.mark.parametrize("name", ["constant", "cosine", "step", "exponential", "plateau"])
    def test_builds_every_name(self, name):
        sched = build_scheduler(name, _opt(), total_steps=10)
        assert sched.current_lr > 0

    def test_exponential_lands_near_five_percent(self):
        opt = _opt(1.0)
        sched = build_scheduler("exponential", opt, total_steps=20)
        for _ in range(20):
            sched.step()
        assert opt.lr == pytest.approx(0.05, rel=1e-6)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_scheduler("linear", _opt(), 10)

    def test_row_warmup_requires_row_target(self):
        with pytest.raises(ValueError):
            build_scheduler("row_warmup", _opt(), total_steps=10)
        sched = build_scheduler("row_warmup", _opt(), total_steps=10, row_target=8)
        assert isinstance(sched, RowWarmup)


class TestRMSProp:
    def test_reduces_quadratic_loss(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = RMSProp([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 0.5

    def test_momentum_variant_also_converges(self):
        p = Parameter(np.array([5.0]))
        opt = RMSProp([p], lr=0.05, momentum=0.5)
        for _ in range(150):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(float(p.data[0])) < 0.5

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], rho=1.0)
        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], momentum=1.0)
