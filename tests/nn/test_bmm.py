"""Batched matmul (the TT-Rec contraction primitive)."""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import Parameter, Tensor
from tests.helpers import check_gradients


class TestBmmForward:
    def test_matches_numpy_batched_matmul(self, rng):
        a = Tensor(rng.normal(size=(5, 3, 4)))
        b = Tensor(rng.normal(size=(5, 4, 2)))
        out = ops.bmm(a, b)
        np.testing.assert_allclose(out.data, a.data @ b.data, rtol=1e-6)

    def test_output_shape(self, rng):
        out = ops.bmm(Tensor(rng.normal(size=(7, 2, 9))), Tensor(rng.normal(size=(7, 9, 5))))
        assert out.shape == (7, 2, 5)

    def test_rejects_non_3d(self, rng):
        with pytest.raises(ValueError):
            ops.bmm(Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(3, 4, 2))))
        with pytest.raises(ValueError):
            ops.bmm(Tensor(rng.normal(size=(3, 4, 2))), Tensor(rng.normal(size=(4, 2))))

    def test_rejects_batch_mismatch(self, rng):
        with pytest.raises(ValueError):
            ops.bmm(Tensor(rng.normal(size=(3, 2, 4))), Tensor(rng.normal(size=(5, 4, 2))))

    def test_rejects_inner_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            ops.bmm(Tensor(rng.normal(size=(3, 2, 4))), Tensor(rng.normal(size=(3, 5, 2))))


class TestBmmBackward:
    def test_gradcheck_both_operands(self, rng):
        a = Parameter(rng.normal(size=(2, 3, 2)) * 0.5)
        b = Parameter(rng.normal(size=(2, 2, 3)) * 0.5)
        check_gradients(lambda: ops.sum(ops.mul(ops.bmm(a, b), ops.bmm(a, b))), [a, b])

    def test_chained_bmm_gradcheck(self, rng):
        # The exact TT-Rec pattern: two chained batched contractions.
        a = Parameter(rng.normal(size=(2, 2, 2)) * 0.5)
        b = Parameter(rng.normal(size=(2, 2, 4)) * 0.5)
        c = Parameter(rng.normal(size=(2, 4, 2)) * 0.5)
        check_gradients(lambda: ops.sum(ops.bmm(ops.bmm(a, b), c)), [a, b, c])

    def test_constant_operands_record_no_graph(self, rng):
        out = ops.bmm(Tensor(rng.normal(size=(2, 2, 2))), Tensor(rng.normal(size=(2, 2, 2))))
        assert not out.requires_grad
