"""Persistence and size accounting."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm, Dense, Sequential
from repro.nn.serialization import (
    compression_ratio,
    load_npz,
    on_disk_bytes,
    parameter_breakdown,
    save_npz,
)


def _model(seed=0):
    return Sequential(Dense(4, 8, rng=seed), BatchNorm(8), Dense(8, 2, rng=seed + 1))


class TestNpzRoundtrip:
    def test_save_load_restores_weights(self, tmp_path):
        m1, m2 = _model(0), _model(9)
        path = str(tmp_path / "model.npz")
        nbytes = save_npz(m1, path)
        assert nbytes > 0
        load_npz(m2, path)
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_save_appends_npz_suffix(self, tmp_path):
        path = str(tmp_path / "model")
        save_npz(_model(), path)
        assert (tmp_path / "model.npz").exists()

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        path = str(tmp_path / "m.npz")
        save_npz(_model(), path)
        with pytest.raises(KeyError):
            load_npz(Sequential(Dense(4, 8, rng=0)), path)


class TestSizing:
    def test_parameter_breakdown_sums_to_total(self):
        m = _model()
        breakdown = parameter_breakdown(m)
        assert sum(breakdown.values()) == m.num_parameters()
        assert "layers.0.weight" in breakdown

    def test_on_disk_bytes_includes_running_stats(self):
        m = _model()
        expected = (m.num_parameters() + 16) * 4  # 2×8 running stats
        assert on_disk_bytes(m) == expected

    def test_on_disk_bytes_scales_with_precision(self):
        m = _model()
        assert on_disk_bytes(m, bytes_per_param=2.0) * 2 == on_disk_bytes(m, bytes_per_param=4.0)

    def test_compression_ratio_from_modules_and_ints(self):
        big, small = _model(), Sequential(Dense(4, 2, rng=0))
        assert compression_ratio(big, small) == pytest.approx(
            big.num_parameters() / small.num_parameters()
        )
        assert compression_ratio(100, 25) == 4.0

    def test_compression_ratio_rejects_empty(self):
        with pytest.raises(ValueError):
            compression_ratio(100, 0)
