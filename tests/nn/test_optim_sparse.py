"""Sparse-vs-dense optimizer equivalence (DESIGN.md §5).

Every optimizer is driven through the *real* pipeline twice — embedding
lookup → backward → (optional clip) → ``step()`` — once with sparse row
gradients and once with the dense scatter-add baseline, over batch schedules
that include duplicate ids, an empty batch, and an all-rows-touched batch.

Equivalence classes:

* **exact** — plain SGD and Adagrad: a zero dense gradient produces a zero
  dense update, so skipping untouched rows is bit-for-bit the same math.
* **lazy** — Adam, RMSProp, momentum/weight-decay SGD: state decay happens
  only on touched rows.  These match dense exactly when every row is touched
  every step, never move untouched rows, and stay within a documented bound
  of the dense trajectory otherwise.
"""

import numpy as np
import pytest

from repro.core.memcom import MEmComEmbedding
from repro.nn import ops
from repro.nn.optim import SGD, Adagrad, Adam, RMSProp, clip_global_norm, global_grad_norm
from repro.nn.sparse_grad import SparseRowGrad, sparse_grads
from repro.nn.tensor import Parameter

V, E = 12, 3

# Duplicates, an empty batch, a full sweep, and skewed repeats.
BATCHES = [
    [0, 1, 1, 5, 5, 5],
    [],
    list(range(V)),
    [2, 2, 2, 2, 7],
    [11, 0, 11, 0],
]

EXACT = {
    "sgd": lambda params: SGD(params, lr=0.1),
    "adagrad": lambda params: Adagrad(params, lr=0.1),
}
LAZY = {
    "sgd_momentum": lambda params: SGD(params, lr=0.05, momentum=0.9),
    "sgd_nesterov": lambda params: SGD(params, lr=0.05, momentum=0.9, nesterov=True),
    "sgd_weight_decay": lambda params: SGD(params, lr=0.05, weight_decay=0.01),
    "adam": lambda params: Adam(params, lr=0.05),
    "adam_weight_decay": lambda params: Adam(params, lr=0.05, weight_decay=0.01),
    "rmsprop": lambda params: RMSProp(params, lr=0.05),
    "rmsprop_momentum": lambda params: RMSProp(params, lr=0.05, momentum=0.9),
}


def run_steps(factory, batches, sparse, clip=None, seed=0):
    """Drive lookup → backward → [clip] → step over ``batches``; return the
    final table and the per-step pre-clip norms."""
    rng = np.random.default_rng(seed)
    table = Parameter(rng.normal(0.0, 1.0, size=(V, E)).astype(np.float32), name="t")
    opt = factory([table])
    norms = []
    with sparse_grads(sparse):
        for idx in batches:
            idx = np.asarray(idx, dtype=np.int64)
            opt.zero_grad()
            out = ops.embedding_lookup(table, idx)
            ops.sum(ops.mul(out, out)).backward()  # d/dT = 2·T[idx], summed per id
            if clip is not None:
                norms.append(clip_global_norm([table], clip))
            opt.step()
    return table.data.copy(), norms


class TestExactEquivalence:
    @pytest.mark.parametrize("name", sorted(EXACT))
    def test_sparse_equals_dense(self, name):
        sparse, _ = run_steps(EXACT[name], BATCHES * 3, sparse=True)
        dense, _ = run_steps(EXACT[name], BATCHES * 3, sparse=False)
        np.testing.assert_allclose(sparse, dense, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("name", sorted(EXACT))
    def test_with_global_norm_clip(self, name):
        sparse, ns = run_steps(EXACT[name], BATCHES * 2, sparse=True, clip=0.75)
        dense, nd = run_steps(EXACT[name], BATCHES * 2, sparse=False, clip=0.75)
        np.testing.assert_allclose(sparse, dense, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(ns, nd, rtol=1e-5)


class TestLazyEquivalence:
    @pytest.mark.parametrize("name", sorted(LAZY))
    def test_exact_when_all_rows_touched(self, name):
        """Lazy ≡ dense when every row appears in every batch."""
        full = [list(range(V))] * 6
        sparse, _ = run_steps(LAZY[name], full, sparse=True)
        dense, _ = run_steps(LAZY[name], full, sparse=False)
        np.testing.assert_allclose(sparse, dense, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("name", sorted(LAZY))
    def test_untouched_rows_frozen(self, name):
        """The lazy path must never move a row the batches don't name —
        dense Adam/RMSProp/momentum would keep drifting them."""
        batches = [[0, 1, 1], [2, 0], [], [1, 2, 2]]
        rng = np.random.default_rng(0)
        init = rng.normal(0.0, 1.0, size=(V, E)).astype(np.float32)
        sparse, _ = run_steps(LAZY[name], batches, sparse=True)
        untouched = np.setdiff1d(np.arange(V), [0, 1, 2])
        np.testing.assert_array_equal(sparse[untouched], init[untouched])

    @pytest.mark.parametrize("name", sorted(LAZY))
    def test_divergence_bounded(self, name):
        """Documented lazy-vs-dense deviation stays small on touched rows.

        The bound is loose (each optimizer's per-step displacement is
        O(lr)), but it pins the property that lazy updates track the dense
        trajectory rather than wandering off."""
        batches = BATCHES * 2
        sparse, _ = run_steps(LAZY[name], batches, sparse=True)
        dense, _ = run_steps(LAZY[name], batches, sparse=False)
        lr, momentum = 0.05, 0.9
        # ≤ one momentum-amplified (1/(1−μ)) full-lr step of drift per step.
        bound = len(batches) * lr / (1.0 - momentum)
        assert np.max(np.abs(sparse - dense)) < bound


class TestNormHandling:
    def test_global_norm_matches_dense_with_duplicates(self):
        idx = np.array([4, 4, 4, 9])

        def norm(sparse):
            table = Parameter(np.linspace(-1, 1, V * E).reshape(V, E).astype(np.float32))
            with sparse_grads(sparse):
                ops.sum(ops.mul(ops.embedding_lookup(table, idx), ops.as_tensor(2.0))).backward()
            assert isinstance(table.raw_grad, SparseRowGrad) is sparse
            return global_grad_norm([table])

        assert norm(True) == pytest.approx(norm(False), rel=1e-6)

    def test_clip_scales_sparse_in_place_without_densifying(self):
        table = Parameter(np.ones((V, E), dtype=np.float32))
        with sparse_grads(True):
            ops.sum(ops.embedding_lookup(table, np.array([1, 1, 2]))).backward()
        pre = global_grad_norm([table])
        assert pre > 0.5
        returned = clip_global_norm([table], 0.5)
        assert returned == pytest.approx(pre, rel=1e-6)
        assert isinstance(table.raw_grad, SparseRowGrad)  # still sparse
        assert global_grad_norm([table]) == pytest.approx(0.5, rel=1e-5)

    def test_mixed_sparse_and_dense_params(self):
        table = Parameter(np.ones((V, E), dtype=np.float32))
        w = Parameter(np.ones(4, dtype=np.float32))
        with sparse_grads(True):
            ops.sum(ops.embedding_lookup(table, np.array([0, 0]))).backward()
        w.grad = np.full(4, 2.0, dtype=np.float32)
        expected = np.sqrt(2.0**2 * E + 2.0**2 * 4)  # coalesced row of 2s + dense
        assert global_grad_norm([table, w]) == pytest.approx(expected, rel=1e-6)

    def test_empty_sparse_grad_steps_are_noops(self):
        table = Parameter(np.arange(V * E, dtype=np.float32).reshape(V, E))
        before = table.data.copy()
        for factory in list(EXACT.values()) + list(LAZY.values()):
            opt = factory([table])
            table.grad = SparseRowGrad(
                np.array([], dtype=np.int64), np.zeros((0, E), np.float32), (V, E)
            )
            opt.step()
            np.testing.assert_array_equal(table.data, before)


class TestCoreTechniquesRideSparsePath:
    """The per-entity (v, 1) multiplier/bias tables flow sparse end-to-end."""

    def _loss(self, emb, idx):
        return ops.sum(ops.mul(emb(idx), emb(idx)))

    def test_memcom_tables_receive_sparse_grads(self):
        emb = MEmComEmbedding(50, 4, num_hash_embeddings=8, bias=True, rng=0)
        idx = np.array([[0, 3, 3], [49, 0, 7]])
        self._loss(emb, idx).backward()
        assert isinstance(emb.multiplier.raw_grad, SparseRowGrad)
        assert isinstance(emb.bias_table.raw_grad, SparseRowGrad)
        assert isinstance(emb.shared.raw_grad, SparseRowGrad)
        assert emb.multiplier.sparse_grad.shape == (50, 1)

    @pytest.mark.parametrize("opt_name", ["sgd", "adagrad"])
    def test_memcom_training_identical_sparse_vs_dense(self, opt_name):
        def train(sparse):
            emb = MEmComEmbedding(40, 4, num_hash_embeddings=8, bias=True, rng=3)
            opt = EXACT[opt_name](emb.parameters())
            with sparse_grads(sparse):
                for step in range(6):
                    idx = (np.arange(5) * (step + 3)) % 40
                    opt.zero_grad()
                    self._loss(emb, idx).backward()
                    opt.step()
            return emb.state_dict()

        a, b = train(True), train(False)
        assert a.keys() == b.keys()
        for key in a:
            np.testing.assert_allclose(a[key], b[key], rtol=1e-5, atol=1e-6, err_msg=key)
