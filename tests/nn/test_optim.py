"""Optimizers: update rules, state, clipping."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adagrad, Adam, clip_global_norm, global_grad_norm
from repro.nn.tensor import Parameter


def _quadratic_params(seed=0, n=4):
    rng = np.random.default_rng(seed)
    return Parameter(rng.standard_normal(n).astype(np.float64))


def _step_quadratic(opt, p, steps=200):
    for _ in range(steps):
        opt.zero_grad()
        p.grad = 2.0 * p.data  # d/dp ||p||^2
        opt.step()


class TestSGD:
    def test_vanilla_update_rule(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_converges_on_quadratic(self):
        p = _quadratic_params()
        _step_quadratic(SGD([p], lr=0.1), p)
        assert np.abs(p.data).max() < 1e-6

    def test_momentum_accelerates(self):
        p1, p2 = _quadratic_params(1), _quadratic_params(1)
        _step_quadratic(SGD([p1], lr=0.01), p1, steps=30)
        _step_quadratic(SGD([p2], lr=0.01, momentum=0.9), p2, steps=30)
        assert np.abs(p2.data).max() < np.abs(p1.data).max()

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad: no movement
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_first_step_size_is_lr(self):
        # with bias correction the first Adam step ≈ lr * sign(grad)
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-3)

    def test_converges_on_quadratic(self):
        p = _quadratic_params(2)
        _step_quadratic(Adam([p], lr=0.05), p, steps=400)
        assert np.abs(p.data).max() < 1e-3

    def test_state_grows_with_steps(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p])
        p.grad = np.ones(2)
        opt.step()
        assert opt._t == 1
        assert (opt._m[0] != 0).all()

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], beta1=1.0)


class TestAdagrad:
    def test_per_coordinate_rates(self):
        p = Parameter(np.array([0.0, 0.0]))
        opt = Adagrad([p], lr=1.0)
        p.grad = np.array([10.0, 0.1])
        opt.step()
        # both coordinates move ~lr despite 100x gradient difference
        np.testing.assert_allclose(np.abs(p.data), [1.0, 1.0], rtol=1e-4)

    def test_converges_on_quadratic(self):
        p = _quadratic_params(3)
        _step_quadratic(Adagrad([p], lr=0.5), p, steps=400)
        assert np.abs(p.data).max() < 0.05


class TestOptimizerBase:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.grad = np.ones(2)
        SGD([p], lr=0.1).zero_grad()
        assert p.grad is None


class TestClipping:
    def test_global_norm_computation(self):
        a, b = Parameter(np.zeros(2)), Parameter(np.zeros(2))
        a.grad = np.array([3.0, 0.0])
        b.grad = np.array([0.0, 4.0])
        np.testing.assert_allclose(global_grad_norm([a, b]), 5.0)

    def test_clip_scales_down(self):
        a = Parameter(np.zeros(2))
        a.grad = np.array([3.0, 4.0])
        pre = clip_global_norm([a], 1.0)
        np.testing.assert_allclose(pre, 5.0)
        np.testing.assert_allclose(np.linalg.norm(a.grad), 1.0, rtol=1e-5)

    def test_clip_leaves_small_grads_alone(self):
        a = Parameter(np.zeros(2))
        a.grad = np.array([0.3, 0.4])
        clip_global_norm([a], 1.0)
        np.testing.assert_allclose(a.grad, [0.3, 0.4])

    def test_none_grads_count_zero(self):
        assert global_grad_norm([Parameter(np.zeros(3))]) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_global_norm([Parameter(np.zeros(1))], 0.0)
