"""Hypothesis property tests on the autograd primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import ops
from repro.nn.tensor import Parameter, Tensor

floats = st.floats(-10, 10, allow_nan=False, allow_infinity=False, width=32)


def small_arrays(max_dims=3, max_side=5):
    # allow_subnormal=False: products of subnormals round to different
    # subnormals depending on association order, violating rtol checks for
    # reasons unrelated to the autograd code under test.
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=st.floats(-10, 10, allow_nan=False, allow_subnormal=False),
    )


@settings(max_examples=60, deadline=None)
@given(small_arrays())
def test_unbroadcast_is_adjoint_of_broadcast(x):
    """<broadcast(v), g> == <v, unbroadcast(g)> for all v, g — the defining
    adjoint property that makes broadcast backward correct."""
    rng = np.random.default_rng(0)
    target_shape = x.shape
    # broadcast to a larger shape by prepending an axis and expanding 1-dims
    big_shape = (3,) + tuple(s if s != 1 else 4 for s in target_shape)
    g = rng.standard_normal(big_shape)
    v = rng.standard_normal(target_shape)
    lhs = float((np.broadcast_to(v, big_shape) * g).sum())
    rhs = float((v * ops.unbroadcast(g, target_shape)).sum())
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=2))
def test_add_commutes_and_mul_distributes(x):
    a, b = Tensor(x), Tensor(x[::-1].copy())
    np.testing.assert_allclose(ops.add(a, b).data, ops.add(b, a).data)
    # atol covers the subnormal range: for |x| ~ 1e-162 the two association
    # orders underflow to denormals a whole ulp apart, where any rtol fails
    np.testing.assert_allclose(
        ops.mul(a, ops.add(b, b)).data, ops.add(ops.mul(a, b), ops.mul(a, b)).data,
        rtol=1e-5, atol=1e-300,
    )


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=2))
def test_sum_grad_is_ones(x):
    p = Parameter(x)
    ops.sum(p).backward()
    np.testing.assert_allclose(p.grad, np.ones_like(x))


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=2))
def test_mean_grad_sums_to_one(x):
    p = Parameter(x)
    ops.mean(p).backward()
    np.testing.assert_allclose(p.grad.sum(), 1.0, rtol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=3))
def test_reshape_roundtrip_preserves_grad(x):
    p = Parameter(x)
    flat = ops.reshape(p, (x.size,))
    back = ops.reshape(flat, x.shape)
    ops.sum(ops.mul(back, back)).backward()
    np.testing.assert_allclose(p.grad, 2 * x, rtol=1e-5, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 30),
    st.integers(1, 4),
    st.integers(2, 20),
)
def test_embedding_lookup_grad_counts_occurrences(v, e, n):
    """Σ lookup(table, idx) has gradient = per-row occurrence count."""
    rng = np.random.default_rng(v * 100 + n)
    table = Parameter(rng.standard_normal((v, e)))
    idx = rng.integers(0, v, size=n)
    ops.sum(ops.embedding_lookup(table, idx)).backward()
    counts = np.bincount(idx, minlength=v).astype(float)
    np.testing.assert_allclose(table.grad, np.repeat(counts[:, None], e, axis=1), rtol=1e-6)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_relu_output_nonnegative_and_idempotent(x):
    out = ops.relu(Tensor(x))
    assert (out.data >= 0).all()
    np.testing.assert_allclose(ops.relu(out).data, out.data)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_sigmoid_bounded_and_symmetric(x):
    s = ops.sigmoid(Tensor(x)).data
    s_neg = ops.sigmoid(Tensor(-x)).data
    assert ((s > 0) & (s < 1)).all()
    np.testing.assert_allclose(s + s_neg, 1.0, atol=1e-6)
