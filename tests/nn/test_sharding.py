"""Sharded-vs-monolithic equivalence (tables, models, optimizers, state).

A hash-sharded table must be a pure re-layout: forward values bit-identical
to the monolithic table, per-shard sparse gradients summing to the same
per-row totals, and optimizer trajectories matching row for row.  The model
section drives every architecture in ``repro.models`` through full
forward/backward/step loops at n_shards ∈ {1, 3, 8} and asserts the final
states agree with the monolithic run, including after a serialization
round-trip of the sharded state.
"""

import numpy as np
import pytest

from repro.core.full import FullEmbedding, ShardedFullEmbedding
from repro.core.memcom import MEmComEmbedding, ShardedMEmComEmbedding
from repro.models.builder import (
    build_classifier,
    build_pointwise_ranker,
    build_ranknet,
    shard_model,
)
from repro.nn import ops
from repro.nn.losses import ranknet_loss, softmax_cross_entropy
from repro.nn.optim import SGD, Adam, clip_global_norm
from repro.nn.serialization import load_npz, save_npz
from repro.nn.sharding import ShardedEmbedding, ShardedTable, shard_of_rows
from repro.nn.sparse_grad import SparseRowGrad
from repro.nn.tensor import Parameter

V, E = 41, 6
SHARD_COUNTS = [1, 3, 8]


def _dense_table(seed=0):
    return np.random.default_rng(seed).normal(size=(V, E)).astype(np.float32)


class TestShardedTable:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_partition_covers_every_row_once(self, n_shards):
        table = ShardedTable(_dense_table(), n_shards)
        assert sum(table.shard_sizes()) == V
        assert len(table.shards) == n_shards
        covered = np.sort(np.concatenate(table._shard_rows))
        np.testing.assert_array_equal(covered, np.arange(V))

    def test_assignment_deterministic(self):
        a = shard_of_rows(np.arange(1000), 7)
        b = shard_of_rows(np.arange(1000), 7)
        np.testing.assert_array_equal(a, b)
        assert set(np.unique(a)) <= set(range(7))

    def test_hash_balances_the_zipf_head(self):
        """The first (hottest) rows must spread across shards, not pile on
        one — the reason partitioning hashes instead of range-splitting."""
        head = shard_of_rows(np.arange(64), 4)
        counts = np.bincount(head, minlength=4)
        assert counts.max() <= 2 * counts.min() + 4

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_dense_roundtrip_and_lookup_bit_identical(self, n_shards):
        dense = _dense_table()
        table = ShardedTable(dense, n_shards)
        np.testing.assert_array_equal(table.dense(), dense)
        idx = np.random.default_rng(1).integers(0, V, size=(5, 4))
        np.testing.assert_array_equal(table.lookup(idx).numpy(), dense[idx])
        np.testing.assert_array_equal(
            table.take_rows(idx.ravel()), dense[idx].reshape(-1, E)
        )

    def test_load_dense_scatters(self):
        table = ShardedTable(_dense_table(), 3)
        replacement = _dense_table(seed=9)
        table.load_dense(replacement)
        np.testing.assert_array_equal(table.dense(), replacement)

    def test_backward_routes_local_sparse_grads(self):
        table = ShardedTable(_dense_table(), 3)
        idx = np.array([0, 0, 5, 17, 5])
        out = table.lookup(idx)
        ops.sum(ops.mul(out, out)).backward()
        dense_grad = np.zeros((V, E), dtype=np.float64)
        touched_shards = 0
        for p, rows in zip(table.shards, table._shard_rows):
            if p.raw_grad is None:
                continue
            touched_shards += 1
            assert isinstance(p.raw_grad, SparseRowGrad)
            local = p.sparse_grad  # coalesced
            dense_grad[rows[local.rows]] += local.values
        assert touched_shards == len({int(s) for s in table._shard_of[idx]})
        # Equals the monolithic gradient: 2·x per occurrence, summed.
        expected = np.zeros((V, E))
        np.add.at(expected, idx, 2.0 * table.dense()[idx])
        np.testing.assert_allclose(dense_grad, expected, rtol=1e-5, atol=1e-6)

    def test_optimizer_accepts_table_directly(self):
        table = ShardedTable(_dense_table(), 4)
        opt = Adam([table], lr=0.1)
        assert opt.params == table.shard_parameters()

    def test_clip_and_norm_accept_table_directly(self):
        """The same params list must work for the optimizer AND clipping."""
        from repro.nn.optim import global_grad_norm

        table = ShardedTable(_dense_table(), 4)
        ops.sum(table.lookup(np.array([0, 1, 2, 2]))).backward()
        norm = global_grad_norm([table])
        assert norm > 0.0
        returned = clip_global_norm([table], norm / 2.0)
        assert returned == pytest.approx(norm, rel=1e-6)
        assert global_grad_norm([table]) == pytest.approx(norm / 2.0, rel=1e-5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ShardedTable(np.zeros(5), 2)
        with pytest.raises(ValueError):
            ShardedTable(_dense_table(), 0)
        table = ShardedTable(_dense_table(), 2)
        with pytest.raises(IndexError):
            table.lookup(np.array([V]))
        with pytest.raises(TypeError):
            table.lookup(np.array([0.5]))


class TestShardedTableTraining:
    """ShardedTable vs monolithic Parameter through lookup→clip→step."""

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("clip", [None, 0.5])
    def test_adam_trajectory_matches(self, n_shards, clip):
        batches = [[0, 1, 1, 5], [], list(range(V)), [40, 0, 40]]

        def run(sharded):
            dense = _dense_table(seed=3)
            if sharded:
                table = ShardedTable(dense, n_shards)
                params = table.shard_parameters()
            else:
                table = Parameter(dense.copy())
                params = [table]
            opt = Adam(params, lr=0.05)
            for idx in batches * 3:
                idx = np.asarray(idx, dtype=np.int64)
                opt.zero_grad()
                out = table.lookup(idx) if sharded else ops.embedding_lookup(table, idx)
                ops.sum(ops.mul(out, out)).backward()
                if clip is not None:
                    clip_global_norm(params, clip)
                opt.step()
            return table.dense() if sharded else table.data

        np.testing.assert_allclose(run(True), run(False), rtol=1e-5, atol=1e-6)


def _build(architecture, technique, seed):
    builders = {
        "classifier": build_classifier,
        "pointwise": build_pointwise_ranker,
        "ranknet": build_ranknet,
    }
    hyper = {"num_hash_embeddings": 16} if technique == "memcom" else {}
    return builders[architecture](
        technique, V, 12, input_length=4, embedding_dim=8, rng=seed, **hyper
    )


def _train(model, architecture, steps=5, seed=11, optimizer="adam"):
    model.train()
    opt = (
        Adam(model.parameters(), lr=5e-3)
        if optimizer == "adam"
        else SGD(model.parameters(), lr=5e-3, momentum=0.9)
    )
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x = rng.integers(0, V, size=(6, 4))
        opt.zero_grad()
        if architecture == "ranknet":
            pos = rng.integers(0, 12, size=6)
            neg = rng.integers(0, 12, size=6)
            s_pos, s_neg = model.score_pair(x, pos, neg)
            ranknet_loss(s_pos, s_neg).backward()
        else:
            y = rng.integers(0, 12, size=6)
            softmax_cross_entropy(model(x), y).backward()
        opt.step()
    return model


class TestModelEquivalence:
    """For every model in models/: sharded ≡ monolithic with the same seed."""

    @pytest.mark.parametrize("architecture", ["classifier", "pointwise", "ranknet"])
    @pytest.mark.parametrize("technique", ["memcom", "full"])
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_forward_backward_step_matches_monolithic(
        self, architecture, technique, n_shards
    ):
        mono = _train(_build(architecture, technique, seed=7), architecture)
        sharded = _train(
            shard_model(_build(architecture, technique, seed=7), n_shards), architecture
        )
        mono_emb = mono.embedding
        sharded_emb = sharded.embedding
        if technique == "memcom":
            np.testing.assert_allclose(
                mono_emb.multiplier.data,
                sharded_emb.multiplier.dense(),
                rtol=1e-5,
                atol=1e-6,
            )
            np.testing.assert_allclose(
                mono_emb.bias_table.data,
                sharded_emb.bias_table.dense(),
                rtol=1e-5,
                atol=1e-6,
            )
            np.testing.assert_allclose(
                mono_emb.shared.data, sharded_emb.shared.data, rtol=1e-5, atol=1e-6
            )
        else:
            np.testing.assert_allclose(
                mono_emb.table.data, sharded_emb.table.dense(), rtol=1e-5, atol=1e-6
            )
        # Heads must agree too — gradients flowed through the same graph.
        mono_head = {
            k: v for k, v in mono.state_dict().items() if not k.startswith("embedding")
        }
        sharded_head = {
            k: v
            for k, v in sharded.state_dict().items()
            if not k.startswith("embedding")
        }
        assert mono_head.keys() == sharded_head.keys()
        for key in mono_head:
            np.testing.assert_allclose(
                mono_head[key], sharded_head[key], rtol=1e-5, atol=1e-6, err_msg=key
            )

    @pytest.mark.parametrize("architecture", ["classifier", "pointwise", "ranknet"])
    def test_eval_forward_bit_identical(self, architecture):
        mono = _build(architecture, "memcom", seed=2).eval()
        sharded = shard_model(_build(architecture, "memcom", seed=2), 3).eval()
        x = np.random.default_rng(0).integers(0, V, size=(5, 4))
        np.testing.assert_array_equal(mono(x).numpy(), sharded(x).numpy())

    @pytest.mark.parametrize("architecture", ["classifier", "pointwise", "ranknet"])
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_state_roundtrip(self, architecture, n_shards, tmp_path):
        trained = _train(
            shard_model(_build(architecture, "memcom", seed=4), n_shards), architecture
        )
        path = str(tmp_path / "sharded.npz")
        save_npz(trained, path)
        fresh = shard_model(_build(architecture, "memcom", seed=99), n_shards)
        load_npz(fresh, path)
        for key, value in trained.state_dict().items():
            np.testing.assert_array_equal(fresh.state_dict()[key], value, err_msg=key)
        x = np.random.default_rng(1).integers(0, V, size=(3, 4))
        np.testing.assert_array_equal(
            trained.eval()(x).numpy(), fresh.eval()(x).numpy()
        )


class TestShardedVariants:
    def test_from_monolithic_preserves_values(self):
        emb = MEmComEmbedding(V, E, num_hash_embeddings=8, bias=True, rng=6)
        emb.multiplier.data += 0.25  # make it distinguishable from init
        sharded = ShardedMEmComEmbedding.from_monolithic(emb, 3)
        np.testing.assert_array_equal(sharded.multiplier.dense(), emb.multiplier.data)
        np.testing.assert_array_equal(sharded.bias_table.dense(), emb.bias_table.data)
        np.testing.assert_array_equal(sharded.shared.data, emb.shared.data)
        back = sharded.to_monolithic()
        np.testing.assert_array_equal(back.multiplier.data, emb.multiplier.data)

    def test_memcom_same_seed_same_logical_tables(self):
        mono = MEmComEmbedding(V, E, num_hash_embeddings=8, rng=13)
        sharded = ShardedMEmComEmbedding(V, E, num_hash_embeddings=8, n_shards=4, rng=13)
        np.testing.assert_array_equal(sharded.multiplier.dense(), mono.multiplier.data)
        np.testing.assert_array_equal(sharded.shared.data, mono.shared.data)

    def test_full_roundtrip(self):
        emb = FullEmbedding(V, E, rng=5)
        sharded = emb.to_sharded(3)
        assert isinstance(sharded, ShardedFullEmbedding)
        np.testing.assert_array_equal(sharded.table.dense(), emb.table.data)
        np.testing.assert_array_equal(
            sharded.to_monolithic().table.data, emb.table.data
        )

    def test_nobias_memcom_shards(self):
        emb = MEmComEmbedding(V, E, num_hash_embeddings=8, bias=False, rng=1)
        sharded = emb.to_sharded(2)
        assert sharded.bias_table is None
        idx = np.arange(V)
        np.testing.assert_array_equal(sharded(idx).numpy(), emb(idx).numpy())

    def test_nn_sharded_embedding_matches_dense(self):
        from repro.nn.embedding import Embedding

        mono = Embedding(V, E, rng=8)
        sharded = ShardedEmbedding.from_embedding(mono, 3)
        idx = np.random.default_rng(2).integers(0, V, size=(4, 3))
        np.testing.assert_array_equal(sharded(idx).numpy(), mono(idx).numpy())
        fresh = ShardedEmbedding(V, E, n_shards=3, rng=8)
        np.testing.assert_array_equal(fresh.table.dense(), mono.weight.data)

    def test_shard_model_rejects_unshardable(self):
        model = _build("pointwise", "memcom", seed=0)
        from repro.core.quotient_remainder import QREmbedding

        model.embedding = QREmbedding(V, E, 8, rng=0)
        with pytest.raises(TypeError):
            shard_model(model, 2)

    def test_export_densifies_sharded_models(self):
        from repro.device.export import export_model

        mono = _build("pointwise", "memcom", seed=3)
        exported_mono = export_model(mono, batch_size=1)
        sharded = shard_model(_build("pointwise", "memcom", seed=3), 3)
        exported = export_model(sharded, batch_size=1)
        assert exported.weights.keys() == exported_mono.weights.keys()
        assert exported.on_disk_bytes() == exported_mono.on_disk_bytes()
