"""Gradcheck on composite graphs: chains mixing the autograd primitives.

The per-op gradcheck tests verify each backward in isolation; these verify
that *composition* is correct — shared subexpressions accumulate, broadcast
chains unwind, and the embedding scatter-add composes with downstream math.
"""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import Parameter, Tensor
from tests.helpers import check_gradients


class TestSharedSubexpressions:
    def test_reused_node_accumulates_gradient(self, rng):
        p = Parameter(rng.normal(size=(3,)) * 0.5)
        # y = p·p + p (p used three times via two paths)
        check_gradients(lambda: ops.sum(ops.add(ops.mul(p, p), p)), [p])

    def test_diamond_graph(self, rng):
        p = Parameter(rng.normal(size=(2, 3)) * 0.5)
        # Two branches off the same intermediate, recombined.
        def f():
            mid = ops.mul(p, p)
            left = ops.relu(mid)
            right = ops.tanh(mid)
            return ops.sum(ops.add(left, right))

        check_gradients(f, [p])

    def test_same_tensor_both_operands(self, rng):
        p = Parameter(rng.normal(size=(4,)) * 0.5 + 2.0)
        check_gradients(lambda: ops.sum(ops.div(p, ops.add(p, Tensor(1.0)))), [p])


class TestBroadcastChains:
    def test_memcom_like_broadcast_chain(self, rng):
        # (m, e) row times (v, 1) column plus (v, 1) bias — the exact MEmCom
        # composition — then pooled and squared.
        u = Parameter(rng.normal(size=(3, 4)) * 0.5)
        vcol = Parameter(rng.normal(size=(5, 1)) * 0.5)
        w = Parameter(rng.normal(size=(5, 1)) * 0.5)
        idx = np.array([0, 2, 1, 0, 2])

        def f():
            rows = ops.embedding_lookup(u, idx)
            out = ops.add(ops.mul(rows, vcol), w)
            pooled = ops.mean(out, axis=0)
            return ops.sum(ops.mul(pooled, pooled))

        check_gradients(f, [u, vcol, w])

    def test_scalar_broadcast_through_reduction(self, rng):
        s = Parameter(np.array(0.7))
        x = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda: ops.sum(ops.mul(x, s), axis=None), [s])

    def test_row_and_column_broadcast_together(self, rng):
        row = Parameter(rng.normal(size=(1, 4)) * 0.5)
        col = Parameter(rng.normal(size=(3, 1)) * 0.5)
        check_gradients(lambda: ops.sum(ops.exp(ops.mul(row, col))), [row, col])


class TestLookupComposition:
    def test_repeated_indices_accumulate(self, rng):
        table = Parameter(rng.normal(size=(4, 3)) * 0.5)
        idx = np.array([1, 1, 1, 2])
        out = ops.embedding_lookup(table, idx)
        ops.sum(out).backward()
        np.testing.assert_allclose(table.grad[1], 3.0, rtol=1e-6)
        np.testing.assert_allclose(table.grad[2], 1.0, rtol=1e-6)
        np.testing.assert_allclose(table.grad[0], 0.0)

    def test_lookup_into_matmul_gradcheck(self, rng):
        table = Parameter(rng.normal(size=(5, 3)) * 0.5)
        proj = Parameter(rng.normal(size=(3, 2)) * 0.5)
        idx = np.array([0, 4, 2])
        check_gradients(
            lambda: ops.sum(ops.matmul(ops.embedding_lookup(table, idx), proj)),
            [table, proj],
        )

    def test_two_lookups_same_table(self, rng):
        table = Parameter(rng.normal(size=(6, 2)) * 0.5)
        a, b = np.array([0, 1]), np.array([1, 5])
        check_gradients(
            lambda: ops.sum(
                ops.mul(ops.embedding_lookup(table, a), ops.embedding_lookup(table, b))
            ),
            [table],
        )


class TestDeepChains:
    def test_twenty_layer_chain_stays_stable(self, rng):
        p = Parameter(rng.normal(size=(4,)) * 0.1)

        def f():
            x = p
            for _ in range(20):
                x = ops.tanh(ops.add(ops.mul(x, Tensor(0.9)), Tensor(0.01)))
            return ops.sum(x)

        check_gradients(f, [p])

    def test_no_grad_blocks_graph_construction(self, rng):
        from repro.nn.tensor import no_grad

        p = Parameter(rng.normal(size=(3,)))
        with no_grad():
            out = ops.mul(p, p)
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.backward()
