"""Composite functional ops: dropout, pooling, softmax helpers."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Parameter, Tensor


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.standard_normal((8, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_zero_rate_is_identity(self, rng):
        x = Tensor(rng.standard_normal((8, 4)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_training_zeroes_and_rescales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 50)))
        out = F.dropout(x, 0.3, rng, training=True)
        zeros = (out.data == 0).mean()
        assert 0.25 < zeros < 0.35
        kept = out.data[out.data != 0]
        np.testing.assert_allclose(kept, 1.0 / 0.7, rtol=1e-5)
        # expectation preserved
        np.testing.assert_allclose(out.data.mean(), 1.0, atol=0.05)

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng, training=True)

    def test_gradient_masks_match_forward(self):
        rng = np.random.default_rng(1)
        p = Parameter(np.ones((10, 10)))
        out = F.dropout(p, 0.4, rng, training=True)
        out.sum().backward()
        # grad nonzero exactly where output nonzero
        np.testing.assert_array_equal(p.grad != 0, out.data != 0)


class TestAveragePool:
    def test_full_window_equals_mean(self, rng):
        x = rng.standard_normal((3, 8, 5)).astype(np.float32)
        out = F.average_pool1d(Tensor(x), 8)
        np.testing.assert_allclose(out.data[:, 0], x.mean(axis=1), rtol=1e-5)

    def test_partial_windows(self, rng):
        x = rng.standard_normal((2, 6, 4)).astype(np.float32)
        out = F.average_pool1d(Tensor(x), 3)
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[:, 0], x[:, :3].mean(axis=1), rtol=1e-5)

    def test_indivisible_length_rejected(self, rng):
        with pytest.raises(ValueError):
            F.average_pool1d(Tensor(rng.standard_normal((2, 7, 4))), 3)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            F.average_pool1d(Tensor(rng.standard_normal((2, 8))), 2)


class TestSoftmaxNp:
    def test_rows_sum_to_one(self, rng):
        s = F.softmax_np(rng.standard_normal((5, 7)))
        np.testing.assert_allclose(s.sum(axis=1), 1.0, rtol=1e-6)
        assert (s > 0).all()

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((3, 4))
        np.testing.assert_allclose(F.softmax_np(x), F.softmax_np(x + 100.0), rtol=1e-5)

    def test_large_logits_stable(self):
        s = F.softmax_np(np.array([[1000.0, 0.0]]))
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s[0, 0], 1.0, atol=1e-6)

    def test_log_softmax_consistent(self, rng):
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(F.log_softmax_np(x), np.log(F.softmax_np(x)), atol=1e-6)
