"""Tensor fundamentals: construction, autodiff bookkeeping, modes."""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import DEFAULT_DTYPE, Parameter, Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_scalar_becomes_float_array(self):
        t = Tensor(3)
        assert t.data.dtype == DEFAULT_DTYPE
        assert t.item() == 3.0

    def test_integer_array_promotes_to_float(self):
        t = Tensor(np.arange(4))
        assert t.data.dtype == DEFAULT_DTYPE

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.data.dtype == np.float64

    def test_explicit_dtype(self):
        t = Tensor([1.0, 2.0], dtype=np.float64)
        assert t.data.dtype == np.float64

    def test_shape_ndim_size_len(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert len(t) == 3

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))

    def test_parameter_requires_grad_and_named(self):
        p = Parameter(np.ones(3), name="w")
        assert p.requires_grad
        assert "w" in repr(p)


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_scalar_backward_seeds_ones(self):
        p = Parameter(np.array([1.0, 2.0]))
        out = ops.sum(ops.mul(p, p))
        out.backward()
        np.testing.assert_allclose(p.grad, [2.0, 4.0])

    def test_backward_accumulates_across_calls(self):
        p = Parameter(np.array([1.0, 2.0]))
        for _ in range(2):
            ops.sum(p).backward()
        np.testing.assert_allclose(p.grad, [2.0, 2.0])

    def test_zero_grad_clears(self):
        p = Parameter(np.ones(2))
        ops.sum(p).backward()
        p.zero_grad()
        assert p.grad is None

    def test_seed_gradient_shape_checked(self):
        p = Parameter(np.ones(3))
        out = ops.mul(p, p)
        with pytest.raises(ValueError, match="seed gradient shape"):
            out.backward(np.ones(2))

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = p*p + p*p: two paths, grad = 4p
        p = Parameter(np.array([3.0]))
        a = ops.mul(p, p)
        b = ops.mul(p, p)
        ops.sum(ops.add(a, b)).backward()
        np.testing.assert_allclose(p.grad, [12.0])

    def test_shared_subexpression_counted_once(self):
        p = Parameter(np.array([2.0]))
        shared = ops.mul(p, p)  # p^2
        out = ops.sum(ops.add(shared, shared))  # 2 p^2 -> d/dp = 4p
        out.backward()
        np.testing.assert_allclose(p.grad, [8.0])

    def test_interior_grad_buffers_freed(self):
        p = Parameter(np.ones(4))
        mid = ops.mul(p, p)
        out = ops.sum(mid)
        out.backward()
        assert mid.grad is None  # freed eagerly
        assert p.grad is not None

    def test_deep_chain_does_not_recurse(self):
        # would blow Python's recursion limit if backward were recursive
        p = Parameter(np.array([1.0]))
        t = p
        for _ in range(3000):
            t = ops.add(t, Tensor(0.0))
        ops.sum(t).backward()
        np.testing.assert_allclose(p.grad, [1.0])

    def test_detach_cuts_graph(self):
        p = Parameter(np.ones(2))
        d = ops.mul(p, p).detach()
        assert not d.requires_grad
        out = ops.sum(ops.mul(d, d))
        assert not out.requires_grad


class TestGradMode:
    def test_no_grad_suppresses_graph(self):
        p = Parameter(np.ones(2))
        with no_grad():
            out = ops.mul(p, p)
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestOperatorSugar:
    def test_arithmetic_dunders(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_allclose((a + 1).data, [3.0, 5.0])
        np.testing.assert_allclose((1 + a).data, [3.0, 5.0])
        np.testing.assert_allclose((a - 1).data, [1.0, 3.0])
        np.testing.assert_allclose((1 - a).data, [-1.0, -3.0])
        np.testing.assert_allclose((a * 3).data, [6.0, 12.0])
        np.testing.assert_allclose((a / 2).data, [1.0, 2.0])
        np.testing.assert_allclose((8 / a).data, [4.0, 2.0])
        np.testing.assert_allclose((-a).data, [-2.0, -4.0])
        np.testing.assert_allclose((a**2).data, [4.0, 16.0])

    def test_matmul_and_transpose_sugar(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.eye(3, dtype=np.float32))
        np.testing.assert_allclose((a @ b).data, a.data)
        np.testing.assert_allclose(a.T.data, a.data.T)

    def test_reshape_sum_mean_sugar(self):
        a = Tensor(np.arange(6, dtype=np.float32))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.reshape((3, 2)).shape == (3, 2)
        assert a.sum().item() == 15.0
        assert a.mean().item() == 2.5

    def test_grad_shape_mismatch_rejected(self):
        p = Parameter(np.ones((2, 2)))
        with pytest.raises(ValueError, match="gradient shape"):
            p._accumulate(np.ones(3))
