"""Module buffers: non-trainable state serialized with checkpoints."""

import numpy as np
import pytest

from repro.core.hashing import DoubleHashEmbedding, NaiveHashEmbedding
from repro.nn.layers import BatchNorm, Dense, Module, Sequential
from repro.nn.serialization import load_npz, save_npz
from repro.nn.tensor import Tensor


class TestNamedBuffers:
    def test_batchnorm_declares_running_stats(self):
        bn = BatchNorm(4)
        names = dict(bn.named_buffers())
        assert set(names) == {"running_mean", "running_var"}

    def test_buffers_recurse_through_children_and_lists(self):
        model = Sequential(Dense(4, 8, rng=0), BatchNorm(8))
        names = [n for n, _ in model.named_buffers()]
        assert names == ["layers.1.running_mean", "layers.1.running_var"]

    def test_state_dict_includes_buffers(self):
        bn = BatchNorm(4)
        state = bn.state_dict()
        assert "running_mean" in state and "gamma" in state

    def test_buffers_are_copies_not_views(self):
        bn = BatchNorm(4)
        state = bn.state_dict()
        state["running_mean"][:] = 99.0
        assert bn.running_mean[0] == 0.0


class TestBufferRestore:
    def test_running_stats_roundtrip_preserves_eval_output(self, rng):
        src = Sequential(Dense(4, 8, rng=0), BatchNorm(8))
        x = Tensor(rng.normal(size=(16, 4)))
        src.train()
        for _ in range(5):
            src(x)  # accumulate running statistics
        src.eval()
        expected = src(x).data

        dst = Sequential(Dense(4, 8, rng=7), BatchNorm(8))
        dst.load_state_dict(src.state_dict())
        dst.eval()
        np.testing.assert_allclose(dst(x).data, expected, rtol=1e-5)

    def test_hash_salt_roundtrips_through_npz(self, tmp_path, rng):
        src = DoubleHashEmbedding(500, 8, num_hash_embeddings=16, rng=0)
        dst = DoubleHashEmbedding(500, 8, num_hash_embeddings=16, rng=123)
        assert (src.hash_salt != dst.hash_salt).any()
        path = str(tmp_path / "dh.npz")
        save_npz(src, path)
        load_npz(dst, path)
        np.testing.assert_array_equal(src.hash_salt, dst.hash_salt)
        ids = rng.integers(0, 500, size=(4, 6))
        np.testing.assert_allclose(src(ids).data, dst(ids).data, rtol=1e-6)

    def test_salt_dtype_preserved_as_int(self, tmp_path):
        src = NaiveHashEmbedding(100, 4, 8, hash_family="universal", rng=0)
        dst = NaiveHashEmbedding(100, 4, 8, hash_family="universal", rng=5)
        path = str(tmp_path / "nh.npz")
        save_npz(src, path)
        load_npz(dst, path)
        assert dst.hash_salt.dtype == np.int64

    def test_shape_mismatch_rejected(self):
        bn = BatchNorm(4)
        state = bn.state_dict()
        state["running_mean"] = np.zeros(5)
        with pytest.raises(ValueError, match="buffer"):
            bn.load_state_dict(state)

    def test_missing_buffer_key_rejected(self):
        bn = BatchNorm(4)
        state = bn.state_dict()
        del state["running_var"]
        with pytest.raises(KeyError):
            bn.load_state_dict(state)


class TestCustomBufferDeclaration:
    def test_subclass_buffer_serialized(self):
        class WithCounter(Module):
            buffer_names = ("counter",)

            def __init__(self):
                super().__init__()
                self.counter = np.array([0], dtype=np.int64)

        m = WithCounter()
        m.counter = np.array([42], dtype=np.int64)
        n = WithCounter()
        n.load_state_dict(m.state_dict())
        assert n.counter[0] == 42
