"""Optimizer state dicts: exact round trip, mismatch rejection."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adagrad, Adam, RMSProp
from repro.nn.tensor import Parameter


def _params(rng):
    return [
        Parameter(rng.standard_normal((4, 3)).astype(np.float32), name="w"),
        Parameter(rng.standard_normal((3,)).astype(np.float32), name="b"),
    ]


def _take_steps(opt, rng, n=3):
    for _ in range(n):
        for p in opt.params:
            p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
        opt.step()
        opt.zero_grad()


OPTIMIZERS = [
    lambda p: SGD(p, lr=0.05, momentum=0.9),
    lambda p: Adam(p, lr=1e-3),
    lambda p: Adagrad(p, lr=0.01),
    lambda p: RMSProp(p, lr=1e-3, momentum=0.5),
]


class TestRoundTrip:
    @pytest.mark.parametrize("make", OPTIMIZERS)
    def test_stepping_after_restore_matches(self, make):
        """Fresh optimizer + restored state must continue exactly as the
        original would have."""
        rng = np.random.default_rng(0)
        data = rng.standard_normal((4, 3)).astype(np.float32)

        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        params_a = _params(np.random.default_rng(2))
        params_b = [Parameter(p.data.copy(), name=p.name) for p in params_a]
        opt_a, opt_b = make(params_a), make(params_b)
        _take_steps(opt_a, rng_a)
        _take_steps(opt_b, rng_b)

        # Serialize A, rebuild a fresh optimizer over A's params, restore.
        state, scalars = opt_a.state_dict(), opt_a.state_scalars()
        restored = make(params_a)
        restored.load_state_dict(state)
        restored.load_state_scalars(scalars)

        _take_steps(restored, rng_a)
        _take_steps(opt_b, rng_b)
        for pa, pb in zip(params_a, params_b):
            assert np.array_equal(pa.data, pb.data)
        assert data is not None  # silence lint on unused seed draw

    def test_state_dict_copies(self):
        opt = Adam(_params(np.random.default_rng(0)))
        _take_steps(opt, np.random.default_rng(1))
        state = opt.state_dict()
        state["m.0"][...] = 123.0
        assert not np.array_equal(state["m.0"], opt._m[0])

    def test_adam_t_survives(self):
        opt = Adam(_params(np.random.default_rng(0)))
        _take_steps(opt, np.random.default_rng(1), n=5)
        fresh = Adam(opt.params)
        fresh.load_state_dict(opt.state_dict())
        fresh.load_state_scalars(opt.state_scalars())
        assert fresh._t == 5

    def test_lr_survives(self):
        opt = SGD(_params(np.random.default_rng(0)), lr=0.05)
        opt.lr = 0.0125  # schedule-decayed
        fresh = SGD(opt.params, lr=0.05)
        fresh.load_state_scalars(opt.state_scalars())
        assert fresh.lr == 0.0125


class TestMismatch:
    def test_unexpected_slot_rejected(self):
        opt = Adagrad(_params(np.random.default_rng(0)))
        state = opt.state_dict()
        state["acc.7"] = np.zeros(3, dtype=np.float32)
        with pytest.raises(KeyError, match="unexpected"):
            opt.load_state_dict(state)

    def test_missing_slot_rejected(self):
        opt = Adam(_params(np.random.default_rng(0)))
        state = opt.state_dict()
        del state["v.1"]
        with pytest.raises(KeyError, match="missing"):
            opt.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        opt = SGD(_params(np.random.default_rng(0)), momentum=0.9)
        state = opt.state_dict()
        state["velocity.0"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)

    def test_momentum_free_rmsprop_has_no_vel(self):
        opt = RMSProp(_params(np.random.default_rng(0)))
        assert all(not k.startswith("vel.") for k in opt.state_dict())
