"""Full embedding layer."""

import numpy as np
import pytest

from repro.nn.embedding import Embedding


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(20, 5, rng=0)
        out = emb(rng.integers(0, 20, size=(3, 7)))
        assert out.shape == (3, 7, 5)
        assert emb.output_dim == 5

    def test_lookup_values(self):
        emb = Embedding(10, 4, rng=0)
        idx = np.array([1, 9])
        np.testing.assert_array_equal(emb(idx).data, emb.weight.data[idx])

    def test_keras_style_init_range(self):
        emb = Embedding(1000, 16, rng=0)
        assert emb.weight.data.min() >= -0.05
        assert emb.weight.data.max() <= 0.05

    def test_param_count(self):
        assert Embedding(100, 8, rng=0).num_parameters() == 800

    def test_gradient_flows_to_looked_up_rows_only(self):
        emb = Embedding(10, 4, rng=0)
        emb(np.array([2, 2, 5])).sum().backward()
        grad_rows = np.flatnonzero(np.abs(emb.weight.grad).sum(axis=1))
        np.testing.assert_array_equal(grad_rows, [2, 5])
        np.testing.assert_allclose(emb.weight.grad[2], 2.0)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)
        with pytest.raises(ValueError):
            Embedding(4, 0)

    def test_determinism_with_seed(self):
        e1, e2 = Embedding(10, 4, rng=42), Embedding(10, 4, rng=42)
        np.testing.assert_array_equal(e1.weight.data, e2.weight.data)
