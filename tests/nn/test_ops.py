"""Forward correctness + finite-difference gradient checks for every op."""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import Parameter, Tensor
from tests.helpers import check_gradients


def _param(shape, seed=0, scale=1.0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return Parameter((rng.standard_normal(shape) * scale).astype(dtype))


class TestElementwiseForward:
    def test_add_broadcasts(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.arange(3.0))
        np.testing.assert_allclose(
            ops.add(a, b).data, np.broadcast_to(1.0 + np.arange(3.0), (2, 3))
        )

    def test_div_matches_numpy(self):
        a, b = Tensor([6.0, 8.0]), Tensor([2.0, 4.0])
        np.testing.assert_allclose(ops.div(a, b).data, [3.0, 2.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            ops.pow(Tensor([1.0]), Tensor([2.0]))

    def test_relu_clamps(self):
        out = ops.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_extremes_are_stable(self):
        out = ops.sigmoid(Tensor([-500.0, 0.0, 500.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-6)
        assert np.isfinite(out.data).all()

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 5)
        np.testing.assert_allclose(ops.tanh(Tensor(x)).data, np.tanh(x), rtol=1e-6)

    def test_exp_log_sqrt(self):
        x = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(ops.exp(Tensor(x)).data, np.exp(x), rtol=1e-6)
        np.testing.assert_allclose(ops.log(Tensor(x)).data, np.log(x), rtol=1e-6)
        np.testing.assert_allclose(ops.sqrt(Tensor(x)).data, np.sqrt(x), rtol=1e-6)

    def test_muladd_matches_unfused(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(4, 3)))
        b = Tensor(rng.normal(size=(4, 1)))
        c = Tensor(rng.normal(size=(4, 1)))
        np.testing.assert_allclose(
            ops.muladd(a, b, c).data, a.data * b.data + c.data, rtol=1e-6
        )

    def test_muladd_addend_may_broadcast_wider(self):
        # c broader than a*b: the fused in-place add must fall back cleanly.
        out = ops.muladd(Tensor(np.ones((3, 1))), Tensor(np.ones((3, 1))), Tensor(np.ones((3, 4))))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data, 2.0)


class TestGradients:
    def test_add_with_broadcast(self):
        a, b = _param((3, 4), 1), _param((4,), 2)
        check_gradients(lambda: ops.sum(ops.add(a, b)), [a, b])

    def test_sub_with_broadcast(self):
        a, b = _param((3, 4), 1), _param((3, 1), 2)
        check_gradients(lambda: ops.sum(ops.sub(a, b)), [a, b])

    def test_muladd_with_broadcast(self):
        a, b, c = _param((3, 4), 1), _param((3, 1), 2), _param((3, 1), 3)
        check_gradients(lambda: ops.sum(ops.muladd(a, b, c)), [a, b, c])

    def test_mul_with_broadcast(self):
        a, b = _param((2, 3), 3), _param((3,), 4)
        check_gradients(lambda: ops.sum(ops.mul(a, b)), [a, b])

    def test_div(self):
        a, b = _param((2, 3), 5), Parameter(np.random.default_rng(6).uniform(0.5, 2.0, (2, 3)))
        check_gradients(lambda: ops.sum(ops.div(a, b)), [a, b])

    def test_pow(self):
        a = Parameter(np.random.default_rng(7).uniform(0.5, 2.0, (4,)))
        check_gradients(lambda: ops.sum(ops.pow(a, 3.0)), [a])

    def test_matmul_2d(self):
        a, b = _param((3, 4), 8, 0.5), _param((4, 2), 9, 0.5)
        check_gradients(lambda: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_3d_times_2d(self):
        a, b = _param((2, 3, 4), 10, 0.5), _param((4, 5), 11, 0.5)
        check_gradients(lambda: ops.sum(ops.matmul(a, b)), [a, b])

    def test_sum_axis_keepdims(self):
        a = _param((3, 4), 12)
        check_gradients(lambda: ops.sum(ops.mul(ops.sum(a, axis=1, keepdims=True), a)), [a])

    def test_mean_axis(self):
        a = _param((2, 3, 4), 13)
        check_gradients(lambda: ops.sum(ops.mul(ops.mean(a, axis=(0, 2)), Tensor(np.arange(3.0)))), [a])

    def test_mean_all(self):
        a = _param((5,), 14)
        check_gradients(lambda: ops.mean(ops.mul(a, a)), [a])

    def test_reshape_transpose(self):
        a = _param((2, 6), 15)
        check_gradients(
            lambda: ops.sum(ops.mul(ops.transpose(ops.reshape(a, (3, 4))), Tensor(np.ones((4, 3))))),
            [a],
        )

    def test_transpose_with_axes(self):
        a = _param((2, 3, 4), 16)
        check_gradients(
            lambda: ops.sum(ops.mul(ops.transpose(a, (2, 0, 1)), Tensor(np.ones((4, 2, 3))))),
            [a],
        )

    def test_concat(self):
        a, b = _param((2, 3), 17), _param((2, 5), 18)
        weights = Tensor(np.random.default_rng(19).standard_normal((2, 8)))
        check_gradients(lambda: ops.sum(ops.mul(ops.concat([a, b], axis=1), weights)), [a, b])

    def test_unary_nonlinearities(self):
        for op in (ops.relu, ops.sigmoid, ops.tanh, ops.exp):
            a = _param((6,), 20, 0.8)
            check_gradients(lambda op=op: ops.sum(op(a)), [a])

    def test_log_sqrt_positive_domain(self):
        a = Parameter(np.random.default_rng(21).uniform(0.5, 3.0, (5,)))
        check_gradients(lambda: ops.sum(ops.log(a)), [a])
        check_gradients(lambda: ops.sum(ops.sqrt(a)), [a])


class TestMatmulValidation:
    def test_rhs_must_be_2d(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(np.ones((2, 3))), Tensor(np.ones((3, 2, 2))))

    def test_lhs_must_be_at_least_2d(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(np.ones(3)), Tensor(np.ones((3, 2))))


class TestEmbeddingLookup:
    def test_forward_gathers_rows(self):
        table = Parameter(np.arange(12.0).reshape(4, 3))
        idx = np.array([[0, 2], [3, 3]])
        out = ops.embedding_lookup(table, idx)
        np.testing.assert_allclose(out.data, table.data[idx])

    def test_backward_scatter_adds_duplicates(self):
        table = Parameter(np.zeros((4, 2)))
        idx = np.array([1, 1, 3])
        ops.sum(ops.embedding_lookup(table, idx)).backward()
        expected = np.zeros((4, 2))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(table.grad, expected)

    def test_gradcheck(self):
        table = _param((5, 3), 22)
        idx = np.array([[0, 4, 2], [2, 2, 1]])
        w = Tensor(np.random.default_rng(23).standard_normal((2, 3, 3)))
        check_gradients(lambda: ops.sum(ops.mul(ops.embedding_lookup(table, idx), w)), [table])

    def test_out_of_range_rejected(self):
        table = Parameter(np.zeros((4, 2)))
        with pytest.raises(IndexError):
            ops.embedding_lookup(table, np.array([4]))
        with pytest.raises(IndexError):
            ops.embedding_lookup(table, np.array([-1]))

    def test_float_indices_rejected(self):
        table = Parameter(np.zeros((4, 2)))
        with pytest.raises(TypeError):
            ops.embedding_lookup(table, np.array([0.5]))

    def test_table_must_be_2d(self):
        with pytest.raises(ValueError):
            ops.embedding_lookup(Parameter(np.zeros(4)), np.array([0]))


class TestBatchNormOp:
    def test_normalizes_batch(self):
        x = Tensor(np.random.default_rng(24).standard_normal((64, 8)))
        gamma, beta = Parameter(np.ones(8)), Parameter(np.zeros(8))
        out, mu, var = ops.batch_norm(x, gamma, beta, eps=1e-5)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)
        np.testing.assert_allclose(mu, x.data.mean(axis=0), atol=1e-6)
        np.testing.assert_allclose(var, x.data.var(axis=0), atol=1e-6)

    def test_gradcheck_all_inputs(self):
        x = _param((8, 3), 25)
        gamma = Parameter(np.random.default_rng(26).uniform(0.5, 1.5, 3))
        beta = _param((3,), 27)
        w = Tensor(np.random.default_rng(28).standard_normal((8, 3)))

        def f():
            out, _, _ = ops.batch_norm(x, gamma, beta, eps=1e-3)
            return ops.sum(ops.mul(out, w))

        check_gradients(f, [x, gamma, beta])


class TestUnbroadcast:
    def test_exact_shape_passthrough(self):
        g = np.ones((2, 3))
        assert ops.unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(ops.unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(ops.unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(ops.unbroadcast(g, ()), 6.0)
