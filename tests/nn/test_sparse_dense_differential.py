"""Differential fuzz: sparse row-gradient path vs dense baseline.

A seeded randomized sweep over every optimizer family × index-pattern ×
clipping combination, driving the *real* pipeline (lookup → backward →
[clip] → step) twice — sparse (``IndexedSlices`` semantics) and dense
scatter-add — and asserting agreement to the documented lazy-semantics
tolerances of DESIGN.md §5:

* **exact** optimizers (plain SGD, Adagrad): the trajectories must agree to
  float tolerance for *every* generated schedule.
* **lazy** optimizers (Adam, RMSProp, momentum/Nesterov/weight-decay SGD):
  exact agreement when every row is touched every step; otherwise untouched
  rows must stay frozen and touched rows must stay within the documented
  momentum-amplified drift bound of the dense trajectory.

The hand-picked cases live in ``test_optim_sparse.py``; this sweep exists
to hit the combinations nobody thought to hand-pick (duplicate-heavy
batches, empty batches interleaved with full sweeps, clip kicking in on
some steps only).
"""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.optim import SGD, Adagrad, Adam, RMSProp, clip_global_norm
from repro.nn.sparse_grad import sparse_grads
from repro.nn.tensor import Parameter

V, E = 17, 4
SEEDS = [0, 1, 2, 3, 4]

# All 4 optimizer families; the sparse equivalence class is part of the
# contract being fuzzed (DESIGN.md §5).
OPTIMIZERS = {
    "sgd": (lambda params: SGD(params, lr=0.08), "exact"),
    "adagrad": (lambda params: Adagrad(params, lr=0.08), "exact"),
    "sgd_momentum": (lambda params: SGD(params, lr=0.04, momentum=0.9), "lazy"),
    "sgd_nesterov": (
        lambda params: SGD(params, lr=0.04, momentum=0.9, nesterov=True),
        "lazy",
    ),
    "sgd_weight_decay": (lambda params: SGD(params, lr=0.04, weight_decay=0.02), "lazy"),
    "adam": (lambda params: Adam(params, lr=0.04), "lazy"),
    "adam_weight_decay": (lambda params: Adam(params, lr=0.04, weight_decay=0.02), "lazy"),
    "rmsprop": (lambda params: RMSProp(params, lr=0.04), "lazy"),
    "rmsprop_momentum": (lambda params: RMSProp(params, lr=0.04, momentum=0.9), "lazy"),
}

#: max |sparse − dense| per step for lazy optimizers: one momentum-amplified
#: full-lr displacement per step (the DESIGN.md §5 drift bound).
LAZY_DRIFT_PER_STEP = 0.04 / (1.0 - 0.9)


def _batches(pattern: str, rng: np.random.Generator, steps: int = 12) -> list[np.ndarray]:
    """Randomized index schedules per pattern family."""
    out = []
    for step in range(steps):
        if pattern == "dup":
            # Duplicate-heavy: few distinct ids, many repeats, random sizes.
            distinct = rng.integers(1, 5)
            ids = rng.choice(V, size=distinct, replace=False)
            out.append(rng.choice(ids, size=rng.integers(distinct, 2 * V)))
        elif pattern == "empty":
            # Sparse traffic with empty batches interleaved.
            if rng.random() < 0.4:
                out.append(np.empty(0, dtype=np.int64))
            else:
                out.append(rng.integers(0, V, size=rng.integers(1, 6)))
        elif pattern == "full":
            # Full coverage: a permutation of all rows every step (lazy ≡
            # dense here), with random duplicates stacked on top.
            extra = rng.integers(0, V, size=rng.integers(0, 5))
            out.append(np.concatenate([rng.permutation(V), extra]))
        else:  # pragma: no cover - unknown pattern is a test bug
            raise KeyError(pattern)
    return out


def _run(factory, batches, sparse, clip):
    rng = np.random.default_rng(99)
    table = Parameter(rng.normal(0.0, 1.0, size=(V, E)).astype(np.float32))
    opt = factory([table])
    norms = []
    with sparse_grads(sparse):
        for idx in batches:
            idx = np.asarray(idx, dtype=np.int64)
            opt.zero_grad()
            out = ops.embedding_lookup(table, idx)
            # Size-normalized quadratic: d/dT[i] accumulates (2/n)·T[i] per
            # hit, so duplicate-heavy batches stay in the stable-lr regime
            # (unstable dynamics would amplify float noise, not semantics).
            loss = ops.mul(
                ops.sum(ops.mul(out, out)), ops.as_tensor(1.0 / max(1, idx.size))
            )
            loss.backward()
            if clip is not None:
                norms.append(clip_global_norm([table], clip))
            opt.step()
    return table.data.copy(), norms


@pytest.mark.parametrize("clip", [None, 0.8], ids=["noclip", "clip"])
@pytest.mark.parametrize("pattern", ["dup", "empty", "full"])
@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
@pytest.mark.parametrize("seed", SEEDS)
def test_sparse_vs_dense(name, pattern, clip, seed):
    factory, kind = OPTIMIZERS[name]
    rng = np.random.default_rng(seed)
    batches = _batches(pattern, rng)

    sparse, sparse_norms = _run(factory, batches, sparse=True, clip=clip)
    dense, dense_norms = _run(factory, batches, sparse=False, clip=clip)

    if kind == "exact" or pattern == "full":
        # Exact class, or lazy with every row touched every step: the sparse
        # branch performs the identical per-row float math, so trajectories
        # — and therefore every step's pre-clip gradient norm — agree.
        np.testing.assert_allclose(sparse_norms, dense_norms, rtol=1e-4)
        np.testing.assert_allclose(sparse, dense, rtol=2e-4, atol=2e-5)
        return
    # Lazy on partial coverage: trajectories (hence later gradients and
    # norms) legitimately diverge within the drift bound — only the frozen-
    # row and bounded-drift contracts apply.

    # Untouched rows must be frozen ...
    touched = np.unique(np.concatenate([np.asarray(b) for b in batches]))
    untouched = np.setdiff1d(np.arange(V), touched)
    init = np.random.default_rng(99).normal(0.0, 1.0, size=(V, E)).astype(np.float32)
    np.testing.assert_array_equal(sparse[untouched], init[untouched])
    # ... and touched rows bounded within the documented drift of dense.
    drift = np.max(np.abs(sparse - dense))
    assert drift < len(batches) * LAZY_DRIFT_PER_STEP, (
        f"lazy drift {drift:.4f} exceeds documented bound for {name}/{pattern}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_gradients_identical_before_any_optimizer(seed):
    """The representations themselves agree: densified sparse grad ==
    dense scatter-add grad for random duplicate-heavy index tensors."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, V, size=(rng.integers(1, 6), rng.integers(1, 9)))

    def grad(sparse):
        table = Parameter(rng.normal(size=(V, E)).astype(np.float32))
        table.data[:] = np.arange(V * E, dtype=np.float32).reshape(V, E)
        with sparse_grads(sparse):
            lookup = ops.embedding_lookup(table, idx)
            ops.sum(ops.mul(lookup, ops.as_tensor(3.0))).backward()
        return table.grad  # densifies lazily on access

    np.testing.assert_allclose(grad(True), grad(False), rtol=1e-6, atol=1e-6)
