"""Loss functions: values against manual computation + gradient checks."""

import numpy as np
import pytest

from repro.nn.functional import softmax_np
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    mse_loss,
    ranknet_loss,
    softmax_cross_entropy,
)
from repro.nn.tensor import Parameter
from tests.helpers import check_gradients


class TestSoftmaxCrossEntropy:
    def test_matches_manual_value(self, rng):
        logits = Parameter(rng.standard_normal((6, 4)))
        labels = rng.integers(0, 4, size=6)
        loss = softmax_cross_entropy(logits, labels)
        probs = softmax_np(logits.data)
        manual = -np.log(probs[np.arange(6), labels]).mean()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-5)

    def test_perfect_prediction_loss_near_zero(self):
        logits = Parameter(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_uniform_logits_give_log_c(self):
        c = 7
        logits = Parameter(np.zeros((3, c)))
        loss = softmax_cross_entropy(logits, np.zeros(3, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(c), rtol=1e-5)

    def test_gradient_is_probs_minus_onehot(self, rng):
        logits = Parameter(rng.standard_normal((5, 3)))
        labels = rng.integers(0, 3, size=5)
        softmax_cross_entropy(logits, labels).backward()
        probs = softmax_np(logits.data)
        probs[np.arange(5), labels] -= 1
        np.testing.assert_allclose(logits.grad, probs / 5, rtol=1e-4, atol=1e-6)

    def test_gradcheck(self, rng):
        logits = Parameter(rng.standard_normal((4, 3)))
        labels = rng.integers(0, 3, size=4)
        check_gradients(lambda: softmax_cross_entropy(logits, labels), [logits])

    def test_huge_logits_stable(self):
        logits = Parameter(np.array([[1e4, -1e4]]))
        loss = softmax_cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())

    def test_validation(self, rng):
        logits = Parameter(rng.standard_normal((3, 2)))
        with pytest.raises(TypeError):
            softmax_cross_entropy(logits, np.array([0.5, 0.5, 0.5]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(logits, np.array([0, 1]))
        with pytest.raises(IndexError):
            softmax_cross_entropy(logits, np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(Parameter(np.zeros(3)), np.array([0, 1, 2]))


class TestRankNetLoss:
    def test_value_matches_manual(self, rng):
        s_pos = Parameter(rng.standard_normal(8))
        s_neg = Parameter(rng.standard_normal(8))
        loss = ranknet_loss(s_pos, s_neg)
        manual = np.log1p(np.exp(-(s_pos.data - s_neg.data))).mean()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-5)

    def test_correct_order_low_loss(self):
        s_pos = Parameter(np.full(4, 10.0))
        s_neg = Parameter(np.zeros(4))
        assert ranknet_loss(s_pos, s_neg).item() < 1e-3

    def test_wrong_order_high_loss(self):
        s_pos = Parameter(np.zeros(4))
        s_neg = Parameter(np.full(4, 10.0))
        assert ranknet_loss(s_pos, s_neg).item() > 5.0

    def test_equal_scores_log2(self):
        s = Parameter(np.zeros(3))
        np.testing.assert_allclose(
            ranknet_loss(s, Parameter(np.zeros(3))).item(), np.log(2), rtol=1e-5
        )

    def test_gradients_antisymmetric(self, rng):
        s_pos = Parameter(rng.standard_normal(6))
        s_neg = Parameter(rng.standard_normal(6))
        ranknet_loss(s_pos, s_neg).backward()
        np.testing.assert_allclose(s_pos.grad, -s_neg.grad, rtol=1e-5)
        assert (s_pos.grad < 0).all()  # pushing positive scores up

    def test_gradcheck(self, rng):
        s_pos = Parameter(rng.standard_normal(5))
        s_neg = Parameter(rng.standard_normal(5))
        check_gradients(lambda: ranknet_loss(s_pos, s_neg), [s_pos, s_neg])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ranknet_loss(Parameter(np.zeros(3)), Parameter(np.zeros(4)))

    def test_extreme_diff_stable(self):
        loss = ranknet_loss(Parameter(np.array([-1e4])), Parameter(np.array([1e4])))
        assert np.isfinite(loss.item())


class TestBCEWithLogits:
    def test_matches_manual(self, rng):
        logits = Parameter(rng.standard_normal((4, 3)))
        targets = (rng.random((4, 3)) > 0.5).astype(np.float32)
        loss = binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-4)

    def test_gradcheck(self, rng):
        logits = Parameter(rng.standard_normal((3, 2)))
        targets = (rng.random((3, 2)) > 0.5).astype(np.float64)
        check_gradients(lambda: binary_cross_entropy_with_logits(logits, targets), [logits])

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(Parameter(np.zeros((2, 2))), np.zeros(3))


class TestMSE:
    def test_value(self):
        pred = Parameter(np.array([1.0, 2.0]))
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_gradcheck(self, rng):
        pred = Parameter(rng.standard_normal(5))
        target = rng.standard_normal(5)
        check_gradients(lambda: mse_loss(pred, target), [pred])

    def test_zero_at_target(self, rng):
        t = rng.standard_normal(4)
        assert mse_loss(Parameter(t.copy()), t).item() == 0.0
