"""Module system and layers: traversal, modes, state dicts, semantics."""

import numpy as np
import pytest

from repro.nn.layers import (
    AveragePooling1D,
    BatchNorm,
    Dense,
    Dropout,
    Flatten,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.tensor import Parameter, Tensor
from tests.helpers import check_gradients


def _mlp(seed=0):
    return Sequential(
        Dense(4, 8, activation="relu", rng=seed),
        Dropout(0.1, rng=seed),
        BatchNorm(8),
        Dense(8, 3, rng=seed + 1),
    )


class TestModule:
    def test_named_parameters_deterministic_order(self):
        m = _mlp()
        names = [n for n, _ in m.named_parameters()]
        assert names == [
            "layers.0.weight",
            "layers.0.bias",
            "layers.2.gamma",
            "layers.2.beta",
            "layers.3.weight",
            "layers.3.bias",
        ]

    def test_num_parameters(self):
        m = _mlp()
        assert m.num_parameters() == (4 * 8 + 8) + (8 + 8) + (8 * 3 + 3)

    def test_modules_walks_children(self):
        m = _mlp()
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds == ["Sequential", "Dense", "Dropout", "BatchNorm", "Dense"]

    def test_train_eval_propagates(self):
        m = _mlp()
        m.eval()
        assert all(not x.training for x in m.modules())
        m.train()
        assert all(x.training for x in m.modules())

    def test_zero_grad_clears_all(self, rng):
        m = _mlp()
        out = m(Tensor(rng.standard_normal((4, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_state_dict_roundtrip(self, rng):
        m1, m2 = _mlp(seed=0), _mlp(seed=99)
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        m = _mlp()
        sd = m.state_dict()
        sd["layers.0.weight"][:] = 0
        assert not (m.parameters()[0].data == 0).all()

    def test_load_state_dict_rejects_mismatched_keys(self):
        m = _mlp()
        with pytest.raises(KeyError):
            m.load_state_dict({"nope": np.zeros(1)})

    def test_load_state_dict_rejects_bad_shape(self):
        m = _mlp()
        sd = m.state_dict()
        sd["layers.0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)


class TestDense:
    def test_forward_matches_manual(self, rng):
        d = Dense(3, 2, rng=0)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        out = d(Tensor(x))
        np.testing.assert_allclose(out.data, x @ d.weight.data + d.bias.data, rtol=1e-5)

    def test_no_bias(self):
        d = Dense(3, 2, use_bias=False, rng=0)
        assert d.bias is None
        assert d.num_parameters() == 6

    def test_activations(self, rng):
        x = Tensor(rng.standard_normal((4, 3)))
        assert (Dense(3, 2, activation="relu", rng=0)(x).data >= 0).all()
        out = Dense(3, 2, activation="sigmoid", rng=0)(x).data
        assert ((out > 0) & (out < 1)).all()
        out = Dense(3, 2, activation="tanh", rng=0)(x).data
        assert ((out > -1) & (out < 1)).all()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 2)
        with pytest.raises(ValueError):
            Dense(2, 2, activation="gelu")

    def test_3d_input(self, rng):
        d = Dense(4, 6, rng=0)
        out = d(Tensor(rng.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_gradcheck(self):
        d = Dense(3, 2, rng=0)
        d.weight.data = d.weight.data.astype(np.float64)
        d.bias.data = d.bias.data.astype(np.float64)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 3)))
        check_gradients(lambda: d(x).sum(), [d.weight, d.bias])


class TestBatchNorm:
    def test_train_normalizes(self, rng):
        bn = BatchNorm(6)
        x = Tensor(rng.standard_normal((128, 6)) * 3 + 5)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=0.05)

    def test_running_stats_move_toward_batch(self, rng):
        bn = BatchNorm(4, momentum=0.5)
        x = Tensor(rng.standard_normal((256, 4)) + 10.0)
        bn(x)
        assert (bn.running_mean > 4.0).all()

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm(4, momentum=0.0)  # running stats = last batch
        x = rng.standard_normal((512, 4)) * 2 + 3
        bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-2)

    def test_eval_batch_of_one_works(self, rng):
        bn = BatchNorm(4)
        bn(Tensor(rng.standard_normal((64, 4))))
        bn.eval()
        out = bn(Tensor(rng.standard_normal((1, 4))))
        assert out.shape == (1, 4)
        assert np.isfinite(out.data).all()

    def test_wrong_feature_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(4)(Tensor(rng.standard_normal((8, 5))))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(4, momentum=1.0)


class TestOtherLayers:
    def test_relu_layer(self, rng):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.standard_normal((3, 4, 5))))
        assert out.shape == (3, 20)

    def test_average_pooling_layer(self, rng):
        x = rng.standard_normal((2, 6, 4)).astype(np.float32)
        out = AveragePooling1D(6)(Tensor(x))
        np.testing.assert_allclose(out.data[:, 0], x.mean(axis=1), rtol=1e-5)

    def test_dropout_layer_respects_mode(self, rng):
        d = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 10)))
        d.eval()
        assert (d(x).data == 1.0).all()
        d.train()
        assert (d(x).data == 0).any()

    def test_sequential_indexing_and_len(self):
        m = _mlp()
        assert len(m) == 4
        assert isinstance(m[0], Dense)

    def test_parameters_in_plain_lists_found(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.items = [Parameter(np.zeros(2), name="a"), Dense(2, 2, rng=0)]

        names = [n for n, _ in Holder().named_parameters()]
        assert names == ["items.0", "items.1.weight", "items.1.bias"]
