"""SparseRowGrad representation + autograd integration (DESIGN.md §5)."""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.sparse_grad import SparseRowGrad, sparse_grads, sparse_grads_enabled
from repro.nn.tensor import Parameter, Tensor


def dense_reference(rows, values, shape):
    out = np.zeros(shape, dtype=values.dtype)
    np.add.at(out, rows, values)
    return out


class TestSparseRowGrad:
    def test_coalesce_sums_duplicates(self):
        rows = np.array([3, 1, 3, 3, 0])
        vals = np.arange(10, dtype=np.float32).reshape(5, 2)
        g = SparseRowGrad(rows, vals, (5, 2)).coalesce()
        assert g.coalesced
        np.testing.assert_array_equal(g.rows, [0, 1, 3])
        np.testing.assert_allclose(g.to_dense(), dense_reference(rows, vals, (5, 2)))

    def test_coalesce_sorts_when_already_unique(self):
        rows = np.array([4, 0, 2])
        vals = np.ones((3, 1), dtype=np.float32)
        g = SparseRowGrad(rows, vals, (5, 1)).coalesce()
        np.testing.assert_array_equal(g.rows, [0, 2, 4])
        np.testing.assert_allclose(g.to_dense(), dense_reference(rows, vals, (5, 1)))

    def test_merge_concatenates_with_sum_semantics(self):
        a = SparseRowGrad(np.array([0, 1]), np.ones((2, 3), np.float32), (4, 3))
        b = SparseRowGrad(np.array([1, 2]), 2 * np.ones((2, 3), np.float32), (4, 3))
        merged = a.merge(b)
        expected = a.to_dense() + b.to_dense()
        np.testing.assert_allclose(merged.to_dense(), expected)

    def test_add_to_dense_in_place(self):
        dense = np.full((4, 2), 5.0, dtype=np.float32)
        g = SparseRowGrad(np.array([1, 1]), np.ones((2, 2), np.float32), (4, 2))
        g.add_to_dense(dense)
        np.testing.assert_allclose(dense[1], 7.0)
        np.testing.assert_allclose(dense[0], 5.0)

    def test_sq_norm_coalesces_before_squaring(self):
        # Two contributions of 1.0 to the same row must square as (1+1)² = 4,
        # not 1² + 1² = 2.
        g = SparseRowGrad(np.array([2, 2]), np.ones((2, 1), np.float32), (5, 1))
        assert g.sq_norm() == pytest.approx(4.0)

    def test_scale_is_linear(self):
        rows = np.array([0, 0, 3])
        vals = np.arange(6, dtype=np.float32).reshape(3, 2)
        g = SparseRowGrad(rows, vals.copy(), (4, 2))
        g.scale_(0.5)
        np.testing.assert_allclose(g.to_dense(), 0.5 * dense_reference(rows, vals, (4, 2)))

    def test_empty(self):
        g = SparseRowGrad(np.array([], dtype=np.int64), np.zeros((0, 3), np.float32), (7, 3))
        assert g.coalesce().rows.size == 0
        assert g.sq_norm() == 0.0
        np.testing.assert_array_equal(g.to_dense(), np.zeros((7, 3)))

    def test_nnz_rows(self):
        g = SparseRowGrad(np.array([1, 1, 4]), np.ones((3, 1), np.float32), (6, 1))
        assert g.nnz_rows == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseRowGrad(np.zeros((2, 2), dtype=np.int64), np.ones((2, 2)), (4, 2))
        with pytest.raises(TypeError):
            SparseRowGrad(np.array([0.5]), np.ones((1, 2)), (4, 2))
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([0]), np.ones((1, 3)), (4, 2))
        with pytest.raises(ValueError):
            SparseRowGrad(np.array([0]), np.ones((1, 2)), (4, 2, 1))
        with pytest.raises(ValueError):
            a = SparseRowGrad(np.array([0]), np.ones((1, 2), np.float32), (4, 2))
            a.merge(SparseRowGrad(np.array([0]), np.ones((1, 2), np.float32), (5, 2)))


class TestAutogradIntegration:
    def test_lookup_backward_emits_sparse(self):
        table = Parameter(np.ones((10, 4), dtype=np.float32))
        idx = np.array([1, 3, 3])
        out = ops.embedding_lookup(table, idx)
        ops.sum(out).backward()
        raw = table.raw_grad
        assert isinstance(raw, SparseRowGrad)
        assert raw.shape == (10, 4)

    def test_grad_property_densifies_lazily(self):
        table = Parameter(np.ones((6, 2), dtype=np.float32))
        idx = np.array([0, 0, 5])
        ops.sum(ops.embedding_lookup(table, idx)).backward()
        assert isinstance(table.raw_grad, SparseRowGrad)
        dense = table.grad  # explicit request densifies …
        expected = np.zeros((6, 2), dtype=np.float32)
        np.add.at(expected, idx, 1.0)
        np.testing.assert_allclose(dense, expected)
        # … and the densified form is cached for subsequent in-place math.
        assert isinstance(table.raw_grad, np.ndarray)
        table.grad *= 2.0
        np.testing.assert_allclose(table.grad, 2 * expected)

    def test_sparse_grad_accessor_coalesces_and_caches(self):
        table = Parameter(np.ones((6, 2), dtype=np.float32))
        ops.sum(ops.embedding_lookup(table, np.array([2, 2, 4]))).backward()
        sg = table.sparse_grad
        assert sg is not None and sg.coalesced
        assert table.raw_grad is sg
        dense = Parameter(np.ones(3, dtype=np.float32))
        assert dense.sparse_grad is None

    def test_matches_dense_path(self, rng):
        idx = rng.integers(0, 20, size=(4, 7))
        seed = rng.normal(size=(4, 7, 3)).astype(np.float32)

        def run(sparse):
            table = Parameter(rng.normal(size=(20, 3)).astype(np.float32))
            table.data[:] = 1.0
            with sparse_grads(sparse):
                out = ops.embedding_lookup(table, idx)
                out.backward(seed)
            return table.grad

        np.testing.assert_allclose(run(True), run(False), rtol=1e-5, atol=1e-6)

    def test_two_lookups_merge_sparse(self):
        """A table read twice (e.g. both arms of a RankNet pair) accumulates."""
        table = Parameter(np.ones((8, 2), dtype=np.float32))
        a = ops.embedding_lookup(table, np.array([1, 2]))
        b = ops.embedding_lookup(table, np.array([2, 3]))
        ops.sum(ops.add(a, b)).backward()
        sg = table.sparse_grad
        expected = np.zeros((8, 2), dtype=np.float32)
        np.add.at(expected, [1, 2, 2, 3], 1.0)
        np.testing.assert_allclose(sg.to_dense(), expected)

    def test_sparse_plus_dense_accumulation(self):
        """A table that feeds both a lookup and a dense op gets one correct
        gradient whatever order the two contributions arrive in."""
        table = Parameter(np.full((4, 2), 2.0, dtype=np.float32))
        looked = ops.embedding_lookup(table, np.array([0, 0]))
        dense_use = ops.mul(table, Tensor(3.0))
        loss = ops.add(ops.sum(looked), ops.sum(dense_use))
        loss.backward()
        expected = np.full((4, 2), 3.0, dtype=np.float32)
        expected[0] += 2.0
        np.testing.assert_allclose(table.grad, expected)

    def test_empty_batch_backward(self):
        table = Parameter(np.ones((5, 3), dtype=np.float32))
        out = ops.embedding_lookup(table, np.zeros((0,), dtype=np.int64))
        ops.sum(out).backward()
        sg = table.sparse_grad
        assert sg is not None and sg.rows.size == 0
        np.testing.assert_array_equal(table.grad, np.zeros((5, 3)))

    def test_toggle_restores_state(self):
        assert sparse_grads_enabled()
        with sparse_grads(False):
            assert not sparse_grads_enabled()
            with sparse_grads(True):
                assert sparse_grads_enabled()
            assert not sparse_grads_enabled()
        assert sparse_grads_enabled()

    def test_repeated_backward_matches_dense_path(self):
        """backward() twice on a lookup output: the root's grad buffer is
        never freed, so the stored sparse values must not alias it (aliasing
        double-counted the first contribution).  The oracle is the dense
        path — both inherit the engine's root-seed accumulation semantics."""

        def run(sparse):
            table = Parameter(np.ones((6, 2), dtype=np.float32))
            with sparse_grads(sparse):
                out = ops.embedding_lookup(table, np.array([0, 1]))
                seed = np.ones_like(out.data)
                out.backward(seed)
                out.backward(seed)
            return table.grad

        np.testing.assert_allclose(run(True), run(False))

    def test_index_buffer_reuse_between_backward_and_step(self):
        """Refilling a preallocated id buffer after backward() must not
        retarget the gradient rows (the sparse grad snapshots the ids)."""
        table = Parameter(np.ones((10, 2), dtype=np.float32))
        buf = np.array([1, 2])
        ops.sum(ops.embedding_lookup(table, buf)).backward()
        buf[:] = [7, 8]  # next batch loaded into the same buffer
        dense = table.grad
        np.testing.assert_allclose(dense[[1, 2]], 1.0)
        np.testing.assert_allclose(dense[[7, 8]], 0.0)

    def test_zero_grad_clears_sparse(self):
        table = Parameter(np.ones((5, 2), dtype=np.float32))
        ops.sum(ops.embedding_lookup(table, np.array([1]))).backward()
        assert table.raw_grad is not None
        table.zero_grad()
        assert table.raw_grad is None
