"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numeric_gradient(
    f: Callable[[], Tensor],
    wrt: Tensor,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``wrt.data``."""
    grad = np.zeros_like(wrt.data, dtype=np.float64)
    flat = wrt.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(f().data)
        flat[i] = orig - eps
        lo = float(f().data)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def check_gradients(
    f: Callable[[], Tensor],
    params: Sequence[Tensor],
    atol: float = 2e-2,
    rtol: float = 5e-2,
) -> None:
    """Assert autograd gradients of scalar ``f()`` match finite differences.

    Uses float64 copies of the parameters for the numeric pass tolerance;
    inputs should be small tensors (the check is O(params · forward cost)).
    """
    for p in params:
        p.zero_grad()
    out = f()
    assert out.data.ndim == 0 or out.data.size == 1, "gradcheck needs a scalar output"
    out.backward()
    for idx, p in enumerate(params):
        assert p.grad is not None, f"param {idx} received no gradient"
        expected = numeric_gradient(f, p)
        np.testing.assert_allclose(
            p.grad.astype(np.float64),
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for parameter {idx}",
        )
