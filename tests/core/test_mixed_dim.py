"""Mixed-dimension blocked embeddings (Ginart et al. 2019)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mixed_dim import MixedDimEmbedding, block_dims, block_partition
from repro.core.sizing import embedding_param_count


class TestBlockPartition:
    @given(
        v=st.integers(min_value=1, max_value=100_000),
        b=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80)
    def test_covers_vocab_exactly(self, v, b):
        blocks = block_partition(v, b)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == v
        for (_, stop), (start, _) in zip(blocks, blocks[1:]):
            assert stop == start  # contiguous
        assert all(stop > start for start, stop in blocks)  # non-empty

    def test_sizes_grow_geometrically(self):
        blocks = block_partition(15_000, 4)
        sizes = [stop - start for start, stop in blocks]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 4 * sizes[0]

    def test_block_count_clipped_to_vocab(self):
        assert len(block_partition(3, 8)) == 3

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            block_partition(0, 4)
        with pytest.raises(ValueError):
            block_partition(10, 0)


class TestBlockDims:
    def test_head_block_is_widest(self):
        dims = block_dims(64, 4, temperature=0.63)
        assert dims[0] == 64
        assert dims == sorted(dims, reverse=True)

    def test_zero_temperature_keeps_full_width(self):
        assert block_dims(32, 5, temperature=0.0) == [32] * 5

    def test_floor_at_one(self):
        assert min(block_dims(4, 10, temperature=2.0)) == 1

    def test_rejects_negative_temperature(self):
        with pytest.raises(ValueError):
            block_dims(32, 4, temperature=-1.0)


class TestMixedDimEmbedding:
    def test_output_shape(self, rng):
        emb = MixedDimEmbedding(1000, 32, num_blocks=4, rng=0)
        ids = rng.integers(0, 1000, size=(5, 9))
        assert emb(ids).shape == (5, 9, 32)

    def test_param_count_matches_sizing(self):
        emb = MixedDimEmbedding(5000, 32, num_blocks=4, rng=0)
        assert emb.num_parameters() == embedding_param_count(
            "mixed_dim", 5000, 32, num_blocks=4
        )

    def test_compresses_versus_full_table(self):
        assert embedding_param_count("mixed_dim", 100_000, 64, num_blocks=6) < 100_000 * 64 / 2

    def test_block_of_respects_boundaries(self):
        emb = MixedDimEmbedding(100, 8, num_blocks=3, rng=0)
        for k, (start, stop) in enumerate(emb.blocks):
            assert emb.block_of(np.array([start]))[0] == k
            assert emb.block_of(np.array([stop - 1]))[0] == k

    def test_embedding_comes_from_own_block_only(self):
        # Zero one block's table: only that block's ids go to zero output.
        emb = MixedDimEmbedding(60, 8, num_blocks=3, temperature=0.0, rng=0)
        emb.tables[1].data[:] = 0.0
        start, stop = emb.blocks[1]
        out = emb(np.arange(60)).data
        np.testing.assert_allclose(out[start:stop], 0.0)
        assert np.abs(out[:start]).sum() > 0
        assert np.abs(out[stop:]).sum() > 0

    def test_head_ids_are_full_width_no_projection(self):
        emb = MixedDimEmbedding(1000, 32, num_blocks=4, rng=0)
        assert emb.block_widths[0] == 32
        assert emb.projections[0] is None

    def test_gradient_flows_to_correct_block(self, rng):
        emb = MixedDimEmbedding(60, 8, num_blocks=3, rng=0)
        start, stop = emb.blocks[2]
        loss = emb(np.arange(start, stop)).sum()
        loss.backward()
        assert np.abs(emb.tables[2].grad).sum() > 0
        # Untouched blocks receive an (all-zero) or no gradient.
        for k in (0, 1):
            grad = emb.tables[k].grad
            assert grad is None or np.abs(grad).sum() == 0

    def test_unique_embeddings_within_and_across_blocks(self):
        emb = MixedDimEmbedding(80, 16, num_blocks=3, rng=0)
        out = emb(np.arange(80)).data
        assert len(np.unique(out.round(7), axis=0)) == 80

    def test_single_block_collapses_to_factorized_shape(self):
        emb = MixedDimEmbedding(100, 32, num_blocks=1, rng=0)
        assert len(emb.blocks) == 1
        assert emb.block_widths == [32]
