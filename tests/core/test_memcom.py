"""MEmCom embedding (Algorithms 2 and 3)."""

import numpy as np
import pytest

from repro.core.memcom import MEmComEmbedding


class TestForward:
    def test_output_shape(self, rng):
        emb = MEmComEmbedding(100, 8, num_hash_embeddings=10, rng=0)
        out = emb(rng.integers(0, 100, size=(4, 6)))
        assert out.shape == (4, 6, 8)

    def test_composition_is_row_times_scalar(self):
        emb = MEmComEmbedding(50, 4, num_hash_embeddings=7, bias=False, rng=0)
        idx = np.array([23])
        expected = emb.shared.data[23 % 7] * emb.multiplier.data[23, 0]
        np.testing.assert_allclose(emb(idx).data[0], expected, rtol=1e-6)

    def test_bias_added_per_entity(self):
        emb = MEmComEmbedding(50, 4, num_hash_embeddings=7, bias=True, rng=0)
        emb.bias_table.data[:] = 3.0
        idx = np.array([10])
        no_bias = emb.shared.data[10 % 7] * emb.multiplier.data[10, 0]
        np.testing.assert_allclose(emb(idx).data[0], no_bias + 3.0, rtol=1e-6)

    def test_same_bucket_entities_differ_via_multiplier(self):
        emb = MEmComEmbedding(20, 4, num_hash_embeddings=5, bias=False, rng=0)
        emb.multiplier.data[3, 0] = 1.0
        emb.multiplier.data[8, 0] = 2.0  # 3 and 8 share bucket 3
        out = emb(np.array([3, 8])).data
        np.testing.assert_allclose(out[1], 2.0 * out[0], rtol=1e-6)

    def test_unique_embeddings_despite_collisions(self, rng):
        emb = MEmComEmbedding(30, 4, num_hash_embeddings=3, multiplier_init="uniform", rng=0)
        out = emb(np.arange(30)).data
        # all 30 vectors pairwise distinct even with only 3 shared rows
        flat = {tuple(np.round(v, 7)) for v in out}
        assert len(flat) == 30


class TestParameters:
    def test_param_count_no_bias(self):
        emb = MEmComEmbedding(100, 8, num_hash_embeddings=10, bias=False, rng=0)
        assert emb.num_parameters() == 10 * 8 + 100

    def test_param_count_with_bias(self):
        emb = MEmComEmbedding(100, 8, num_hash_embeddings=10, bias=True, rng=0)
        assert emb.num_parameters() == 10 * 8 + 2 * 100

    def test_ones_init(self):
        emb = MEmComEmbedding(50, 4, num_hash_embeddings=5, multiplier_init="ones", rng=0)
        np.testing.assert_allclose(emb.multipliers(), 1.0)

    def test_uniform_init_near_identity(self):
        emb = MEmComEmbedding(500, 4, num_hash_embeddings=5, multiplier_init="uniform", rng=0)
        mults = emb.multipliers()
        assert (mults >= 0.95).all() and (mults <= 1.05).all()
        assert np.unique(mults).size > 400  # actually random

    def test_bias_starts_at_zero(self):
        emb = MEmComEmbedding(50, 4, num_hash_embeddings=5, bias=True, rng=0)
        np.testing.assert_allclose(emb.bias_table.data, 0.0)


class TestGradients:
    def test_all_tables_receive_gradients(self, rng):
        emb = MEmComEmbedding(40, 4, num_hash_embeddings=8, bias=True, rng=0)
        emb(rng.integers(0, 40, size=(3, 5))).sum().backward()
        assert emb.shared.grad is not None
        assert emb.multiplier.grad is not None
        assert emb.bias_table.grad is not None

    def test_multiplier_grad_only_for_seen_ids(self):
        emb = MEmComEmbedding(40, 4, num_hash_embeddings=8, bias=False, rng=0)
        emb(np.array([5, 7])).sum().backward()
        seen = np.flatnonzero(np.abs(emb.multiplier.grad[:, 0]))
        np.testing.assert_array_equal(seen, [5, 7])

    def test_joint_training_differentiates_colliding_ids(self):
        """The paper's core claim: ids sharing a bucket learn distinct
        embeddings because V is trained jointly with U."""
        from repro.nn.losses import mse_loss
        from repro.nn.optim import Adam

        emb = MEmComEmbedding(10, 4, num_hash_embeddings=1, bias=False, rng=0)
        opt = Adam(emb.parameters(), lr=0.05)
        idx = np.array([0, 5])  # same bucket (m=1)
        targets = np.array([[1.0, 1, 1, 1], [-1.0, -1, -1, -1]], dtype=np.float32)
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(emb(idx), targets)
            loss.backward()
            opt.step()
        out = emb(idx).data
        assert np.abs(out[0] - out[1]).max() > 1.0  # clearly separated


class TestHelpers:
    def test_bucket_of(self):
        emb = MEmComEmbedding(100, 4, num_hash_embeddings=7, rng=0)
        ids = np.array([0, 7, 13, 99])
        np.testing.assert_array_equal(emb.bucket_of(ids), ids % 7)

    def test_multipliers_returns_copy(self):
        emb = MEmComEmbedding(10, 4, num_hash_embeddings=2, rng=0)
        m = emb.multipliers()
        m[:] = 99.0
        assert not (emb.multiplier.data == 99.0).any()


class TestValidation:
    def test_bad_hash_size(self):
        with pytest.raises(ValueError):
            MEmComEmbedding(10, 4, num_hash_embeddings=0)

    def test_bad_init_name(self):
        with pytest.raises(ValueError):
            MEmComEmbedding(10, 4, num_hash_embeddings=2, multiplier_init="xavier")

    def test_out_of_range_ids(self):
        emb = MEmComEmbedding(10, 4, num_hash_embeddings=2, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([10]))
