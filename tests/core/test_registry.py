"""Technique registry."""

import numpy as np
import pytest

from repro.core.registry import available_techniques, build_embedding, technique_spec

HYPER = {
    "full": {},
    "memcom": dict(num_hash_embeddings=10),
    "memcom_nobias": dict(num_hash_embeddings=10),
    "qr_mult": dict(num_hash_embeddings=10),
    "qr_concat": dict(num_hash_embeddings=10),
    "hash": dict(num_hash_embeddings=10),
    "double_hash": dict(num_hash_embeddings=10),
    "factorized": dict(hidden_dim=4),
    "reduce_dim": dict(reduced_dim=4),
    "truncate_rare": dict(keep=20),
    "hashed_onehot": dict(num_hash_embeddings=10),
    "freq_double_hash": dict(num_hash_embeddings=10),
    "tt_rec": dict(tt_rank=2),
    "mixed_dim": dict(num_blocks=3),
}


class TestRegistry:
    def test_all_expected_techniques_present(self):
        assert set(available_techniques()) == set(HYPER)

    @pytest.mark.parametrize("name", sorted(HYPER))
    def test_build_and_forward_every_technique(self, name, rng):
        emb = build_embedding(name, 100, 8, rng=0, **HYPER[name])
        ids = rng.integers(0, 100, size=(2, 4))
        out = emb(ids)
        assert out.shape[-1] == emb.output_dim
        assert np.isfinite(out.data).all()

    def test_missing_hyper_raises(self):
        with pytest.raises(TypeError, match="requires hyperparameters"):
            build_embedding("memcom", 100, 8)

    def test_unknown_hyper_raises(self):
        with pytest.raises(TypeError, match="unknown hyperparameters"):
            build_embedding("hash", 100, 8, num_hash_embeddings=10, banana=1)

    def test_unknown_technique_raises(self):
        with pytest.raises(KeyError, match="available:"):
            build_embedding("quantum", 100, 8)

    def test_spec_metadata(self):
        spec = technique_spec("memcom")
        assert spec.requires == ("num_hash_embeddings",)
        assert "Algorithm 3" in spec.summary

    def test_memcom_variants_differ_in_bias(self):
        with_bias = build_embedding("memcom", 50, 4, rng=0, num_hash_embeddings=5)
        without = build_embedding("memcom_nobias", 50, 4, rng=0, num_hash_embeddings=5)
        assert with_bias.bias_table is not None
        assert without.bias_table is None

    def test_multiplier_init_passthrough(self):
        emb = build_embedding(
            "memcom", 50, 4, rng=0, num_hash_embeddings=5, multiplier_init="uniform"
        )
        assert np.unique(emb.multipliers()).size > 10
