"""Quotient-remainder trick (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.quotient_remainder import QREmbedding


class TestIndexMath:
    def test_remainder_quotient_pair_unique_per_id(self):
        v, m = 97, 10
        pairs = {(i % m, i // m) for i in range(v)}
        assert len(pairs) == v  # complementary partition: no two ids collide

    def test_quotient_table_size(self):
        emb = QREmbedding(100, 8, num_remainder_embeddings=7, rng=0)
        assert emb.num_quotient_embeddings == 15  # ceil(100/7)

    def test_mult_composition_value(self):
        emb = QREmbedding(50, 4, num_remainder_embeddings=6, operation="mult", rng=0)
        i = 23
        expected = emb.remainder.data[i % 6] * emb.quotient.data[i // 6]
        np.testing.assert_allclose(emb(np.array([i])).data[0], expected, rtol=1e-6)

    def test_concat_composition_value(self):
        emb = QREmbedding(50, 8, num_remainder_embeddings=6, operation="concat", rng=0)
        i = 31
        out = emb(np.array([i])).data[0]
        np.testing.assert_allclose(out[:4], emb.remainder.data[i % 6], rtol=1e-6)
        np.testing.assert_allclose(out[4:], emb.quotient.data[i // 6], rtol=1e-6)


class TestShapesAndParams:
    def test_mult_output_dim(self, rng):
        emb = QREmbedding(100, 16, num_remainder_embeddings=10, operation="mult", rng=0)
        assert emb(rng.integers(0, 100, (2, 3))).shape == (2, 3, 16)
        assert emb.num_parameters() == (10 + 10) * 16

    def test_concat_tables_are_half_width(self, rng):
        emb = QREmbedding(100, 16, num_remainder_embeddings=10, operation="concat", rng=0)
        assert emb(rng.integers(0, 100, (2, 3))).shape == (2, 3, 16)
        assert emb.remainder.data.shape == (10, 8)
        assert emb.num_parameters() == (10 + 10) * 8

    def test_technique_name_tracks_operation(self):
        assert QREmbedding(10, 4, 2, operation="mult", rng=0).technique == "qr_mult"
        assert QREmbedding(10, 4, 2, operation="concat", rng=0).technique == "qr_concat"


class TestGradients:
    def test_both_tables_updated(self, rng):
        emb = QREmbedding(60, 6, num_remainder_embeddings=8, rng=0)
        emb(rng.integers(0, 60, (4, 4))).sum().backward()
        assert emb.remainder.grad is not None
        assert emb.quotient.grad is not None

    def test_distinct_ids_same_remainder_update_different_quotients(self):
        emb = QREmbedding(40, 4, num_remainder_embeddings=10, rng=0)
        emb(np.array([3, 13])).sum().backward()  # same remainder 3, quotients 0 and 1
        touched = np.flatnonzero(np.abs(emb.quotient.grad).sum(axis=1))
        np.testing.assert_array_equal(touched, [0, 1])


class TestValidation:
    def test_odd_dim_concat_rejected(self):
        with pytest.raises(ValueError):
            QREmbedding(10, 5, num_remainder_embeddings=2, operation="concat")

    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            QREmbedding(10, 4, num_remainder_embeddings=2, operation="add")

    def test_bad_m(self):
        with pytest.raises(ValueError):
            QREmbedding(10, 4, num_remainder_embeddings=0)
