"""Naive and double hashing embeddings + the universal hash family."""

import numpy as np
import pytest

from repro.core.base import HASH_PRIME, universal_hash
from repro.core.hashing import DoubleHashEmbedding, NaiveHashEmbedding


class TestUniversalHash:
    def test_range(self, rng):
        ids = rng.integers(0, 1 << 30, size=1000)
        h = universal_hash(ids, 37, a=12345, b=678)
        assert h.min() >= 0 and h.max() < 37

    def test_deterministic(self):
        ids = np.arange(100)
        h1 = universal_hash(ids, 10, a=999, b=7)
        h2 = universal_hash(ids, 10, a=999, b=7)
        np.testing.assert_array_equal(h1, h2)

    def test_different_coefficients_differ(self):
        ids = np.arange(1000)
        h1 = universal_hash(ids, 100, a=999, b=7)
        h2 = universal_hash(ids, 100, a=1001, b=7)
        assert (h1 != h2).any()

    def test_roughly_uniform(self):
        ids = np.arange(100_000)
        h = universal_hash(ids, 10, a=48271, b=11)
        counts = np.bincount(h, minlength=10)
        assert counts.min() > 8000 and counts.max() < 12000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            universal_hash(np.arange(3), 0, a=1, b=0)
        with pytest.raises(ValueError):
            universal_hash(np.arange(3), 10, a=0, b=0)
        with pytest.raises(ValueError):
            universal_hash(np.arange(3), 10, a=1, b=HASH_PRIME)


class TestNaiveHash:
    def test_mod_family_matches_modulo(self, rng):
        emb = NaiveHashEmbedding(100, 4, num_hash_embeddings=7, rng=0)
        ids = rng.integers(0, 100, size=20)
        np.testing.assert_array_equal(emb.hash_indices(ids), ids % 7)

    def test_colliding_ids_share_embedding_exactly(self):
        emb = NaiveHashEmbedding(100, 4, num_hash_embeddings=7, rng=0)
        out = emb(np.array([3, 10, 17])).data  # all ≡ 3 mod 7
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(out[0], out[2])

    def test_universal_family_differs_from_mod(self):
        mod = NaiveHashEmbedding(1000, 4, 13, hash_family="mod", rng=0)
        uni = NaiveHashEmbedding(1000, 4, 13, hash_family="universal", rng=0)
        ids = np.arange(1000)
        assert (mod.hash_indices(ids) != uni.hash_indices(ids)).any()

    def test_param_count(self):
        assert NaiveHashEmbedding(1000, 8, 50, rng=0).num_parameters() == 400

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            NaiveHashEmbedding(10, 4, 2, hash_family="md5")


class TestDoubleHash:
    def test_output_is_concat_of_two_lookups(self):
        emb = DoubleHashEmbedding(100, 8, num_hash_embeddings=11, rng=0)
        ids = np.array([42])
        h1, h2 = emb.hash_indices(ids)
        out = emb(ids).data[0]
        np.testing.assert_allclose(out[:4], emb.table1.data[h1[0]], rtol=1e-6)
        np.testing.assert_allclose(out[4:], emb.table2.data[h2[0]], rtol=1e-6)

    def test_hashes_are_independent(self):
        emb = DoubleHashEmbedding(10_000, 8, num_hash_embeddings=100, rng=0)
        h1, h2 = emb.hash_indices(np.arange(10_000))
        # agreeing on h1 should say ~nothing about agreeing on h2
        same1 = h1[:-1] == h1[1:]
        agree2 = (h2[:-1] == h2[1:])[same1].mean() if same1.any() else 0.0
        assert agree2 < 0.05

    def test_fewer_composed_collisions_than_naive(self):
        v, m = 5000, 70
        emb = DoubleHashEmbedding(v, 8, num_hash_embeddings=m, rng=0)
        h1, h2 = emb.hash_indices(np.arange(v))
        composed = h1 * m + h2
        naive_unique = np.unique(np.arange(v) % m).size
        composed_unique = np.unique(composed).size
        assert composed_unique > naive_unique * 10

    def test_param_count_matches_naive_at_same_m(self):
        # two half-width tables == one full-width table
        double = DoubleHashEmbedding(1000, 8, 50, rng=0)
        naive = NaiveHashEmbedding(1000, 8, 50, rng=0)
        assert double.num_parameters() == naive.num_parameters()

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            DoubleHashEmbedding(10, 5, 2)

    def test_gradients_flow_to_both_tables(self, rng):
        emb = DoubleHashEmbedding(50, 6, num_hash_embeddings=5, rng=0)
        emb(rng.integers(0, 50, (2, 3))).sum().backward()
        assert emb.table1.grad is not None and emb.table2.grad is not None
