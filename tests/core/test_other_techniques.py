"""Factorized, reduced-dim, truncate-rare, Weinberger one-hot, full table."""

import numpy as np
import pytest

from repro.core.full import FullEmbedding
from repro.core.low_rank import FactorizedEmbedding, ReducedDimEmbedding
from repro.core.onehot import HashedOneHotEncoder
from repro.core.truncate import TruncateRareEmbedding


class TestFullEmbedding:
    def test_identity_compression(self, rng):
        emb = FullEmbedding(50, 8, rng=0)
        assert emb.num_parameters() == 400
        ids = rng.integers(0, 50, (2, 3))
        np.testing.assert_array_equal(emb(ids).data, emb.table.data[ids])


class TestFactorized:
    def test_low_rank_structure(self):
        emb = FactorizedEmbedding(100, 16, hidden_dim=4, rng=0)
        out = emb(np.arange(100)).data  # (100, 16)
        assert np.linalg.matrix_rank(out) <= 4

    def test_unique_vectors(self):
        emb = FactorizedEmbedding(50, 8, hidden_dim=4, rng=0)
        out = emb(np.arange(50)).data
        assert len({tuple(np.round(v, 7)) for v in out}) == 50

    def test_param_count(self):
        emb = FactorizedEmbedding(100, 16, hidden_dim=4, rng=0)
        assert emb.num_parameters() == 100 * 4 + 4 * 16

    def test_projection_has_no_bias(self):
        assert FactorizedEmbedding(10, 8, 2, rng=0).projection.bias is None

    def test_gradients_flow(self, rng):
        emb = FactorizedEmbedding(30, 8, hidden_dim=3, rng=0)
        emb(rng.integers(0, 30, (2, 4))).sum().backward()
        assert emb.table.grad is not None
        assert emb.projection.weight.grad is not None

    def test_bad_hidden_dim(self):
        with pytest.raises(ValueError):
            FactorizedEmbedding(10, 8, hidden_dim=0)


class TestReducedDim:
    def test_output_dim_is_reduced(self, rng):
        emb = ReducedDimEmbedding(40, reduced_dim=6, rng=0)
        assert emb.output_dim == 6
        assert emb(rng.integers(0, 40, (2, 3))).shape == (2, 3, 6)

    def test_param_count(self):
        assert ReducedDimEmbedding(40, 6, rng=0).num_parameters() == 240


class TestTruncateRare:
    def test_popular_ids_keep_own_rows(self):
        emb = TruncateRareEmbedding(100, 4, keep=10, rng=0)
        ids = np.array([0, 1, 10])
        np.testing.assert_array_equal(emb.truncated_indices(ids), ids)

    def test_rare_ids_share_oov_row(self):
        emb = TruncateRareEmbedding(100, 4, keep=10, rng=0)
        out = emb(np.array([50, 99])).data
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(emb.truncated_indices(np.array([50, 99])), [11, 11])

    def test_param_count(self):
        # keep + padding row + OOV row
        assert TruncateRareEmbedding(100, 4, keep=10, rng=0).num_parameters() == 12 * 4

    def test_keep_bounds(self):
        with pytest.raises(ValueError):
            TruncateRareEmbedding(100, 4, keep=0)
        with pytest.raises(ValueError):
            TruncateRareEmbedding(100, 4, keep=101)
        TruncateRareEmbedding(100, 4, keep=100, rng=0)  # boundary OK


class TestHashedOneHot:
    def test_output_is_pooled(self, rng):
        emb = HashedOneHotEncoder(100, 8, num_hash_buckets=16, rng=0)
        out = emb(rng.integers(0, 100, (3, 5)))
        assert out.shape == (3, 8)  # no sequence axis

    def test_encode_counts_hash_buckets(self):
        emb = HashedOneHotEncoder(100, 8, num_hash_buckets=16, signed=False, average=False, rng=0)
        ids = np.array([[7, 7, 9]])
        enc = emb.encode(ids)
        assert enc.sum() == 3.0
        from repro.core.base import universal_hash

        b7 = universal_hash(np.array([7]), 16, int(emb.hash_salt[0]), int(emb.hash_salt[1]))[0]
        assert enc[0, b7] >= 2.0

    def test_signed_encoding_uses_plus_minus_one(self):
        emb = HashedOneHotEncoder(1000, 8, num_hash_buckets=512, signed=True, average=False, rng=0)
        enc = emb.encode(np.arange(40).reshape(1, 40))
        vals = np.unique(enc[enc != 0])
        assert set(vals).issubset({-2.0, -1.0, 1.0, 2.0})
        assert (vals < 0).any() and (vals > 0).any()

    def test_average_divides_by_length(self):
        emb_avg = HashedOneHotEncoder(100, 8, 16, signed=False, average=True, rng=0)
        emb_raw = HashedOneHotEncoder(100, 8, 16, signed=False, average=False, rng=0)
        ids = np.array([[1, 2, 3, 4]])
        np.testing.assert_allclose(emb_avg.encode(ids) * 4, emb_raw.encode(ids), rtol=1e-6)

    def test_only_projection_is_trainable(self, rng):
        emb = HashedOneHotEncoder(100, 8, 16, rng=0)
        assert emb.num_parameters() == 16 * 8
        emb(rng.integers(0, 100, (2, 4))).sum().backward()
        assert emb.weight.grad is not None

    def test_requires_2d_ids(self):
        emb = HashedOneHotEncoder(100, 8, 16, rng=0)
        with pytest.raises(ValueError):
            emb.encode(np.array([1, 2, 3]))
