"""Analytic sizing math pinned against real modules; fixed-budget solver."""

import numpy as np
import pytest

from repro.core.registry import build_embedding
from repro.core.sizing import (
    bytes_for_params,
    compression_ratio,
    embedding_param_count,
    params_for_bytes,
    solve_embedding_dim,
)

CASES = [
    ("full", {}),
    ("memcom", dict(num_hash_embeddings=13)),
    ("memcom_nobias", dict(num_hash_embeddings=13)),
    ("qr_mult", dict(num_hash_embeddings=13)),
    ("qr_concat", dict(num_hash_embeddings=13)),
    ("hash", dict(num_hash_embeddings=13)),
    ("double_hash", dict(num_hash_embeddings=13)),
    ("factorized", dict(hidden_dim=6)),
    ("reduce_dim", dict(reduced_dim=6)),
    ("truncate_rare", dict(keep=17)),
    ("hashed_onehot", dict(num_hash_embeddings=13)),
]


class TestAnalyticCounts:
    @pytest.mark.parametrize("technique,hyper", CASES)
    @pytest.mark.parametrize("v,e", [(101, 16), (500, 32)])
    def test_formula_matches_built_module(self, technique, hyper, v, e):
        analytic = embedding_param_count(technique, v, e, **hyper)
        actual = build_embedding(technique, v, e, rng=0, **hyper).num_parameters()
        assert analytic == actual, f"{technique}: {analytic} != {actual}"

    def test_unknown_technique(self):
        with pytest.raises(KeyError):
            embedding_param_count("nope", 10, 4)

    def test_missing_hyper(self):
        with pytest.raises(TypeError):
            embedding_param_count("memcom", 10, 4)

    def test_nonpositive_hyper(self):
        with pytest.raises(ValueError):
            embedding_param_count("hash", 10, 4, num_hash_embeddings=0)

    def test_odd_dim_rejected_for_split_tables(self):
        with pytest.raises(ValueError):
            embedding_param_count("qr_concat", 10, 5, num_hash_embeddings=2)
        with pytest.raises(ValueError):
            embedding_param_count("double_hash", 10, 5, num_hash_embeddings=2)


class TestBytes:
    def test_fp32(self):
        assert bytes_for_params(100, 32) == 400

    def test_sub_byte_precisions_round_up(self):
        assert bytes_for_params(3, 4) == 2  # 12 bits -> 2 bytes
        assert bytes_for_params(100, 2) == 25

    def test_roundtrip_with_params_for_bytes(self):
        for bits in (32, 16, 8):
            n = 1000
            assert params_for_bytes(bytes_for_params(n, bits), bits) == n

    def test_unsupported_precision(self):
        with pytest.raises(ValueError):
            bytes_for_params(10, 12)


class TestSolver:
    def test_finds_largest_dim_within_budget(self):
        f = lambda e: 100 * e + 7
        assert solve_embedding_dim(1007, f) == 10
        assert solve_embedding_dim(1050, f) == 10
        assert solve_embedding_dim(1107, f) == 11

    def test_exact_budget_boundary(self):
        f = lambda e: e * e
        assert solve_embedding_dim(49, f) == 7

    def test_budget_too_small_raises(self):
        with pytest.raises(ValueError, match="budget"):
            solve_embedding_dim(5, lambda e: 100 * e)

    def test_respects_max_dim(self):
        assert solve_embedding_dim(10**9, lambda e: e, max_dim=64) == 64

    def test_solution_is_tight(self):
        """Property: f(result) <= budget < f(result+1) for monotonic f
        (unless clamped by max_dim)."""
        rng = np.random.default_rng(0)
        for _ in range(25):
            slope = int(rng.integers(1, 500))
            inter = int(rng.integers(0, 1000))
            budget = int(rng.integers(inter + slope, 10**6))
            f = lambda e, s=slope, i=inter: s * e + i
            got = solve_embedding_dim(budget, f, max_dim=10**7)
            assert f(got) <= budget
            assert f(got + 1) > budget


class TestRatio:
    def test_basic(self):
        assert compression_ratio(1000, 100) == 10.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 10)
        with pytest.raises(ValueError):
            compression_ratio(10, 0)
