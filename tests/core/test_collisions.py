"""Collision analytics and the §4 properties table."""

import numpy as np
import pytest

from repro.core.collisions import (
    PROPERTIES_TABLE,
    double_hash_collision_rate,
    empirical_collision_stats,
    expected_colliding_entities,
    expected_occupied_buckets,
    naive_hash_collision_rate,
)


class TestFormulas:
    def test_paper_formula_naive(self):
        # v/m − 1 + (1 − 1/m)^v, literally
        v, m = 1000, 100
        expected = v / m - 1 + (1 - 1 / m) ** v
        assert naive_hash_collision_rate(v, m) == pytest.approx(expected)

    def test_paper_formula_double(self):
        v, m = 1000, 100
        expected = v / m**2 - 1 + (1 - 1 / m**2) ** v
        assert double_hash_collision_rate(v, m) == pytest.approx(expected)

    def test_double_hash_far_fewer_collisions(self):
        v, m = 100_000, 10_000
        assert double_hash_collision_rate(v, m) < naive_hash_collision_rate(v, m) / 100

    def test_identity_occupied_plus_colliding(self):
        v, m = 5000, 700
        occ = expected_occupied_buckets(v, m)
        col = expected_colliding_entities(v, m)
        assert occ + col == pytest.approx(v)

    def test_no_collisions_when_m_huge(self):
        assert naive_hash_collision_rate(100, 10**9) == pytest.approx(0.0, abs=1e-6)

    def test_consistency_with_empirical_uniform_hash(self):
        """E[colliding entities] matches a simulated uniform hash."""
        rng = np.random.default_rng(0)
        v, m = 20_000, 3_000
        trials = [
            empirical_collision_stats(rng.integers(0, m, size=v)).num_colliding_entities
            for _ in range(5)
        ]
        expected = expected_colliding_entities(v, m)
        assert abs(np.mean(trials) - expected) < 0.05 * expected

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            naive_hash_collision_rate(0, 10)
        with pytest.raises(ValueError):
            double_hash_collision_rate(10, 0)


class TestEmpiricalStats:
    def test_counts_on_known_assignment(self):
        stats = empirical_collision_stats(np.array([0, 0, 1, 2, 2, 2]))
        assert stats.num_entities == 6
        assert stats.num_buckets_used == 3
        assert stats.num_colliding_entities == 3  # v − occupied buckets
        assert stats.num_shared_entities == 5  # 2 in bucket 0 + 3 in bucket 2
        assert stats.max_bucket_load == 3
        assert stats.collision_fraction == pytest.approx(5 / 6)

    def test_no_collisions(self):
        stats = empirical_collision_stats(np.arange(10))
        assert stats.num_colliding_entities == 0
        assert stats.collision_fraction == 0.0

    def test_empty(self):
        stats = empirical_collision_stats(np.array([], dtype=int))
        assert stats.num_entities == 0
        assert stats.collision_fraction == 0.0

    def test_requires_flat_array(self):
        with pytest.raises(ValueError):
            empirical_collision_stats(np.zeros((2, 2)))


class TestPropertiesTable:
    def test_matches_paper_table(self):
        rows = {p.technique: p for p in PROPERTIES_TABLE}
        assert rows["memcom"].unique_vector is True
        assert rows["memcom"].simple_operator is True
        assert rows["memcom"].handles_power_law is True
        assert rows["hash"].unique_vector is False
        assert rows["low_rank"].handles_power_law is False
        assert rows["low_rank"].simple_operator is None  # N/A in the paper
        assert rows["quotient_remainder"].simple_operator is False
        assert rows["double_hash"].unique_vector is False

    def test_memcom_is_the_only_all_yes_row(self):
        all_yes = [
            p.technique
            for p in PROPERTIES_TABLE
            if p.unique_vector and p.simple_operator and p.handles_power_law
        ]
        assert all_yes == ["memcom"]
