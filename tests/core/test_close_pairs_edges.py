"""Regression tests for ``count_close_pairs`` float-boundary and non-finite
edges.

The vectorized implementation replaces the reference two-pointer sweep with
a searchsorted-plus-boundary-correction scheme; these tests pin the exact
edges that scheme has to get right: NaN inputs (pairs with nothing), ±inf
runs (equal infinities are distance 0), long duplicate runs (the whole-run
boundary-correction loops), values spaced exactly at the tolerance, and
adversarial float-boundary spacings where ``v − tol`` rounds.  Every case is
checked against the loop reference *and* an O(n²) brute force evaluating
the definitional predicate.
"""

import numpy as np
import pytest

from repro.core.uniqueness import _count_close_pairs_loop, count_close_pairs


def brute_force(values: np.ndarray, tolerance: float) -> int:
    """Definitional count: pairs i<j with |v_j − v_i| ≤ tol, NaN never close,
    equal values (infinities included) always close."""
    v = np.asarray(values, dtype=np.float64)
    v = np.sort(v[~np.isnan(v)])
    count = 0
    with np.errstate(invalid="ignore"):
        for j in range(v.size):
            for i in range(j):
                if v[j] == v[i] or v[j] - v[i] <= tolerance:
                    count += 1
    return count


def _check(values, tolerance):
    values = np.asarray(values, dtype=np.float64)
    fast = count_close_pairs(values, tolerance)
    loop = _count_close_pairs_loop(values, tolerance)
    brute = brute_force(values, tolerance)
    assert fast == loop == brute, (
        f"fast={fast} loop={loop} brute={brute} for tol={tolerance}, "
        f"values={values!r}"
    )
    return fast


class TestNaN:
    def test_nan_pairs_with_nothing(self):
        assert _check([0.1, np.nan, 0.1 + 5e-6, np.nan, 5.0], 1e-5) == 1

    def test_all_nan_counts_zero(self):
        assert _check([np.nan] * 6, 1e-5) == 0
        assert _check([np.nan] * 6, 0.0) == 0

    def test_nan_does_not_shift_finite_counts(self):
        finite = [0.0, 1e-6, 2e-6, 0.5]
        with_nans = finite + [np.nan, np.nan]
        assert _check(with_nans, 1e-5) == _check(finite, 1e-5)

    def test_single_value_plus_nans(self):
        assert _check([np.nan, 3.0, np.nan], 1e-5) == 0


class TestInf:
    def test_equal_infinities_are_close(self):
        # inf − inf is NaN, but identical values are distance 0 by definition.
        assert _check([np.inf, np.inf, np.inf], 1e-5) == 3
        assert _check([-np.inf, -np.inf], 1e-5) == 1

    def test_inf_never_close_to_finite(self):
        assert _check([np.inf, 1.0, 1.0 + 1e-6, -np.inf], 1e-5) == 1

    def test_mixed_inf_runs_and_nan(self):
        values = [np.inf, np.inf, -np.inf, -np.inf, -np.inf, np.nan, 0.0]
        # C(2,2)=1 at +inf, C(3,2)=3 at −inf, NaN and 0.0 pair with nothing.
        assert _check(values, 1e-5) == 4

    def test_huge_finite_spread_overflows_to_inf_difference(self):
        # v_j − v_i overflows to +inf: must count as not-close, not crash.
        assert _check([-1e308, 1e308], 1e-5) == 0


class TestDuplicateRuns:
    """Long runs of equal values drive the whole-run correction loops."""

    @pytest.mark.parametrize("run", [2, 3, 17, 64])
    def test_single_run(self, run):
        assert _check([0.25] * run, 0.0) == run * (run - 1) // 2

    def test_runs_separated_by_exactly_tolerance(self):
        tol = 1e-5
        values = [0.0] * 5 + [tol] * 4 + [2 * tol] * 3
        _check(values, tol)

    def test_zero_tolerance_with_duplicates(self):
        values = [0.1, 0.1, 0.1, 0.2, 0.2, 0.3]
        assert _check(values, 0.0) == 3 + 1

    def test_runs_straddling_the_boundary(self):
        tol = 1e-3
        values = np.repeat([0.0, tol * 0.999999, tol * 1.000001], 20)
        _check(values, tol)


class TestFloatBoundary:
    """Spacings where ``v − tol`` rounds off the loop's predicate."""

    def test_values_spaced_exactly_at_tolerance(self):
        tol = 1e-5
        _check(0.1 + np.arange(50) * tol, tol)

    def test_boundary_rounding_near_one(self):
        # Around 1.0 the ulp (2^-52) is comparable to a tiny tolerance, so
        # 1.0 + k·tol − tol rounds away from 1.0 + (k−1)·tol.
        tol = 2.0**-51
        values = 1.0 + np.arange(30) * tol
        _check(values, tol)

    def test_irrational_spacings(self):
        tol = 1e-7
        values = 0.1 + np.sqrt(np.arange(40)) * (tol / 3.0)
        _check(values, tol)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_quantized_near_boundary(self, seed):
        rng = np.random.default_rng(seed)
        tol = 10.0 ** rng.integers(-8, -3)
        # Quantize to multiples of tol/2 so many diffs land exactly on the
        # predicate boundary; mix in duplicates.
        base = rng.integers(0, 30, size=120) * (tol / 2.0)
        _check(base, tol)

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_uniform(self, seed):
        rng = np.random.default_rng(100 + seed)
        _check(rng.uniform(0.9, 1.1, size=200), 1e-4)


class TestInfiniteTolerance:
    def test_all_pairs_close_under_inf_tolerance(self):
        values = [1.0, 2.0, np.inf, np.inf, -np.inf]
        fast = count_close_pairs(np.array(values), np.inf)
        loop = _count_close_pairs_loop(np.array(values), np.inf)
        assert fast == loop == 5 * 4 // 2

    def test_inf_tolerance_with_nans(self):
        values = np.array([np.nan, 0.5, np.inf, np.nan])
        assert count_close_pairs(values, np.inf) == 1  # NaNs still drop


class TestValidation:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            count_close_pairs(np.array([1.0]), -1e-9)
        with pytest.raises(ValueError):
            _count_close_pairs_loop(np.array([1.0]), -1e-9)

    def test_empty_and_singleton(self):
        assert count_close_pairs(np.array([]), 1e-5) == 0
        assert count_close_pairs(np.array([4.2]), 1e-5) == 0


class TestAuditIntegration:
    def test_audit_survives_nan_multiplier(self):
        """A diverged (NaN) multiplier must not crash or skew the A.4 audit."""
        from repro.core.memcom import MEmComEmbedding
        from repro.core.uniqueness import audit_uniqueness

        emb = MEmComEmbedding(24, 4, num_hash_embeddings=6, rng=0,
                              multiplier_init="uniform")
        emb.multiplier.data[3, 0] = np.nan
        report = audit_uniqueness(emb, tolerance=1e-5)
        assert report.total_pairs > 0
        assert 0.0 <= report.fraction_distinct <= 1.0
