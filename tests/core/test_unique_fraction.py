"""Empirical unique-vector measurement (the §4 table, quantified)."""

import numpy as np
import pytest

from repro.core.hashing import DoubleHashEmbedding, NaiveHashEmbedding
from repro.core.memcom import MEmComEmbedding
from repro.core.quotient_remainder import QREmbedding
from repro.core.uniqueness import unique_embedding_fraction
from repro.experiments.properties import unique_vector_fractions


class TestUniqueEmbeddingFraction:
    def test_naive_hash_shares_everything_when_m_small(self):
        emb = NaiveHashEmbedding(1000, 8, num_hash_embeddings=10, rng=0)
        assert unique_embedding_fraction(emb) == 0.0

    def test_naive_hash_unique_when_m_covers_vocab(self):
        emb = NaiveHashEmbedding(50, 8, num_hash_embeddings=50, rng=0)
        assert unique_embedding_fraction(emb) == 1.0

    def test_memcom_uniform_init_nearly_unique(self):
        emb = MEmComEmbedding(1000, 8, num_hash_embeddings=10,
                              multiplier_init="uniform", rng=0)
        assert unique_embedding_fraction(emb) > 0.95

    def test_memcom_ones_init_shares_within_buckets(self):
        # At the exact-ones init, same-bucket ids are identical — the
        # capacity only separates them through training (A.4's subject).
        emb = MEmComEmbedding(1000, 8, num_hash_embeddings=10,
                              multiplier_init="ones", rng=0)
        assert unique_embedding_fraction(emb) == 0.0

    def test_qr_structurally_unique(self):
        emb = QREmbedding(500, 8, num_remainder_embeddings=30, operation="mult", rng=0)
        assert unique_embedding_fraction(emb) == 1.0

    def test_double_hash_between_naive_and_unique(self):
        naive = NaiveHashEmbedding(2000, 8, num_hash_embeddings=40, rng=0)
        double = DoubleHashEmbedding(2000, 8, num_hash_embeddings=40, rng=0)
        f_naive = unique_embedding_fraction(naive)
        f_double = unique_embedding_fraction(double)
        assert f_naive < f_double < 1.0

    def test_sampling_bounds_work(self):
        emb = NaiveHashEmbedding(10_000, 8, num_hash_embeddings=10_000, rng=0)
        frac = unique_embedding_fraction(emb, sample=500, rng=0)
        assert 0.9 <= frac <= 1.0

    def test_trained_memcom_recovers_uniqueness(self):
        # One optimizer step with distinct per-id gradients separates the
        # multipliers — the mechanism A.4 audits.
        from repro.nn.optim import SGD

        emb = MEmComEmbedding(100, 8, num_hash_embeddings=5,
                              multiplier_init="ones", rng=0)
        assert unique_embedding_fraction(emb) == 0.0
        opt = SGD(emb.parameters(), lr=0.5)
        ids = np.arange(100)
        weights = emb(ids).numpy().sum()  # touch forward once (no grad path)
        out = emb(ids)
        scale = np.linspace(0.1, 1.0, 100, dtype=np.float32)[:, None]
        (out * out * scale).sum().backward()
        opt.step()
        assert unique_embedding_fraction(emb) > 0.9


class TestSection4Table:
    def test_measured_fractions_match_paper_claims(self):
        measured = unique_vector_fractions(vocab=2000, embedding_dim=8)
        assert measured["low_rank"] == 1.0
        assert measured["quotient_remainder"] == 1.0
        assert measured["hash"] == 0.0
        assert 0.0 < measured["double_hash"] < 1.0
        assert measured["memcom"] > 0.95
