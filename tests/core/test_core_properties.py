"""Hypothesis property tests for the core package."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import HASH_PRIME, universal_hash
from repro.core.collisions import naive_hash_collision_rate
from repro.core.sizing import embedding_param_count, solve_embedding_dim
from repro.core.uniqueness import count_close_pairs


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 10**6),
    st.integers(1, 1000),
    st.integers(1, (1 << 31) - 1),
    st.integers(0, (1 << 31) - 1),
)
def test_universal_hash_in_range_and_deterministic(n_ids, m, a, b):
    ids = np.arange(min(n_ids, 64))
    h = universal_hash(ids, m, a, b)
    assert (h >= 0).all() and (h < m).all()
    np.testing.assert_array_equal(h, universal_hash(ids, m, a, b))


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 100_000), st.integers(1, 10_000))
def test_naive_collision_rate_nonnegative_and_bounded(v, m):
    rate = naive_hash_collision_rate(v, m)
    assert rate >= -1e-9
    assert rate <= v / m  # cannot exceed mean load


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 5000), st.integers(2, 64), st.integers(1, 4999))
def test_memcom_params_less_than_full_when_m_smaller(v, e, m):
    m = min(m, v - 1)
    full = embedding_param_count("full", v, e)
    memcom = embedding_param_count("memcom", v, e, num_hash_embeddings=m)
    # memcom wins whenever the saved rows outweigh the two scalar columns
    if (v - m) * e > 2 * v:
        assert memcom < full


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 100), st.integers(0, 10_000), st.integers(1, 10**7))
def test_solver_result_is_maximal(slope, intercept, budget):
    max_dim = 10**6
    f = lambda e: slope * e + intercept
    if f(1) > budget:
        return  # solver correctly refuses; covered by unit test
    got = solve_embedding_dim(budget, f, max_dim=max_dim)
    assert f(got) <= budget
    if got < max_dim:  # not clamped → maximal
        assert f(got + 1) > budget


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(-1, 1, allow_nan=False, width=32), min_size=2, max_size=25),
    st.floats(0, 0.5, allow_nan=False),
)
def test_count_close_pairs_matches_brute_force(values, tol):
    vals = np.asarray(values, dtype=np.float64)
    brute = sum(1 for a, b in itertools.combinations(vals, 2) if abs(a - b) <= tol)
    assert count_close_pairs(vals, tol) == brute


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 300), st.integers(1, 50))
def test_qr_partition_is_complementary(v, m):
    """Every id gets a unique (remainder, quotient) pair — Shi et al.'s
    complementary-partition property that QREmbedding relies on."""
    ids = np.arange(v)
    pairs = set(zip(ids % m, ids // m))
    assert len(pairs) == v
