"""Frequency-based double hashing (Zhang et al. 2020, deployed variant)."""

import numpy as np
import pytest

from repro.core.hashing import FrequencyDoubleHashEmbedding
from repro.core.sizing import embedding_param_count


class TestFrequencyDoubleHash:
    def test_output_shape(self, rng):
        emb = FrequencyDoubleHashEmbedding(1000, 16, num_hash_embeddings=32, rng=0)
        ids = rng.integers(0, 1000, size=(4, 6))
        assert emb(ids).shape == (4, 6, 16)

    def test_head_ids_get_dedicated_rows(self):
        emb = FrequencyDoubleHashEmbedding(1000, 16, num_hash_embeddings=32, keep=10, rng=0)
        out = emb(np.arange(10)).data
        np.testing.assert_allclose(out, emb.head.data[:10], rtol=1e-6)

    def test_tail_ids_use_double_hash(self):
        emb = FrequencyDoubleHashEmbedding(1000, 16, num_hash_embeddings=32, keep=10, rng=0)
        tail_ids = np.array([500, 999])
        np.testing.assert_allclose(emb(tail_ids).data, emb.tail(tail_ids).data, rtol=1e-6)

    def test_keep_defaults_to_hash_size(self):
        emb = FrequencyDoubleHashEmbedding(1000, 16, num_hash_embeddings=64, rng=0)
        assert emb.keep == 64

    def test_param_count_matches_sizing(self):
        emb = FrequencyDoubleHashEmbedding(1000, 16, num_hash_embeddings=32, keep=50, rng=0)
        assert emb.num_parameters() == embedding_param_count(
            "freq_double_hash", 1000, 16, num_hash_embeddings=32, keep=50
        )

    def test_head_never_collides(self):
        emb = FrequencyDoubleHashEmbedding(500, 8, num_hash_embeddings=4, keep=100, rng=0)
        out = emb(np.arange(100)).data
        assert len(np.unique(out.round(7), axis=0)) == 100

    def test_gradients_split_by_popularity(self, rng):
        emb = FrequencyDoubleHashEmbedding(100, 8, num_hash_embeddings=16, keep=20, rng=0)
        emb(np.arange(0, 20)).sum().backward()
        assert np.abs(emb.head.grad).sum() > 0
        tail_grad = emb.tail.table1.grad
        assert tail_grad is None or np.abs(tail_grad).sum() == 0

        emb.zero_grad()
        emb(np.arange(20, 100)).sum().backward()
        assert np.abs(emb.tail.table1.grad).sum() > 0
        head_grad = emb.head.grad
        assert head_grad is None or np.abs(head_grad).sum() == 0

    def test_rejects_bad_keep(self):
        with pytest.raises(ValueError):
            FrequencyDoubleHashEmbedding(100, 8, num_hash_embeddings=16, keep=0)
        with pytest.raises(ValueError):
            FrequencyDoubleHashEmbedding(100, 8, num_hash_embeddings=16, keep=101)

    def test_rejects_odd_dim(self):
        with pytest.raises(ValueError):
            FrequencyDoubleHashEmbedding(100, 7, num_hash_embeddings=16)
