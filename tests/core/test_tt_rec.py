"""TT-Rec tensor-train embeddings (Yin et al. 2021)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sizing import embedding_param_count
from repro.core.tt_rec import TTRecEmbedding, _vocab_shape, factor_three
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import Adam


class TestFactorThree:
    @pytest.mark.parametrize(
        "n,expected",
        [(32, (2, 4, 4)), (64, (4, 4, 4)), (256, (4, 8, 8)), (8, (2, 2, 2)), (1, (1, 1, 1))],
    )
    def test_balanced_factors(self, n, expected):
        assert factor_three(n) == expected

    def test_prime_degenerates(self):
        assert factor_three(7) == (1, 1, 7)

    @given(st.integers(min_value=1, max_value=2048))
    def test_product_is_exact(self, n):
        a, b, c = factor_three(n)
        assert a * b * c == n
        assert a <= b <= c

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factor_three(0)


class TestVocabShape:
    @given(st.integers(min_value=1, max_value=1_000_000))
    @settings(max_examples=50)
    def test_covers_vocab(self, v):
        v1, v2, v3 = _vocab_shape(v)
        assert v1 * v2 * v3 >= v

    def test_roughly_cubic(self):
        v1, v2, v3 = _vocab_shape(1_000_000)
        assert max(v1, v2, v3) <= 4 * 100  # within a small factor of v^(1/3)


class TestTTRecEmbedding:
    def test_output_shape(self, rng):
        emb = TTRecEmbedding(500, 32, tt_rank=4, rng=0)
        ids = rng.integers(0, 500, size=(3, 7))
        assert emb(ids).shape == (3, 7, 32)

    def test_param_count_matches_sizing(self):
        emb = TTRecEmbedding(1000, 32, tt_rank=8, rng=0)
        assert emb.num_parameters() == embedding_param_count("tt_rec", 1000, 32, tt_rank=8)

    def test_compresses_versus_full_table(self):
        v, e = 100_000, 64
        assert embedding_param_count("tt_rec", v, e, tt_rank=8) < v * e / 100

    def test_every_id_structurally_unique(self):
        # Distinct ids address distinct (i1, i2, i3) digit triples, so with
        # random cores no two embeddings coincide.
        emb = TTRecEmbedding(200, 16, tt_rank=2, rng=0)
        out = emb(np.arange(200)).data
        distances = np.linalg.norm(out[:, None, :] - out[None, :, :], axis=-1)
        np.fill_diagonal(distances, np.inf)
        assert distances.min() > 1e-9

    def test_digits_invert_mixed_radix(self):
        emb = TTRecEmbedding(321, 16, tt_rank=2, rng=0)
        ids = np.arange(321)
        i1, i2, i3 = emb.index_digits(ids)
        _, v2, v3 = emb.vocab_shape
        np.testing.assert_array_equal(i1 * v2 * v3 + i2 * v3 + i3, ids)

    def test_deterministic_per_seed(self):
        a = TTRecEmbedding(100, 16, tt_rank=2, rng=7)(np.arange(10)).data
        b = TTRecEmbedding(100, 16, tt_rank=2, rng=7)(np.arange(10)).data
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            TTRecEmbedding(100, 16, tt_rank=0)

    def test_rejects_out_of_range_ids(self):
        emb = TTRecEmbedding(100, 16, tt_rank=2, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([100]))

    def test_gradients_reach_all_cores(self, rng):
        emb = TTRecEmbedding(50, 8, tt_rank=2, rng=0)
        ids = rng.integers(0, 50, size=(4, 3))
        loss = emb(ids).sum()
        loss.backward()
        for core in (emb.core1, emb.core2, emb.core3):
            assert core.grad is not None
            assert np.abs(core.grad).sum() > 0

    def test_trains_toward_labels(self, rng):
        # A tiny end-to-end sanity check: TT-Rec embeddings + a frozen random
        # readout can fit a 4-way classification of 20 ids.
        emb = TTRecEmbedding(20, 8, tt_rank=2, rng=0)
        readout = rng.normal(size=(8, 4)).astype(np.float32)
        ids = np.arange(20)
        labels = ids % 4
        opt = Adam(emb.parameters(), lr=0.05)
        first = None
        for _ in range(60):
            opt.zero_grad()
            from repro.nn.tensor import Tensor

            logits = emb(ids) @ Tensor(readout)
            loss = softmax_cross_entropy(logits, labels)
            loss.backward()
            opt.step()
            first = loss.item() if first is None else first
        assert loss.item() < first * 0.5
