"""A.4 uniqueness audit machinery."""

import itertools

import numpy as np
import pytest

from repro.core.memcom import MEmComEmbedding
from repro.core.uniqueness import (
    _count_close_pairs_loop,
    audit_uniqueness,
    count_close_pairs,
)


def brute_force_close_pairs(values, tol):
    return sum(
        1 for a, b in itertools.combinations(values, 2) if abs(a - b) <= tol
    )


class TestCountClosePairs:
    def test_all_equal(self):
        assert count_close_pairs(np.ones(5), 1e-9) == 10

    def test_all_distinct(self):
        assert count_close_pairs(np.array([0.0, 1.0, 2.0]), 0.5) == 0

    def test_matches_brute_force(self, rng):
        for _ in range(20):
            vals = rng.normal(0, 0.01, size=rng.integers(2, 40))
            tol = float(rng.uniform(1e-4, 2e-2))
            assert count_close_pairs(vals, tol) == brute_force_close_pairs(vals, tol)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            count_close_pairs(np.ones(3), -1.0)

    def test_empty_and_singleton(self):
        assert count_close_pairs(np.array([]), 0.1) == 0
        assert count_close_pairs(np.array([3.0]), 0.1) == 0

    def test_vectorized_matches_two_pointer_loop(self, rng):
        """Regression: the searchsorted count equals the original Python
        two-pointer sweep on random inputs (exact, including ties and
        values landing exactly on the tolerance boundary)."""
        for _ in range(50):
            n = int(rng.integers(0, 200))
            vals = rng.normal(0, rng.uniform(1e-4, 1.0), size=n)
            if n and rng.random() < 0.5:
                # Inject exact duplicates and boundary-distance pairs.
                vals[: n // 2] = rng.choice(vals, size=n // 2)
            tol = float(rng.uniform(0, 0.05))
            assert count_close_pairs(vals, tol) == _count_close_pairs_loop(vals, tol)

    def test_vectorized_exact_at_float_boundaries(self, rng):
        """Large magnitudes + tiny tolerances put pairs within 1 ulp of the
        boundary, where the rounded ``v - tol`` search key disagrees with
        the reference loop's float-subtraction predicate unless corrected."""
        for _ in range(300):
            n = int(rng.integers(2, 60))
            mag = 10.0 ** rng.uniform(-6, 7)
            vals = mag + rng.normal(0, mag * 1e-11, size=n)
            tol = float(abs(rng.normal(0, mag * 1e-11)))
            assert count_close_pairs(vals, tol) == _count_close_pairs_loop(vals, tol)

    def test_duplicate_runs_at_boundary_stay_fast(self, rng):
        """Boundary correction must jump whole runs of equal values, not
        step one element per pass — large duplicate runs near a rounding
        boundary used to take minutes."""
        import time

        mag = 5.45e5
        base = mag + rng.normal(0, mag * 1e-11, size=6)
        vals = np.repeat(base, [20_000, 49_000, 30_000, 18_000, 25_000, 5_000])
        tol = mag * 1e-11
        start = time.perf_counter()
        count = count_close_pairs(vals, tol)
        # One-step correction took ~27s here; run-jumping takes ~10ms.  The
        # generous bound keeps loaded CI runners from flaking while still
        # failing decisively on the O(n·run-length) regression.
        assert time.perf_counter() - start < 10.0
        assert count == _count_close_pairs_loop(vals, tol)


class TestAudit:
    def test_trivially_unique_when_no_collisions(self):
        emb = MEmComEmbedding(10, 4, num_hash_embeddings=10, rng=0)
        report = audit_uniqueness(emb)
        assert report.total_pairs == 0
        assert report.fraction_distinct == 1.0
        assert report.passes()

    def test_identical_multipliers_fail(self):
        emb = MEmComEmbedding(100, 4, num_hash_embeddings=10, multiplier_init="ones", rng=0)
        report = audit_uniqueness(emb)
        assert report.total_pairs > 0
        assert report.fraction_distinct == 0.0
        assert not report.passes()

    def test_random_multipliers_pass(self):
        emb = MEmComEmbedding(1000, 4, num_hash_embeddings=25, multiplier_init="uniform", rng=0)
        report = audit_uniqueness(emb, tolerance=1e-7)
        assert report.fraction_distinct > 0.999

    def test_pair_counting_matches_combinatorics(self):
        v, m = 60, 7
        emb = MEmComEmbedding(v, 4, num_hash_embeddings=m, rng=0)
        report = audit_uniqueness(emb)
        sizes = np.bincount(np.arange(v) % m)
        expected_pairs = int((sizes * (sizes - 1) // 2).sum())
        assert report.total_pairs == expected_pairs
        assert report.largest_bucket == sizes.max()
        assert report.buckets_with_collisions == (sizes >= 2).sum()

    def test_tolerance_controls_strictness(self):
        emb = MEmComEmbedding(100, 4, num_hash_embeddings=2, rng=0)
        emb.multiplier.data[:, 0] = np.linspace(0, 1, 100)  # spacing ~0.0101
        strict = audit_uniqueness(emb, tolerance=1e-6)
        loose = audit_uniqueness(emb, tolerance=0.5)
        assert strict.fraction_distinct > loose.fraction_distinct
