"""A.4 uniqueness audit machinery."""

import itertools

import numpy as np
import pytest

from repro.core.memcom import MEmComEmbedding
from repro.core.uniqueness import audit_uniqueness, count_close_pairs


def brute_force_close_pairs(values, tol):
    return sum(
        1 for a, b in itertools.combinations(values, 2) if abs(a - b) <= tol
    )


class TestCountClosePairs:
    def test_all_equal(self):
        assert count_close_pairs(np.ones(5), 1e-9) == 10

    def test_all_distinct(self):
        assert count_close_pairs(np.array([0.0, 1.0, 2.0]), 0.5) == 0

    def test_matches_brute_force(self, rng):
        for _ in range(20):
            vals = rng.normal(0, 0.01, size=rng.integers(2, 40))
            tol = float(rng.uniform(1e-4, 2e-2))
            assert count_close_pairs(vals, tol) == brute_force_close_pairs(vals, tol)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            count_close_pairs(np.ones(3), -1.0)


class TestAudit:
    def test_trivially_unique_when_no_collisions(self):
        emb = MEmComEmbedding(10, 4, num_hash_embeddings=10, rng=0)
        report = audit_uniqueness(emb)
        assert report.total_pairs == 0
        assert report.fraction_distinct == 1.0
        assert report.passes()

    def test_identical_multipliers_fail(self):
        emb = MEmComEmbedding(100, 4, num_hash_embeddings=10, multiplier_init="ones", rng=0)
        report = audit_uniqueness(emb)
        assert report.total_pairs > 0
        assert report.fraction_distinct == 0.0
        assert not report.passes()

    def test_random_multipliers_pass(self):
        emb = MEmComEmbedding(1000, 4, num_hash_embeddings=25, multiplier_init="uniform", rng=0)
        report = audit_uniqueness(emb, tolerance=1e-7)
        assert report.fraction_distinct > 0.999

    def test_pair_counting_matches_combinatorics(self):
        v, m = 60, 7
        emb = MEmComEmbedding(v, 4, num_hash_embeddings=m, rng=0)
        report = audit_uniqueness(emb)
        sizes = np.bincount(np.arange(v) % m)
        expected_pairs = int((sizes * (sizes - 1) // 2).sum())
        assert report.total_pairs == expected_pairs
        assert report.largest_bucket == sizes.max()
        assert report.buckets_with_collisions == (sizes >= 2).sum()

    def test_tolerance_controls_strictness(self):
        emb = MEmComEmbedding(100, 4, num_hash_embeddings=2, rng=0)
        emb.multiplier.data[:, 0] = np.linspace(0, 1, 100)  # spacing ~0.0101
        strict = audit_uniqueness(emb, tolerance=1e-6)
        loose = audit_uniqueness(emb, tolerance=0.5)
        assert strict.fraction_distinct > loose.fraction_distinct
