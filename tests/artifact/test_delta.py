"""Delta artifacts: store what changed, resolve to the full state, fail
loudly when the chain is damaged.

``save_delta(model, path, parent)`` diffs against the parent export —
unchanged payloads become references, sparse row changes become patches —
and ``load_artifact`` walks the provenance chain back to a full view that
must be *bytes-identical* to a plain full export of the same model.  The
corruption matrix at the bottom covers every way a chain can lie: missing
parent, substituted parent, damaged patch bytes.
"""

import os

import numpy as np
import pytest

from repro.artifact import load_artifact, save_artifact, save_delta
from repro.artifact.errors import ArtifactIntegrityError

VOCAB, DIM, LENGTH, CATALOG = 200, 8, 6, 10


def _model(seed=0, technique="full"):
    from repro.models.builder import build_pointwise_ranker

    hyper = {"memcom": {"num_hash_embeddings": 32}}.get(technique, {})
    return build_pointwise_ranker(
        technique, VOCAB, CATALOG, input_length=LENGTH, embedding_dim=DIM,
        rng=seed, **hyper,
    )


def _touch_rows(model, rows, bump=0.5):
    model.embedding.table.data[rows] += bump
    return rows


@pytest.fixture
def chain(tmp_path):
    """model + full parent export + rows touched since."""
    model = _model()
    parent = str(tmp_path / "parent")
    save_artifact(model, parent)
    rows = _touch_rows(model, [3, 17, 42])
    return model, parent, rows


class TestDeltaSave:
    def test_sources_recorded_per_payload(self, chain, tmp_path):
        model, parent, rows = chain
        art = save_delta(model, str(tmp_path / "d"), parent, touched_rows=rows)
        index = art.manifest["payloads"]
        assert index["embedding/table"]["source"] == "rows"
        untouched = [
            n for n, m in index.items() if m.get("source", "self") == "parent"
        ]
        assert untouched, "tower payloads did not change — must reference parent"
        delta = art.manifest["delta"]
        assert delta["depth"] == 1
        assert delta["payloads_patched"] == 1
        assert delta["payloads_from_parent"] == len(untouched)

    def test_resolves_bytes_identical_to_full_export(self, chain, tmp_path):
        model, parent, rows = chain
        save_delta(model, str(tmp_path / "d"), parent, touched_rows=rows)
        full = save_artifact(model, str(tmp_path / "full"))
        loaded = load_artifact(str(tmp_path / "d"))
        assert loaded.manifest["payloads"].keys() == full.manifest["payloads"].keys()
        for name in full.manifest["payloads"]:
            assert np.array_equal(loaded.array(name), full.array(name)), name

    def test_delta_is_much_smaller_than_full(self, chain, tmp_path):
        model, parent, rows = chain
        art = save_delta(model, str(tmp_path / "d"), parent, touched_rows=rows)
        full = save_artifact(model, str(tmp_path / "full"))
        assert art.stored_bytes() < 0.5 * full.stored_bytes()

    def test_touched_rows_understatement_raises(self, chain, tmp_path):
        model, parent, _rows = chain
        with pytest.raises(ValueError, match="not in touched_rows"):
            save_delta(model, str(tmp_path / "d"), parent, touched_rows=[3, 17])

    def test_touched_rows_superset_is_fine(self, chain, tmp_path):
        model, parent, rows = chain
        art = save_delta(
            model, str(tmp_path / "d"), parent, touched_rows=rows + [99, 150]
        )
        assert art.manifest["payloads"]["embedding/table"]["source"] == "rows"

    def test_mostly_rewritten_table_stored_outright(self, tmp_path):
        model = _model()
        parent = str(tmp_path / "parent")
        save_artifact(model, parent)
        _touch_rows(model, list(range(VOCAB * 3 // 4)))  # > _DELTA_ROW_FRACTION
        art = save_delta(model, str(tmp_path / "d"), parent)
        assert art.manifest["payloads"]["embedding/table"].get("source", "self") == "self"

    def test_contract_mismatch_raises(self, chain, tmp_path):
        model, parent, _rows = chain
        other = _model(technique="memcom")
        with pytest.raises(ValueError, match="model contract"):
            save_delta(other, str(tmp_path / "d"), parent)
        with pytest.raises(ValueError, match="model contract"):
            save_delta(model, str(tmp_path / "d"), parent, bits=8)


class TestDeltaChain:
    def test_depth_two_resolves(self, chain, tmp_path):
        model, parent, rows = chain
        d1 = str(tmp_path / "d1")
        save_delta(model, d1, parent, touched_rows=rows)
        more = _touch_rows(model, [7, 8])
        d2 = str(tmp_path / "d2")
        save_delta(model, d2, d1, touched_rows=more)
        loaded = load_artifact(d2)
        assert loaded.manifest["delta"]["depth"] == 2
        assert len(loaded.delta_chain) == 2
        full = save_artifact(model, str(tmp_path / "full"))
        for name in full.manifest["payloads"]:
            assert np.array_equal(loaded.array(name), full.array(name)), name

    def test_chain_resolves_when_shipped_as_a_directory(self, chain, tmp_path):
        """Parent recorded under its original path, then the pair moved —
        resolution falls back to beside-the-delta."""
        model, parent, rows = chain
        delta = str(tmp_path / "d")
        save_delta(model, delta, parent, touched_rows=rows)
        shipped = tmp_path / "shipped"
        shipped.mkdir()
        os.rename(parent, str(shipped / "parent"))
        os.rename(delta, str(shipped / "d"))
        loaded = load_artifact(str(shipped / "d"))
        assert np.array_equal(
            loaded.array("embedding/table"), model.embedding.table.data
        )


class TestCorruptionMatrix:
    def test_missing_parent(self, chain, tmp_path):
        model, parent, rows = chain
        delta = str(tmp_path / "d")
        save_delta(model, delta, parent, touched_rows=rows)
        import shutil

        shutil.rmtree(parent)
        with pytest.raises(ArtifactIntegrityError, match="parent"):
            load_artifact(delta)

    def test_substituted_parent(self, chain, tmp_path):
        model, parent, rows = chain
        delta = str(tmp_path / "d")
        save_delta(model, delta, parent, touched_rows=rows)
        import shutil

        shutil.rmtree(parent)
        save_artifact(_model(seed=99), parent)  # different weights, same path
        with pytest.raises(ArtifactIntegrityError, match="provenance hash"):
            load_artifact(delta)

    def test_damaged_patch_values(self, chain, tmp_path):
        model, parent, rows = chain
        delta = str(tmp_path / "d")
        art = save_delta(model, delta, parent, touched_rows=rows)
        member = art.manifest["payloads"]["embedding/table"]["values"]["file"]
        full = os.path.join(delta, member)
        blob = bytearray(open(full, "rb").read())
        blob[0] ^= 0xFF
        with open(full, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(ArtifactIntegrityError):
            load_artifact(delta)

    def test_tampered_reconstruction_hash(self, chain, tmp_path):
        """Patch applies cleanly but the recorded full-content hash says the
        result is wrong — the chain is corrupted, not merely damaged."""
        import json

        model, parent, rows = chain
        delta = str(tmp_path / "d")
        save_delta(model, delta, parent, touched_rows=rows)
        mpath = os.path.join(delta, "manifest.json")
        manifest = json.load(open(mpath))
        manifest["payloads"]["embedding/table"]["sha256"] = "0" * 64
        with open(mpath, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ArtifactIntegrityError, match="chain is corrupted"):
            load_artifact(delta)
