"""Atomic artifact saves: a crash mid-save never leaves a half-written container.

``save_artifact`` writes everything into a ``<path>.incoming.<pid>``
sibling and only then swaps it into place, so the observable states at
``path`` are exactly two: the previous artifact (or nothing), or the
complete new one.  Pinned here against three killers — an exception
mid-write, SIGKILL mid-write (a forked child is killed while payloads are
still streaming out), and debris from earlier crashed saves.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.artifact import load_artifact, save_artifact
from repro.artifact import container as container_mod
from repro.models.builder import build_pointwise_ranker


def _model(seed=0):
    return build_pointwise_ranker(
        "memcom", 300, 12, input_length=6, embedding_dim=16, rng=seed,
        num_hash_embeddings=32,
    )


def _siblings(path):
    return [
        p
        for pattern in (".incoming.*", ".replaced.*")
        for p in glob.glob(glob.escape(path) + pattern)
    ]


def _failing_sha256(monkeypatch, after_calls):
    """Let the first ``after_calls`` payload hashes through, then blow up."""
    real = container_mod._sha256
    calls = {"n": 0}

    def boom(data):
        calls["n"] += 1
        if calls["n"] > after_calls:
            raise RuntimeError("disk fell over mid-save")
        return real(data)

    monkeypatch.setattr(container_mod, "_sha256", boom)


@pytest.mark.parametrize("suffix", ["art", "art.zip"], ids=["dir", "zip"])
class TestFailedSave:
    def test_failed_first_save_leaves_no_artifact(self, tmp_path, monkeypatch, suffix):
        out = str(tmp_path / suffix)
        _failing_sha256(monkeypatch, after_calls=2)
        with pytest.raises(RuntimeError, match="disk fell over"):
            save_artifact(_model(), out)
        assert not os.path.exists(out)  # not a partial container — nothing
        assert _siblings(out) == []  # and no temp debris either

    def test_failed_resave_preserves_previous_artifact(
        self, tmp_path, monkeypatch, suffix
    ):
        out = str(tmp_path / suffix)
        save_artifact(_model(seed=1), out)
        before = load_artifact(out)
        _failing_sha256(monkeypatch, after_calls=2)
        with pytest.raises(RuntimeError, match="disk fell over"):
            save_artifact(_model(seed=2), out)
        monkeypatch.undo()  # hashing works again; only the save was doomed
        after = load_artifact(out)  # still loads, still the old artifact
        assert after.manifest["payloads"] == before.manifest["payloads"]
        for name in before.manifest["payloads"]:
            np.testing.assert_array_equal(before.array(name), after.array(name))
        assert _siblings(out) == []


class TestKilledSave:
    @pytest.mark.parametrize("suffix", ["art", "art.zip"], ids=["dir", "zip"])
    def test_sigkill_mid_save_preserves_previous_artifact(self, tmp_path, suffix):
        out = str(tmp_path / suffix)
        save_artifact(_model(seed=1), out)
        before = load_artifact(out)

        child = os.fork()
        if child == 0:  # the doomed exporter
            try:
                real = container_mod._sha256

                def slow_sha256(data):
                    time.sleep(0.05)  # stretch the window the kill must hit
                    return real(data)

                container_mod._sha256 = slow_sha256
                save_artifact(_model(seed=2), out)
            finally:
                os._exit(0)  # only reached if the kill somehow missed

        # Wait until the child's .incoming temp exists — proof it is
        # mid-save — then SIGKILL it: no atexit, no finally, nothing.
        deadline = time.monotonic() + 30.0
        tmp_glob = glob.escape(out) + ".incoming.*"
        while not glob.glob(tmp_glob):
            assert time.monotonic() < deadline, "child never started writing"
            time.sleep(0.005)
        os.kill(child, signal.SIGKILL)
        _, status = os.waitpid(child, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        assert glob.glob(tmp_glob)  # the torn write landed in the temp...

        after = load_artifact(out)  # ...and the published artifact is whole
        assert after.manifest["payloads"] == before.manifest["payloads"]
        for name in before.manifest["payloads"]:
            np.testing.assert_array_equal(before.array(name), after.array(name))

        # The next save sweeps the dead child's debris and publishes fine.
        save_artifact(_model(seed=3), out)
        assert _siblings(out) == []
        assert load_artifact(out).manifest["payloads"] != before.manifest["payloads"]


class TestStaleTempCleanup:
    def test_save_sweeps_stale_siblings_from_other_pids(self, tmp_path):
        out = str(tmp_path / "art")
        stale_tmp = tmp_path / "art.incoming.99999"
        stale_tmp.mkdir()
        (stale_tmp / "junk.bin").write_bytes(b"half a payload")
        stale_old = tmp_path / "art.replaced.99999"
        stale_old.mkdir()
        save_artifact(_model(), out)
        assert _siblings(out) == []
        load_artifact(out)  # and the artifact itself is intact

    def test_resave_swaps_dir_artifact_in_place(self, tmp_path):
        out = str(tmp_path / "art")
        save_artifact(_model(seed=1), out)
        first = load_artifact(out)
        save_artifact(_model(seed=2), out)
        second = load_artifact(out)
        assert first.manifest["payloads"] != second.manifest["payloads"]
        assert _siblings(out) == []

    def test_kind_change_dir_to_zip_and_back(self, tmp_path):
        # Same path serving as dir then zip then dir again: each save fully
        # replaces the previous kind, never merges into it.
        out = str(tmp_path / "art")
        save_artifact(_model(seed=1), out)
        assert os.path.isdir(out)
        os.rename(out, out + ".bak")
        os.rename(out + ".bak", out)  # ensure plain rename semantics hold
        zip_out = out + ".zip"
        save_artifact(_model(seed=2), zip_out)
        assert os.path.isfile(zip_out)
        load_artifact(out)
        load_artifact(zip_out)
