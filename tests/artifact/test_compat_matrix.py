"""Back-compat matrix: v1/v2 containers read bit-identically under the v3
reader.

Old writers are gone, so the fixtures are materialized in-test by
``downgrade`` — the exact layout v1/v2 writers produced (one member file
per payload, no aliases, no zero elision; v1 additionally has no
checkpoint section).  Everything a v3 runtime can do with an old
container — load, mmap, serve, resume — must agree with the v3 original
byte for byte.
"""

import json
import os
import sys

import numpy as np
import pytest

from artifact_helpers import downgrade
from repro.artifact import load_artifact, save_artifact
from repro.artifact.errors import ArtifactVersionError
from repro.serve.session import ServeConfig, ServeSession

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "pipeline"))

VOCAB, DIM, LENGTH, CATALOG = 220, 8, 6, 10


def _model(seed=0):
    from repro.models.builder import build_pointwise_ranker

    return build_pointwise_ranker(
        "full", VOCAB, CATALOG, input_length=LENGTH, embedding_dim=DIM, rng=seed,
    )


def _checkpointed(model):
    state = model.state_dict()
    arrays = {f"model/{k}": v for k, v in state.items()}
    arrays["opt/velocity.0"] = np.zeros_like(model.embedding.table.data)
    return {"train_state": {"epoch": 1}}, arrays


@pytest.fixture
def exports(tmp_path):
    model = _model()
    v3 = str(tmp_path / "v3")
    save_artifact(model, v3, checkpoint=_checkpointed(model))
    return model, v3


class TestDowngradedContainers:
    @pytest.mark.parametrize("version", [1, 2])
    def test_loads_bit_identical(self, exports, tmp_path, version):
        _model_, v3 = exports
        old = downgrade(v3, str(tmp_path / f"v{version}"), version)
        v3_art, old_art = load_artifact(v3), load_artifact(old)
        assert old_art.manifest["format_version"] == version
        expected = {
            n for n in v3_art.manifest["payloads"]
            if version > 1 or not n.startswith("checkpoint/")
        }
        assert set(old_art.manifest["payloads"]) == expected
        for name in expected:
            assert np.array_equal(old_art.array(name), v3_art.array(name)), name

    @pytest.mark.parametrize("version", [1, 2])
    def test_serves_identical_predictions(self, exports, tmp_path, version):
        _model_, v3 = exports
        old = downgrade(v3, str(tmp_path / f"v{version}"), version)
        ids = np.random.default_rng(5).integers(0, VOCAB, size=(24, LENGTH))
        with ServeSession.load(v3) as a, ServeSession.load(old) as b:
            assert np.array_equal(a.predict(ids), b.predict(ids))

    @pytest.mark.parametrize("version", [1, 2])
    def test_old_containers_mmap_too(self, exports, tmp_path, version):
        """v3 merely promises what old writers already did (raw C-order
        member bytes) — so the mmap fast path works on old containers."""
        _model_, v3 = exports
        old = downgrade(v3, str(tmp_path / f"v{version}"), version)
        art = load_artifact(old, mmap=True)
        assert isinstance(art.array("embedding/table"), np.memmap)
        assert np.array_equal(
            art.array("embedding/table"),
            load_artifact(v3).array("embedding/table"),
        )

    def test_v1_has_no_checkpoint(self, exports, tmp_path):
        _model_, v3 = exports
        old = downgrade(v3, str(tmp_path / "v1"), 1)
        assert not load_artifact(old).has_checkpoint

    def test_unknown_version_rejected(self, exports, tmp_path):
        _model_, v3 = exports
        old = downgrade(v3, str(tmp_path / "v99"), 2)
        mpath = os.path.join(old, "manifest.json")
        manifest = json.load(open(mpath))
        manifest["format_version"] = 99
        with open(mpath, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ArtifactVersionError):
            load_artifact(old)


class TestV2CheckpointResume:
    def test_resume_from_downgraded_checkpoint_bit_identical(self, tmp_path):
        """A real v2-era training checkpoint (downgraded from v3) resumes to
        the same final weights as the v3 original."""
        from pipeline_helpers import tiny_spec

        from repro.pipeline import TrainSession

        spec = tiny_spec("full", optimizer="sgd", epochs=2)
        session = TrainSession(spec)
        session.fit(stop_after_epoch=1)
        v3 = str(tmp_path / "ck")
        session.save_checkpoint(v3)
        v2 = downgrade(v3, str(tmp_path / "ck-v2"), 2)

        a, b = TrainSession.resume(v3), TrainSession.resume(v2)
        a.fit()
        b.fit()
        pa, pb = str(tmp_path / "a"), str(tmp_path / "b")
        a.export(pa)
        b.export(pb)
        aa, bb = load_artifact(pa), load_artifact(pb)
        for name in aa.manifest["payloads"]:
            assert np.array_equal(aa.array(name), bb.array(name)), name
