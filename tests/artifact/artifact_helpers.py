"""Shared fixtures for the v3 artifact-plane tests.

``downgrade`` materializes the v1/v2-equivalent of a v3 container — every
payload expanded into its own member file, no aliases, no zero elision, no
delta section — which is both the back-compat fixture (old readers wrote
exactly this layout) and the size baseline the v3 dedup gate measures
against.
"""

import json
import os

import numpy as np

from repro.artifact import load_artifact


def downgrade(src: str, dst: str, version: int) -> str:
    """Write the v1/v2-equivalent container of the v3 artifact at ``src``.

    v2 = same content, one member file per payload, no aliasing/zeros/delta.
    v1 additionally predates checkpoints: the checkpoint section and its
    payloads are dropped (v1 writers never produced them).
    """
    assert version in (1, 2)
    art = load_artifact(src)
    manifest = json.loads(json.dumps(art.manifest))  # deep copy
    manifest["format_version"] = version
    manifest.pop("delta", None)
    if version == 1:
        manifest.pop("checkpoint", None)

    os.makedirs(os.path.join(dst, "payloads"))
    index = {}
    for name, meta in art.manifest["payloads"].items():
        if version == 1 and name.startswith("checkpoint/"):
            continue
        member = os.path.join("payloads", name.replace("/", ".") + ".bin")
        arr = np.ascontiguousarray(art.array(name))
        with open(os.path.join(dst, member), "wb") as fh:
            fh.write(arr.tobytes())
        index[name] = {
            "file": member,
            "dtype": meta["dtype"],
            "shape": list(meta["shape"]),
            "nbytes": int(meta["nbytes"]),
            "sha256": meta["sha256"],
        }
    manifest["payloads"] = index
    with open(os.path.join(dst, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
    return dst
