"""Format v3 payload aliasing: each distinct blob is stored exactly once.

A checkpointed artifact logically contains the serving payloads *and* the
training state — whose ``model/*`` tensors are byte-identical to the
serving tensors, and whose untouched optimizer slots are pure zeros.  v3
content-addresses all of it: duplicates become manifest aliases, all-zero
payloads are elided entirely, and the container lands well under half the
v2-equivalent bytes (the ``≤ 0.45×`` gate at the bottom).
"""

import glob
import os
from dataclasses import replace

import numpy as np
import pytest

from artifact_helpers import downgrade
from repro.artifact import load_artifact, save_artifact

VOCAB, DIM, LENGTH, CATALOG = 256, 16, 6, 10


def _model(seed=0):
    from repro.models.builder import build_pointwise_ranker

    return build_pointwise_ranker(
        "full", VOCAB, CATALOG, input_length=LENGTH, embedding_dim=DIM, rng=seed,
    )


def _checkpointed(model):
    """A checkpoint whose model tensors duplicate the serving payloads and
    whose optimizer slots are untouched (all zeros) — the worst case v2
    stored in full and the case v3 collapses."""
    state = model.state_dict()
    arrays = {f"model/{k}": v for k, v in state.items()}
    arrays.update(
        {f"opt/velocity.{i}": np.zeros_like(v) for i, v in enumerate(state.values())}
    )
    return {"train_state": {"epoch": 1}}, arrays


class TestAliasing:
    def test_duplicate_payloads_share_one_member_file(self, tmp_path):
        model = _model()
        path = str(tmp_path / "a")
        art = save_artifact(model, path, checkpoint=_checkpointed(model))
        index = art.manifest["payloads"]
        digests = {m["sha256"] for m in index.values()}
        members = glob.glob(os.path.join(path, "payloads", "*"))
        # one file per distinct content, never more (zeros need none at all)
        assert len(members) < len(digests)
        stored = {m["file"] for m in index.values() if "file" in m}
        assert len(members) == len(stored)
        aliased = [n for n, m in index.items() if "alias" in m]
        assert aliased, "checkpoint model tensors should alias serving payloads"
        for name in aliased:
            canonical = index[name]["alias"]
            assert index[name]["file"] == index[canonical]["file"]
            assert index[name]["sha256"] == index[canonical]["sha256"]

    def test_zero_payloads_are_elided(self, tmp_path):
        model = _model()
        path = str(tmp_path / "a")
        art = save_artifact(model, path, checkpoint=_checkpointed(model))
        zeros = [
            n for n, m in art.manifest["payloads"].items() if m.get("zeros")
        ]
        assert any(n.startswith("checkpoint/opt/") for n in zeros)
        for name in zeros:
            assert "file" not in art.manifest["payloads"][name]
            assert not art.array(name).any()
        # elided payloads round-trip through both load modes
        for mmap in (False, True):
            loaded = load_artifact(path, mmap=mmap)
            for name in zeros:
                meta = loaded.manifest["payloads"][name]
                arr = loaded.array(name)
                assert arr.shape == tuple(meta["shape"])
                assert not arr.any()

    def test_aliased_loads_are_equal_and_independent(self, tmp_path):
        model = _model()
        path = str(tmp_path / "a")
        save_artifact(model, path, checkpoint=_checkpointed(model))
        art = load_artifact(path)
        a = art.array("embedding/table")
        b = art.array("checkpoint/model/embedding.table")
        assert np.array_equal(a, b)
        a[0, 0] += 1.0  # eager arrays are private copies
        assert not np.array_equal(a, b)

    def test_zip_container_aliases_too(self, tmp_path):
        model = _model()
        path = str(tmp_path / "a.zip")
        art = save_artifact(model, path, checkpoint=_checkpointed(model))
        assert any("alias" in m for m in art.manifest["payloads"].values())
        loaded = load_artifact(path)
        assert np.array_equal(
            loaded.array("embedding/table"),
            loaded.array("checkpoint/model/embedding.table"),
        )

    def test_alias_survives_roundtrip_bit_identical(self, tmp_path):
        model = _model()
        plain = save_artifact(model, str(tmp_path / "plain"))
        rich = save_artifact(
            model, str(tmp_path / "rich"), checkpoint=_checkpointed(model)
        )
        loaded = load_artifact(str(tmp_path / "rich"))
        for name in plain.manifest["payloads"]:
            assert np.array_equal(loaded.array(name), plain.array(name)), name
        assert rich.manifest["payloads"].keys() == loaded.manifest["payloads"].keys()


class TestSizeGate:
    def test_checkpointed_artifact_under_45_percent_of_v2(self, tmp_path):
        """The ISSUE's acceptance gate: a v3 checkpointed training artifact
        must occupy ≤ 0.45× the bytes of its v2 equivalent (one member file
        per payload, no aliasing, no zero elision)."""
        import sys

        sys.path.insert(
            0, os.path.join(os.path.dirname(__file__), "..", "pipeline")
        )
        from pipeline_helpers import tiny_spec

        from repro.pipeline import TrainSession

        spec = replace(
            tiny_spec("full", optimizer="sgd", epochs=2,
                      train_overrides={"momentum": 0.0}),
            embedding_dim=32,
        )
        session = TrainSession(spec)
        session.fit(stop_after_epoch=1)  # mid-run: full optimizer + best state
        v3 = str(tmp_path / "v3")
        session.save_checkpoint(v3)
        art = load_artifact(v3)
        v2 = downgrade(v3, str(tmp_path / "v2"), version=2)

        def disk(path):
            return sum(
                os.path.getsize(os.path.join(root, f))
                for root, _dirs, files in os.walk(path)
                for f in files
            )

        v3_bytes, v2_bytes = disk(v3), disk(v2)
        assert v3_bytes <= 0.45 * v2_bytes, (
            f"v3 container is {v3_bytes} bytes, v2 equivalent {v2_bytes} "
            f"(ratio {v3_bytes / v2_bytes:.3f} > 0.45)"
        )
        assert art.stored_bytes() == v3_bytes
        # and the v2 equivalent still resumes to the same state (the dedup
        # is lossless, not a different checkpoint)
        v2_art = load_artifact(str(tmp_path / "v2"))
        for name in art.manifest["payloads"]:
            assert np.array_equal(art.array(name), v2_art.array(name)), name
