"""Container mechanics of :mod:`repro.artifact`: manifest, hashing, errors."""

import json
import os
import zipfile

import numpy as np
import pytest

from repro.artifact import (
    FORMAT_MAGIC,
    FORMAT_VERSION,
    ArtifactError,
    ArtifactFormatError,
    ArtifactIntegrityError,
    ArtifactVersionError,
    load_artifact,
    save_artifact,
)
from repro.models.builder import build_pointwise_ranker


def _model(technique="memcom", vocab=300, **hyper):
    defaults = {"memcom": {"num_hash_embeddings": 32}, "full": {}}[technique]
    defaults.update(hyper)
    return build_pointwise_ranker(
        technique, vocab, 12, input_length=6, embedding_dim=16, rng=0, **defaults
    )


def _manifest_path(path):
    return os.path.join(path, "manifest.json")


def _rewrite_manifest(path, mutate):
    with open(_manifest_path(path)) as fh:
        manifest = json.load(fh)
    mutate(manifest)
    with open(_manifest_path(path), "w") as fh:
        json.dump(manifest, fh)


def _first_stored_payload(artifact):
    """First payload that owns a member file (v3 elides all-zero payloads
    and aliases duplicates — corruption tests need real bytes on disk)."""
    return sorted(
        n for n, m in artifact.manifest["payloads"].items()
        if "file" in m and "alias" not in m
    )[0]


class TestLayout:
    def test_directory_layout_and_manifest_fields(self, tmp_path):
        out = str(tmp_path / "art")
        artifact = save_artifact(_model(), out, bits=8)
        assert os.path.isfile(_manifest_path(out))
        with open(_manifest_path(out)) as fh:
            manifest = json.load(fh)
        assert manifest["format"] == FORMAT_MAGIC
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["bits"] == 8
        assert manifest["model"]["architecture"] == "PointwiseRanker"
        assert manifest["embedding"]["technique"] == "memcom"
        for meta in manifest["payloads"].values():
            if meta.get("zeros"):
                # v3 elides all-zero payloads: no member file exists
                assert "file" not in meta
            else:
                member = os.path.join(out, meta["file"])
                assert os.path.isfile(member)
                assert os.path.getsize(member) == meta["nbytes"]
            assert len(meta["sha256"]) == 64
        assert artifact.total_bytes() == artifact.payload_bytes() + os.path.getsize(
            _manifest_path(out)
        )

    def test_zip_container_round_trips_identically(self, tmp_path):
        model = _model()
        as_dir = save_artifact(model, str(tmp_path / "d"))
        as_zip = save_artifact(model, str(tmp_path / "z.zip"))
        assert zipfile.is_zipfile(tmp_path / "z.zip")
        loaded_dir = load_artifact(str(tmp_path / "d"))
        loaded_zip = load_artifact(str(tmp_path / "z.zip"))
        assert loaded_dir.manifest["payloads"] == loaded_zip.manifest["payloads"]
        for name in loaded_dir.manifest["payloads"]:
            np.testing.assert_array_equal(
                loaded_dir.array(name), loaded_zip.array(name)
            )
        assert as_dir.payload_bytes() == as_zip.payload_bytes()

    def test_quantized_payloads_shrink_the_container(self, tmp_path):
        model = _model("full", vocab=2000)
        fp32 = save_artifact(model, str(tmp_path / "fp32"))
        int8 = save_artifact(model, str(tmp_path / "int8"), bits=8)
        int4 = save_artifact(model, str(tmp_path / "int4"), bits=4)
        # Acceptance gate: int8 artifact ≤ 0.35× the FP32 artifact on disk.
        assert int8.total_bytes() <= 0.35 * fp32.total_bytes()
        assert int4.total_bytes() < int8.total_bytes()

    def test_save_rejects_bad_bits_and_models(self, tmp_path):
        with pytest.raises(ValueError, match="bits"):
            save_artifact(_model(), str(tmp_path / "a"), bits=16)
        with pytest.raises(TypeError, match="no artifact export"):
            save_artifact(object(), str(tmp_path / "b"))


class TestTypedErrors:
    def test_missing_path_is_format_error(self, tmp_path):
        with pytest.raises(ArtifactFormatError, match="no artifact"):
            load_artifact(str(tmp_path / "nope"))

    def test_plain_file_is_format_error(self, tmp_path):
        stray = tmp_path / "stray.bin"
        stray.write_bytes(b"not an artifact")
        with pytest.raises(ArtifactFormatError, match="neither"):
            load_artifact(str(stray))

    def test_dir_without_manifest_is_format_error(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ArtifactFormatError, match="manifest"):
            load_artifact(str(tmp_path / "empty"))

    def test_unparseable_manifest_is_format_error(self, tmp_path):
        out = str(tmp_path / "art")
        save_artifact(_model(), out)
        with open(_manifest_path(out), "w") as fh:
            fh.write("{broken json")
        with pytest.raises(ArtifactFormatError, match="unparseable"):
            load_artifact(out)

    def test_wrong_magic_is_format_error(self, tmp_path):
        out = str(tmp_path / "art")
        save_artifact(_model(), out)
        _rewrite_manifest(out, lambda m: m.update(format="some.other.container"))
        with pytest.raises(ArtifactFormatError, match="format"):
            load_artifact(out)

    def test_future_version_is_version_error(self, tmp_path):
        out = str(tmp_path / "art")
        save_artifact(_model(), out)
        _rewrite_manifest(out, lambda m: m.update(format_version=FORMAT_VERSION + 1))
        with pytest.raises(ArtifactVersionError, match="version"):
            load_artifact(out)

    def test_missing_required_field_is_format_error(self, tmp_path):
        out = str(tmp_path / "art")
        save_artifact(_model(), out)
        _rewrite_manifest(out, lambda m: m.pop("tower"))
        with pytest.raises(ArtifactFormatError, match="tower"):
            load_artifact(out)

    def test_corrupted_payload_is_integrity_error(self, tmp_path):
        out = str(tmp_path / "art")
        artifact = save_artifact(_model(), out)
        name = _first_stored_payload(artifact)
        member = os.path.join(out, artifact.manifest["payloads"][name]["file"])
        data = bytearray(open(member, "rb").read())
        data[0] ^= 0xFF  # flip one bit pattern, size unchanged
        with open(member, "wb") as fh:
            fh.write(data)
        with pytest.raises(ArtifactIntegrityError, match="hash mismatch"):
            load_artifact(out)

    def test_truncated_payload_is_integrity_error(self, tmp_path):
        out = str(tmp_path / "art")
        artifact = save_artifact(_model(), out)
        name = _first_stored_payload(artifact)
        member = os.path.join(out, artifact.manifest["payloads"][name]["file"])
        data = open(member, "rb").read()
        with open(member, "wb") as fh:
            fh.write(data[:-1])
        with pytest.raises(ArtifactIntegrityError, match="bytes"):
            load_artifact(out)

    def test_deleted_payload_is_integrity_error(self, tmp_path):
        out = str(tmp_path / "art")
        artifact = save_artifact(_model(), out)
        name = _first_stored_payload(artifact)
        os.remove(os.path.join(out, artifact.manifest["payloads"][name]["file"]))
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            load_artifact(out)

    def test_truncated_zip_is_integrity_error(self, tmp_path):
        # A zip cut short (torn download, full disk) must read as damage,
        # not as "this was never an artifact".
        out = str(tmp_path / "art.zip")
        save_artifact(_model(), out)
        data = open(out, "rb").read()
        with open(out, "wb") as fh:
            fh.write(data[: int(len(data) * 0.6)])
        with pytest.raises(ArtifactIntegrityError, match="truncated or corrupted"):
            load_artifact(out)

    def test_bitflipped_zip_member_is_integrity_error(self, tmp_path):
        # Damage *inside* the zip (payload bytes) — caught typed, whether by
        # zipfile's own CRC or by the manifest's sha256, never a bare
        # BadZipFile/struct.error escaping to the caller.
        out = str(tmp_path / "art.zip")
        save_artifact(_model(), out)
        data = bytearray(open(out, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(out, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(ArtifactIntegrityError):
            load_artifact(out)

    def test_malformed_payload_index_entry_is_format_error(self, tmp_path):
        out = str(tmp_path / "art")
        artifact = save_artifact(_model(), out)
        name = _first_stored_payload(artifact)

        def strip_file_key(manifest):
            del manifest["payloads"][name]["file"]

        _rewrite_manifest(out, strip_file_key)
        with pytest.raises(ArtifactFormatError, match="malformed payload index"):
            load_artifact(out)

    def test_truncated_checkpoint_payload_in_zip_is_integrity_error(self, tmp_path):
        # v2 checkpoint tensors ride the same verified payload index; a
        # truncated checkpoint member in a zip container fails typed too.
        out = str(tmp_path / "ckpt.zip")
        ckpt = ({"epoch": 3}, {"model/w": np.arange(64, dtype=np.float32)})
        artifact = save_artifact(_model(), out, checkpoint=ckpt)
        member = artifact.manifest["payloads"]["checkpoint/model/w"]["file"]
        with zipfile.ZipFile(out) as zf:
            contents = {info.filename: zf.read(info.filename) for info in zf.infolist()}
        contents[member] = contents[member][:-8]
        with zipfile.ZipFile(out, "w", zipfile.ZIP_STORED) as zf:
            for filename, data in contents.items():
                zf.writestr(filename, data)
        with pytest.raises(ArtifactIntegrityError, match="bytes"):
            load_artifact(out)

    def test_corrupted_checkpoint_payload_in_dir_is_integrity_error(self, tmp_path):
        out = str(tmp_path / "ckpt")
        ckpt = ({"epoch": 3}, {"model/w": np.arange(64, dtype=np.float32)})
        artifact = save_artifact(_model(), out, checkpoint=ckpt)
        member = os.path.join(
            out, artifact.manifest["payloads"]["checkpoint/model/w"]["file"]
        )
        data = bytearray(open(member, "rb").read())
        data[0] ^= 0xFF
        with open(member, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(ArtifactIntegrityError, match="hash mismatch"):
            load_artifact(out)

    def test_all_errors_share_the_artifact_root(self):
        for cls in (ArtifactFormatError, ArtifactVersionError, ArtifactIntegrityError):
            assert issubclass(cls, ArtifactError)

    def test_missing_quant_table_entry_is_format_error(self, tmp_path):
        out = str(tmp_path / "q")
        save_artifact(_model(), out, bits=8)
        _rewrite_manifest(
            out, lambda m: m["embedding"]["tables"].pop("multiplier")
        )
        with pytest.raises(ArtifactFormatError, match="quantized embedding"):
            load_artifact(out).serving_embedding()

    def test_missing_quant_meta_key_is_format_error(self, tmp_path):
        out = str(tmp_path / "q2")
        save_artifact(_model(), out, bits=8)
        _rewrite_manifest(out, lambda m: m["embedding"]["quant"].pop("num_hash"))
        with pytest.raises(ArtifactFormatError, match="quantized embedding"):
            load_artifact(out).serving_embedding()
