"""Artifact round-trips serve bit-identical predictions.

The acceptance matrix of the serving-artifact redesign: for every technique
(full, MEmCom, TT-Rec, their sharded variants, a module-fallback technique
and the pooled one-hot encoder) × ``n_shards ∈ {1, 3, 8}`` ×
``bits ∈ {32, 8, 4}``, ``ServeSession.load(save_artifact(model))`` must
produce the same bytes as the in-memory :class:`InferenceEngine` on the
same requests — not close, *equal*: the artifact stores either exact FP32
state or the exact calibrated codes, and both ends decode through the same
kernels.
"""

import numpy as np
import pytest

from repro.artifact import save_artifact
from repro.models.builder import (
    build_classifier,
    build_pointwise_ranker,
    build_ranknet,
    shard_model,
)
from repro.serve.engine import InferenceEngine
from repro.serve.session import ServeConfig, ServeSession

VOCAB = 300
DIM = 16
LENGTH = 6
CATALOG = 12

_HYPER = {
    "full": {},
    "memcom": {"num_hash_embeddings": 32},
    "tt_rec": {"tt_rank": 4},
    "qr_mult": {"num_hash_embeddings": 32},       # quantized module fallback
    "double_hash": {"num_hash_embeddings": 32},   # salted hashing, buffers matter
    "factorized": {"hidden_dim": 4},
    "hashed_onehot": {"num_hash_embeddings": 64},  # pooled: FP32 only
}


def _model(technique, architecture="pointwise", seed=0):
    builder = {
        "pointwise": build_pointwise_ranker,
        "classifier": build_classifier,
        "ranknet": build_ranknet,
    }[architecture]
    return builder(
        technique, VOCAB, CATALOG, input_length=LENGTH, embedding_dim=DIM,
        rng=seed, **_HYPER[technique],
    )


def _requests(n=40, seed=1):
    return np.random.default_rng(seed).integers(0, VOCAB, size=(n, LENGTH))


def _assert_roundtrip(model, tmp_path, bits):
    reference = InferenceEngine(model, bits=None if bits == 32 else bits)
    artifact = save_artifact(model, str(tmp_path / f"a{bits}"), bits=bits)
    session = ServeSession.load(str(tmp_path / f"a{bits}"))
    assert session.bits == bits
    ids = _requests()
    np.testing.assert_array_equal(session.predict(ids), reference.predict(ids))
    return artifact


class TestMatrix:
    @pytest.mark.parametrize("technique", ["full", "memcom", "tt_rec"])
    @pytest.mark.parametrize("bits", [32, 8, 4])
    def test_core_techniques(self, tmp_path, technique, bits):
        _assert_roundtrip(_model(technique), tmp_path, bits)

    @pytest.mark.parametrize("technique", ["full", "memcom"])
    @pytest.mark.parametrize("n_shards", [1, 3, 8])
    @pytest.mark.parametrize("bits", [32, 8, 4])
    def test_sharded_variants(self, tmp_path, technique, n_shards, bits):
        model = _model(technique)
        if n_shards > 1:
            model = shard_model(model, n_shards)
        _assert_roundtrip(model, tmp_path, bits)

    @pytest.mark.parametrize("technique", ["qr_mult", "double_hash", "factorized"])
    @pytest.mark.parametrize("bits", [32, 8])
    def test_module_fallback_techniques(self, tmp_path, technique, bits):
        """Techniques without dedicated storage round-trip via spec + state
        (including the hash salts, which travel as state-dict buffers)."""
        _assert_roundtrip(_model(technique), tmp_path, bits)

    def test_pooled_onehot_fp32(self, tmp_path):
        _assert_roundtrip(_model("hashed_onehot"), tmp_path, 32)

    @pytest.mark.parametrize("architecture", ["classifier", "ranknet"])
    @pytest.mark.parametrize("bits", [32, 8])
    def test_other_architectures(self, tmp_path, architecture, bits):
        _assert_roundtrip(_model("memcom", architecture), tmp_path, bits)


class TestSizes:
    def test_int8_artifact_at_most_035x_fp32(self, tmp_path):
        """The on-disk acceptance gate, per technique.

        Sized so the embedding payload dominates, as in any real deployment
        — at toy scale the FP32 tower and the manifest (both shipped at
        every width) would swamp an already-tiny compressed embedding.
        """
        for technique, vocab, dim, hyper in (
            ("full", 2000, 32, {}),
            ("memcom", 20_000, 64, {"num_hash_embeddings": 1250}),
            ("tt_rec", 50_000, 48, {"tt_rank": 16}),
        ):
            model = build_pointwise_ranker(
                technique, vocab, CATALOG, input_length=LENGTH,
                embedding_dim=dim, rng=0, **hyper,
            )
            fp32 = save_artifact(model, str(tmp_path / f"{technique}-32"))
            int8 = save_artifact(model, str(tmp_path / f"{technique}-8"), bits=8)
            int4 = save_artifact(model, str(tmp_path / f"{technique}-4"), bits=4)
            ratio = int8.total_bytes() / fp32.total_bytes()
            assert ratio <= 0.35, f"{technique}: int8 artifact {ratio:.3f}× FP32"
            assert int4.total_bytes() < int8.total_bytes()


class TestSessionPersistence:
    def test_session_save_then_load_matches(self, tmp_path):
        model = _model("memcom")
        session = ServeSession.from_model(model, ServeConfig(bits=8))
        artifact = session.save(str(tmp_path / "s"))
        loaded = ServeSession.load(str(tmp_path / "s"))
        ids = _requests()
        np.testing.assert_array_equal(loaded.predict(ids), session.predict(ids))
        assert artifact.bits == 8

    def test_fp32_artifact_quantized_at_load_matches_in_memory(self, tmp_path):
        model = _model("memcom")
        save_artifact(model, str(tmp_path / "fp32"))
        session = ServeSession.load(str(tmp_path / "fp32"), ServeConfig(bits=8))
        reference = InferenceEngine(model, bits=8)
        ids = _requests()
        np.testing.assert_array_equal(session.predict(ids), reference.predict(ids))

    def test_cached_session_serves_the_same_bytes(self, tmp_path):
        model = _model("tt_rec")
        save_artifact(model, str(tmp_path / "t"), bits=4)
        plain = ServeSession.load(str(tmp_path / "t"))
        cached = ServeSession.load(
            str(tmp_path / "t"),
            ServeConfig(cache_rows=64, cache_min_count=2, cache_ttl_batches=4),
        )
        for seed in range(4):  # repeated traffic exercises hits + admission
            ids = _requests(seed=seed)
            np.testing.assert_array_equal(cached.predict(ids), plain.predict(ids))
        assert cached.engine.cache.hits > 0
