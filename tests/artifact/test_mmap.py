"""mmap loading: O(manifest) load, shared read-only maps, bit-identity.

``load_artifact(path, mmap=True)`` must never materialize the FP32 table:
payloads become read-only ``np.memmap`` views, aliases share one map, and
a subprocess RSS probe at the bottom proves a big table costs pages-touched
rather than table-size memory.  Predictions through the full serving stack
stay bit-identical to an eager load.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.artifact import load_artifact, save_artifact
from repro.artifact.errors import ArtifactFormatError, ArtifactIntegrityError
from repro.serve.session import ServeConfig, ServeSession

VOCAB, DIM, LENGTH, CATALOG = 300, 16, 6, 12


def _model(technique="full", seed=0, **hyper):
    from repro.models.builder import build_pointwise_ranker

    return build_pointwise_ranker(
        technique, VOCAB, CATALOG, input_length=LENGTH, embedding_dim=DIM,
        rng=seed, **hyper,
    )


def _requests(n=32, seed=1):
    return np.random.default_rng(seed).integers(0, VOCAB, size=(n, LENGTH))


class TestMmapLoad:
    def test_arrays_are_readonly_memmaps(self, tmp_path):
        path = str(tmp_path / "a")
        save_artifact(_model(), path)
        art = load_artifact(path, mmap=True)
        assert art.mmap_backed
        table = art.array("embedding/table")
        assert isinstance(table, np.memmap)
        assert not table.flags.writeable
        eager = load_artifact(path)
        for name in art.manifest["payloads"]:
            assert np.array_equal(art.array(name), eager.array(name)), name

    def test_aliases_share_one_map(self, tmp_path):
        model = _model()
        state = model.state_dict()
        ckpt = ({"train_state": {"epoch": 0}},
                {f"model/{k}": v for k, v in state.items()})
        path = str(tmp_path / "a")
        save_artifact(model, path, checkpoint=ckpt)
        art = load_artifact(path, mmap=True)
        assert art.array("embedding/table") is art.array(
            "checkpoint/model/embedding.table"
        )

    @pytest.mark.parametrize("bits", [32, 8, 4])
    def test_served_predictions_bit_identical(self, tmp_path, bits):
        path = str(tmp_path / f"a{bits}")
        save_artifact(_model(), path, bits=bits)
        ids = _requests()
        with ServeSession.load(path) as cold:
            want = cold.predict(ids)
        with ServeSession.load(path, ServeConfig(mmap=True)) as mapped:
            got = mapped.predict(ids)
        assert np.array_equal(want, got)

    def test_memcom_served_bit_identical(self, tmp_path):
        path = str(tmp_path / "m")
        save_artifact(_model("memcom", num_hash_embeddings=32), path)
        ids = _requests()
        with ServeSession.load(path) as cold:
            want = cold.predict(ids)
        with ServeSession.load(path, ServeConfig(mmap=True)) as mapped:
            got = mapped.predict(ids)
        assert np.array_equal(want, got)

    def test_zip_containers_refuse_mmap(self, tmp_path):
        path = str(tmp_path / "a.zip")
        save_artifact(_model(), path)
        with pytest.raises(ArtifactFormatError, match="directory-form"):
            load_artifact(path, mmap=True)

    def test_truncated_member_fails_integrity(self, tmp_path):
        path = str(tmp_path / "a")
        art = save_artifact(_model(), path)
        member = art.manifest["payloads"]["embedding/table"]["file"]
        full = os.path.join(path, member)
        with open(full, "r+b") as fh:
            fh.truncate(os.path.getsize(full) - 8)
        with pytest.raises(ArtifactIntegrityError, match="bytes on disk"):
            load_artifact(path, mmap=True)

    def test_from_model_session_rejects_mmap(self):
        with pytest.raises(ValueError, match="no file to map"):
            ServeSession.from_model(_model(), ServeConfig(mmap=True))


_RSS_PROBE = textwrap.dedent("""
    import sys

    def rss_kib():
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])

    import numpy as np
    from repro.artifact import load_artifact

    before = rss_kib()
    art = load_artifact(sys.argv[1], mmap=sys.argv[2] == "mmap")
    table = art.array("embedding/table")
    # touch a handful of rows — what a sparse request pattern costs
    _ = float(table[0].sum() + table[-1].sum())
    print(rss_kib() - before)
""")


class TestMemoryFootprint:
    def test_mmap_does_not_materialize_the_table(self, tmp_path):
        """A table much larger than interpreter noise: the eager load's RSS
        must carry it, the mmap load's must not."""
        if not os.path.exists("/proc/self/status"):
            pytest.skip("needs /proc for a current-RSS reading")
        from repro.models.builder import build_pointwise_ranker

        big_vocab, big_dim = 40_000, 128  # 40000×128×4B ≈ 19.5 MiB
        model = build_pointwise_ranker(
            "full", big_vocab, CATALOG, input_length=LENGTH,
            embedding_dim=big_dim, rng=0,
        )
        path = str(tmp_path / "big")
        save_artifact(model, path)
        table_kib = big_vocab * big_dim * 4 // 1024

        def grew_kib(mode):
            env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
            out = subprocess.run(
                [sys.executable, "-c", _RSS_PROBE, path, mode],
                capture_output=True, text=True, env=env, check=True,
            )
            return int(out.stdout.strip())

        eager, mapped = grew_kib("eager"), grew_kib("mmap")
        # eager grows by the whole table; mmap only by the touched pages.
        # Demand at least half the table's worth of daylight between them.
        assert mapped + table_kib / 2 < eager, (
            f"mmap load grew RSS by {mapped} KiB vs eager {eager} KiB "
            f"(table is {table_kib} KiB)"
        )
