"""Calibration pass: any trained technique → integer serving storage."""

import numpy as np
import pytest

from repro.core.full import FullEmbedding
from repro.core.memcom import MEmComEmbedding
from repro.core.onehot import HashedOneHotEncoder
from repro.core.registry import build_embedding
from repro.core.truncate import TruncateRareEmbedding
from repro.core.tt_rec import TTRecEmbedding
from repro.nn.tensor import no_grad
from repro.quant import quantize_embedding

V, E = 200, 16

TECHNIQUES = {
    "full": {},
    "reduce_dim": {"reduced_dim": 8},
    "truncate_rare": {"keep": 50},
    "memcom": {"num_hash_embeddings": 32},
    "memcom_nobias": {"num_hash_embeddings": 32},
    "tt_rec": {"tt_rank": 4},
    "qr_mult": {"num_hash_embeddings": 32},
    "factorized": {"hidden_dim": 4},
    "double_hash": {"num_hash_embeddings": 32},
}

EXPECTED_MODE = {
    "full": "table",
    "reduce_dim": "table",
    "truncate_rare": "table",
    "memcom": "memcom",
    "memcom_nobias": "memcom",
    "tt_rec": "tt_rec",
    "qr_mult": "module",
    "factorized": "module",
    "double_hash": "module",
}


def _embedding(technique, seed=0):
    return build_embedding(technique, V, E, rng=seed, **TECHNIQUES[technique])


class TestQuantizeEmbedding:
    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    @pytest.mark.parametrize("bits", [8, 4])
    def test_rows_match_dequantized_reference(self, technique, bits):
        """Served rows ≡ the materialized FP32 reference, bit for bit."""
        q = quantize_embedding(_embedding(technique), bits)
        assert q.mode == EXPECTED_MODE[technique]
        ids = np.array([0, 1, 5, V - 1, 5, 77])
        rows = q.rows(ids)
        ref = q.dequantized()
        with no_grad():
            np.testing.assert_array_equal(rows, ref(ids).numpy())

    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_single_vs_batched_bit_identity(self, technique):
        q = quantize_embedding(_embedding(technique), 8)
        ids = np.array([3, 199, 42])
        batched = q.rows(ids)
        for k, i in enumerate(ids):
            np.testing.assert_array_equal(batched[k], q.rows(np.array([i]))[0])

    @pytest.mark.parametrize("technique", sorted(TECHNIQUES))
    def test_close_to_fp32_source(self, technique):
        emb = _embedding(technique)
        q = quantize_embedding(emb, 8)
        ids = np.arange(0, V, 7)
        with no_grad():
            fp32 = emb.eval()(ids).numpy()
        # int8 per-row grids keep rows within a tight fraction of the
        # technique's own row magnitudes.
        tol = max(1e-4, 0.02 * float(np.abs(fp32).max()))
        assert np.abs(q.rows(ids) - fp32).max() <= tol

    def test_truncate_rare_shares_oov_row(self):
        emb = TruncateRareEmbedding(V, E, keep=50, rng=0)
        q = quantize_embedding(emb, 8)
        oov = q.rows(np.array([51, 137, V - 1]))
        np.testing.assert_array_equal(oov[0], oov[1])
        np.testing.assert_array_equal(oov[0], oov[2])

    def test_memcom_per_entity_columns_use_per_tensor_scales(self):
        q = quantize_embedding(MEmComEmbedding(V, E, 32, rng=0), 8)
        assert q._q_shared.per_row and not q._q_mult.per_row
        # storage must beat FP32 on every component incl. the (v, 1) columns
        assert q._q_mult.nbytes < V * 4

    def test_sharded_equals_monolithic_codes(self):
        for build, shard in (
            (lambda: FullEmbedding(V, E, rng=3), lambda e: e.to_sharded(3)),
            (lambda: MEmComEmbedding(V, E, 32, rng=3), lambda e: e.to_sharded(3)),
        ):
            mono = quantize_embedding(build(), 8)
            shrd = quantize_embedding(shard(build()), 8)
            ids = np.arange(V)
            np.testing.assert_array_equal(mono.rows(ids), shrd.rows(ids))

    def test_tt_rec_mode_contracts_quantized_cores(self):
        emb = TTRecEmbedding(V, E, 4, rng=1)
        q = quantize_embedding(emb, 8)
        assert len(q._q_cores) == 3
        assert q.storage_bytes() == sum(c.nbytes for c in q._q_cores)

    def test_storage_bytes_shrink_for_real_storage_modes(self):
        for technique in ("full", "memcom", "tt_rec"):
            emb = _embedding(technique)
            fp32 = sum(p.data.nbytes for p in emb.parameters())
            q8 = quantize_embedding(emb, 8)
            q4 = quantize_embedding(emb, 4)
            assert q4.storage_bytes() < q8.storage_bytes() < fp32
            assert q8.packed_bytes() == q8.storage_bytes()

    def test_module_fallback_reports_fp32_residency_honestly(self):
        q = quantize_embedding(_embedding("factorized"), 8)
        emb = _embedding("factorized")
        assert q.storage_bytes() == sum(p.data.nbytes for p in emb.parameters())
        assert q.packed_bytes() < q.storage_bytes()

    def test_pooled_onehot_rejected(self):
        enc = HashedOneHotEncoder(V, E, num_hash_buckets=32, rng=0)
        with pytest.raises(TypeError, match="pooled"):
            quantize_embedding(enc, 8)

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_embedding(_embedding("full"), 16)

    def test_percentile_calibration_changes_grid(self):
        emb = _embedding("full")
        emb.table.data[:, 0] = 3.0  # outlier column
        q_abs = quantize_embedding(emb, 8)
        q_clip = quantize_embedding(emb, 8, percentile=90.0)
        ids = np.arange(20)
        with no_grad():
            fp32 = emb.eval()(ids).numpy()
        err_abs = np.abs(q_abs.rows(ids)[:, 1:] - fp32[:, 1:]).mean()
        err_clip = np.abs(q_clip.rows(ids)[:, 1:] - fp32[:, 1:]).mean()
        assert err_clip < err_abs
