"""Integer-storage kernels and ``QuantizedTable`` semantics."""

import numpy as np
import pytest

from repro.device.quantize import quantize_array
from repro.quant import (
    QuantizedTable,
    codes_bytes_per_row,
    decode_rows,
    encode_rows,
    pack_int4,
    unpack_int4,
)


class TestKernels:
    def test_int4_pack_roundtrip_even_and_odd(self, rng):
        for dim in (8, 7, 1):
            codes = rng.integers(-8, 8, (5, dim)).astype(np.int8)
            packed = pack_int4(codes)
            assert packed.shape == (5, -(-dim // 2))
            assert packed.dtype == np.uint8
            np.testing.assert_array_equal(unpack_int4(packed, dim), codes)

    def test_encode_decode_error_bound(self, rng):
        w = rng.normal(0, 0.05, (40, 16)).astype(np.float32)
        for bits in (8, 4):
            codes, scales = encode_rows(w, bits)
            back = decode_rows(codes, scales, bits, 16)
            assert (np.abs(back - w) <= scales[:, None] / 2 + 1e-7).all()

    def test_zero_rows_encode_to_zero(self):
        w = np.zeros((3, 8), dtype=np.float32)
        codes, scales = encode_rows(w, 8)
        assert not codes.any() and not scales.any()
        np.testing.assert_array_equal(decode_rows(codes, scales, 8, 8), w)

    def test_decode_into_out_buffer(self, rng):
        w = rng.normal(0, 1, (6, 10)).astype(np.float32)
        codes, scales = encode_rows(w, 8)
        out = np.empty((6, 10), dtype=np.float32)
        res = decode_rows(codes, scales, 8, 10, out=out)
        assert res is out
        np.testing.assert_array_equal(out, decode_rows(codes, scales, 8, 10))

    def test_percentile_clipping_saturates_outliers(self, rng):
        w = rng.normal(0, 0.01, (4, 256)).astype(np.float32)
        w[:, 0] = 5.0  # one outlier per row stretches the absmax grid
        _, scales_abs = encode_rows(w, 8)
        codes, scales_clip = encode_rows(w, 8, percentile=95.0)
        assert (scales_clip < scales_abs).all()
        back = decode_rows(codes, scales_clip, 8, 256)
        # the outlier saturates at the grid edge; the bulk gets finer steps
        assert (np.abs(back[:, 1:] - w[:, 1:]).max()
                < np.abs(w[:, 0] - back[:, 0]).min())

    def test_codes_bytes_per_row(self):
        assert codes_bytes_per_row(64, 8) == 68
        assert codes_bytes_per_row(64, 4) == 36
        assert codes_bytes_per_row(7, 4) == 8  # ceil packing
        with pytest.raises(ValueError):
            codes_bytes_per_row(64, 7)


class TestQuantizedTable:
    def test_matches_per_row_quantize_array(self, rng):
        # Storage decode must be bit-identical to the Figure-4 simulation's
        # per-row path (one shared rounding contract).
        w = rng.normal(0, 0.05, (30, 17)).astype(np.float32)
        for bits in (8, 4):
            qt = QuantizedTable.from_dense(w, bits)
            np.testing.assert_array_equal(qt.dense(), quantize_array(w, bits, axis=0))

    def test_per_tensor_matches_quantize_array(self, rng):
        w = rng.normal(0, 1, (20, 3)).astype(np.float32)
        qt = QuantizedTable.from_dense(w, 8, per_row=False)
        np.testing.assert_array_equal(qt.dense(), quantize_array(w, 8))

    def test_single_row_vs_batched_bit_identity(self, rng):
        w = rng.normal(0, 0.05, (25, 9)).astype(np.float32)
        for bits in (8, 4):
            qt = QuantizedTable.from_dense(w, bits)
            ids = np.array([0, 24, 7, 7, 13])
            batched = qt.gather(ids)
            for k, i in enumerate(ids):
                np.testing.assert_array_equal(batched[k], qt.row(int(i)))
            np.testing.assert_array_equal(batched, qt.dense()[ids])

    def test_gather_codes_roundtrip(self, rng):
        w = rng.normal(0, 0.05, (10, 6)).astype(np.float32)
        qt = QuantizedTable.from_dense(w, 4)
        ids = np.array([1, 9, 1])
        codes, scales = qt.gather_codes(ids)
        np.testing.assert_array_equal(
            decode_rows(codes, scales, 4, 6), qt.gather(ids)
        )

    def test_storage_actually_shrinks(self, rng):
        w = rng.normal(0, 1, (100, 64)).astype(np.float32)
        q8 = QuantizedTable.from_dense(w, 8)
        q4 = QuantizedTable.from_dense(w, 4)
        assert q8.nbytes == 100 * (64 + 4)
        assert q4.nbytes == 100 * (32 + 4)
        assert q4.nbytes < q8.nbytes < w.nbytes / 3.5

    def test_rejects_bad_shapes_and_bits(self):
        with pytest.raises(ValueError):
            QuantizedTable.from_dense(np.zeros(5), 8)
        with pytest.raises(ValueError):
            QuantizedTable.from_dense(np.zeros((4, 4)), 2)
