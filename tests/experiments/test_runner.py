"""Sweep infrastructure."""

import numpy as np
import pytest

from repro.experiments.report import render_headline, render_sweep, render_sweep_series
from repro.experiments.runner import (
    BENCH_SCALES,
    ExperimentConfig,
    SweepPoint,
    SweepResult,
    bench_spec,
    load_bench_dataset,
    run_sweep,
    technique_grid,
)

MICRO = ExperimentConfig(
    cap_train=300, cap_eval=100, embedding_dim=8, epochs=1, batch_size=64, grid_points=1
)


class TestBenchSpecs:
    def test_every_dataset_has_a_scale(self):
        from repro.data.datasets import DATASETS

        assert set(BENCH_SCALES) == set(DATASETS)

    def test_caps_applied(self):
        spec = bench_spec("movielens", MICRO)
        assert spec.num_train <= 300
        assert spec.num_eval <= 100

    def test_scale_multiplier_grows_vocab(self):
        small = bench_spec("movielens", ExperimentConfig())
        big = bench_spec("movielens", ExperimentConfig(scale_multiplier=4.0))
        assert big.input_vocab >= small.input_vocab

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            bench_spec("mnist", MICRO)


class TestGrid:
    def test_full_grid_covers_all_techniques(self):
        spec = bench_spec("movielens", MICRO)
        grid = technique_grid(spec, 32, grid_points=2)
        techs = {t for t, _ in grid}
        assert techs == {
            "memcom", "memcom_nobias", "qr_mult", "qr_concat", "hash",
            "double_hash", "truncate_rare", "reduce_dim", "factorized",
        }
        assert len(grid) == 9 * 2

    def test_hash_sizes_decrease(self):
        spec = bench_spec("movielens", MICRO)
        grid = [h for t, h in technique_grid(spec, 32, 3) if t == "memcom"]
        sizes = [h["num_hash_embeddings"] for h in grid]
        assert sizes == sorted(sizes, reverse=True)

    def test_subset_selection(self):
        spec = bench_spec("movielens", MICRO)
        grid = technique_grid(spec, 32, 2, techniques=("memcom", "hash"))
        assert {t for t, _ in grid} == {"memcom", "hash"}

    def test_unknown_technique_rejected(self):
        spec = bench_spec("movielens", MICRO)
        with pytest.raises(KeyError):
            technique_grid(spec, 32, 2, techniques=("lora",))


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep(
            "movielens", "pointwise", MICRO, techniques=("memcom", "hash"), rng=0
        )

    def test_structure(self, sweep):
        assert sweep.metric_name == "ndcg"
        assert sweep.baseline_params > 0
        assert len(sweep.points) == 2
        for p in sweep.points:
            assert p.compression_ratio > 1.0
            assert 0.0 <= p.metric <= 1.0

    def test_series_sorted_by_ratio(self, sweep):
        for ratios, _ in sweep.series().values():
            assert ratios == sorted(ratios)

    def test_best_technique_at(self, sweep):
        best = sweep.best_technique_at(1.0)
        assert best in ("memcom", "hash")
        assert sweep.best_technique_at(10**9) is None

    def test_renderers_produce_text(self, sweep):
        assert "movielens" in render_sweep(sweep)
        assert "memcom" in render_sweep_series(sweep)
        assert "dataset" in render_headline([sweep], min_ratio=1.0)

    def test_classifier_sweep_runs(self):
        res = run_sweep("newsgroup", "classifier", MICRO, techniques=("memcom",), rng=0)
        assert res.metric_name == "accuracy"

    def test_ranknet_sweep_runs(self):
        res = run_sweep("arcade", "ranknet", MICRO, techniques=("memcom",), rng=0)
        assert res.metric_name == "ndcg"
        assert res.architecture == "ranknet"


class TestDataclasses:
    def test_hyper_label(self):
        p = SweepPoint("memcom", {"num_hash_embeddings": 5}, 10, 2.0, 0.5, 1.0)
        assert p.hyper_label() == "num_hash_embeddings=5"
        assert SweepPoint("full", {}, 10, 1.0, 0.5, 0.0).hyper_label() == "-"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(epochs=0).train_config()
