"""Seed averaging and embedding-ratio plumbing in the sweep runner."""

import math

import numpy as np

from repro.experiments.runner import ExperimentConfig, run_sweep, train_point
from repro.data.spec import DatasetSpec
from repro.data.synthetic import generate_dataset

MICRO = ExperimentConfig(
    cap_train=300, cap_eval=100, embedding_dim=8, epochs=1, batch_size=64, grid_points=1
)


def _micro_data():
    spec = DatasetSpec(
        name="seedtest",
        num_train=300,
        num_eval=100,
        input_vocab=128,
        output_vocab=16,
        task="ranking",
        input_length=8,
        num_genres=8,
    )
    return generate_dataset(spec, 0)


class TestSeedAveraging:
    def test_single_seed_matches_direct_training(self):
        data = _micro_data()
        m1, _ = train_point("pointwise", "hash", {"num_hash_embeddings": 16}, data, MICRO)
        m2, _ = train_point("pointwise", "hash", {"num_hash_embeddings": 16}, data, MICRO)
        assert m1 == m2  # deterministic at fixed seed

    def test_multi_seed_is_mean_of_singles(self):
        from dataclasses import replace

        data = _micro_data()
        singles = []
        for s in (0, 1):
            cfg = replace(MICRO, seed=s)
            metric, _ = train_point("pointwise", "hash", {"num_hash_embeddings": 16}, data, cfg)
            singles.append(metric)
        avg_cfg = replace(MICRO, num_seeds=2)
        averaged, _ = train_point(
            "pointwise", "hash", {"num_hash_embeddings": 16}, data, avg_cfg
        )
        assert averaged == np.mean(singles)

    def test_param_count_independent_of_seeds(self):
        from dataclasses import replace

        data = _micro_data()
        _, p1 = train_point("pointwise", "hash", {"num_hash_embeddings": 16}, data, MICRO)
        _, p2 = train_point(
            "pointwise", "hash", {"num_hash_embeddings": 16}, data, replace(MICRO, num_seeds=2)
        )
        assert p1 == p2


class TestEmbeddingRatio:
    def test_every_sweep_point_carries_finite_embedding_ratio(self):
        result = run_sweep("movielens", "pointwise", MICRO, techniques=["memcom", "hash"])
        for point in result.points:
            assert math.isfinite(point.embedding_ratio)
            assert point.embedding_ratio >= 1.0

    def test_hash_embedding_ratio_exceeds_model_ratio(self):
        # The head layers are incompressible, so embedding-only compression
        # is always at least the whole-model number.
        result = run_sweep("movielens", "pointwise", MICRO, techniques=["hash"])
        for point in result.points:
            assert point.embedding_ratio >= point.compression_ratio - 1e-9
