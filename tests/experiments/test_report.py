"""Report renderers: tables, series, panel charts, paper headlines."""

from repro.experiments.report import (
    PAPER_EMBEDDING_TARGETS,
    render_embedding_headline,
    render_headline,
    render_sweep,
    render_sweep_plot,
    render_sweep_series,
)
from repro.experiments.runner import SweepPoint, SweepResult


def _result(dataset="movielens"):
    result = SweepResult(
        dataset=dataset,
        architecture="pointwise",
        metric_name="ndcg",
        baseline_metric=0.20,
        baseline_params=10_000,
    )
    for tech, ratio, emb_ratio, loss in [
        ("memcom", 2.5, 5.0, 2.0),
        ("memcom", 3.0, 14.0, 4.5),
        ("hash", 2.6, 8.0, 9.0),
        ("hash", 3.2, 32.0, 15.0),
    ]:
        result.points.append(
            SweepPoint(
                technique=tech,
                hyper={"num_hash_embeddings": 10},
                params=int(10_000 / ratio),
                compression_ratio=ratio,
                metric=0.2 * (1 - loss / 100),
                relative_loss_pct=loss,
                embedding_ratio=emb_ratio,
            )
        )
    return result


class TestEmbeddingHeadline:
    def test_reports_closest_point_to_paper_target(self):
        out = render_embedding_headline([_result()])
        # movielens target 16x; the closest memcom point has emb ratio 14.0.
        assert "16x" in out
        assert "14.0x" in out
        assert "+4.50%" in out

    def test_skips_datasets_without_target(self):
        out = render_embedding_headline([_result(dataset="arcade")])
        assert "arcade" not in out

    def test_covers_all_four_paper_datasets(self):
        assert set(PAPER_EMBEDDING_TARGETS) == {
            "movielens", "google_local", "millionsongs", "netflix",
        }

    def test_alternate_technique(self):
        out = render_embedding_headline([_result()], technique="hash")
        assert "hash loss" in out


class TestOtherRenderers:
    def test_sweep_table_contains_every_point(self):
        out = render_sweep(_result())
        rows = [l for l in out.splitlines() if l.startswith(("memcom", "hash"))]
        assert len(rows) == 4

    def test_series_sorted_by_ratio(self):
        out = render_sweep_series(_result())
        assert out.index("2.5x") < out.index("3.0x")

    def test_headline_picks_lowest_loss(self):
        out = render_headline([_result()], min_ratio=2.0)
        assert "memcom" in out

    def test_plot_renders(self):
        out = render_sweep_plot(_result())
        assert "movielens" in out
