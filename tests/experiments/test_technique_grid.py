"""The sweep grid: hash sizes, dim sweeps, and the QR √v clipping rule."""

import math

import pytest

from repro.data.spec import DatasetSpec
from repro.experiments.runner import technique_grid


def _spec(vocab=1024):
    return DatasetSpec(
        name="gridtest",
        num_train=1000,
        num_eval=512,
        input_vocab=vocab,
        output_vocab=32,
        task="ranking",
        input_length=16,
        num_genres=16,
    )


class TestHashGrid:
    def test_hash_sizes_are_vocab_fractions(self):
        grid = technique_grid(_spec(1024), embedding_dim=32, grid_points=3,
                              techniques=["hash"])
        sizes = [h["num_hash_embeddings"] for _, h in grid]
        assert sizes == [128, 32, 8]  # v/8, v/32, v/128

    def test_grid_points_control_curve_length(self):
        for points in (1, 2, 4):
            grid = technique_grid(_spec(), embedding_dim=32, grid_points=points,
                                  techniques=["memcom"])
            assert len(grid) == points

    def test_tiny_vocab_floors_at_two(self):
        grid = technique_grid(_spec(300), embedding_dim=32, grid_points=3,
                              techniques=["hash"])
        assert min(h["num_hash_embeddings"] for _, h in grid) >= 2


class TestQRClipping:
    def test_qr_sizes_clipped_at_sqrt_vocab(self):
        spec = _spec(1024)  # √v = 32
        grid = technique_grid(spec, embedding_dim=32, grid_points=3,
                              techniques=["qr_mult"])
        floor = math.ceil(math.sqrt(spec.input_vocab))
        assert all(h["num_hash_embeddings"] >= floor for _, h in grid)

    def test_qr_grid_deduplicates_clipped_points(self):
        # v/32 and v/128 both clip to √v = 32 → a single point remains.
        grid = technique_grid(_spec(1024), embedding_dim=32, grid_points=3,
                              techniques=["qr_concat"])
        sizes = [h["num_hash_embeddings"] for _, h in grid]
        assert sizes == sorted(set(sizes), reverse=True)
        assert len(sizes) == 2  # {128, 32}

    def test_qr_param_count_monotone_along_grid(self):
        """The point of the clip: along the swept grid, smaller m must not
        *increase* QR's parameter count (the fold-back regime)."""
        from repro.core.sizing import embedding_param_count

        spec = _spec(4096)
        grid = technique_grid(spec, embedding_dim=32, grid_points=3,
                              techniques=["qr_mult"])
        params = [
            embedding_param_count("qr_mult", spec.input_vocab, 32, **h) for _, h in grid
        ]
        assert params == sorted(params, reverse=True)

    def test_hash_techniques_not_clipped(self):
        grid = technique_grid(_spec(1024), embedding_dim=32, grid_points=3,
                              techniques=["memcom", "hash", "double_hash"])
        assert min(h["num_hash_embeddings"] for _, h in grid) == 8  # v/128


class TestDimGrid:
    def test_dims_halve_from_e_over_two(self):
        grid = technique_grid(_spec(), embedding_dim=32, grid_points=3,
                              techniques=["reduce_dim"])
        assert [h["reduced_dim"] for _, h in grid] == [16, 4, 2]

    def test_factorized_uses_same_dims(self):
        grid = technique_grid(_spec(), embedding_dim=32, grid_points=2,
                              techniques=["factorized"])
        assert [h["hidden_dim"] for _, h in grid] == [16, 4]

    def test_unknown_technique_rejected(self):
        with pytest.raises(KeyError):
            technique_grid(_spec(), embedding_dim=32, techniques=["quantum"])
