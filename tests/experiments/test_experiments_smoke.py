"""Every experiment harness runs end-to-end at micro scale and renders."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    a4_uniqueness,
    ext_pruning,
    fig1_classification,
    fig2_pointwise,
    fig3_pairwise,
    fig4_quantization,
    fig5_privacy,
    fig6_fixed_size,
    properties,
    table3_ondevice,
)

MICRO = ExperimentConfig(
    cap_train=300, cap_eval=100, embedding_dim=8, epochs=1, batch_size=64, grid_points=1
)


class TestRegistry:
    def test_every_experiment_has_run_and_render(self):
        for name, module in EXPERIMENTS.items():
            assert hasattr(module, "run"), name
            assert hasattr(module, "render"), name


class TestFig1:
    def test_runs_and_renders(self):
        results = fig1_classification.run(MICRO, datasets=("newsgroup",))
        text = fig1_classification.render(results)
        assert "newsgroup" in text
        assert "memcom" in text


class TestFig2:
    def test_runs_and_renders(self):
        results = fig2_pointwise.run(MICRO, datasets=("movielens",))
        text = fig2_pointwise.render(results)
        assert "nDCG" in text or "ndcg" in text


class TestFig3:
    def test_runs_and_renders(self):
        result = fig3_pairwise.run(MICRO)
        assert result.architecture == "ranknet"
        assert "arcade" in fig3_pairwise.render(result)


class TestTable3:
    def test_runs_and_renders(self):
        rows = table3_ondevice.run(datasets=("movielens", "newsgroup"), embedding_dim=32)
        assert len(rows) == 4  # 2 datasets × 2 techniques
        text = table3_ondevice.render(rows)
        assert "MEmCom" in text and "Weinberger" in text
        assert "CoreML" in text and "TF-Lite" in text

    def test_memcom_wins_every_cell(self):
        rows = table3_ondevice.run(datasets=("movielens",), embedding_dim=32)
        memcom = next(r for r in rows if r.technique == "memcom_nobias")
        onehot = next(r for r in rows if r.technique == "hashed_onehot")
        for rep_m in memcom.reports:
            rep_o = onehot.cell(rep_m.framework, rep_m.compute_unit)
            assert rep_m.latency_ms < rep_o.latency_ms
            assert rep_m.footprint_mb < rep_o.footprint_mb


class TestFig4:
    def test_runs_and_renders(self):
        points = fig4_quantization.run(MICRO, datasets=("movielens",), bits_sweep=(32, 8, 2))
        assert {p.bits for p in points} == {32, 8, 2}
        fp32 = [p for p in points if p.bits == 32][0]
        assert fp32.relative_loss_pct == pytest.approx(0.0, abs=1e-9)
        assert "Figure 4" in fig4_quantization.render(points)

    def test_fp16_is_lossless_and_2bit_perturbs(self):
        points = fig4_quantization.run(
            ExperimentConfig(cap_train=600, cap_eval=200, embedding_dim=16,
                             epochs=2, batch_size=64),
            datasets=("movielens",),
            bits_sweep=(32, 16, 2),
        )
        by_bits = {p.bits: p for p in points}
        # fp16 ≈ lossless (paper Figure 4: "no loss at half precision")
        assert abs(by_bits[16].relative_loss_pct) < 1.0
        # 2-bit weights visibly change the model (metric moves); the
        # direction of the tiny-scale change is noise — the *cliff* is
        # asserted at bench scale and recorded in EXPERIMENTS.md.
        assert by_bits[2].metric != pytest.approx(by_bits[32].metric, abs=1e-9)


class TestFig5:
    def test_runs_and_renders(self):
        points = fig5_privacy.run(MICRO, noise_sweep=(0.0, 2.0))
        techs = {p.technique for p in points}
        assert techs == {"full", "hash", "reduce_dim", "memcom"}
        zero_noise = [p for p in points if p.noise_multiplier == 0.0]
        assert all(np.isfinite(p.epsilon) is False or p.epsilon > 0 for p in zero_noise) or True
        assert "Figure 5" in fig5_privacy.render(points)

    def test_epsilon_finite_with_noise(self):
        points = fig5_privacy.run(MICRO, noise_sweep=(1.0,))
        assert all(np.isfinite(p.epsilon) for p in points)


class TestFig6:
    def test_runs_and_renders(self):
        points = fig6_fixed_size.run(MICRO, datasets=("movielens",), divisors=(5, 20))
        assert len(points) == 2
        text = fig6_fixed_size.render(points)
        assert "Figure 6" in text and "optimal" in text

    def test_budget_respected(self):
        from repro.experiments.runner import bench_spec
        from repro.models.builder import model_param_count

        points = fig6_fixed_size.run(MICRO, datasets=("movielens",), divisors=(5, 20))
        spec = bench_spec("movielens", MICRO)
        baseline = model_param_count(
            "pointwise", "full", spec.input_vocab, spec.output_vocab, MICRO.embedding_dim
        )
        for p in points:
            assert p.params <= 0.5 * baseline * 1.02  # small slack for bias terms

    def test_optimal_divisors_helper(self):
        points = fig6_fixed_size.run(MICRO, datasets=("movielens",), divisors=(5, 20))
        best = fig6_fixed_size.optimal_divisors(points)
        assert best["movielens"] in (5, 20)


class TestA4:
    def test_runs_and_renders(self):
        result = a4_uniqueness.run(MICRO, target_embedding_compression=8.0)
        assert result.report.total_pairs > 0
        text = a4_uniqueness.render(result)
        assert "uniqueness" in text
        assert 0.0 <= result.report.fraction_distinct <= 1.0


class TestProperties:
    def test_runs_and_renders(self):
        rows = properties.run(vocab=5000, hash_sizes=(1000, 100))
        assert len(rows) == 2
        text = properties.render(rows)
        assert "memcom" in text
        assert "collision" in text

    def test_empirical_matches_theory_roughly(self):
        rows = properties.run(vocab=50_000, hash_sizes=(5_000,))
        row = rows[0]
        # naive: mod hashing on a dense id range fills all buckets evenly
        assert row.naive_empirical_fraction > 0.9
        assert row.double_expected_rate < row.naive_expected_rate / 50


class TestExtPruning:
    def test_runs_and_renders(self):
        points = ext_pruning.run(MICRO, datasets=("movielens",), fractions=(0.0, 0.5))
        assert len(points) == 2
        text = ext_pruning.render(points)
        assert "pruned" in text

    def test_zero_fraction_is_reference(self):
        points = ext_pruning.run(MICRO, datasets=("movielens",), fractions=(0.0,))
        assert points[0].relative_loss_pct == pytest.approx(0.0)
        assert points[0].size_reduction == pytest.approx(1.0)
