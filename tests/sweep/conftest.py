"""Shared fixtures for the sweep subsystem tests."""

from __future__ import annotations

import pytest
from sweep_helpers import sweep_base

from repro.pipeline import PipelineSpec


@pytest.fixture
def base_spec() -> PipelineSpec:
    return sweep_base()
