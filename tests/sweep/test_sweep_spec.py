"""SweepSpec: declarative grids, dotted overrides, stable point identity."""

from __future__ import annotations

import pytest

from repro.sweep import SweepError, SweepSpec, point_id_for
from repro.train import DistillConfig

from sweep_helpers import sweep_base


class TestExpand:
    def test_axes_cartesian_product(self, base_spec):
        sweep = SweepSpec(
            base=base_spec,
            axes={"hyper.num_hash_embeddings": [16, 32], "bits": [32, 8]},
        )
        points = sweep.expand()
        assert len(points) == 4
        combos = {
            (spec.hyper["num_hash_embeddings"], spec.bits) for _, spec in points
        }
        assert combos == {(16, 32), (16, 8), (32, 32), (32, 8)}

    def test_expansion_sorted_by_point_id(self, base_spec):
        sweep = SweepSpec(base=base_spec, axes={"bits": [32, 8, 4]})
        ids = [pid for pid, _ in sweep.expand()]
        assert ids == sorted(ids)

    def test_explicit_points(self, base_spec):
        sweep = SweepSpec(
            base=base_spec,
            points=(
                {"technique": "full", "hyper": {}},
                {"technique": "hash", "hyper.num_hash_embeddings": 16},
            ),
        )
        techs = {spec.technique for _, spec in sweep.expand()}
        assert techs == {"full", "hash"}

    def test_duplicate_points_collapse(self, base_spec):
        sweep = SweepSpec(
            base=base_spec,
            points=({"bits": 8}, {"bits": 8}, {"bits": 32}),
        )
        assert len(sweep.expand()) == 2

    def test_no_axes_no_points_is_the_base_alone(self, base_spec):
        points = SweepSpec(base=base_spec).expand()
        assert len(points) == 1
        assert points[0][0] == point_id_for(base_spec)

    def test_train_override_routes_into_train_config(self, base_spec):
        sweep = SweepSpec(base=base_spec, axes={"train.lr": [1e-3, 2e-3]})
        lrs = sorted(spec.train.lr for _, spec in sweep.expand())
        assert lrs == [1e-3, 2e-3]

    def test_distill_override_routes_into_distill_config(self, base_spec):
        base = sweep_base(distill=DistillConfig(alpha=0.5))
        sweep = SweepSpec(base=base, axes={"distill.alpha": [0.2, 0.8]})
        alphas = sorted(spec.distill.alpha for _, spec in sweep.expand())
        assert alphas == [0.2, 0.8]

    def test_whole_hyper_dict_override(self, base_spec):
        sweep = SweepSpec(base=base_spec, points=({"hyper": {"num_hash_embeddings": 7}},))
        [(_, spec)] = sweep.expand()
        assert spec.hyper == {"num_hash_embeddings": 7}


class TestValidation:
    def test_axes_and_points_are_exclusive(self, base_spec):
        with pytest.raises(SweepError, match="either axes or explicit points"):
            SweepSpec(base=base_spec, axes={"bits": [8]}, points=({"bits": 32},))

    def test_empty_axis_values(self, base_spec):
        with pytest.raises(SweepError, match="at least one value"):
            SweepSpec(base=base_spec, axes={"bits": []})

    def test_base_must_be_pipeline_spec(self):
        with pytest.raises(SweepError, match="PipelineSpec"):
            SweepSpec(base={"dataset": "movielens"})

    def test_budget_must_be_positive(self, base_spec):
        with pytest.raises(SweepError, match="budget_bytes"):
            SweepSpec(base=base_spec, budget_bytes=0)

    def test_unknown_override_key(self, base_spec):
        sweep = SweepSpec(base=base_spec, points=({"no_such_field": 1},))
        with pytest.raises(SweepError, match="unknown override"):
            sweep.expand()

    def test_unknown_train_field(self, base_spec):
        sweep = SweepSpec(base=base_spec, axes={"train.warp_speed": [9]})
        with pytest.raises(SweepError, match="unknown train field"):
            sweep.expand()

    def test_distill_override_requires_base_config(self, base_spec):
        sweep = SweepSpec(base=base_spec, axes={"distill.alpha": [0.5]})
        with pytest.raises(SweepError, match="distill config on the base"):
            sweep.expand()

    def test_invalid_point_value_carries_context(self, base_spec):
        sweep = SweepSpec(base=base_spec, points=({"bits": 13},))
        with pytest.raises(SweepError, match="invalid sweep point"):
            sweep.expand()


class TestPointIdentity:
    def test_same_spec_same_id(self, base_spec):
        assert point_id_for(base_spec) == point_id_for(sweep_base())

    def test_any_field_change_changes_id(self, base_spec):
        assert point_id_for(base_spec) != point_id_for(sweep_base(seed=1))
        assert point_id_for(base_spec) != point_id_for(sweep_base(bits=8))


class TestManifest:
    def test_round_trip_preserves_expansion(self, base_spec):
        sweep = SweepSpec(
            base=base_spec,
            axes={"bits": [32, 8], "hyper.num_hash_embeddings": [16, 64]},
            budget_bytes=4096,
        )
        clone = SweepSpec.from_manifest(sweep.to_manifest())
        assert clone.budget_bytes == 4096
        assert [pid for pid, _ in clone.expand()] == [pid for pid, _ in sweep.expand()]

    def test_malformed_manifest(self):
        with pytest.raises(SweepError, match="manifest"):
            SweepSpec.from_manifest({"axes": {}})
        with pytest.raises(SweepError, match="manifest"):
            SweepSpec.from_manifest("not a dict")
