"""DatasetCache: content keys, materialize-once, byte-faithful loads."""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.data.cache import DatasetCache
from repro.data.datasets import get_spec
from repro.data.synthetic import (
    PairwiseDataset,
    generate_dataset,
    generate_pairwise,
)
from repro.utils.rng import ensure_rng


@pytest.fixture
def spec():
    s = get_spec("movielens", 0.01)
    return replace(s, num_train=256, num_eval=64)


class TestKey:
    def test_stable_across_calls(self, spec):
        assert DatasetCache.key(spec, False, 0) == DatasetCache.key(spec, False, 0)

    def test_sensitive_to_every_recipe_leg(self, spec):
        base = DatasetCache.key(spec, False, 0)
        assert DatasetCache.key(spec, True, 0) != base
        assert DatasetCache.key(spec, False, 1) != base
        assert DatasetCache.key(replace(spec, num_train=128), False, 0) != base

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="DatasetSpec"):
            DatasetCache.key({"name": "movielens"}, False, 0)


class TestMaterialize:
    def test_generates_exactly_once(self, tmp_path, spec):
        cache = DatasetCache(str(tmp_path))
        path = cache.materialize(spec, False, 0)
        assert os.path.exists(path)
        stamp = os.stat(path).st_mtime_ns
        assert cache.materialize(spec, False, 0) == path
        assert os.stat(path).st_mtime_ns == stamp  # untouched on the second call

    def test_no_tmp_litter(self, tmp_path, spec):
        cache = DatasetCache(str(tmp_path))
        cache.materialize(spec, False, 0)
        leftovers = [n for n in os.listdir(tmp_path) if ".tmp." in n]
        assert leftovers == []

    def test_rejects_empty_root(self):
        with pytest.raises(ValueError, match="cache root"):
            DatasetCache("")


class TestLoad:
    def test_arrays_match_direct_generation(self, tmp_path, spec):
        cache = DatasetCache(str(tmp_path))
        cached = cache.load(spec, False, 3)
        direct = generate_dataset(spec, ensure_rng(3))
        np.testing.assert_array_equal(cached.x_train, direct.x_train)
        np.testing.assert_array_equal(cached.y_train, direct.y_train)
        np.testing.assert_array_equal(cached.x_eval, direct.x_eval)
        np.testing.assert_array_equal(cached.y_eval, direct.y_eval)

    def test_pairwise_round_trip(self, tmp_path, spec):
        cache = DatasetCache(str(tmp_path))
        cached = cache.load(spec, True, 0)
        assert isinstance(cached, PairwiseDataset)
        direct = generate_pairwise(spec, ensure_rng(0))
        np.testing.assert_array_equal(cached.neg_train, direct.neg_train)
        np.testing.assert_array_equal(cached.pos_eval, direct.pos_eval)

    def test_distinct_seeds_do_not_collide(self, tmp_path, spec):
        cache = DatasetCache(str(tmp_path))
        a = cache.load(spec, False, 0)
        b = cache.load(spec, False, 1)
        assert not np.array_equal(a.x_train, b.x_train)
