"""SweepReport: accuracy-per-byte ranking, budget winner, deterministic JSON.

These tests fabricate ledger records directly (no training) so every
ranking rule is pinned against hand-computable numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    SweepIncompleteError,
    SweepLedger,
    SweepSpec,
    build_report,
)

from sweep_helpers import sweep_base


def _record(point_id, spec, metric, device_bytes, metric_name="ndcg"):
    return {
        "point_id": point_id,
        "spec": spec.to_manifest(),
        "metric_name": metric_name,
        "metric": metric,
        "metrics": {metric_name: metric},
        "params": 1000,
        "embedding_params": 400,
        "device_bytes": device_bytes,
        "seconds": 1.0,
        "artifact": f"artifacts/{point_id}",
        "artifact_sha": "0" * 64,
    }


def _ledger(tmp_path, budget_bytes, metrics_and_bytes, metric_name="ndcg"):
    """A complete fake sweep: one grid point per (metric, bytes) pair."""
    sweep = SweepSpec(
        base=sweep_base(),
        axes={"hyper.num_hash_embeddings": [2 * (i + 1) for i in range(len(metrics_and_bytes))]},
        budget_bytes=budget_bytes,
    )
    ledger = SweepLedger.create(str(tmp_path / "s"), sweep)
    points = sweep.expand()
    assert len(points) == len(metrics_and_bytes)
    for (pid, spec), (metric, nbytes) in zip(points, metrics_and_bytes):
        name = metric_name if not callable(metric_name) else metric_name(pid)
        ledger.record(pid, _record(pid, spec, metric, nbytes, name))
    return ledger, points


class TestRanking:
    def test_rows_sorted_by_metric_per_byte(self, tmp_path):
        ledger, _ = _ledger(
            tmp_path, None, [(0.5, 1000), (0.5, 500), (0.2, 100)]
        )
        report = build_report(ledger.root)
        per_mib = [row["metric_per_mib"] for row in report.rows]
        assert per_mib == sorted(per_mib, reverse=True)
        assert report.rows[0]["metric"] == 0.2  # 0.2/100B beats 0.5/500B

    def test_winner_is_best_metric_within_budget(self, tmp_path):
        ledger, points = _ledger(
            tmp_path, 600, [(0.9, 1000), (0.7, 500), (0.6, 100)]
        )
        report = build_report(ledger.root)
        # 0.9 is over budget; 0.7 is the best metric that fits.
        winner = report.winner_row()
        assert winner["metric"] == 0.7
        assert winner["within_budget"]
        over = [r for r in report.rows if not r["within_budget"]]
        assert [r["metric"] for r in over] == [0.9]

    def test_metric_tie_breaks_on_fewer_bytes(self, tmp_path):
        ledger, _ = _ledger(tmp_path, None, [(0.5, 1000), (0.5, 500)])
        assert build_report(ledger.root).winner_row()["device_bytes"] == 500

    def test_nothing_fits_means_no_winner(self, tmp_path):
        ledger, _ = _ledger(tmp_path, 50, [(0.9, 1000), (0.7, 500)])
        report = build_report(ledger.root)
        assert report.winner is None
        assert report.winner_row() is None

    def test_unconstrained_budget_admits_everything(self, tmp_path):
        ledger, _ = _ledger(tmp_path, None, [(0.9, 10**9)])
        report = build_report(ledger.root)
        assert report.winner_row()["metric"] == 0.9
        assert all(r["within_budget"] for r in report.rows)


class TestFailureModes:
    def test_missing_points_refuse_to_report(self, tmp_path, base_spec):
        sweep = SweepSpec(base=base_spec, axes={"bits": [32, 8]})
        SweepLedger.create(str(tmp_path / "s"), sweep)
        with pytest.raises(SweepIncompleteError, match="unfinished"):
            build_report(str(tmp_path / "s"))

    def test_mixed_metrics_are_not_comparable(self, tmp_path):
        seen = []

        def alternating(pid):
            seen.append(pid)
            return "ndcg" if len(seen) % 2 else "accuracy"

        ledger, _ = _ledger(
            tmp_path, None, [(0.5, 100), (0.6, 100)], metric_name=alternating
        )
        with pytest.raises(SweepIncompleteError, match="mixes metrics"):
            build_report(ledger.root)


class TestDeterministicJson:
    def test_json_round_trips_and_ends_with_newline(self, tmp_path):
        ledger, _ = _ledger(tmp_path, 600, [(0.7, 500), (0.6, 100)])
        report = build_report(ledger.root)
        blob = report.to_json()
        assert blob.endswith("\n")
        payload = json.loads(blob)
        assert payload["winner"] == report.winner
        assert payload["budget_bytes"] == 600
        assert len(payload["rows"]) == 2

    def test_rebuild_is_byte_identical(self, tmp_path):
        ledger, _ = _ledger(tmp_path, None, [(0.7, 500), (0.6, 100)])
        assert build_report(ledger.root).to_json() == build_report(
            ledger.root
        ).to_json()

    def test_save_writes_the_same_bytes(self, tmp_path):
        ledger, _ = _ledger(tmp_path, None, [(0.7, 500)])
        report = build_report(ledger.root)
        path = tmp_path / "report.json"
        report.save(str(path))
        assert path.read_text() == report.to_json()

    def test_no_absolute_paths_or_timestamps(self, tmp_path):
        ledger, _ = _ledger(tmp_path, None, [(0.7, 500)])
        blob = build_report(ledger.root).to_json()
        assert str(tmp_path) not in blob
        assert '"seconds"' not in blob
