"""Shared sweep-test helper: a CPU-milliseconds base pipeline."""

from __future__ import annotations

from repro.pipeline import PipelineSpec
from repro.train import TrainConfig


def sweep_base(**overrides) -> PipelineSpec:
    """A tiny, fast base pipeline every sweep test grids over."""
    defaults = dict(
        dataset="movielens",
        technique="memcom",
        hyper={"num_hash_embeddings": 32},
        embedding_dim=8,
        scale=0.01,
        cap_train=512,
        cap_eval=256,
        input_length=16,
        train=TrainConfig(epochs=1, batch_size=64, lr=3e-3, seed=0),
        monitor=False,
        seed=0,
    )
    defaults.update(overrides)
    return PipelineSpec(**defaults)
