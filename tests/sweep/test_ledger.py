"""SweepLedger: create/open lifecycle and crash-safe point records."""

from __future__ import annotations

import os

import pytest

from repro.sweep import SweepError, SweepLedger, SweepSpec


@pytest.fixture
def sweep(base_spec):
    return SweepSpec(base=base_spec, axes={"bits": [32, 8]}, budget_bytes=1 << 20)


class TestLifecycle:
    def test_create_writes_manifest(self, tmp_path, sweep):
        root = str(tmp_path / "s")
        SweepLedger.create(root, sweep)
        assert os.path.exists(os.path.join(root, "sweep.json"))

    def test_create_refuses_existing_sweep(self, tmp_path, sweep):
        root = str(tmp_path / "s")
        SweepLedger.create(root, sweep)
        with pytest.raises(SweepError, match="already holds a sweep"):
            SweepLedger.create(root, sweep)

    def test_open_round_trips_the_spec(self, tmp_path, sweep):
        root = str(tmp_path / "s")
        SweepLedger.create(root, sweep)
        reopened = SweepLedger.open(root)
        assert reopened.spec.to_manifest() == sweep.to_manifest()
        assert [p for p, _ in reopened.spec.expand()] == [
            p for p, _ in sweep.expand()
        ]

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(SweepError, match="no sweep found"):
            SweepLedger.open(str(tmp_path / "nowhere"))


class TestRecords:
    def test_record_then_read_back(self, tmp_path, sweep):
        ledger = SweepLedger.create(str(tmp_path / "s"), sweep)
        ledger.record("abc123", {"point_id": "abc123", "metric": 0.5})
        assert ledger.result("abc123")["metric"] == 0.5
        assert ledger.completed_ids() == {"abc123"}

    def test_unknown_point_is_none(self, tmp_path, sweep):
        ledger = SweepLedger.create(str(tmp_path / "s"), sweep)
        assert ledger.result("missing") is None
        assert ledger.completed_ids() == set()

    def test_records_keyed_and_sorted(self, tmp_path, sweep):
        ledger = SweepLedger.create(str(tmp_path / "s"), sweep)
        ledger.record("bb", {"point_id": "bb"})
        ledger.record("aa", {"point_id": "aa"})
        records = ledger.records()
        assert list(records) == ["aa", "bb"]

    def test_no_tmp_litter_after_record(self, tmp_path, sweep):
        root = str(tmp_path / "s")
        ledger = SweepLedger.create(root, sweep)
        ledger.record("abc", {"point_id": "abc"})
        points_dir = os.path.join(root, "points")
        assert all(".tmp." not in n for n in os.listdir(points_dir))
