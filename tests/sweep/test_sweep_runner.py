"""Fleet execution: serial-vs-parallel identity and crash-safe resume.

The tentpole guarantees under test:

* an N-point sweep across W>1 workers produces a consolidated report
  **byte-identical** to the same grid run serially (the artifact manifest
  hashes agree payload-for-payload, so the exported tensors are identical);
* SIGKILLing a worker mid-grid loses only the in-flight point —
  ``resume()`` completes exactly the unfinished points and the final
  report is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import os

import pytest

from repro.core.sizing import bytes_for_params, embedding_param_count
from repro.sweep import (
    SweepError,
    SweepIncompleteError,
    SweepSpec,
    build_report,
    device_bytes_for,
    execute_point,
    resume,
    run,
)

from sweep_helpers import sweep_base

GRID = {"hyper.num_hash_embeddings": [16, 32], "bits": [32, 8]}


def _sweep():
    return SweepSpec(base=sweep_base(), axes=GRID, budget_bytes=1 << 20)


@pytest.fixture(scope="module")
def serial_report_json(tmp_path_factory) -> str:
    """The uninterrupted serial reference every identity test compares to."""
    out = str(tmp_path_factory.mktemp("serial") / "sweep")
    run(_sweep(), out, workers=0)
    return build_report(out).to_json()


class TestExecutePoint:
    def test_result_fields_and_artifact(self, tmp_path, base_spec):
        data = base_spec.load_data()
        artifact = str(tmp_path / "artifacts" / "p0")
        os.makedirs(os.path.dirname(artifact))
        result = execute_point(base_spec, data, artifact_path=artifact, point_id="p0")
        assert result.point_id == "p0"
        assert result.metric_name == "ndcg"
        assert 0.0 <= result.metric <= 1.0
        assert result.params > result.embedding_params > 0
        assert result.device_bytes == device_bytes_for(
            base_spec, data.spec.input_vocab, result.params
        )
        assert os.path.isdir(artifact)
        assert result.artifact == "artifacts/p0"
        assert len(result.artifact_sha) == 64

    def test_device_bytes_splits_embedding_from_rest(self, base_spec):
        v, params = 500, 10_000
        emb = embedding_param_count(
            base_spec.technique, v, base_spec.embedding_dim, **base_spec.hyper
        )
        spec8 = sweep_base(bits=8)
        assert device_bytes_for(spec8, v, params) == bytes_for_params(
            emb, 8
        ) + bytes_for_params(params - emb, 32)

    def test_device_bytes_rejects_impossible_split(self, base_spec):
        with pytest.raises(ValueError, match="exceed total"):
            device_bytes_for(base_spec, 500, 1)


class TestSerialVsParallel:
    def test_two_workers_byte_identical_to_serial(
        self, tmp_path, serial_report_json
    ):
        out = str(tmp_path / "parallel")
        records = run(_sweep(), out, workers=2)
        assert len(records) == 4
        assert build_report(out).to_json() == serial_report_json

    def test_artifact_hashes_present(self, tmp_path, serial_report_json):
        out = str(tmp_path / "hashes")
        run(_sweep(), out, workers=0)
        report = build_report(out)
        assert all(row["artifact_sha"] for row in report.rows)


class TestCrashResume:
    def test_killed_worker_loses_only_its_point(
        self, tmp_path, serial_report_json
    ):
        sweep = _sweep()
        victim = sweep.expand()[0][0]
        out = str(tmp_path / "crash")
        with pytest.raises(SweepIncompleteError, match="resume"):
            run(sweep, out, workers=2, fail_points={victim: "kill"})

        from repro.sweep.ledger import SweepLedger

        done = SweepLedger.open(out).completed_ids()
        all_ids = {pid for pid, _ in sweep.expand()}
        assert victim not in done
        assert done == all_ids - {victim}

        resume(out, workers=0)
        assert SweepLedger.open(out).completed_ids() == all_ids
        assert build_report(out).to_json() == serial_report_json

    def test_resume_on_complete_sweep_is_a_no_op(self, tmp_path):
        sweep = SweepSpec(base=sweep_base(), axes={"bits": [32]})
        out = str(tmp_path / "done")
        run(sweep, out, workers=0)
        marker = os.path.join(out, "points")
        stamps = {n: os.stat(os.path.join(marker, n)).st_mtime_ns
                  for n in os.listdir(marker)}
        resume(out, workers=0)
        assert {n: os.stat(os.path.join(marker, n)).st_mtime_ns
                for n in os.listdir(marker)} == stamps


class TestGuardRails:
    def test_run_refuses_existing_sweep_dir(self, tmp_path):
        sweep = SweepSpec(base=sweep_base(), axes={"bits": [32]})
        out = str(tmp_path / "s")
        run(sweep, out, workers=0)
        with pytest.raises(SweepError, match="already holds a sweep"):
            run(sweep, out, workers=0)

    def test_fail_points_requires_workers(self, tmp_path):
        with pytest.raises(SweepError, match="worker processes"):
            run(
                SweepSpec(base=sweep_base()),
                str(tmp_path / "s"),
                workers=0,
                fail_points={"x": "kill"},
            )

    def test_negative_workers(self, tmp_path):
        with pytest.raises(SweepError, match="workers"):
            run(SweepSpec(base=sweep_base()), str(tmp_path / "s"), workers=-1)


class TestSharedCache:
    def test_grid_materializes_each_dataset_once(self, tmp_path):
        out = str(tmp_path / "s")
        run(_sweep(), out, workers=0)
        cached = os.listdir(os.path.join(out, "datasets"))
        # Four model-side points, one (dataset, pairwise, seed) recipe.
        assert len([n for n in cached if n.endswith(".npz")]) == 1
