"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import _default_hyper, build_parser, main
from repro.core.registry import available_techniques
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_every_experiment_id(self):
        parser = build_parser()
        for exp in EXPERIMENTS:
            args = parser.parse_args(["run", exp])
            assert args.experiment == exp

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_dataset_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "imagenet"])

    def test_train_parses_overrides(self):
        args = build_parser().parse_args(
            ["train", "movielens", "memcom", "--epochs", "2", "--hash-fraction", "8"]
        )
        assert args.epochs == 2 and args.hash_fraction == 8


class TestCommands:
    def test_list_prints_all_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in EXPERIMENTS:
            assert exp in out
        assert "movielens" in out and "memcom" in out

    def test_dataset_shows_scaled_spec(self, capsys):
        assert main(["dataset", "arcade", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "input_vocab" in out and "600" in out

    def test_dataset_full_scale_matches_table2(self, capsys):
        assert main(["dataset", "movielens"]) == 0
        out = capsys.readouterr().out
        assert "10000" in out and "5000" in out

    def test_train_runs_one_model(self, capsys):
        code = main(
            ["train", "movielens", "hash", "--scale", "0.5", "--epochs", "1",
             "--embedding-dim", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ndcg" in out

    def test_run_executes_fast_experiment(self, capsys):
        # "props" is analytic (no training) — fast enough for unit tests.
        assert main(["run", "props", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out


class TestDefaultHyper:
    def test_covers_every_registered_technique(self):
        for technique in available_techniques():
            hyper = _default_hyper(technique, vocab=1000, dim=32, hash_fraction=16)
            assert isinstance(hyper, dict)

    def test_hash_fraction_controls_m(self):
        assert _default_hyper("memcom", 1000, 32, 16) == {"num_hash_embeddings": 62}
        assert _default_hyper("memcom", 1000, 32, 8) == {"num_hash_embeddings": 125}

    def test_tiny_vocab_floors_at_two(self):
        assert _default_hyper("hash", 8, 32, 16)["num_hash_embeddings"] == 2
