"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import _default_hyper, build_parser, main
from repro.core.registry import available_techniques
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_every_experiment_id(self):
        parser = build_parser()
        for exp in EXPERIMENTS:
            args = parser.parse_args(["run", exp])
            assert args.experiment == exp

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_dataset_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "imagenet"])

    def test_train_parses_overrides(self):
        args = build_parser().parse_args(
            ["train", "movielens", "memcom", "--epochs", "2", "--hash-fraction", "8"]
        )
        assert args.epochs == 2 and args.hash_fraction == 8


class TestCommands:
    def test_list_prints_all_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in EXPERIMENTS:
            assert exp in out
        assert "movielens" in out and "memcom" in out

    def test_dataset_shows_scaled_spec(self, capsys):
        assert main(["dataset", "arcade", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "input_vocab" in out and "600" in out

    def test_dataset_full_scale_matches_table2(self, capsys):
        assert main(["dataset", "movielens"]) == 0
        out = capsys.readouterr().out
        assert "10000" in out and "5000" in out

    def test_train_runs_one_model(self, capsys):
        code = main(
            ["train", "movielens", "hash", "--scale", "0.5", "--epochs", "1",
             "--embedding-dim", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ndcg" in out

    def test_run_executes_fast_experiment(self, capsys):
        # "props" is analytic (no training) — fast enough for unit tests.
        assert main(["run", "props", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out


class TestTrainFailFast:
    """Bad training arguments die up front with a one-line message (exit 2)."""

    @pytest.mark.parametrize(
        "flags, fragment",
        [
            (("--epochs", "0"), "--epochs"),
            (("--embedding-dim", "-2"), "--embedding-dim"),
            (("--hash-fraction", "0"), "--hash-fraction"),
            (("--scale", "-0.5"), "--scale"),
        ],
    )
    def test_each_bad_value_names_its_flag(self, capsys, flags, fragment):
        code = main(["train", "movielens", "memcom", *flags])
        err = capsys.readouterr().err
        assert code == 2
        assert fragment in err
        assert "Traceback" not in err

    def test_save_artifact_exports_and_verifies(self, tmp_path, capsys):
        out = str(tmp_path / "trained")
        code = main(
            ["train", "movielens", "memcom", "--epochs", "1",
             "--embedding-dim", "8", "--save-artifact", out, "--bits", "8"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "ModelArtifact" in stdout
        assert "verified" in stdout and "bit-for-bit" in stdout


class TestPipelineCommands:
    def test_run_checkpoint_kill_resume_export(self, tmp_path, capsys):
        """The full lifecycle: train → checkpoint → kill → resume →
        export-artifact → reload-verify, all from the shell."""
        ck = str(tmp_path / "ck")
        art = str(tmp_path / "art")
        code = main(
            ["pipeline", "run", "--dataset", "movielens", "--epochs", "2",
             "--embedding-dim", "8", "--checkpoint", ck,
             "--stop-after-epoch", "1"]
        )
        assert code == 0
        assert "interrupted at epoch 1/2" in capsys.readouterr().out
        code = main(["pipeline", "resume", ck, "--export", art, "--bits", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from epoch 1" in out
        assert "verified" in out and "bit-for-bit" in out

    def test_export_subcommand(self, tmp_path, capsys):
        ck = str(tmp_path / "ck")
        assert main(
            ["pipeline", "run", "--dataset", "movielens", "--epochs", "1",
             "--embedding-dim", "8", "--checkpoint", ck]
        ) == 0
        capsys.readouterr()
        assert main(["pipeline", "export", ck, str(tmp_path / "art.zip")]) == 0
        assert "verified" in capsys.readouterr().out

    def test_resume_without_checkpoint_is_clean_error(self, capsys):
        code = main(["pipeline", "resume", "/nonexistent/ck"])
        err = capsys.readouterr().err
        assert code == 2
        assert "Traceback" not in err

    def test_resume_of_serving_artifact_is_clean_error(self, tmp_path, capsys):
        out = str(tmp_path / "serving")
        assert main(
            ["export-artifact", out, "--technique", "memcom", "--vocab", "400",
             "--embedding-dim", "8", "--input-length", "4", "--num-items", "10"]
        ) == 0
        capsys.readouterr()
        code = main(["pipeline", "resume", out])
        err = capsys.readouterr().err
        assert code == 2
        assert "no training checkpoint" in err and "Traceback" not in err

    @pytest.mark.parametrize(
        "flags, fragment",
        [
            (("--epochs", "0"), "--epochs"),
            (("--batch-size", "-1"), "--batch-size"),
            (("--lr", "0"), "--lr"),
            (("--checkpoint-every", "0"), "--checkpoint-every"),
            (("--stop-after-epoch", "0"), "--stop-after-epoch"),
        ],
    )
    def test_run_validates_arguments(self, capsys, flags, fragment):
        code = main(["pipeline", "run", "--dataset", "movielens", *flags])
        err = capsys.readouterr().err
        assert code == 2
        assert fragment in err
        assert "Traceback" not in err

    def test_stop_after_requires_checkpoint(self, capsys):
        code = main(
            ["pipeline", "run", "--dataset", "movielens", "--stop-after-epoch", "1"]
        )
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err


class TestDefaultHyper:
    def test_covers_every_registered_technique(self):
        for technique in available_techniques():
            hyper = _default_hyper(technique, vocab=1000, dim=32, hash_fraction=16)
            assert isinstance(hyper, dict)

    def test_hash_fraction_controls_m(self):
        assert _default_hyper("memcom", 1000, 32, 16) == {"num_hash_embeddings": 62}
        assert _default_hyper("memcom", 1000, 32, 8) == {"num_hash_embeddings": 125}

    def test_tiny_vocab_floors_at_two(self):
        assert _default_hyper("hash", 8, 32, 16)["num_hash_embeddings"] == 2


class TestServeBenchValidation:
    """Bad serving arguments die up front with a one-line message (exit 2)."""

    def _run(self, capsys, *extra):
        code = main(
            ["serve-bench", "--vocab", "400", "--embedding-dim", "8",
             "--input-length", "4", "--requests", "64", "--batch-size", "16",
             *extra]
        )
        return code, capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags, fragment",
        [
            (("--vocab", "0"), "--vocab"),
            (("--embedding-dim", "-2"), "--embedding-dim"),
            (("--requests", "0"), "--requests"),
            (("--batch-size", "-1"), "--batch-size"),
            (("--cache-rows", "-5"), "--cache-rows"),
            (("--cache-min-count", "0"), "cache_min_count"),
            (("--cache-ttl-batches", "0"), "cache_ttl_batches"),
            (("--alpha", "-0.5"), "--alpha"),
            (("--shards", "0"), "--shards"),
        ],
    )
    def test_each_bad_value_names_its_flag(self, capsys, flags, fragment):
        code, err = self._run(capsys, *flags)
        assert code == 2
        assert fragment in err
        assert "Traceback" not in err

    def test_bits_rejected_by_argparse_choices(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--bits", "16"])

    def test_missing_artifact_is_a_clean_error(self, capsys):
        code, err = self._run(capsys, "--artifact", "/nonexistent/artifact")
        assert code == 2
        assert "artifact" in err


class TestArtifactCommands:
    def _export(self, out, *extra):
        return main(
            ["export-artifact", out, "--technique", "memcom", "--vocab", "400",
             "--embedding-dim", "8", "--input-length", "4", "--num-items", "10",
             *extra]
        )

    def test_export_then_serve_bench_artifact(self, tmp_path, capsys):
        out = str(tmp_path / "artifact")
        assert self._export(out, "--bits", "8", "--shards", "2") == 0
        stdout = capsys.readouterr().out
        assert "ModelArtifact" in stdout and "verified: reload OK" in stdout
        code = main(
            ["serve-bench", "--artifact", out, "--requests", "64",
             "--batch-size", "16", "--cache-rows", "32"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "artifact" in stdout and "artifact+cache" in stdout

    def test_export_zip(self, tmp_path, capsys):
        out = str(tmp_path / "artifact.zip")
        assert self._export(out) == 0
        assert "verified: reload OK" in capsys.readouterr().out

    def test_export_validates_arguments(self, tmp_path, capsys):
        assert self._export(str(tmp_path / "a"), "--vocab", "-1") == 2
        assert "--vocab" in capsys.readouterr().err

    def test_serve_bench_cache_rows_zero_disables_cache(self, capsys):
        code = main(
            ["serve-bench", "--vocab", "400", "--embedding-dim", "8",
             "--input-length", "4", "--requests", "64", "--batch-size", "16",
             "--cache-rows", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "monolithic+cache" in out  # row exists, cache disabled: no hit%


class TestArtifactBits:
    """serve-bench --artifact honors --bits (review regression)."""

    def _export_fp32(self, out):
        return main(
            ["export-artifact", out, "--technique", "memcom", "--vocab", "400",
             "--embedding-dim", "8", "--input-length", "4", "--num-items", "10"]
        )

    def test_bits_quantizes_fp32_artifact_on_load(self, tmp_path, capsys):
        out = str(tmp_path / "fp32")
        assert self._export_fp32(out) == 0
        capsys.readouterr()
        code = main(
            ["serve-bench", "--artifact", out, "--bits", "8", "--requests", "64",
             "--batch-size", "16"]
        )
        assert code == 0
        assert "int8" in capsys.readouterr().out  # title names the served width

    def test_width_conflict_exits_2_with_typed_message(self, tmp_path, capsys):
        out = str(tmp_path / "q8")
        assert self._export_fp32(out + "-tmp") == 0  # warm the builder path
        assert main(
            ["export-artifact", out, "--technique", "memcom", "--vocab", "400",
             "--embedding-dim", "8", "--input-length", "4", "--num-items", "10",
             "--bits", "8"]
        ) == 0
        capsys.readouterr()
        code = main(
            ["serve-bench", "--artifact", out, "--bits", "4", "--requests", "64",
             "--batch-size", "16"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "int8" in err and "Traceback" not in err

    def test_export_percentile_validated_up_front(self, tmp_path, capsys):
        code = main(
            ["export-artifact", str(tmp_path / "p"), "--vocab", "400",
             "--embedding-dim", "8", "--input-length", "4", "--num-items", "10",
             "--bits", "8", "--percentile", "150"]
        )
        assert code == 2
        assert "--percentile" in capsys.readouterr().err


class TestArtifactInspect:
    def _artifact(self, tmp_path, name="a"):
        import numpy as np

        from repro.artifact import save_artifact
        from repro.models.builder import build_pointwise_ranker

        model = build_pointwise_ranker(
            "full", 200, 10, input_length=6, embedding_dim=8, rng=0
        )
        state = model.state_dict()
        checkpoint = (
            {"train_state": {"epoch": 2}},
            {
                **{f"model/{k}": v for k, v in state.items()},
                "opt/velocity.0": np.zeros_like(model.embedding.table.data),
            },
        )
        path = str(tmp_path / name)
        save_artifact(model, path, checkpoint=checkpoint)
        return model, path

    def test_inspect_shows_payload_table_and_checkpoint(self, tmp_path, capsys):
        _model, path = self._artifact(tmp_path)
        assert main(["artifact", "inspect", path]) == 0
        out = capsys.readouterr().out
        assert "format v3" in out
        assert "alias → embedding/table" in out
        assert "zeros (elided)" in out
        assert "epoch 2" in out

    def test_inspect_walks_the_delta_chain(self, tmp_path, capsys):
        from repro.artifact import save_delta

        model, parent = self._artifact(tmp_path, "parent")
        model.embedding.table.data[[1, 5]] += 0.5
        delta = str(tmp_path / "delta")
        save_delta(model, delta, parent, touched_rows=[1, 5])
        assert main(["artifact", "inspect", delta]) == 0
        out = capsys.readouterr().out
        assert "depth 1" in out
        assert "manifest sha256 ok" in out
        assert "rows(2)" in out

    def test_inspect_missing_artifact_is_a_clean_error(self, tmp_path, capsys):
        assert main(["artifact", "inspect", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "Traceback" not in err


class TestSweepValidation:
    """`repro sweep run` dies up front with a one-line message (exit 2)."""

    def _run(self, capsys, *extra):
        code = main(["sweep", "run", "/tmp/cli-sweep-validation", *extra])
        return code, capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags, fragment",
        [
            (("--scale", "0"), "--scale"),
            (("--epochs", "-1"), "--epochs"),
            (("--batch-size", "0"), "--batch-size"),
            (("--lr", "-0.1"), "--lr"),
            (("--embedding-dim", "0"), "--embedding-dim"),
            (("--workers", "-1"), "--workers"),
            (("--budget-kb", "0"), "--budget-kb"),
            (("--distill-alpha", "1.5"), "--distill-alpha"),
            (("--distill-temperature", "0"), "--distill-temperature"),
            (("--techniques", "warp_drive"), "unknown technique"),
            (("--techniques", ""), "techniques"),
            (("--fractions", "0"), "--fractions"),
            (("--fractions", "eight"), "fractions"),
            (("--bits", "16"), "--bits"),
        ],
    )
    def test_each_bad_value_names_its_flag(self, capsys, flags, fragment):
        code, err = self._run(capsys, *flags)
        assert code == 2
        assert fragment in err
        assert "Traceback" not in err
        assert err.startswith("repro sweep run: error:")

    def test_unknown_dataset_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "run", "/tmp/x", "--dataset", "imagenet"])

    def test_sweep_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_resume_rejects_negative_workers(self, capsys):
        code = main(["sweep", "resume", "/tmp/nowhere", "--workers", "-2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "Traceback" not in err

    def test_resume_missing_directory_is_a_clean_error(self, tmp_path, capsys):
        code = main(["sweep", "resume", str(tmp_path / "nope")])
        assert code == 2
        err = capsys.readouterr().err
        assert "no sweep found" in err

    def test_report_missing_directory_is_a_clean_error(self, tmp_path, capsys):
        code = main(["sweep", "report", str(tmp_path / "nope")])
        assert code == 2
        err = capsys.readouterr().err
        assert "no sweep found" in err


class TestSweepCommands:
    def test_run_report_export_winner_loop(self, tmp_path, capsys):
        out = str(tmp_path / "sweep")
        code = main(
            ["sweep", "run", out, "--dataset", "movielens", "--techniques",
             "memcom", "--fractions", "8", "--bits", "32,8", "--budget-kb",
             "64", "--workers", "0", "--scale", "0.5", "--epochs", "1",
             "--embedding-dim", "8"]
        )
        assert code == 0
        assert "sweep complete: 2 points" in capsys.readouterr().out

        report_json = str(tmp_path / "report.json")
        winner_dir = str(tmp_path / "winner")
        code = main(
            ["sweep", "report", out, "--json", report_json,
             "--export-winner", winner_dir]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "winner" in printed
        import json as _json
        import os as _os

        payload = _json.loads(open(report_json).read())
        assert payload["winner"] is not None
        assert len(payload["rows"]) == 2
        assert _os.path.isdir(winner_dir)

        # Re-running on the same directory refuses to clobber the ledger.
        code = main(["sweep", "run", out, "--workers", "0"])
        assert code == 2
        assert "already holds a sweep" in capsys.readouterr().err

        # Resume on the complete sweep is a no-op success.
        assert main(["sweep", "resume", out, "--workers", "0"]) == 0

    def test_export_winner_refuses_existing_target(self, tmp_path, capsys):
        out = str(tmp_path / "sweep")
        assert main(
            ["sweep", "run", out, "--techniques", "memcom", "--fractions", "8",
             "--workers", "0", "--scale", "0.5", "--epochs", "1",
             "--embedding-dim", "8"]
        ) == 0
        capsys.readouterr()
        target = tmp_path / "occupied"
        target.mkdir()
        code = main(["sweep", "report", out, "--export-winner", str(target)])
        assert code == 2
        assert "already exists" in capsys.readouterr().err
