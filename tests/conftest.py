"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.spec import DatasetSpec
from repro.data.synthetic import generate_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_spec() -> DatasetSpec:
    """A minimal ranking-style dataset spec used across integration tests."""
    return DatasetSpec(
        name="tiny",
        num_train=512,
        num_eval=128,
        input_vocab=200,
        output_vocab=30,
        task="ranking",
        input_length=16,
        examples_per_user=2,
        num_genres=8,
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_spec):
    return generate_dataset(tiny_spec, np.random.default_rng(7))


@pytest.fixture(scope="session")
def tiny_classification_spec() -> DatasetSpec:
    return DatasetSpec(
        name="tinycls",
        num_train=512,
        num_eval=128,
        input_vocab=300,
        output_vocab=25,
        task="classification",
        input_length=16,
        num_countries=10,
        num_genres=8,
    )


@pytest.fixture(scope="session")
def tiny_classification_dataset(tiny_classification_spec):
    return generate_dataset(tiny_classification_spec, np.random.default_rng(11))
