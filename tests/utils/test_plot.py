"""ASCII figure rendering."""

import pytest

from repro.utils.plot import MARKERS, ascii_plot


def _one_series(**kwargs):
    return ascii_plot({"memcom": ([1, 2, 4, 8], [0.0, 1.0, 3.0, 9.0])}, **kwargs)


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot(
            {"memcom": ([1, 2], [0.0, 1.0]), "hash": ([1, 2], [0.0, 5.0])}
        )
        assert "o=memcom" in out and "x=hash" in out
        assert "o" in out and "x" in out

    def test_title_and_labels_shown(self):
        out = _one_series(title="Figure 2 (a)", x_label="compression", y_label="% loss")
        assert out.startswith("Figure 2 (a)")
        assert "% loss" in out
        assert "compression" in out

    def test_y_axis_ticks_span_data(self):
        out = _one_series()
        assert "0" in out and "9" in out

    def test_log_x_axis_accepts_ratios(self):
        out = ascii_plot({"a": ([1, 10, 100], [0, 1, 2])}, logx=True)
        assert "100" in out

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([0, 1], [0, 1])}, logx=True)

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": ([], [])})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([1, 2], [1])})

    def test_rejects_too_many_series(self):
        series = {f"s{i}": ([1, 2], [0, i]) for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError):
            ascii_plot(series)

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            _one_series(width=4)
        with pytest.raises(ValueError):
            _one_series(height=2)

    def test_constant_series_does_not_crash(self):
        out = ascii_plot({"flat": ([1, 2, 3], [5.0, 5.0, 5.0])})
        assert "flat" in out

    def test_single_point_series(self):
        out = ascii_plot({"dot": ([3], [7.0])})
        assert "o" in out

    def test_grid_dimensions_respected(self):
        out = _one_series(width=40, height=10)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 10
        assert all(len(l.split("|", 1)[1]) == 40 for l in plot_rows)

    def test_interpolation_dots_connect_points(self):
        out = ascii_plot({"line": ([1, 100], [0.0, 10.0])}, width=40, height=10)
        assert "." in out


class TestSweepPlotIntegration:
    def test_renders_from_sweep_result(self):
        from repro.experiments.report import render_sweep_plot
        from repro.experiments.runner import SweepPoint, SweepResult

        result = SweepResult(
            dataset="movielens",
            architecture="pointwise",
            metric_name="ndcg",
            baseline_metric=0.2,
            baseline_params=1000,
        )
        for tech, ratio, loss in [
            ("memcom", 4.0, 1.0),
            ("memcom", 16.0, 4.0),
            ("hash", 4.0, 5.0),
            ("hash", 16.0, 14.0),
        ]:
            result.points.append(
                SweepPoint(
                    technique=tech,
                    hyper={"num_hash_embeddings": 10},
                    params=int(1000 / ratio),
                    compression_ratio=ratio,
                    metric=0.2 * (1 - loss / 100),
                    relative_loss_pct=loss,
                )
            )
        out = render_sweep_plot(result)
        assert "movielens" in out and "memcom" in out and "hash" in out

    def test_technique_filter(self):
        from repro.experiments.report import render_sweep_plot
        from repro.experiments.runner import SweepPoint, SweepResult

        result = SweepResult("d", "pointwise", "ndcg", 0.2, 1000)
        for tech in ("memcom", "hash"):
            result.points.append(
                SweepPoint(tech, {}, 100, 10.0, 0.19, 5.0)
            )
        out = render_sweep_plot(result, techniques=["memcom"])
        assert "memcom" in out and "hash" not in out
