"""Properties of the bench-scale datasets that the figures depend on.

These pin the calibration decisions documented in DESIGN.md §4b: if a spec
change silently reverts them, Figure 1/2 shapes degrade into noise long
before any experiment assertion would catch it.
"""

import numpy as np
import pytest

from repro.data.datasets import DATASETS, get_spec
from repro.data.synthetic import generate_dataset
from repro.experiments.runner import BENCH_SCALES, ExperimentConfig, bench_spec


class TestEvalFloor:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_scaled_eval_split_large_enough(self, name):
        """Relative-loss curves quantize at 1/num_eval; 512 keeps the
        quantum well under the technique gaps the figures measure."""
        spec = get_spec(name, BENCH_SCALES[name])
        assert spec.num_eval >= 512


class TestMicroGenres:
    @pytest.mark.parametrize("name", ["games", "arcade"])
    def test_app_datasets_have_fine_genres(self, name):
        """Items-per-genre stays ≈8 at full scale and after bench scaling —
        the regime where hash collisions destroy usable signal (Figure 1)."""
        for scale in (1.0, BENCH_SCALES[name]):
            spec = get_spec(name, scale)
            items_per_genre = spec.num_items / spec.num_genres
            assert 3 <= items_per_genre <= 16, (name, scale, items_per_genre)

    def test_media_datasets_keep_coarser_taste(self):
        # Ranking datasets were calibrated before the micro-genre change and
        # produce paper-shaped Figure 2 curves; their genre ratio is coarser.
        spec = get_spec("movielens", BENCH_SCALES["movielens"])
        assert spec.num_items / spec.num_genres > 10


class TestPopularitySkew:
    def test_generated_ids_are_frequency_sorted(self):
        config = ExperimentConfig(cap_train=4000, cap_eval=512)
        data = generate_dataset(bench_spec("arcade", config), 0)
        ids = data.x_train[data.x_train > data.spec.num_countries]
        counts = np.bincount(ids, minlength=data.spec.input_vocab)
        item_counts = counts[data.spec.num_countries + 1 :]
        # Head items must be much more frequent than tail items (monotone in
        # aggregate: compare head-quartile mass to tail-quartile mass).
        q = len(item_counts) // 4
        assert item_counts[:q].sum() > 4 * item_counts[-q:].sum()

    def test_padding_id_reserved(self):
        config = ExperimentConfig(cap_train=1000, cap_eval=512)
        data = generate_dataset(bench_spec("arcade", config), 0)
        assert (data.x_train == 0).any()  # short histories pad with 0
        assert (data.y_train >= 0).all()

    def test_label_distribution_skewed_but_not_degenerate(self):
        config = ExperimentConfig(cap_train=4000, cap_eval=512)
        data = generate_dataset(bench_spec("arcade", config), 0)
        share = np.bincount(data.y_train, minlength=data.spec.output_vocab)
        top = share.max() / len(data.y_train)
        assert 0.01 < top < 0.4  # a learnable prior, not a constant label


class TestClassificationLearnability:
    def test_full_model_beats_majority_prior(self):
        """The Figure 1 precondition: with the calibrated step budget the
        uncompressed classifier must clearly beat the popularity prior."""
        from repro.metrics.evaluator import evaluate_classification
        from repro.models.builder import build_classifier
        from repro.train.trainer import TrainConfig, Trainer

        config = ExperimentConfig(cap_train=2500, cap_eval=512)
        data = generate_dataset(bench_spec("arcade", config), 0)
        majority = np.bincount(data.y_eval).max() / len(data.y_eval)
        model = build_classifier(
            "full",
            data.spec.input_vocab,
            data.spec.output_vocab,
            input_length=data.spec.input_length,
            embedding_dim=32,
            rng=0,
        )
        Trainer(TrainConfig(epochs=12, batch_size=64, lr=3e-3, seed=0)).fit(
            model, data.x_train[:2500], data.y_train[:2500]
        )
        acc = evaluate_classification(model, data.x_eval, data.y_eval)["accuracy"]
        assert acc > 2 * majority
