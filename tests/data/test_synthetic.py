"""Synthetic dataset generation: shapes, ranges, structure."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.data.datasets import get_spec, load_dataset, load_pairwise, table2_rows
from repro.data.spec import DatasetSpec
from repro.data.synthetic import SyntheticWorld, generate_dataset, generate_pairwise
from repro.data.vocab import id_frequencies


class TestDatasetShapes:
    def test_example_matrix_shapes(self, tiny_dataset, tiny_spec):
        assert tiny_dataset.x_train.shape == (tiny_spec.num_train, tiny_spec.input_length)
        assert tiny_dataset.x_eval.shape == (tiny_spec.num_eval, tiny_spec.input_length)
        assert tiny_dataset.y_train.shape == (tiny_spec.num_train,)

    def test_id_ranges(self, tiny_dataset, tiny_spec):
        assert tiny_dataset.x_train.min() >= 0
        assert tiny_dataset.x_train.max() < tiny_spec.input_vocab
        assert tiny_dataset.y_train.min() >= 0
        assert tiny_dataset.y_train.max() < tiny_spec.output_vocab

    def test_dtypes_are_int32(self, tiny_dataset):
        assert tiny_dataset.x_train.dtype == np.int32
        assert tiny_dataset.y_train.dtype == np.int32

    def test_properties(self, tiny_dataset, tiny_spec):
        assert tiny_dataset.num_classes == tiny_spec.output_vocab
        assert tiny_dataset.vocab_size == tiny_spec.input_vocab

    def test_deterministic_given_seed(self, tiny_spec):
        d1 = generate_dataset(tiny_spec, np.random.default_rng(3))
        d2 = generate_dataset(tiny_spec, np.random.default_rng(3))
        np.testing.assert_array_equal(d1.x_train, d2.x_train)
        np.testing.assert_array_equal(d1.y_train, d2.y_train)


class TestFrequencySorting:
    def test_ids_are_frequency_sorted(self, tiny_dataset, tiny_spec):
        """§5.1: low ids must be the frequent ones (strong negative rank
        correlation between id and observed count)."""
        counts = id_frequencies(tiny_dataset.x_train, tiny_spec.input_vocab)
        items = counts[1 + tiny_spec.num_countries :]
        rho = spearmanr(np.arange(items.size), items).statistic
        assert rho < -0.7

    def test_padding_present_for_short_histories(self, tiny_dataset):
        assert (tiny_dataset.x_train == 0).any()

    def test_padding_is_leading(self, tiny_dataset):
        """Histories are padded at the old end: once real ids start, no
        more padding (no mid-sequence zeros)."""
        x = tiny_dataset.x_train
        started = np.cumsum(x != 0, axis=1) > 0
        assert not ((x == 0) & started).any()


class TestCountriesAndLabels:
    def test_country_in_slot_zero(self, tiny_classification_dataset, tiny_classification_spec):
        spec = tiny_classification_spec
        first = tiny_classification_dataset.x_train[:, 0]
        assert (first >= 1).all()
        assert (first <= spec.num_countries).all()

    def test_items_do_not_use_country_ids(
        self, tiny_classification_dataset, tiny_classification_spec
    ):
        spec = tiny_classification_spec
        rest = tiny_classification_dataset.x_train[:, 1:]
        nonpad = rest[rest != 0]
        assert (nonpad > spec.num_countries).all()

    def test_genre_labels_for_newsgroup_style(self):
        spec = DatasetSpec(
            name="newsgroup-like",
            num_train=256,
            num_eval=64,
            input_vocab=400,
            output_vocab=10,
            task="classification",
            label_source="genre",
            num_genres=10,
            input_length=32,
        )
        ds = generate_dataset(spec, np.random.default_rng(0))
        assert set(np.unique(ds.y_train)) <= set(range(10))
        # topic documents have no padding — full 32-word docs
        assert (ds.x_train != 0).all()

    def test_labels_are_learnable_signal(self, tiny_dataset):
        """Label must correlate with input genre mix: a trivial check that
        examples are not pure noise — the most popular label is far from
        covering everything."""
        y = tiny_dataset.y_train
        top_share = np.bincount(y).max() / y.size
        assert top_share < 0.9


class TestPairwise:
    def test_pos_neg_always_differ(self, tiny_spec):
        pw = generate_pairwise(tiny_spec, np.random.default_rng(1))
        assert (pw.pos_train != pw.neg_train).all()
        assert (pw.pos_eval != pw.neg_eval).all()

    def test_ranges(self, tiny_spec):
        pw = generate_pairwise(tiny_spec, np.random.default_rng(1))
        for arr in (pw.pos_train, pw.neg_train):
            assert arr.min() >= 0 and arr.max() < tiny_spec.output_vocab


class TestPresets:
    def test_all_presets_generate(self):
        for name in ("newsgroup", "movielens", "millionsongs", "google_local",
                     "netflix", "games", "arcade"):
            spec = get_spec(name, scale=0.002)
            ds = load_dataset(name, scale=0.002, rng=0)
            assert ds.x_train.shape[1] == 128
            assert ds.y_train.max() < spec.output_vocab

    def test_table2_statistics_at_full_scale(self):
        rows = {r[0]: r for r in table2_rows(1.0)}
        assert rows["newsgroup"][1:] == (11_300, 7_500, 105_000, 20)
        assert rows["games"][1:] == (78_000_000, 65_000, 480_000, 119_000)
        assert rows["arcade"][4] == 145

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_spec("imagenet")

    def test_pairwise_preset(self):
        pw = load_pairwise("arcade", scale=0.002, rng=0)
        assert pw.x_train.shape[1] == 128


class TestWorld:
    def test_every_genre_nonempty(self, tiny_spec):
        world = SyntheticWorld.build(tiny_spec, np.random.default_rng(0))
        assert all(m.size > 0 for m in world.genre_members)

    def test_rank_mapping_is_permutation(self, tiny_spec):
        world = SyntheticWorld.build(tiny_spec, np.random.default_rng(0))
        assert np.array_equal(np.sort(world.rank_to_public), np.arange(tiny_spec.num_items))

    def test_label_mapping_is_permutation(self, tiny_spec):
        world = SyntheticWorld.build(tiny_spec, np.random.default_rng(0))
        assert np.array_equal(
            np.sort(world.catalog_rank_to_label), np.arange(tiny_spec.output_vocab)
        )

    def test_country_sampler_absent_without_countries(self, tiny_spec, rng):
        world = SyntheticWorld.build(tiny_spec, np.random.default_rng(0))
        with pytest.raises(ValueError):
            world.sample_country_ids(rng, 5)
