"""Table 2 preset integrity: every dataset matches the paper's statistics."""

import pytest

from repro.data.datasets import (
    CLASSIFICATION_DATASETS,
    DATASETS,
    RANKING_DATASETS,
    get_spec,
    table2_rows,
)

#: (train, eval, input vocab, output vocab) exactly as printed in Table 2.
TABLE2 = {
    "newsgroup": (11_300, 7_500, 105_000, 20),
    "movielens": (655_000, 72_800, 10_000, 5_000),
    "millionsongs": (4_500_000, 500_000, 50_000, 20_000),
    "google_local": (246_000, 27_000, 200_000, 20_000),
    "netflix": (2_100_000, 235_000, 17_000, 16_000),
    "games": (78_000_000, 65_000, 480_000, 119_000),
    "arcade": (7_500_000, 65_000, 300_000, 145),
}


class TestTable2Presets:
    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_full_scale_matches_paper(self, name):
        spec = get_spec(name, 1.0)
        assert (spec.num_train, spec.num_eval, spec.input_vocab, spec.output_vocab) == TABLE2[name]

    def test_all_seven_datasets_present(self):
        assert set(DATASETS) == set(TABLE2)

    def test_experiment_groupings_cover_everything(self):
        assert set(CLASSIFICATION_DATASETS) == {"newsgroup", "games", "arcade"}
        assert set(RANKING_DATASETS) == {
            "movielens", "millionsongs", "google_local", "netflix",
        }

    def test_table2_rows_helper_matches(self):
        rows = {name: rest for name, *rest in table2_rows(1.0)}
        for name, expected in TABLE2.items():
            assert tuple(rows[name]) == expected

    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_input_window_is_128(self, name):
        assert get_spec(name, 1.0).input_length == 128

    def test_games_and_arcade_share_country_vocab_scheme(self):
        for name in ("games", "arcade"):
            spec = get_spec(name, 1.0)
            assert spec.num_countries > 0
            assert spec.task == "classification"

    def test_google_local_is_flattest(self):
        exps = {name: get_spec(name, 1.0).input_exponent for name in TABLE2}
        assert exps["google_local"] == min(exps.values())

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_spec("criteo")
