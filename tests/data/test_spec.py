"""DatasetSpec validation and scaling."""

import pytest

from repro.data.spec import DatasetSpec


def _spec(**kw):
    base = dict(
        name="t",
        num_train=1000,
        num_eval=100,
        input_vocab=5000,
        output_vocab=1000,
        task="ranking",
    )
    base.update(kw)
    return DatasetSpec(**base)


class TestValidation:
    def test_valid_spec_builds(self):
        assert _spec().num_items == 4999

    def test_counts_positive(self):
        with pytest.raises(ValueError):
            _spec(num_train=0)

    def test_vocab_minimum(self):
        with pytest.raises(ValueError):
            _spec(input_vocab=1)

    def test_task_names(self):
        with pytest.raises(ValueError):
            _spec(task="regression")

    def test_popularity_mix_range(self):
        with pytest.raises(ValueError):
            _spec(popularity_mix=1.5)

    def test_countries_must_fit(self):
        with pytest.raises(ValueError):
            _spec(num_countries=5000)

    def test_genre_labels_need_matching_counts(self):
        with pytest.raises(ValueError):
            _spec(task="classification", label_source="genre", num_genres=5, output_vocab=20)

    def test_num_items_excludes_countries_and_padding(self):
        s = _spec(num_countries=100)
        assert s.num_items == 5000 - 100 - 1


class TestScaling:
    def test_scale_one_is_identity(self):
        s = _spec()
        assert s.scaled(1.0) is s

    def test_counts_shrink_proportionally(self):
        s = _spec(num_train=100_000).scaled(0.01)
        assert s.num_train == 1000

    def test_floors_applied(self):
        s = _spec().scaled(1e-6)
        assert s.num_train >= 512
        assert s.input_vocab >= 256

    def test_small_output_vocab_is_structural(self):
        s = _spec(output_vocab=145).scaled(0.01)
        assert s.output_vocab == 145  # Arcade's catalog survives scaling

    def test_large_output_vocab_scales(self):
        s = _spec(output_vocab=119_000, input_vocab=480_000).scaled(0.01)
        assert s.output_vocab == 1190

    def test_output_fits_in_item_space(self):
        s = _spec(input_vocab=100_000, output_vocab=90_000).scaled(0.003)
        assert s.output_vocab < s.input_vocab - s.num_countries - 1

    def test_skew_and_window_preserved(self):
        s = _spec(input_exponent=0.77).scaled(0.01)
        assert s.input_exponent == 0.77
        assert s.input_length == 128

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            _spec().scaled(0.0)

    def test_countries_keep_minimum(self):
        s = _spec(num_countries=200).scaled(0.01)
        assert s.num_countries >= 8
