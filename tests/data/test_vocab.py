"""Frequency-sorted vocabulary utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.vocab import (
    apply_mapping,
    frequency_sorted_mapping,
    id_frequencies,
    random_id_mapping,
    sortedness_violation,
)


class TestFrequencies:
    def test_counts(self):
        counts = id_frequencies(np.array([0, 1, 1, 3]), 5)
        np.testing.assert_array_equal(counts, [1, 2, 0, 1, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            id_frequencies(np.array([5]), 5)


class TestFrequencyMapping:
    def test_most_frequent_gets_id_one(self):
        counts = np.array([100, 1, 50, 7])  # id 0 is padding
        mapping = frequency_sorted_mapping(counts)
        assert mapping[0] == 0  # padding pinned
        assert mapping[2] == 1  # most frequent non-padding
        assert mapping[3] == 2
        assert mapping[1] == 3

    def test_mapping_is_permutation(self):
        counts = np.array([0, 5, 3, 3, 9, 1])
        mapping = frequency_sorted_mapping(counts)
        np.testing.assert_array_equal(np.sort(mapping), np.arange(6))

    def test_remapped_stream_is_sorted(self, rng):
        from repro.data.zipf import ZipfSampler

        ids = ZipfSampler(50, 1.0).sample(rng, 20_000) + 1
        shuffled = rng.permutation(51)[ids]  # destroy sortedness
        counts = id_frequencies(shuffled, 51)
        mapping = frequency_sorted_mapping(counts)
        new_counts = id_frequencies(apply_mapping(shuffled, mapping), 51)
        assert (np.diff(new_counts[1:]) <= 0).all()

    def test_no_padding_variant(self):
        mapping = frequency_sorted_mapping(np.array([1, 9, 5]), reserve_padding=False)
        np.testing.assert_array_equal(mapping, [2, 0, 1])


class TestRandomMapping:
    def test_is_permutation_preserving_padding(self, rng):
        mapping = random_id_mapping(100, rng)
        assert mapping[0] == 0
        np.testing.assert_array_equal(np.sort(mapping), np.arange(100))

    def test_deterministic_by_seed(self):
        m1 = random_id_mapping(50, 7)
        m2 = random_id_mapping(50, 7)
        np.testing.assert_array_equal(m1, m2)


class TestSortednessViolation:
    def test_sorted_counts_score_zero(self):
        assert sortedness_violation(np.array([0, 9, 5, 3, 1])) == 0.0

    def test_reversed_counts_score_one(self):
        assert sortedness_violation(np.array([0, 1, 3, 5, 9])) == 1.0

    def test_short_input(self):
        assert sortedness_violation(np.array([0, 5])) == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=2, max_size=50))
def test_frequency_mapping_always_permutation(counts):
    mapping = frequency_sorted_mapping(np.asarray(counts))
    np.testing.assert_array_equal(np.sort(mapping), np.arange(len(counts)))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=2, max_size=50))
def test_frequency_mapping_sorts_counts(counts):
    counts = np.asarray(counts)
    mapping = frequency_sorted_mapping(counts, reserve_padding=False)
    inverse = np.empty_like(mapping)
    inverse[mapping] = np.arange(mapping.size)
    sorted_counts = counts[inverse]
    assert (np.diff(sorted_counts) <= 0).all()
