"""Power-law sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.zipf import ZipfSampler, empirical_exponent, zipf_probabilities


class TestProbabilities:
    def test_sums_to_one(self):
        p = zipf_probabilities(1000, 1.1)
        np.testing.assert_allclose(p.sum(), 1.0, rtol=1e-9)

    def test_monotone_decreasing(self):
        p = zipf_probabilities(100, 0.8)
        assert (np.diff(p) <= 0).all()

    def test_alpha_zero_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_higher_alpha_more_head_mass(self):
        lo = zipf_probabilities(1000, 0.5)
        hi = zipf_probabilities(1000, 1.5)
        assert hi[:10].sum() > lo[:10].sum()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)


class TestSampler:
    def test_bounds(self, rng):
        s = ZipfSampler(50, 1.0)
        draws = s.sample(rng, 10_000)
        assert draws.min() >= 0 and draws.max() < 50

    def test_shape(self, rng):
        assert ZipfSampler(10, 1.0).sample(rng, (3, 4)).shape == (3, 4)

    def test_frequencies_match_pmf(self):
        s = ZipfSampler(20, 1.2)
        draws = s.sample(np.random.default_rng(0), 200_000)
        observed = np.bincount(draws, minlength=20) / 200_000
        np.testing.assert_allclose(observed, s.probabilities(), atol=0.01)

    def test_deterministic_given_seed(self):
        s = ZipfSampler(100, 1.0)
        a = s.sample(np.random.default_rng(5), 50)
        b = s.sample(np.random.default_rng(5), 50)
        np.testing.assert_array_equal(a, b)


class TestExponentFit:
    def test_recovers_exponent_roughly(self):
        s = ZipfSampler(200, 1.1)
        draws = s.sample(np.random.default_rng(0), 500_000)
        counts = np.bincount(draws, minlength=200)
        fit = empirical_exponent(counts)
        assert 0.9 < fit < 1.3

    def test_uniform_fits_near_zero(self, rng):
        counts = np.full(100, 1000) + rng.integers(-20, 20, 100)
        assert abs(empirical_exponent(counts)) < 0.1

    def test_needs_enough_counts(self):
        with pytest.raises(ValueError):
            empirical_exponent(np.array([5, 0, 0]))


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 500), st.floats(0, 3, allow_nan=False))
def test_pmf_valid_for_any_params(n, alpha):
    p = zipf_probabilities(n, alpha)
    assert (p >= 0).all()
    np.testing.assert_allclose(p.sum(), 1.0, rtol=1e-6)
