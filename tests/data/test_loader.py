"""Batch iteration."""

import numpy as np
import pytest

from repro.data.loader import iterate_batches, num_batches


class TestIteration:
    def test_covers_every_example_once(self, rng):
        x = np.arange(10)
        seen = np.concatenate([b[0] for b in iterate_batches((x,), 3, rng=rng)])
        np.testing.assert_array_equal(np.sort(seen), x)

    def test_aligned_arrays_stay_aligned(self, rng):
        x = np.arange(20)
        y = np.arange(20) * 10
        for bx, by in iterate_batches((x, y), 4, rng=rng):
            np.testing.assert_array_equal(by, bx * 10)

    def test_drop_last(self):
        batches = list(iterate_batches((np.arange(10),), 3, shuffle=False, drop_last=True))
        assert len(batches) == 3
        assert all(len(b[0]) == 3 for b in batches)

    def test_keep_last(self):
        batches = list(iterate_batches((np.arange(10),), 3, shuffle=False))
        assert len(batches) == 4
        assert len(batches[-1][0]) == 1

    def test_no_shuffle_preserves_order(self):
        batches = list(iterate_batches((np.arange(6),), 2, shuffle=False))
        np.testing.assert_array_equal(batches[0][0], [0, 1])

    def test_shuffle_deterministic_by_rng(self):
        a = [b[0] for b in iterate_batches((np.arange(20),), 5, rng=3)]
        b = [b[0] for b in iterate_batches((np.arange(20),), 5, rng=3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            list(iterate_batches((np.arange(3), np.arange(4)), 2))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_batches((np.arange(3),), 0))

    def test_empty_arrays_rejected(self):
        with pytest.raises(ValueError):
            list(iterate_batches((), 2))


class TestNumBatches:
    def test_exact_division(self):
        assert num_batches(12, 4) == 3

    def test_rounding_up(self):
        assert num_batches(13, 4) == 4
        assert num_batches(13, 4, drop_last=True) == 3
