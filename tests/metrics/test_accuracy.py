"""Accuracy metrics."""

import numpy as np
import pytest

from repro.metrics.accuracy import accuracy, relative_loss_percent, top_k_accuracy


class TestAccuracy:
    def test_perfect(self):
        scores = np.eye(3)
        assert accuracy(scores, np.arange(3)) == 1.0

    def test_partial(self):
        scores = np.array([[0.9, 0.1], [0.9, 0.1]])
        assert accuracy(scores, np.array([0, 1])) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))


class TestTopK:
    def test_k_equals_c_is_always_one(self, rng):
        scores = rng.standard_normal((10, 4))
        assert top_k_accuracy(scores, rng.integers(0, 4, 10), 4) == 1.0

    def test_top1_matches_accuracy(self, rng):
        scores = rng.standard_normal((50, 6))
        labels = rng.integers(0, 6, 50)
        assert top_k_accuracy(scores, labels, 1) == accuracy(scores, labels)

    def test_monotone_in_k(self, rng):
        scores = rng.standard_normal((100, 10))
        labels = rng.integers(0, 10, 100)
        accs = [top_k_accuracy(scores, labels, k) for k in (1, 3, 5, 10)]
        assert accs == sorted(accs)

    def test_k_bounds(self, rng):
        scores = rng.standard_normal((5, 3))
        with pytest.raises(ValueError):
            top_k_accuracy(scores, np.zeros(5, dtype=int), 0)
        with pytest.raises(ValueError):
            top_k_accuracy(scores, np.zeros(5, dtype=int), 4)


class TestRelativeLoss:
    def test_sign_convention(self):
        assert relative_loss_percent(0.8, 0.4) == pytest.approx(50.0)
        assert relative_loss_percent(0.8, 0.9) == pytest.approx(-12.5)

    def test_zero_loss(self):
        assert relative_loss_percent(0.5, 0.5) == 0.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_loss_percent(0.0, 0.5)
