"""MRR and hit-rate@k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ranking_extra import hit_rate, mrr


def _scores(n=4, c=6, seed=0):
    return np.random.default_rng(seed).normal(size=(n, c))


class TestMRR:
    def test_perfect_ranking_is_one(self):
        scores = np.array([[0.1, 0.9], [0.8, 0.2]])
        labels = np.array([1, 0])
        assert mrr(scores, labels) == pytest.approx(1.0)

    def test_rank_two_gives_half(self):
        scores = np.array([[0.9, 0.5, 0.1]])
        assert mrr(scores, np.array([1])) == pytest.approx(0.5)

    def test_cutoff_zeroes_deep_ranks(self):
        scores = np.array([[0.9, 0.5, 0.1]])
        assert mrr(scores, np.array([2]), k=2) == 0.0
        assert mrr(scores, np.array([2]), k=3) == pytest.approx(1 / 3)

    def test_ties_resolved_pessimistically(self):
        scores = np.zeros((1, 5))  # constant scorer gets no credit
        assert mrr(scores, np.array([0])) == pytest.approx(1 / 5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            mrr(_scores(), np.zeros(4, dtype=int), k=0)

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=10)
    def test_bounded_between_zero_and_one(self, seed):
        scores = _scores(seed=seed)
        labels = np.random.default_rng(seed).integers(0, 6, size=4)
        assert 0.0 <= mrr(scores, labels) <= 1.0


class TestHitRate:
    def test_all_hits_at_full_cutoff(self):
        scores = _scores()
        labels = np.zeros(4, dtype=int)
        assert hit_rate(scores, labels, k=6) == 1.0

    def test_top1_equals_accuracy(self):
        scores = _scores()
        labels = scores.argmax(axis=1)
        assert hit_rate(scores, labels, k=1) == 1.0

    def test_miss_counts_zero(self):
        scores = np.array([[0.9, 0.5, 0.1]])
        assert hit_rate(scores, np.array([2]), k=1) == 0.0

    def test_monotone_in_k(self):
        scores = _scores(n=32, c=10, seed=3)
        labels = np.random.default_rng(3).integers(0, 10, size=32)
        rates = [hit_rate(scores, labels, k=k) for k in (1, 3, 5, 10)]
        assert rates == sorted(rates)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            hit_rate(_scores(), np.zeros(4, dtype=int), k=0)


class TestEvaluatorIntegration:
    def test_evaluate_ranking_reports_all_metrics(self, tiny_dataset):
        from repro.metrics.evaluator import evaluate_ranking
        from repro.models.builder import build_pointwise_ranker

        spec = tiny_dataset.spec
        model = build_pointwise_ranker(
            "full", spec.input_vocab, spec.output_vocab,
            input_length=spec.input_length, embedding_dim=8, rng=0,
        )
        out = evaluate_ranking(model, tiny_dataset.x_eval, tiny_dataset.y_eval, k=10)
        assert {"ndcg", "ndcg_full", "mrr", "hit_rate@10"} <= set(out)
        assert all(0.0 <= v <= 1.0 for v in out.values())
        # nDCG upper-bounds MRR for single-relevant ranking (log discount
        # decays slower than 1/rank).
        assert out["ndcg_full"] >= out["mrr"] - 1e-9
