"""nDCG (Valizadegan et al. 2009) — values and ranking invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ndcg import dcg, label_ranks, ndcg, ndcg_single_relevant


class TestDCG:
    def test_known_value(self):
        # rel [3,2,0] → 3/log2(2) + 2/log2(3) + 0
        expected = 3.0 + 2.0 / np.log2(3)
        assert dcg(np.array([3.0, 2.0, 0.0])) == pytest.approx(expected)

    def test_cutoff(self):
        rel = np.array([1.0, 1.0, 1.0])
        assert dcg(rel, k=1) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            dcg(np.ones((2, 2)))
        with pytest.raises(ValueError):
            dcg(np.ones(3), k=0)


class TestGradedNDCG:
    def test_perfect_ranking_is_one(self, rng):
        rel = rng.random(10)
        assert ndcg(rel, rel) == pytest.approx(1.0)

    def test_all_zero_relevance_is_one(self, rng):
        assert ndcg(rng.random(5), np.zeros(5)) == 1.0

    def test_swap_hurts(self, rng):
        rel = np.array([3.0, 2.0, 1.0, 0.0])
        good = ndcg(np.array([4.0, 3.0, 2.0, 1.0]), rel)
        bad = ndcg(np.array([1.0, 2.0, 3.0, 4.0]), rel)
        assert good > bad

    def test_bounded(self, rng):
        for _ in range(20):
            scores = rng.standard_normal(8)
            rel = rng.random(8)
            v = ndcg(scores, rel)
            assert 0.0 <= v <= 1.0 + 1e-9


class TestLabelRanks:
    def test_best_score_ranks_first(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        assert label_ranks(scores, np.array([1]))[0] == 1

    def test_worst_score_ranks_last(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        assert label_ranks(scores, np.array([0]))[0] == 3

    def test_ties_are_pessimistic(self):
        scores = np.zeros((1, 5))  # constant scorer gets no credit
        assert label_ranks(scores, np.array([2]))[0] == 5

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            label_ranks(np.zeros(3), np.zeros(3, dtype=int))


class TestSingleRelevant:
    def test_top_ranked_label_scores_one(self):
        scores = np.array([[5.0, 1.0], [0.0, 9.0]])
        assert ndcg_single_relevant(scores, np.array([0, 1])) == pytest.approx(1.0)

    def test_rank_two_value(self):
        scores = np.array([[1.0, 2.0]])
        assert ndcg_single_relevant(scores, np.array([0])) == pytest.approx(1 / np.log2(3))

    def test_cutoff_zeroes_deep_labels(self):
        scores = np.array([[5.0, 4.0, 3.0, 0.0]])
        assert ndcg_single_relevant(scores, np.array([3]), k=2) == 0.0

    def test_agrees_with_graded_ndcg(self, rng):
        scores = rng.standard_normal((20, 15))
        labels = rng.integers(0, 15, 20)
        fast = ndcg_single_relevant(scores, labels)
        slow = np.mean(
            [
                ndcg(scores[i], np.eye(15)[labels[i]])
                for i in range(20)
            ]
        )
        np.testing.assert_allclose(fast, slow, rtol=1e-9)

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            ndcg_single_relevant(rng.standard_normal((2, 3)), np.array([0, 1]), k=0)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 30), st.integers(0, 10**6))
def test_score_monotonicity_property(c, seed):
    """Raising the label's score never lowers nDCG."""
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal((1, c))
    label = int(rng.integers(0, c))
    before = ndcg_single_relevant(scores, np.array([label]))
    scores[0, label] += abs(rng.standard_normal()) + 0.1
    after = ndcg_single_relevant(scores, np.array([label]))
    assert after >= before - 1e-12


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 20), st.integers(0, 10**6))
def test_permutation_invariance_property(c, seed):
    """Relabeling classes consistently leaves nDCG unchanged."""
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal((5, c))
    labels = rng.integers(0, c, 5)
    perm = rng.permutation(c)
    v1 = ndcg_single_relevant(scores, labels)
    v2 = ndcg_single_relevant(scores[:, np.argsort(perm)], perm[labels])
    np.testing.assert_allclose(v1, v2, rtol=1e-9)
