"""Repository-root pytest configuration.

Makes the src-layout package importable from a bare checkout, so
``pytest tests/`` and ``pytest benchmarks/`` work even in offline
environments where an editable install is not possible (PEP 660 editable
builds need the ``wheel`` package, which an air-gapped machine may lack —
``python setup.py develop`` is the install fallback there).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
