"""`repro.sweep` — fleet orchestration for compression grid sweeps.

One declarative :class:`SweepSpec` (base pipeline + grid axes + device
byte budget) fans out across worker processes, shares one dataset
materialization per recipe, records progress in a crash-safe ledger, and
consolidates into a deterministic accuracy-per-byte :class:`SweepReport`
naming the artifact to ship.  ``repro sweep run/resume/report`` is the
CLI surface.
"""

from repro.sweep.ledger import SweepLedger
from repro.sweep.report import SweepReport, build_report
from repro.sweep.runner import (
    PointResult,
    SweepIncompleteError,
    device_bytes_for,
    execute_point,
    resume,
    run,
)
from repro.sweep.spec import SweepError, SweepSpec, point_id_for

__all__ = [
    "PointResult",
    "SweepError",
    "SweepIncompleteError",
    "SweepLedger",
    "SweepReport",
    "SweepSpec",
    "build_report",
    "device_bytes_for",
    "execute_point",
    "point_id_for",
    "resume",
    "run",
]
