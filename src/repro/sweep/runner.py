"""Sweep execution: one-point front door plus the multi-process fleet.

:func:`execute_point` is the single way any harness trains one grid point
— the experiment runner, the serial sweep, and every pool worker call it,
so a point's result can never depend on *who* ran it.  Determinism per
point rests on three legs:

1. the dataset comes from the shared :class:`~repro.data.cache.
   DatasetCache` (materialized once by the parent, loaded from the same
   bytes by every consumer);
2. distillation teachers are pre-trained once by the parent and their
   logits shipped to workers as ``.npz`` files;
3. ``TrainSession`` itself is deterministic in its spec's seed.

Together these make an N-point sweep across W workers **bit-identical**,
point for point, to the same sweep run serially — the property the
resume test and the serial-vs-parallel test pin.

Crash safety: a point's ledger record lands atomically only after the
point fully finished, so killing a worker (or the whole parent) mid-grid
loses at most the in-flight points' compute.  :func:`resume` re-runs
exactly the unfinished points.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.sizing import bytes_for_params, embedding_param_count
from repro.data.cache import DatasetCache
from repro.pipeline.spec import PipelineSpec
from repro.sweep.ledger import SweepLedger
from repro.sweep.spec import SweepError, SweepSpec
from repro.utils.logging import log

__all__ = [
    "PointResult",
    "SweepIncompleteError",
    "device_bytes_for",
    "execute_point",
    "resume",
    "run",
]

_DATASETS_DIR = "datasets"
_TEACHERS_DIR = "teachers"
_ARTIFACTS_DIR = "artifacts"


class SweepIncompleteError(SweepError):
    """The sweep stopped with unfinished points (crash or killed worker)."""


@dataclass(frozen=True)
class PointResult:
    """One fully-executed grid point, ready for the ledger and report."""

    point_id: str
    spec: dict  # the point's PipelineSpec manifest
    metric_name: str
    metric: float
    metrics: dict
    params: int
    embedding_params: int
    device_bytes: int
    seconds: float
    artifact: str | None = None  # sweep-dir-relative artifact path
    artifact_sha: str | None = None

    def to_record(self) -> dict:
        return asdict(self)


def device_bytes_for(spec: PipelineSpec, input_vocab: int, total_params: int) -> int:
    """Analytic on-device size of the point's exported artifact.

    The embedding table ships at the spec's export width
    (``spec.bits``); everything else (towers, biases) stays FP32 — the
    same split the quantized artifact writer applies.
    """
    emb = embedding_param_count(
        spec.technique, input_vocab, spec.embedding_dim, **spec.hyper
    )
    if emb > total_params:
        raise ValueError(
            f"embedding params {emb} exceed total {total_params} — "
            f"sizing formula and model disagree"
        )
    return bytes_for_params(emb, spec.bits) + bytes_for_params(total_params - emb, 32)


def _artifact_fingerprint(path: str) -> str:
    """Content hash of an exported artifact's manifest.

    The manifest carries a sha256 per payload and no timestamps, so equal
    fingerprints mean byte-identical tensors — the cross-run identity the
    serial-vs-parallel test checks without hauling arrays around.
    """
    from repro.artifact.container import read_manifest

    manifest, _ = read_manifest(path)
    blob = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def execute_point(
    spec: PipelineSpec,
    data,
    teacher_logits: np.ndarray | None = None,
    artifact_path: str | None = None,
    point_id: str = "",
) -> PointResult:
    """Train, evaluate and (optionally) export one grid point."""
    from repro.pipeline.session import TrainSession

    start = time.perf_counter()
    session = TrainSession(spec, data=data, teacher_logits=teacher_logits)
    session.fit()
    metrics = session.evaluate()
    artifact_sha = None
    if artifact_path is not None:
        session.export(artifact_path)
        artifact_sha = _artifact_fingerprint(artifact_path)
    total_params = session.model.num_parameters()
    return PointResult(
        point_id=point_id,
        spec=spec.to_manifest(),
        metric_name=session.metric_name,
        metric=float(metrics[session.metric_name]),
        metrics={k: float(v) for k, v in metrics.items()},
        params=int(total_params),
        embedding_params=int(
            embedding_param_count(
                spec.technique, data.spec.input_vocab, spec.embedding_dim, **spec.hyper
            )
        ),
        device_bytes=device_bytes_for(spec, data.spec.input_vocab, total_params),
        seconds=time.perf_counter() - start,
        artifact=None if artifact_path is None else os.path.basename(
            os.path.dirname(artifact_path)
        ) + "/" + os.path.basename(artifact_path),
        artifact_sha=artifact_sha,
    )


# -- fleet orchestration ---------------------------------------------------------


def _point_data_recipe(spec: PipelineSpec):
    """``(data_spec, pairwise, seed)`` — the cache key triple of a point."""
    data_spec = spec.data_spec()
    pairwise = spec.resolve_architecture(data_spec) == "ranknet"
    return data_spec, pairwise, spec.seed


def _teacher_key(teacher_spec: PipelineSpec) -> str:
    blob = json.dumps(teacher_spec.to_manifest(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def _prepare_teachers(root: str, pending: list, cache: DatasetCache) -> dict[str, str]:
    """Pre-train each distinct inline teacher once; returns id → logits path.

    Points that name a frozen ``teacher_path`` artifact are skipped (the
    session loads it directly); points sharing a teacher spec share one
    training run and one ``.npz``.
    """
    from repro.metrics.evaluator import predict_scores
    from repro.pipeline.session import TrainSession
    from repro.train.distill import teacher_spec_for

    teacher_dir = os.path.join(root, _TEACHERS_DIR)
    paths: dict[str, str] = {}
    trained: dict[str, str] = {}
    for point_id, spec in pending:
        if spec.distill is None or spec.distill.teacher_path is not None:
            continue
        teacher_spec = teacher_spec_for(spec)
        key = _teacher_key(teacher_spec)
        if key not in trained:
            path = os.path.join(teacher_dir, f"{key}.npz")
            if not os.path.exists(path):
                os.makedirs(teacher_dir, exist_ok=True)
                log(f"[sweep] training teacher {key} ({teacher_spec.technique})")
                data = cache.load(*_point_data_recipe(teacher_spec))
                teacher = TrainSession(teacher_spec, data=data)
                teacher.fit()
                logits = predict_scores(teacher.model, data.x_train)
                tmp = f"{path}.tmp.{os.getpid()}"
                try:
                    with open(tmp, "wb") as fh:
                        np.savez(fh, logits=logits)
                    os.replace(tmp, path)
                finally:
                    if os.path.exists(tmp):
                        os.remove(tmp)
            trained[key] = path
        paths[point_id] = trained[key]
    return paths


def _run_task(root: str, task: dict, fail_points: dict | None) -> None:
    """Execute one point inside whichever process owns it."""
    point_id = task["point_id"]
    if fail_points and fail_points.get(point_id) == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    spec = PipelineSpec.from_manifest(task["spec"])
    cache = DatasetCache(os.path.join(root, _DATASETS_DIR))
    data = cache.load(*_point_data_recipe(spec))
    teacher_logits = None
    if task["teacher"] is not None:
        with np.load(task["teacher"]) as archive:
            teacher_logits = archive["logits"]
    artifact_path = os.path.join(root, _ARTIFACTS_DIR, point_id)
    os.makedirs(os.path.dirname(artifact_path), exist_ok=True)
    result = execute_point(
        spec, data,
        teacher_logits=teacher_logits,
        artifact_path=artifact_path,
        point_id=point_id,
    )
    SweepLedger.open(root).record(point_id, result.to_record())
    log(
        f"[sweep] {point_id} {spec.technique}: {result.metric_name}="
        f"{result.metric:.4f} bytes={result.device_bytes}"
    )


def _worker_main(root: str, queue, fail_points: dict | None) -> None:
    # Blocking gets until the sentinel: a non-blocking poll could race the
    # parent's queue feeder thread and see an "empty" queue that is merely
    # still being filled.
    while True:
        task = queue.get()
        if task is None:
            return
        _run_task(root, task, fail_points)


def _drive(ledger: SweepLedger, workers: int, fail_points: dict | None) -> dict:
    """Complete every unfinished point of ``ledger``'s sweep; return records."""
    if workers < 0:
        raise SweepError(f"workers must be >= 0, got {workers}")
    root = ledger.root
    points = ledger.spec.expand()
    done = ledger.completed_ids()
    pending = [(pid, spec) for pid, spec in points if pid not in done]
    log(
        f"[sweep] {len(points)} points ({len(points) - len(pending)} already "
        f"complete), {workers or 'serial'} workers"
    )

    if pending:
        # Parent-side preparation: every dataset and teacher materializes
        # exactly once, before any worker exists.
        cache = DatasetCache(os.path.join(root, _DATASETS_DIR))
        for _, spec in pending:
            cache.materialize(*_point_data_recipe(spec))
        teachers = _prepare_teachers(root, pending, cache)
        tasks = [
            {
                "point_id": pid,
                "spec": spec.to_manifest(),
                "teacher": teachers.get(pid),
            }
            for pid, spec in pending
        ]
        if workers == 0:
            for task in tasks:
                _run_task(root, task, fail_points)
        else:
            import multiprocessing as mp

            ctx = mp.get_context(
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            pool_size = min(workers, len(tasks))
            queue = ctx.Queue()
            for task in tasks:
                queue.put(task)
            for _ in range(pool_size):
                queue.put(None)  # one stop sentinel per worker
            procs = [
                ctx.Process(
                    target=_worker_main,
                    args=(root, queue, fail_points),
                    daemon=True,
                )
                for _ in range(pool_size)
            ]
            for p in procs:
                p.start()
            for p in procs:
                p.join()

    records = ledger.records()
    missing = [pid for pid, _ in points if pid not in records]
    if missing:
        raise SweepIncompleteError(
            f"{len(missing)} of {len(points)} points unfinished "
            f"({', '.join(missing[:4])}{'…' if len(missing) > 4 else ''}) — "
            f"run `repro sweep resume {root}` to complete them"
        )
    return records


def run(
    spec: SweepSpec,
    out_dir: str,
    workers: int = 1,
    fail_points: dict | None = None,
) -> dict:
    """Start a fresh sweep at ``out_dir``; returns all point records.

    ``fail_points`` (test-only, needs ``workers >= 1``) maps point ids to
    fault injections — ``"kill"`` SIGKILLs the worker that picks the point
    up, exercising the crash/resume path.
    """
    if fail_points and workers == 0:
        raise SweepError("fail_points injection requires worker processes")
    return _drive(SweepLedger.create(out_dir, spec), workers, fail_points)


def resume(out_dir: str, workers: int = 1) -> dict:
    """Finish an interrupted sweep: runs only the unrecorded points."""
    return _drive(SweepLedger.open(out_dir), workers, None)
