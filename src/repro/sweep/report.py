"""Consolidated sweep report: accuracy-per-byte ranking and the winner.

The production question the paper's Table 1 narrative asks — *which
compressed artifact should ship to the device?* — has a mechanical
answer once a sweep completes: rank every trained point by metric per
on-device byte, then name the best-metric point that fits the budget.
:func:`build_report` computes exactly that from a sweep directory's
ledger, and :meth:`SweepReport.to_json` renders it **deterministically**
(sorted keys, no wall-clock fields, no absolute paths), so two runs of
the same sweep — serial or multi-process, interrupted-and-resumed or not
— produce byte-identical report files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.sweep.ledger import SweepLedger
from repro.sweep.runner import SweepIncompleteError

__all__ = ["SweepReport", "build_report"]


@dataclass(frozen=True)
class SweepReport:
    """The ranked outcome of one completed sweep."""

    metric_name: str
    budget_bytes: int | None
    #: per-point rows, best metric-per-byte first
    rows: tuple = field(default_factory=tuple)
    #: point_id of the best-metric row within budget (None: nothing fits)
    winner: str | None = None

    def winner_row(self) -> dict | None:
        for row in self.rows:
            if row["point_id"] == self.winner:
                return row
        return None

    def to_json(self) -> str:
        """Deterministic JSON rendering (the byte-identity surface)."""
        payload = {
            "metric_name": self.metric_name,
            "budget_bytes": self.budget_bytes,
            "winner": self.winner,
            "rows": list(self.rows),
        }
        return json.dumps(payload, sort_keys=True, indent=1) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())


def _row_from_record(record: dict, budget_bytes: int | None) -> dict:
    spec = record["spec"]
    device_bytes = int(record["device_bytes"])
    return {
        "point_id": record["point_id"],
        "technique": spec["technique"],
        "hyper": dict(spec["hyper"]),
        "bits": int(spec["bits"]),
        "metric": float(record["metric"]),
        "metrics": {k: float(v) for k, v in record["metrics"].items()},
        "params": int(record["params"]),
        "embedding_params": int(record["embedding_params"]),
        "device_bytes": device_bytes,
        "metric_per_mib": float(record["metric"]) * (1 << 20) / device_bytes,
        "within_budget": budget_bytes is None or device_bytes <= budget_bytes,
        "artifact": record.get("artifact"),
        "artifact_sha": record.get("artifact_sha"),
        "distilled": spec.get("distill") is not None,
    }


def build_report(out_dir: str) -> SweepReport:
    """Rank a completed sweep at ``out_dir``; raises if points are missing."""
    ledger = SweepLedger.open(out_dir)
    points = ledger.spec.expand()
    records = ledger.records()
    missing = [pid for pid, _ in points if pid not in records]
    if missing:
        raise SweepIncompleteError(
            f"cannot report: {len(missing)} of {len(points)} points unfinished "
            f"— run `repro sweep resume {out_dir}` first"
        )
    budget = ledger.spec.budget_bytes
    metric_names = {records[pid]["metric_name"] for pid, _ in points}
    if len(metric_names) != 1:
        raise SweepIncompleteError(
            f"sweep mixes metrics {sorted(metric_names)} — points are not "
            f"comparable under one ranking"
        )
    rows = sorted(
        (_row_from_record(records[pid], budget) for pid, _ in points),
        key=lambda r: (-r["metric_per_mib"], r["device_bytes"], r["point_id"]),
    )
    eligible = [r for r in rows if r["within_budget"]]
    winner = None
    if eligible:
        winner = min(
            eligible,
            key=lambda r: (-r["metric"], r["device_bytes"], r["point_id"]),
        )["point_id"]
    return SweepReport(
        metric_name=metric_names.pop(),
        budget_bytes=budget,
        rows=tuple(rows),
        winner=winner,
    )
