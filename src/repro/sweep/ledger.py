"""Crash-safe on-disk ledger of a sweep's progress.

A sweep directory is the single source of truth for one grid run::

    <dir>/sweep.json          the SweepSpec manifest (written once, at start)
    <dir>/points/<id>.json    one completed point's result record
    <dir>/datasets/           the shared DatasetCache
    <dir>/teachers/           pre-computed distillation teacher logits
    <dir>/artifacts/<id>/     each point's exported serving artifact

A point's record file appears **only after** the point fully finished
(train → evaluate → export): it is written to a temporary sibling and
:func:`os.replace`-d into place, so a worker killed mid-point leaves no
record and a resume re-runs exactly that point.  Per-point files (rather
than one appended log) make concurrent workers trivially safe — no two
workers ever write the same path.
"""

from __future__ import annotations

import glob
import json
import os

from repro.sweep.spec import SweepError, SweepSpec

__all__ = ["SweepLedger"]

_SWEEP_JSON = "sweep.json"
_POINTS_DIR = "points"


def _write_json_atomic(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


class SweepLedger:
    """Reader/writer for one sweep directory's progress records."""

    def __init__(self, root: str, spec: SweepSpec) -> None:
        self.root = root
        self.spec = spec

    # -- lifecycle --------------------------------------------------------------

    @classmethod
    def create(cls, root: str, spec: SweepSpec) -> "SweepLedger":
        """Start a fresh sweep at ``root``; refuses to clobber an old one."""
        marker = os.path.join(root, _SWEEP_JSON)
        if os.path.exists(marker):
            raise SweepError(
                f"sweep directory {root!r} already holds a sweep — "
                f"use resume to continue it, or pick a fresh directory"
            )
        os.makedirs(os.path.join(root, _POINTS_DIR), exist_ok=True)
        _write_json_atomic(marker, spec.to_manifest())
        return cls(root, spec)

    @classmethod
    def open(cls, root: str) -> "SweepLedger":
        """Attach to an existing sweep directory."""
        marker = os.path.join(root, _SWEEP_JSON)
        if not os.path.exists(marker):
            raise SweepError(f"no sweep found at {root!r} (missing {_SWEEP_JSON})")
        with open(marker) as fh:
            spec = SweepSpec.from_manifest(json.load(fh))
        return cls(root, spec)

    # -- records ----------------------------------------------------------------

    def _point_path(self, point_id: str) -> str:
        return os.path.join(self.root, _POINTS_DIR, f"{point_id}.json")

    def record(self, point_id: str, result: dict) -> None:
        """Durably mark ``point_id`` complete (atomic, concurrent-safe)."""
        _write_json_atomic(self._point_path(point_id), result)

    def result(self, point_id: str) -> dict | None:
        path = self._point_path(point_id)
        if not os.path.exists(path):
            return None
        with open(path) as fh:
            return json.load(fh)

    def completed_ids(self) -> set[str]:
        pattern = os.path.join(glob.escape(self.root), _POINTS_DIR, "*.json")
        return {
            os.path.splitext(os.path.basename(p))[0] for p in glob.glob(pattern)
        }

    def records(self) -> dict[str, dict]:
        """All completed point records, keyed by point id."""
        out: dict[str, dict] = {}
        for point_id in sorted(self.completed_ids()):
            result = self.result(point_id)
            if result is not None:
                out[point_id] = result
        return out
