"""Declarative grid sweeps over a base :class:`PipelineSpec`.

A :class:`SweepSpec` is one *recipe for a fleet*: a fully validated base
pipeline plus either declarative grid ``axes`` (field → list of values,
expanded as a cartesian product) or explicit override ``points``.  Each
expanded point is a complete :class:`~repro.pipeline.PipelineSpec` whose
manifest hash is the point's stable identity — the same spec always gets
the same ``point_id``, which is what makes the crash-safe ledger
(:mod:`repro.sweep.ledger`) resumable and lets serial and multi-process
runs agree point-for-point.

Axis keys address nested configs with dots: ``technique`` and ``bits`` hit
the spec directly, ``hyper.num_hash_embeddings`` lands in the hyper dict,
``train.lr`` / ``distill.alpha`` are ``replace``-d into the nested config.
Values must be JSON-able — the sweep spec itself round-trips through the
ledger's ``sweep.json``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace

from repro.pipeline.spec import PipelineSpec
from repro.train.distill import DistillConfig
from repro.train.trainer import TrainConfig

__all__ = ["SweepError", "SweepSpec", "point_id_for"]

_SPEC_FIELDS = {f.name for f in fields(PipelineSpec)}
_TRAIN_FIELDS = {f.name for f in fields(TrainConfig)}
_DISTILL_FIELDS = {f.name for f in fields(DistillConfig)}


class SweepError(Exception):
    """A sweep-level configuration or orchestration failure."""


def point_id_for(spec: PipelineSpec) -> str:
    """Stable content id of one grid point (its manifest hash)."""
    blob = json.dumps(spec.to_manifest(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def _apply_overrides(base: PipelineSpec, overrides: dict) -> PipelineSpec:
    """``base`` with one point's dotted overrides applied (validated)."""
    updates: dict = {}
    hyper = None
    train_updates: dict = {}
    distill_updates: dict = {}
    for key, value in overrides.items():
        if not isinstance(key, str):
            raise SweepError(f"override keys must be strings, got {key!r}")
        if key == "hyper":
            if not isinstance(value, dict):
                raise SweepError(f"'hyper' override must be a dict, got {value!r}")
            hyper = dict(value)
        elif key.startswith("hyper."):
            if hyper is None:
                hyper = dict(base.hyper)
            hyper[key[len("hyper."):]] = value
        elif key.startswith("train."):
            name = key[len("train."):]
            if name not in _TRAIN_FIELDS:
                raise SweepError(f"unknown train field in override {key!r}")
            train_updates[name] = value
        elif key.startswith("distill."):
            name = key[len("distill."):]
            if name not in _DISTILL_FIELDS:
                raise SweepError(f"unknown distill field in override {key!r}")
            distill_updates[name] = value
        elif key in _SPEC_FIELDS:
            updates[key] = value
        else:
            raise SweepError(
                f"unknown override {key!r}; use a PipelineSpec field, "
                f"'hyper.<name>', 'train.<name>' or 'distill.<name>'"
            )
    if hyper is not None:
        updates["hyper"] = hyper
    if train_updates:
        updates["train"] = replace(base.train, **train_updates)
    if distill_updates:
        if base.distill is None:
            raise SweepError(
                "distill.* overrides need a distill config on the base spec"
            )
        updates["distill"] = replace(base.distill, **distill_updates)
    try:
        return replace(base, **updates)
    except (TypeError, ValueError) as exc:
        raise SweepError(f"invalid sweep point {overrides!r}: {exc}") from exc


@dataclass(frozen=True)
class SweepSpec:
    """A grid of pipeline runs plus the device budget they compete under.

    Parameters
    ----------
    base:
        The pipeline every point starts from.
    axes:
        Grid axes: dotted field name → list of values; points are the
        cartesian product in sorted-key order.  Mutually exclusive with
        ``points``.
    points:
        Explicit per-point override dicts (same dotted keys), for grids
        that are not a product — e.g. technique-specific hyperparameters.
    budget_bytes:
        The on-device byte budget artifacts compete under; the report's
        winner is the best metric among points whose analytic device bytes
        fit.  ``None`` = unconstrained.
    """

    base: PipelineSpec
    axes: dict = field(default_factory=dict)
    points: tuple = ()
    budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.base, PipelineSpec):
            raise SweepError(
                f"base must be a PipelineSpec, got {type(self.base).__name__}"
            )
        if not isinstance(self.axes, dict):
            raise SweepError(f"axes must be a dict, got {type(self.axes).__name__}")
        for key, values in self.axes.items():
            if not isinstance(key, str) or not key:
                raise SweepError(f"axis names must be non-empty strings, got {key!r}")
            if not isinstance(values, (list, tuple)) or not values:
                raise SweepError(f"axis {key!r} must list at least one value")
        object.__setattr__(self, "points", tuple(self.points))
        for point in self.points:
            if not isinstance(point, dict):
                raise SweepError(f"points must be override dicts, got {point!r}")
        if self.axes and self.points:
            raise SweepError("give either axes or explicit points, not both")
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise SweepError(
                f"budget_bytes must be positive or None, got {self.budget_bytes}"
            )

    def expand(self) -> list[tuple[str, PipelineSpec]]:
        """All ``(point_id, spec)`` grid points, deduped, in stable order.

        Distinct override combinations can collapse to the same pipeline
        (e.g. ``technique=full`` ignores a swept hash size); duplicates are
        dropped by content id, so every returned spec trains exactly once.
        Order is sorted by ``point_id`` — identical for every expansion of
        the same sweep, which fixes the serial execution order.
        """
        if self.axes:
            names = sorted(self.axes)
            combos = [
                dict(zip(names, values))
                for values in itertools.product(*(self.axes[n] for n in names))
            ]
        elif self.points:
            combos = [dict(p) for p in self.points]
        else:
            combos = [{}]
        seen: dict[str, PipelineSpec] = {}
        for overrides in combos:
            spec = _apply_overrides(self.base, overrides)
            seen.setdefault(point_id_for(spec), spec)
        return sorted(seen.items())

    # -- manifest round trip ----------------------------------------------------

    def to_manifest(self) -> dict:
        """Strict-JSON-able form stored in the sweep ledger."""
        return {
            "base": self.base.to_manifest(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "points": [dict(p) for p in self.points],
            "budget_bytes": self.budget_bytes,
        }

    @classmethod
    def from_manifest(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise SweepError(
                f"sweep manifest must be a dict, got {type(data).__name__}"
            )
        try:
            return cls(
                base=PipelineSpec.from_manifest(data["base"]),
                axes=dict(data.get("axes", {})),
                points=tuple(dict(p) for p in data.get("points", [])),
                budget_bytes=data.get("budget_bytes"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(f"malformed sweep manifest: {exc}") from exc
