"""Figure 4 (Appendix A.2) — accuracy vs. floating-point precision.

Paper setup: MEmCom-compressed models (the fixed-size models of A.1),
post-training ``linear`` quantization to 16/8/4/2 bits; y-axis is the
metric loss vs. the FP32 model.  Shapes to reproduce: no loss at fp16,
≈0.1% at int8 (none for MovieLens), a cliff below 8 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.quantize import SUPPORTED_BITS, quantize_module
from repro.experiments.runner import (
    ExperimentConfig,
    load_bench_dataset,
    train_point,
)
from repro.metrics.accuracy import relative_loss_percent
from repro.metrics.evaluator import evaluate_classification, evaluate_ranking
from repro.models.builder import build_classifier, build_pointwise_ranker
from repro.train.trainer import Trainer
from repro.utils.logging import log
from repro.utils.tables import format_table

__all__ = ["PrecisionPoint", "run", "render", "DEFAULT_DATASETS"]

DEFAULT_DATASETS = (
    "newsgroup",
    "movielens",
    "millionsongs",
    "google_local",
    "netflix",
    "games",
    "arcade",
)


@dataclass(frozen=True)
class PrecisionPoint:
    dataset: str
    bits: int
    metric: float
    relative_loss_pct: float


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    bits_sweep: tuple[int, ...] = SUPPORTED_BITS,
    hash_fraction: int = 16,
) -> list[PrecisionPoint]:
    """Train one MEmCom model per dataset, quantize, re-evaluate.

    ``hash_fraction`` sets the MEmCom hash size to ``vocab / fraction``
    (a mid-sweep compression point).
    """
    config = config or ExperimentConfig()
    points: list[PrecisionPoint] = []
    for name in datasets:
        data = load_bench_dataset(name, config, rng=config.seed)
        spec = data.spec
        m = max(2, spec.input_vocab // hash_fraction)
        kwargs = dict(
            vocab_size=spec.input_vocab,
            input_length=spec.input_length,
            embedding_dim=config.embedding_dim,
            dropout=config.dropout,
            rng=config.seed,
            num_hash_embeddings=m,
        )
        if spec.task == "classification":
            model = build_classifier("memcom", num_labels=spec.output_vocab, **kwargs)
            Trainer(config.train_config()).fit(model, data.x_train, data.y_train)
            evaluate = lambda mdl: evaluate_classification(mdl, data.x_eval, data.y_eval)[
                "accuracy"
            ]
        else:
            model = build_pointwise_ranker("memcom", num_items=spec.output_vocab, **kwargs)
            Trainer(config.train_config()).fit(model, data.x_train, data.y_train, task="ranking")
            evaluate = lambda mdl: evaluate_ranking(
                mdl, data.x_eval, data.y_eval, k=config.ndcg_k
            )["ndcg"]

        fp32_state = model.state_dict()
        baseline = evaluate(model)
        for bits in sorted(bits_sweep, reverse=True):
            model.load_state_dict(fp32_state)
            if bits < 32:
                quantize_module(model, bits)
            metric = evaluate(model)
            points.append(
                PrecisionPoint(
                    dataset=name,
                    bits=bits,
                    metric=metric,
                    relative_loss_pct=relative_loss_percent(baseline, metric),
                )
            )
            log(f"[fig4] {name} @{bits}bit: {metric:.4f} ({points[-1].relative_loss_pct:+.2f}%)")
        model.load_state_dict(fp32_state)
    return points


def render(points: list[PrecisionPoint]) -> str:
    datasets = sorted({p.dataset for p in points})
    bits = sorted({p.bits for p in points}, reverse=True)
    rows = []
    for name in datasets:
        row = [name]
        for b in bits:
            match = [p for p in points if p.dataset == name and p.bits == b]
            row.append(f"{match[0].relative_loss_pct:+.2f}%" if match else "-")
        rows.append(row)
    return format_table(
        ["dataset"] + [f"{b}-bit loss" for b in bits],
        rows,
        title="Figure 4 — metric loss vs. weight precision (vs. FP32)",
    )
