"""Appendix A.4 — sanity check that MEmCom produces unique embeddings.

Paper setup: one Arcade model trained with MEmCom at 40× input-embedding
compression; examine whether categories sharing an ``x_rem`` row ended up
with distinct ``x_mult`` multipliers.  The paper finds same-bucket
multiplier pairs differ by > 1e-5 in more than 99.98% of cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memcom import MEmComEmbedding
from repro.core.uniqueness import UniquenessReport, audit_uniqueness
from repro.experiments.runner import ExperimentConfig, load_bench_dataset
from repro.models.builder import build_classifier
from repro.train.trainer import Trainer
from repro.utils.logging import log

__all__ = ["A4Result", "run", "render"]


@dataclass(frozen=True)
class A4Result:
    dataset: str
    input_embedding_compression: float
    report: UniquenessReport


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "arcade",
    target_embedding_compression: float = 40.0,
    tolerance: float = 1e-5,
) -> A4Result:
    """Train MEmCom near the paper's 40× embedding compression and audit.

    The hash size is chosen so the *input embedding* compression
    ``v·e / (m·e + 2v)`` lands at the target.
    """
    config = config or ExperimentConfig()
    data = load_bench_dataset(dataset, config, rng=config.seed)
    spec = data.spec
    v, e = spec.input_vocab, config.embedding_dim
    # v·e / (m·e + 2v) = target  ⇒  m = (v·e/target − 2v) / e
    m = max(2, int((v * e / target_embedding_compression - 2 * v) / e))
    model = build_classifier(
        "memcom",
        vocab_size=v,
        num_labels=spec.output_vocab,
        input_length=spec.input_length,
        embedding_dim=e,
        dropout=config.dropout,
        rng=config.seed,
        num_hash_embeddings=m,
    )
    emb = model.embedding
    assert isinstance(emb, MEmComEmbedding)
    achieved = (v * e) / (m * e + 2 * v)
    Trainer(config.train_config()).fit(model, data.x_train, data.y_train)
    report = audit_uniqueness(emb, tolerance=tolerance)
    log(
        f"[a4] {dataset}: {achieved:.1f}x embedding compression, "
        f"{report.fraction_distinct:.6f} of same-bucket pairs distinct"
    )
    return A4Result(
        dataset=dataset, input_embedding_compression=achieved, report=report
    )


def render(result: A4Result) -> str:
    r = result.report
    return (
        f"A.4 uniqueness audit — {result.dataset} @ "
        f"{result.input_embedding_compression:.1f}x input-embedding compression\n"
        f"  same-bucket multiplier pairs:    {r.total_pairs}\n"
        f"  pairs differing > {r.tolerance:g}:       {r.distinct_pairs}\n"
        f"  fraction distinct:               {r.fraction_distinct:.6f} "
        f"(paper: > 0.9998)\n"
        f"  buckets with collisions:         {r.buckets_with_collisions} "
        f"(largest bucket: {r.largest_bucket})"
    )
