"""Extension — on-device cost beyond Table 3's batch-1 snapshot.

Two sweeps the paper gestures at but doesn't run:

1. **Batch scaling.** §3's complexity analysis says the table approach scales
   as ``O(b·e)`` per batch while the matrix (one-hot) approach scales as
   ``O(b·v)`` — Table 3 only shows the b=1 endpoint.  This harness sweeps
   batch sizes and reports the latency ratio, which should *widen* with b.
2. **Technique breadth.** §5.3 argues the results "are applicable" to every
   lookup-family technique; this harness costs all of them (including the
   TT-Rec and mixed-dim extensions) on the same dataset, verifying the claim
   that on-device cost clusters by *mechanism* (lookup vs. one-hot), not by
   technique.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import DATASETS
from repro.device.cost_model import benchmark
from repro.device.export import export_model
from repro.device.profiles import IPHONE_12_PRO_COREML
from repro.experiments.table3_ondevice import TABLE3_HASH_SIZE
from repro.models.builder import build_classifier, build_pointwise_ranker
from repro.utils.logging import log
from repro.utils.tables import format_table

__all__ = ["ScalingPoint", "TechniqueCost", "run", "render", "LOOKUP_TECHNIQUES"]

#: Lookup-family techniques §5.3 claims Table 3 generalizes to.
LOOKUP_TECHNIQUES = (
    "memcom_nobias",
    "memcom",
    "hash",
    "double_hash",
    "freq_double_hash",
    "qr_mult",
    "truncate_rare",
    "tt_rec",
    "mixed_dim",
)


@dataclass(frozen=True)
class ScalingPoint:
    technique: str
    batch_size: int
    latency_ms: float
    footprint_mb: float


@dataclass(frozen=True)
class TechniqueCost:
    technique: str
    latency_ms: float
    footprint_mb: float
    on_disk_mb: float


def _build(name: str, technique: str, embedding_dim: int):
    spec = DATASETS[name]
    hash_size = min(TABLE3_HASH_SIZE, spec.input_vocab)
    hyper = {
        "memcom_nobias": dict(num_hash_embeddings=hash_size),
        "memcom": dict(num_hash_embeddings=hash_size),
        "hash": dict(num_hash_embeddings=hash_size),
        "double_hash": dict(num_hash_embeddings=hash_size),
        "freq_double_hash": dict(num_hash_embeddings=hash_size),
        "qr_mult": dict(num_hash_embeddings=hash_size),
        "truncate_rare": dict(keep=hash_size),
        "hashed_onehot": dict(num_hash_embeddings=hash_size),
        "tt_rec": dict(tt_rank=max(2, embedding_dim // 8)),
        "mixed_dim": dict(num_blocks=4),
        "full": {},
    }[technique]
    kwargs = dict(
        vocab_size=spec.input_vocab,
        input_length=spec.input_length,
        embedding_dim=embedding_dim,
        rng=0,
        **hyper,
    )
    if spec.task == "classification":
        return build_classifier(technique, num_labels=spec.output_vocab, **kwargs)
    return build_pointwise_ranker(technique, num_items=spec.output_vocab, **kwargs)


def run(
    dataset: str = "movielens",
    batch_sizes: tuple[int, ...] = (1, 4, 16, 64),
    embedding_dim: int = 256,
    unit: str = "cpuOnly",
) -> tuple[list[ScalingPoint], list[TechniqueCost]]:
    """Both sweeps on one dataset (shape-only; no training needed)."""
    profile = IPHONE_12_PRO_COREML
    scaling: list[ScalingPoint] = []
    for technique in ("memcom_nobias", "hashed_onehot"):
        model = _build(dataset, technique, embedding_dim)
        for b in batch_sizes:
            report = benchmark(export_model(model, batch_size=b), profile, unit)
            scaling.append(
                ScalingPoint(technique, b, report.latency_ms, report.footprint_mb)
            )
            log(f"[ext-scaling] {technique} b={b}: {report.latency_ms:.2f} ms")

    costs: list[TechniqueCost] = []
    for technique in LOOKUP_TECHNIQUES + ("hashed_onehot",):
        model = _build(dataset, technique, embedding_dim)
        report = benchmark(export_model(model, batch_size=1), profile, unit)
        costs.append(
            TechniqueCost(technique, report.latency_ms, report.footprint_mb, report.on_disk_mb)
        )
    return scaling, costs


def render(results: tuple[list[ScalingPoint], list[TechniqueCost]]) -> str:
    scaling, costs = results
    batches = sorted({p.batch_size for p in scaling})

    def row(tech):
        pts = {p.batch_size: p for p in scaling if p.technique == tech}
        return [tech] + [f"{pts[b].latency_ms:.2f}" for b in batches]

    ratio_row = ["onehot/memcom ratio"]
    for b in batches:
        mem = next(p for p in scaling if p.technique == "memcom_nobias" and p.batch_size == b)
        one = next(p for p in scaling if p.technique == "hashed_onehot" and p.batch_size == b)
        ratio_row.append(f"{one.latency_ms / mem.latency_ms:.1f}x")
    batch_table = format_table(
        ["model"] + [f"b={b} ms" for b in batches],
        [row("memcom_nobias"), row("hashed_onehot"), ratio_row],
        title="Extension — latency vs batch size (iPhone 12 Pro, cpuOnly)",
    )

    cost_table = format_table(
        ["technique", "latency ms", "footprint MB", "on-disk MB"],
        [
            (c.technique, f"{c.latency_ms:.2f}", f"{c.footprint_mb:.2f}", f"{c.on_disk_mb:.2f}")
            for c in sorted(costs, key=lambda c: c.latency_ms)
        ],
        title="Extension — all techniques, batch 1 (the §5.3 generalization claim)",
    )
    return f"{batch_table}\n\n{cost_table}"
