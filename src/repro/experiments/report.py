"""Rendering experiment results as the rows/series the paper reports."""

from __future__ import annotations

from typing import Iterable

from repro.experiments.runner import SweepResult
from repro.utils.plot import ascii_plot
from repro.utils.tables import format_series, format_table

__all__ = [
    "PAPER_EMBEDDING_TARGETS",
    "render_sweep",
    "render_sweep_series",
    "render_sweep_plot",
    "render_embedding_headline",
    "render_headline",
]


def render_sweep(result: SweepResult) -> str:
    """Full sweep table: one row per trained point."""
    rows = [
        (
            p.technique,
            p.hyper_label(),
            f"{p.compression_ratio:.1f}x",
            f"{p.metric:.4f}",
            f"{p.relative_loss_pct:+.2f}%",
        )
        for p in sorted(result.points, key=lambda p: (p.technique, p.compression_ratio))
    ]
    title = (
        f"{result.dataset} [{result.architecture}] — baseline "
        f"{result.metric_name}={result.baseline_metric:.4f} "
        f"({result.baseline_params} params)"
    )
    return format_table(
        ["technique", "hyper", "ratio", result.metric_name, "rel. loss"], rows, title=title
    )


def render_sweep_series(result: SweepResult) -> str:
    """Figure-style series: per technique, compression-ratio → loss%."""
    lines = [f"{result.dataset} [{result.architecture}] — % {result.metric_name} loss vs compression"]
    for tech, (ratios, losses) in result.series().items():
        lines.append(
            format_series(
                f"  {tech:14s}",
                [f"{r:.1f}x" for r in ratios],
                [f"{l:+.1f}%" for l in losses],
            )
        )
    return "\n".join(lines)


def render_sweep_plot(result: SweepResult, techniques: Iterable[str] | None = None) -> str:
    """One paper panel as an ASCII chart: log-x compression vs % loss.

    ``techniques`` restricts the plotted curves (all by default); the chart
    shows curve *shape* — crossovers and cliffs — that the table form hides.
    """
    series = result.series()
    if techniques is not None:
        series = {t: series[t] for t in techniques if t in series}
    return ascii_plot(
        series,
        title=(
            f"{result.dataset} [{result.architecture}] — "
            f"% {result.metric_name} loss vs compression ratio"
        ),
        x_label="compression",
        y_label=f"% {result.metric_name} loss",
        logx=True,
    )


#: The paper's headline input-embedding compression per ranking dataset
#: (§5.2: "16x, 4x, 12x, and 40x, respectively", ~4% nDCG loss).
PAPER_EMBEDDING_TARGETS = {
    "movielens": 16.0,
    "google_local": 4.0,
    "millionsongs": 12.0,
    "netflix": 40.0,
}


def render_embedding_headline(
    results: Iterable[SweepResult],
    targets: dict[str, float] | None = None,
    technique: str = "memcom",
) -> str:
    """MEmCom's loss at the paper's per-dataset embedding-compression target.

    Picks the swept point whose *input-embedding* ratio is closest to the
    target (the achievable ratio is bounded by ``e/2`` at bench scale —
    MEmCom's 2v scalars floor the embedding size — so the achieved ratio is
    printed alongside).
    """
    targets = PAPER_EMBEDDING_TARGETS if targets is None else targets
    rows = []
    for r in results:
        target = targets.get(r.dataset)
        if target is None:
            continue
        pts = [p for p in r.points if p.technique == technique]
        if not pts:
            continue
        closest = min(pts, key=lambda p: abs(p.embedding_ratio - target))
        rows.append(
            (
                r.dataset,
                f"{target:.0f}x",
                f"{closest.embedding_ratio:.1f}x",
                f"{closest.relative_loss_pct:+.2f}%",
            )
        )
    return format_table(
        ["dataset", "paper emb ratio", "achieved emb ratio", f"{technique} loss"],
        rows,
        title="paper headline: nDCG loss at the §5.2 embedding-compression targets",
    )


def render_headline(results: Iterable[SweepResult], min_ratio: float = 8.0) -> str:
    """The 'who wins' row per dataset at an aggressive compression ratio."""
    rows = []
    for r in results:
        best = r.best_technique_at(min_ratio)
        memcom_pts = [
            p
            for p in r.points
            if p.technique in ("memcom", "memcom_nobias") and p.compression_ratio >= min_ratio
        ]
        memcom_loss = min((p.relative_loss_pct for p in memcom_pts), default=float("nan"))
        rows.append((r.dataset, best or "-", f"{memcom_loss:+.2f}%"))
    return format_table(
        ["dataset", f"best ≥{min_ratio:.0f}x", "MEmCom loss ≥ ratio"], rows
    )
