"""Shared sweep infrastructure for the figure/table harnesses.

Every accuracy/nDCG experiment in the paper is a *sweep*: train one model
per (technique, hyperparameter) point, compute the model-level compression
ratio against the uncompressed baseline, and report the relative metric
loss.  This module owns that loop plus the benchmark-scale dataset plumbing
(each dataset gets a scale that preserves the paper's ratios while keeping a
full sweep in CPU-minutes; ``ExperimentConfig.scale_multiplier`` cranks it
toward the paper's nominal sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.core.sizing import embedding_param_count
from repro.data.datasets import get_spec
from repro.data.spec import DatasetSpec
from repro.data.synthetic import Dataset, PairwiseDataset, generate_dataset, generate_pairwise
from repro.metrics.accuracy import relative_loss_percent
from repro.pipeline import PipelineSpec
from repro.train.trainer import TrainConfig
from repro.utils.logging import log
from repro.utils.rng import ensure_rng

__all__ = [
    "ExperimentConfig",
    "SweepPoint",
    "SweepResult",
    "BENCH_SCALES",
    "bench_spec",
    "load_bench_dataset",
    "load_bench_pairwise",
    "technique_grid",
    "run_sweep",
    "train_point",
]

#: Per-dataset generation scales for benchmark runs.  Chosen so vocabularies
#: stay in the hundreds-to-thousands (compression still has something to
#: compress) while example counts keep a sweep in CPU-minutes.
BENCH_SCALES: dict[str, float] = {
    # Newsgroup runs at a larger fraction than the media datasets: its
    # Table 2 size is small to begin with (11.3K docs), and below ~900
    # bench docs per-seed training noise swamps the technique gaps.
    "newsgroup": 0.08,
    "movielens": 0.02,
    "millionsongs": 0.004,
    "google_local": 0.02,
    "netflix": 0.005,
    "games": 0.0005,
    "arcade": 0.002,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment harnesses."""

    #: multiplies each dataset's bench scale (1.0 = CI size; larger = closer
    #: to the paper's nominal sizes)
    scale_multiplier: float = 1.0
    #: example-count caps applied after scaling (keep sweeps bounded even
    #: when scale_multiplier is large)
    cap_train: int = 4_000
    cap_eval: int = 1_000
    embedding_dim: int = 32
    epochs: int = 4
    batch_size: int = 128
    lr: float = 2e-3
    dropout: float = 0.2
    seed: int = 0
    ndcg_k: int = 10
    #: points per technique curve (the paper sweeps 6 hash sizes)
    grid_points: int = 3
    #: average each sweep point over this many training seeds (data stays
    #: fixed) — damps optimizer noise on the small bench-scale eval splits
    num_seeds: int = 1

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            seed=self.seed,
        )


@dataclass(frozen=True)
class SweepPoint:
    """One trained model on a technique's curve."""

    technique: str
    hyper: dict
    params: int
    compression_ratio: float
    metric: float
    relative_loss_pct: float
    #: input-embedding-only compression (the unit of the paper's 16×/40×
    #: headline claims); whole-model `compression_ratio` is the x-axis.
    embedding_ratio: float = float("nan")

    def hyper_label(self) -> str:
        return ",".join(f"{k}={v}" for k, v in sorted(self.hyper.items())) or "-"


@dataclass
class SweepResult:
    """All points of one dataset's sweep (one paper subplot)."""

    dataset: str
    architecture: str
    metric_name: str
    baseline_metric: float
    baseline_params: int
    points: list[SweepPoint] = field(default_factory=list)

    def series(self) -> dict[str, tuple[list[float], list[float]]]:
        """technique → (compression ratios, relative losses), ratio-sorted."""
        out: dict[str, tuple[list[float], list[float]]] = {}
        for tech in sorted({p.technique for p in self.points}):
            pts = sorted(
                (p for p in self.points if p.technique == tech),
                key=lambda p: p.compression_ratio,
            )
            out[tech] = (
                [p.compression_ratio for p in pts],
                [p.relative_loss_pct for p in pts],
            )
        return out

    def best_technique_at(self, min_ratio: float) -> str | None:
        """Lowest-loss technique among points compressing ≥ ``min_ratio``."""
        eligible = [p for p in self.points if p.compression_ratio >= min_ratio]
        if not eligible:
            return None
        return min(eligible, key=lambda p: p.relative_loss_pct).technique


def bench_spec(name: str, config: ExperimentConfig) -> DatasetSpec:
    """The benchmark-scale spec for ``name`` with example-count caps."""
    try:
        base_scale = BENCH_SCALES[name]
    except KeyError:
        raise KeyError(f"no bench scale for dataset {name!r}") from None
    spec = get_spec(name, base_scale * config.scale_multiplier)
    return replace(
        spec,
        num_train=min(spec.num_train, config.cap_train),
        num_eval=min(spec.num_eval, config.cap_eval),
    )


def load_bench_dataset(
    name: str, config: ExperimentConfig, rng: np.random.Generator | int | None = None
) -> Dataset:
    return generate_dataset(bench_spec(name, config), ensure_rng(rng))


def load_bench_pairwise(
    name: str, config: ExperimentConfig, rng: np.random.Generator | int | None = None
) -> PairwiseDataset:
    return generate_pairwise(bench_spec(name, config), ensure_rng(rng))


def technique_grid(
    spec: DatasetSpec,
    embedding_dim: int,
    grid_points: int = 3,
    techniques: Sequence[str] | None = None,
) -> list[tuple[str, dict]]:
    """The (technique, hyper) grid of one figure sweep.

    Hash-based techniques sweep ``m = v / {8, 32, 128, …}`` (the paper's
    100K→1K grid expressed as vocabulary fractions); dimension-based ones
    sweep dims ``e / {2, 8, 32, …}`` (the paper halves from e/2 down);
    truncate-rare sweeps its keep count over the same fractions as the hash
    sizes.  Quotient-remainder shares the hash grid but clipped at ``√v``:
    below that the v/m quotient table dominates and the technique *gains*
    parameters as m shrinks — a regime the paper's grid (m ≥ √v at every
    point, since m stops at 1K on 100K+ vocabularies) never enters.
    """
    v = spec.input_vocab
    e = embedding_dim
    hash_divisors = [8 * 4**i for i in range(grid_points)]
    dim_divisors = [2 * 4**i for i in range(grid_points)]
    hash_sizes = [max(2, v // d) for d in hash_divisors]
    qr_floor = math.ceil(math.sqrt(v))
    qr_sizes = sorted({max(m, qr_floor) for m in hash_sizes}, reverse=True)
    dims = [max(2, e // d) for d in dim_divisors]

    all_techs = [
        "memcom",
        "memcom_nobias",
        "qr_mult",
        "qr_concat",
        "hash",
        "double_hash",
        "truncate_rare",
        "reduce_dim",
        "factorized",
    ]
    selected = list(techniques) if techniques is not None else all_techs

    grid: list[tuple[str, dict]] = []
    for tech in selected:
        if tech in ("qr_mult", "qr_concat"):
            grid.extend((tech, {"num_hash_embeddings": m}) for m in qr_sizes)
        elif tech in ("memcom", "memcom_nobias", "hash", "double_hash"):
            grid.extend((tech, {"num_hash_embeddings": m}) for m in hash_sizes)
        elif tech == "truncate_rare":
            grid.extend((tech, {"keep": m}) for m in hash_sizes)
        elif tech == "reduce_dim":
            grid.extend((tech, {"reduced_dim": d}) for d in dims)
        elif tech == "factorized":
            grid.extend((tech, {"hidden_dim": d}) for d in dims)
        elif tech == "full":
            grid.append(("full", {}))
        else:
            raise KeyError(f"unknown technique {tech!r} in grid")
    return grid


def point_spec(
    architecture: str,
    technique: str,
    hyper: dict,
    dataset: str,
    config: ExperimentConfig,
    seed: int,
) -> PipelineSpec:
    """The :class:`PipelineSpec` of one sweep point.

    Sweeps disable per-epoch validation (``monitor=False``) — each point is
    scored once on the eval split after training, exactly as before the
    pipeline existed — and hand the pre-generated dataset to the session so
    a grid shares one generation pass.
    """
    return PipelineSpec(
        dataset=dataset,
        architecture=architecture,
        technique=technique,
        hyper=dict(hyper),
        embedding_dim=config.embedding_dim,
        dropout=config.dropout,
        train=replace(config.train_config(), seed=seed),
        seed=seed,
        monitor=False,
        ndcg_k=config.ndcg_k,
    )


def train_point(
    architecture: str,
    technique: str,
    hyper: dict,
    data: Dataset | PairwiseDataset,
    config: ExperimentConfig,
) -> tuple[float, int]:
    """Train one sweep point; returns (metric, parameter count).

    Each seed executes through :func:`repro.sweep.runner.execute_point` —
    the same front door the multi-process sweep fleet uses — over the
    shared ``data``; with ``config.num_seeds > 1`` the metric is the mean
    over independently seeded trainings on the same data.
    """
    from repro.sweep.runner import execute_point

    metrics = []
    params = 0
    for i in range(max(1, config.num_seeds)):
        seed = config.seed + i
        spec = point_spec(architecture, technique, hyper, data.spec.name, config, seed)
        result = execute_point(spec, data)
        metrics.append(result.metric)
        params = result.params
    return float(np.mean(metrics)), params


def run_sweep(
    name: str,
    architecture: str,
    config: ExperimentConfig | None = None,
    techniques: Sequence[str] | None = None,
    rng: np.random.Generator | int | None = None,
) -> SweepResult:
    """Train the full technique grid on one dataset (one paper subplot).

    The baseline (uncompressed "full" technique) is trained first; every
    other point reports loss relative to it, exactly as the figures do.
    """
    config = config or ExperimentConfig()
    if architecture == "ranknet":
        data = load_bench_pairwise(name, config, rng)
    else:
        data = load_bench_dataset(name, config, rng)
    metric_name = "accuracy" if architecture == "classifier" else "ndcg"

    log(f"[{name}] baseline (full) ...")
    baseline_metric, baseline_params = train_point(architecture, "full", {}, data, config)
    result = SweepResult(
        dataset=name,
        architecture=architecture,
        metric_name=metric_name,
        baseline_metric=baseline_metric,
        baseline_params=baseline_params,
    )
    v, e = data.spec.input_vocab, config.embedding_dim
    baseline_emb_params = embedding_param_count("full", v, e)
    for technique, hyper in technique_grid(
        data.spec, config.embedding_dim, config.grid_points, techniques
    ):
        metric, params = train_point(architecture, technique, hyper, data, config)
        point = SweepPoint(
            technique=technique,
            hyper=hyper,
            params=params,
            compression_ratio=baseline_params / params,
            metric=metric,
            relative_loss_pct=relative_loss_percent(baseline_metric, metric),
            embedding_ratio=baseline_emb_params / embedding_param_count(technique, v, e, **hyper),
        )
        result.points.append(point)
        log(
            f"[{name}] {technique} {point.hyper_label()}: ratio={point.compression_ratio:.1f}x "
            f"{metric_name}={metric:.4f} loss={point.relative_loss_pct:+.2f}%"
        )
    return result
