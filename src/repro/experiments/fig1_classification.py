"""Figure 1 — compression vs. accuracy tradeoff (classification).

Paper setup (§5.1): the Code 1 classifier on Newsgroup, Games and Arcade;
x-axis = whole-model compression ratio, y-axis = % accuracy loss vs. the
uncompressed baseline.  Headline shapes to reproduce:

* MEmCom has much lower loss than every other technique at all ratios;
* only factorized embeddings are competitive on Newsgroup;
* on Arcade, truncate-rare beats the sophisticated baselines but MEmCom
  still outperforms it (the paper says by 2×).
"""

from __future__ import annotations

from repro.data.datasets import CLASSIFICATION_DATASETS
from repro.experiments.report import render_sweep_plot, render_sweep_series
from repro.experiments.runner import ExperimentConfig, SweepResult, run_sweep

__all__ = ["CLASSIFICATION_CONFIG", "run", "render"]

#: Classification needs a bigger step budget than the ranking sweeps: the
#: bench-scale Newsgroup has only ~565 documents, so batch 64 and ~25 epochs
#: are required before the full baseline fits (≈0.73 accuracy) and the
#: techniques separate the way Figure 1 shows.  Two seeds per point damp
#: optimizer noise on the small eval splits.
CLASSIFICATION_CONFIG = ExperimentConfig(epochs=25, batch_size=64, lr=3e-3, num_seeds=3)


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = CLASSIFICATION_DATASETS,
) -> dict[str, SweepResult]:
    """Train the full technique grid on each Figure 1 dataset."""
    config = config or CLASSIFICATION_CONFIG
    return {
        name: run_sweep(name, "classifier", config, rng=config.seed) for name in datasets
    }


def render(results: dict[str, SweepResult]) -> str:
    """The three Figure 1 panels as text series plus panel charts."""
    parts = []
    for r in results.values():
        parts.append(render_sweep_series(r))
        parts.append(
            render_sweep_plot(r, techniques=("memcom", "hash", "truncate_rare", "factorized"))
        )
    return "\n\n".join(parts)
