"""Figure 5 (Appendix A.3) — privacy noise vs. nDCG (Arcade).

Paper setup: differentially private training (Rényi DP, global l2 clip) at
several noise multipliers; y-axis is % nDCG loss vs. an *uncompressed model
trained without noise*.  Compared techniques: uncompressed, naive hashing,
reduce-embedding-dim, MEmCom — all sized to a common budget.  Shape to
reproduce: MEmCom degrades least as the noise multiplier grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentConfig, load_bench_dataset
from repro.metrics.accuracy import relative_loss_percent
from repro.metrics.evaluator import evaluate_ranking
from repro.models.builder import build_pointwise_ranker
from repro.train.dp import DPConfig, DPTrainer
from repro.utils.logging import log
from repro.utils.tables import format_table

__all__ = ["PrivacyPoint", "run", "render", "DEFAULT_NOISE_SWEEP"]

DEFAULT_NOISE_SWEEP = (0.0, 0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class PrivacyPoint:
    technique: str
    noise_multiplier: float
    ndcg: float
    relative_loss_pct: float
    epsilon: float


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "arcade",
    noise_sweep: tuple[float, ...] = DEFAULT_NOISE_SWEEP,
    hash_fraction: int = 16,
    l2_clip: float = 1.0,
) -> list[PrivacyPoint]:
    """DP-train each technique at each noise multiplier.

    Techniques are sized to a common compression point (``vocab /
    hash_fraction`` hash rows; reduce-dim picks the dim that lands nearest
    the same parameter budget, mirroring the paper's 51 MB-equivalent
    setup).
    """
    config = config or ExperimentConfig()
    data = load_bench_dataset(dataset, config, rng=config.seed)
    spec = data.spec
    v, e = spec.input_vocab, config.embedding_dim
    m = max(2, v // hash_fraction)
    # reduce_dim budget-matched to the hashed models: v·d ≈ m·e ⇒ d ≈ e/fraction
    reduced = max(2, e // hash_fraction)
    techniques: list[tuple[str, dict]] = [
        ("full", {}),
        ("hash", {"num_hash_embeddings": m}),
        ("reduce_dim", {"reduced_dim": reduced}),
        ("memcom", {"num_hash_embeddings": m}),
    ]

    # The reference is the uncompressed model trained WITHOUT noise.
    baseline_model = build_pointwise_ranker(
        "full",
        vocab_size=v,
        num_items=spec.output_vocab,
        input_length=spec.input_length,
        embedding_dim=e,
        dropout=config.dropout,
        rng=config.seed,
    )
    DPTrainer(config.train_config(), DPConfig(0.0, l2_clip)).fit(
        baseline_model, data.x_train, data.y_train, task="ranking"
    )
    baseline = evaluate_ranking(baseline_model, data.x_eval, data.y_eval, k=config.ndcg_k)[
        "ndcg"
    ]

    points: list[PrivacyPoint] = []
    for technique, hyper in techniques:
        for sigma in noise_sweep:
            model = build_pointwise_ranker(
                technique,
                vocab_size=v,
                num_items=spec.output_vocab,
                input_length=spec.input_length,
                embedding_dim=e,
                dropout=config.dropout,
                rng=config.seed,
                **hyper,
            )
            trainer = DPTrainer(config.train_config(), DPConfig(sigma, l2_clip))
            trainer.fit(model, data.x_train, data.y_train, task="ranking")
            ndcg = evaluate_ranking(model, data.x_eval, data.y_eval, k=config.ndcg_k)["ndcg"]
            points.append(
                PrivacyPoint(
                    technique=technique,
                    noise_multiplier=sigma,
                    ndcg=ndcg,
                    relative_loss_pct=relative_loss_percent(baseline, ndcg),
                    epsilon=trainer.epsilon(len(data.x_train)),
                )
            )
            log(
                f"[fig5] {technique} σ={sigma}: ndcg={ndcg:.4f} "
                f"({points[-1].relative_loss_pct:+.2f}%), ε={points[-1].epsilon:.2f}"
            )
    return points


def render(points: list[PrivacyPoint]) -> str:
    sigmas = sorted({p.noise_multiplier for p in points})
    techs = sorted({p.technique for p in points})
    rows = []
    for tech in techs:
        row = [tech]
        for s in sigmas:
            match = [p for p in points if p.technique == tech and p.noise_multiplier == s]
            row.append(f"{match[0].relative_loss_pct:+.1f}%" if match else "-")
        rows.append(row)
    return format_table(
        ["technique"] + [f"σ={s}" for s in sigmas],
        rows,
        title="Figure 5 — % nDCG loss vs noise multiplier (ref: uncompressed, no noise)",
    )
