"""Figure 6 (Appendix A.1) — tuning embedding size under a fixed model size.

Paper setup: fix the total model size (half the baseline for public
datasets; 20 MB for Games/Arcade), sweep the number of MEmCom hash
embeddings ``m``, and binary-search the embedding size ``e`` that exhausts
the budget for each ``m``.  Shape to reproduce: the optimum lands around
``m ≈ vocab/10`` for the skewed datasets, but NOT for Google Local Reviews
(whose flat popularity favours more, narrower embeddings).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sizing import solve_embedding_dim
from repro.experiments.runner import ExperimentConfig, load_bench_dataset
from repro.metrics.evaluator import evaluate_classification, evaluate_ranking
from repro.models.builder import build_classifier, build_pointwise_ranker, model_param_count
from repro.train.trainer import Trainer
from repro.utils.logging import log
from repro.utils.tables import format_table

__all__ = ["FixedSizePoint", "run", "render", "DEFAULT_DATASETS"]

DEFAULT_DATASETS = (
    "movielens",
    "millionsongs",
    "netflix",
    "google_local",
    "games",
    "arcade",
)

#: m = vocab / divisor sweep (the paper annotates each point with its m)
DEFAULT_DIVISORS = (2, 5, 10, 20, 50)


@dataclass(frozen=True)
class FixedSizePoint:
    dataset: str
    num_embeddings: int
    vocab_divisor: int
    embedding_dim: int
    params: int
    metric: float


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    divisors: tuple[int, ...] = DEFAULT_DIVISORS,
    budget_fraction: float = 0.5,
) -> list[FixedSizePoint]:
    """Sweep (m, e) pairs at a fixed parameter budget per dataset.

    The budget is ``budget_fraction`` of the uncompressed baseline's
    parameter count (the paper's public-dataset setting; its 20 MB
    Games/Arcade budget is the same idea at their scale).
    """
    config = config or ExperimentConfig()
    points: list[FixedSizePoint] = []
    for name in datasets:
        data = load_bench_dataset(name, config, rng=config.seed)
        spec = data.spec
        v, c = spec.input_vocab, spec.output_vocab
        arch = "classifier" if spec.task == "classification" else "pointwise"
        baseline_params = model_param_count(arch, "full", v, c, config.embedding_dim)
        budget = int(baseline_params * budget_fraction)

        for divisor in divisors:
            m = max(2, v // divisor)

            def params_for_dim(e: int, m=m) -> int:
                return model_param_count(
                    arch, "memcom", v, c, e, num_hash_embeddings=m
                )

            try:
                e = solve_embedding_dim(budget, params_for_dim, min_dim=2, max_dim=512)
            except ValueError:
                log(f"[fig6] {name} m={m}: budget too small, skipped")
                continue
            kwargs = dict(
                vocab_size=v,
                input_length=spec.input_length,
                embedding_dim=e,
                dropout=config.dropout,
                rng=config.seed,
                num_hash_embeddings=m,
            )
            if arch == "classifier":
                model = build_classifier("memcom", num_labels=c, **kwargs)
                Trainer(config.train_config()).fit(model, data.x_train, data.y_train)
                metric = evaluate_classification(model, data.x_eval, data.y_eval)["accuracy"]
            else:
                model = build_pointwise_ranker("memcom", num_items=c, **kwargs)
                Trainer(config.train_config()).fit(
                    model, data.x_train, data.y_train, task="ranking"
                )
                metric = evaluate_ranking(model, data.x_eval, data.y_eval, k=config.ndcg_k)[
                    "ndcg"
                ]
            points.append(
                FixedSizePoint(
                    dataset=name,
                    num_embeddings=m,
                    vocab_divisor=divisor,
                    embedding_dim=e,
                    params=model.num_parameters(),
                    metric=metric,
                )
            )
            log(f"[fig6] {name} m=v/{divisor}={m} → e={e}: metric={metric:.4f}")
    return points


def optimal_divisors(points: list[FixedSizePoint]) -> dict[str, int]:
    """Per dataset, the vocab divisor whose point scored best."""
    best: dict[str, FixedSizePoint] = {}
    for p in points:
        if p.dataset not in best or p.metric > best[p.dataset].metric:
            best[p.dataset] = p
    return {name: p.vocab_divisor for name, p in best.items()}


def render(points: list[FixedSizePoint]) -> str:
    rows = [
        (
            p.dataset,
            f"v/{p.vocab_divisor}",
            p.num_embeddings,
            p.embedding_dim,
            p.params,
            f"{p.metric:.4f}",
        )
        for p in points
    ]
    table = format_table(
        ["dataset", "m", "#embeddings", "emb dim", "params", "metric"],
        rows,
        title="Figure 6 — fixed model size: embedding count vs. dimension",
    )
    best = optimal_divisors(points)
    summary = ", ".join(f"{k}: v/{v}" for k, v in best.items())
    return f"{table}\n\noptimal m per dataset: {summary}"
