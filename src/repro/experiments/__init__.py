"""`repro.experiments` — one harness per paper table/figure.

========  =============================================  ==================
exp id    paper artifact                                 module
========  =============================================  ==================
fig1      compression vs accuracy (classification)       fig1_classification
fig2      compression vs nDCG (pointwise ranking)        fig2_pointwise
fig3      compression vs nDCG (pairwise RankNet)         fig3_pairwise
table3    on-device latency & memory footprint           table3_ondevice
fig4      accuracy vs weight precision                   fig4_quantization
fig5      DP noise multiplier vs nDCG                    fig5_privacy
fig6      fixed model size: #embeddings vs dimension     fig6_fixed_size
a4        MEmCom multiplier uniqueness audit             a4_uniqueness
props     §4 properties + collision-rate table           properties
ext       sparsity vs accuracy (the A.2 future work)     ext_pruning
ext       batch scaling + all-technique device cost      ext_ondevice_scaling
========  =============================================  ==================

Each module exposes ``run(...)`` returning structured results and
``render(results)`` producing the paper-shaped text table/series.
"""

from repro.experiments import (
    a4_uniqueness,
    ext_ondevice_scaling,
    ext_pruning,
    fig1_classification,
    fig2_pointwise,
    fig3_pairwise,
    fig4_quantization,
    fig5_privacy,
    fig6_fixed_size,
    properties,
    table3_ondevice,
)
from repro.experiments.runner import (
    BENCH_SCALES,
    ExperimentConfig,
    SweepPoint,
    SweepResult,
    bench_spec,
    load_bench_dataset,
    load_bench_pairwise,
    run_sweep,
    technique_grid,
    train_point,
)

EXPERIMENTS = {
    "fig1": fig1_classification,
    "fig2": fig2_pointwise,
    "fig3": fig3_pairwise,
    "table3": table3_ondevice,
    "fig4": fig4_quantization,
    "fig5": fig5_privacy,
    "fig6": fig6_fixed_size,
    "a4": a4_uniqueness,
    "props": properties,
    "ext_pruning": ext_pruning,
    "ext_ondevice": ext_ondevice_scaling,
}

__all__ = [
    "BENCH_SCALES",
    "EXPERIMENTS",
    "ExperimentConfig",
    "SweepPoint",
    "SweepResult",
    "a4_uniqueness",
    "bench_spec",
    "ext_ondevice_scaling",
    "ext_pruning",
    "fig1_classification",
    "fig2_pointwise",
    "fig3_pairwise",
    "fig4_quantization",
    "fig5_privacy",
    "fig6_fixed_size",
    "load_bench_dataset",
    "load_bench_pairwise",
    "properties",
    "run_sweep",
    "table3_ondevice",
    "technique_grid",
    "train_point",
]
