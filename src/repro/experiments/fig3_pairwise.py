"""Figure 3 — compression vs. nDCG (pairwise RankNet on Arcade).

Paper setup (§5.2): a siamese RankNet scores (preferred, other) item pairs
sharing one user tower; the y-axis is % nDCG loss vs. the uncompressed
pairwise model.  Headlines: MEmCom loses < 1% nDCG at 32× compression, and
the bias / no-bias variants "perform exactly the same" (overlapping lines).
"""

from __future__ import annotations

from repro.experiments.report import render_sweep_plot, render_sweep_series
from repro.experiments.runner import ExperimentConfig, SweepResult, run_sweep

__all__ = ["run", "render"]


def run(
    config: ExperimentConfig | None = None,
    dataset: str = "arcade",
) -> SweepResult:
    """Train the technique grid with the pairwise RankNet on Arcade."""
    config = config or ExperimentConfig()
    return run_sweep(dataset, "ranknet", config, rng=config.seed)


def render(result: SweepResult) -> str:
    chart = render_sweep_plot(
        result, techniques=("memcom", "memcom_nobias", "hash", "double_hash")
    )
    return f"{render_sweep_series(result)}\n\n{chart}"
