"""§4 properties table and the collision-rate analytics behind it.

Renders the paper's qualitative technique-properties table (unique vector /
simple operator / power-law fitness) and quantifies the collision-rate
claims: naive hashing collides at ``v/m − 1 + (1 − 1/m)^v`` per bucket,
double hashing at ``v/m² − 1 + (1 − 1/m²)^v``, and both formulas are checked
against empirical hash assignments.

The "unique vector" column is additionally *measured* rather than asserted:
:func:`unique_vector_fractions` builds each technique at a matched budget and
computes the fraction of ids with a distinct embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import universal_hash
from repro.core.collisions import (
    PROPERTIES_TABLE,
    double_hash_collision_rate,
    empirical_collision_stats,
    naive_hash_collision_rate,
)
from repro.core.registry import build_embedding
from repro.core.uniqueness import unique_embedding_fraction
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table

__all__ = ["CollisionRow", "run", "render", "unique_vector_fractions"]

#: Registry names measured for the empirical unique-vector column, mapped to
#: the §4 table's technique labels.
_UNIQUE_VECTOR_GRID = {
    "low_rank": ("factorized", lambda v, e, m: dict(hidden_dim=max(2, e // 4))),
    "quotient_remainder": ("qr_mult", lambda v, e, m: dict(num_hash_embeddings=m)),
    "hash": ("hash", lambda v, e, m: dict(num_hash_embeddings=m)),
    "double_hash": ("double_hash", lambda v, e, m: dict(num_hash_embeddings=m)),
    # MEmCom measured at the uniform multiplier init: the property is
    # representational *capacity* — at the exact-ones init every same-bucket
    # pair is literally identical until training separates them (that
    # separation is what A.4 audits on the trained model).
    "memcom": (
        "memcom",
        lambda v, e, m: dict(num_hash_embeddings=m, multiplier_init="uniform"),
    ),
}


def unique_vector_fractions(
    vocab: int = 5_000, embedding_dim: int = 16, hash_size: int | None = None, seed: int = 0
) -> dict[str, float]:
    """Measured fraction of ids with a unique embedding, per §4 row.

    Uses freshly initialized tables — uniqueness here is structural (can the
    representation distinguish ids at all), not learned.
    """
    m = hash_size or max(2, vocab // 50)
    out = {}
    for label, (registry_name, hyper_of) in _UNIQUE_VECTOR_GRID.items():
        emb = build_embedding(
            registry_name, vocab, embedding_dim, rng=seed, **hyper_of(vocab, embedding_dim, m)
        )
        out[label] = unique_embedding_fraction(emb)
    return out


@dataclass(frozen=True)
class CollisionRow:
    vocab: int
    hash_size: int
    naive_expected_rate: float
    naive_empirical_fraction: float
    double_expected_rate: float
    double_empirical_fraction: float


def run(
    vocab: int = 100_000,
    hash_sizes: tuple[int, ...] = (100_000, 50_000, 25_000, 10_000, 5_000, 1_000),
    seed: int = 0,
) -> list[CollisionRow]:
    """Analytic vs. empirical collision behaviour over the paper's m grid."""
    rng = ensure_rng(seed)
    ids = np.arange(vocab)
    rows: list[CollisionRow] = []
    for m in hash_sizes:
        naive = empirical_collision_stats(ids % m)
        a1, b1 = int(rng.integers(1, 1 << 31)), int(rng.integers(0, 1 << 31))
        a2, b2 = int(rng.integers(1, 1 << 31)), int(rng.integers(0, 1 << 31))
        h1 = universal_hash(ids, m, a1, b1)
        h2 = universal_hash(ids, m, a2, b2)
        double = empirical_collision_stats(h1 * m + h2)
        rows.append(
            CollisionRow(
                vocab=vocab,
                hash_size=m,
                naive_expected_rate=naive_hash_collision_rate(vocab, m),
                naive_empirical_fraction=naive.collision_fraction,
                double_expected_rate=double_hash_collision_rate(vocab, m),
                double_empirical_fraction=double.collision_fraction,
            )
        )
    return rows


def render(rows: list[CollisionRow]) -> str:
    measured = unique_vector_fractions()
    props = format_table(
        ["technique", "unique vector", "measured unique frac", "simple op", "power-law"],
        [
            (
                p.technique,
                _tri(p.unique_vector),
                f"{measured[p.technique]:.3f}",
                _tri(p.simple_operator),
                _tri(p.handles_power_law),
            )
            for p in PROPERTIES_TABLE
        ],
        title="§4 — properties of embedding-compression techniques",
    )
    coll = format_table(
        [
            "v",
            "m",
            "naive rate (theory)",
            "naive colliding frac",
            "double rate (theory)",
            "double colliding frac",
        ],
        [
            (
                r.vocab,
                r.hash_size,
                f"{r.naive_expected_rate:.3f}",
                f"{r.naive_empirical_fraction:.3f}",
                f"{r.double_expected_rate:.5f}",
                f"{r.double_empirical_fraction:.5f}",
            )
            for r in rows
        ],
        title="collision rates: naive vs double hashing",
    )
    return f"{props}\n\n{coll}"


def _tri(value: bool | None) -> str:
    if value is None:
        return "N/A"
    return "Yes" if value else "No"
