"""Extension — accuracy vs. weight sparsity (the future work of §A.2).

Appendix A.2 compresses MEmCom models further with lower float precision and
explicitly leaves "sparsifying the weights" as future work.  This harness
runs that experiment with the same protocol as Figure 4: train one MEmCom
model per dataset, magnitude-prune to each sparsity level, and report metric
loss vs. the dense model — plus the on-disk size (CSR-aware) so the
accuracy/size tradeoff is directly comparable to quantization's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.pruning import prune_module
from repro.experiments.runner import ExperimentConfig, load_bench_dataset
from repro.metrics.accuracy import relative_loss_percent
from repro.metrics.evaluator import evaluate_classification, evaluate_ranking
from repro.models.builder import build_classifier, build_pointwise_ranker
from repro.train.trainer import Trainer
from repro.utils.logging import log
from repro.utils.tables import format_table

__all__ = ["SparsityPoint", "run", "render", "DEFAULT_DATASETS", "DEFAULT_FRACTIONS"]

DEFAULT_DATASETS = ("newsgroup", "movielens", "netflix", "arcade")
DEFAULT_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 0.9)


@dataclass(frozen=True)
class SparsityPoint:
    dataset: str
    fraction: float
    metric: float
    relative_loss_pct: float
    on_disk_mb: float
    size_reduction: float


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    hash_fraction: int = 16,
) -> list[SparsityPoint]:
    """Train one MEmCom model per dataset, prune at each fraction, re-eval."""
    config = config or ExperimentConfig()
    points: list[SparsityPoint] = []
    for name in datasets:
        data = load_bench_dataset(name, config, rng=config.seed)
        spec = data.spec
        kwargs = dict(
            vocab_size=spec.input_vocab,
            input_length=spec.input_length,
            embedding_dim=config.embedding_dim,
            dropout=config.dropout,
            rng=config.seed,
            num_hash_embeddings=max(2, spec.input_vocab // hash_fraction),
        )
        if spec.task == "classification":
            model = build_classifier("memcom", num_labels=spec.output_vocab, **kwargs)
            Trainer(config.train_config()).fit(model, data.x_train, data.y_train)
            evaluate = lambda mdl: evaluate_classification(mdl, data.x_eval, data.y_eval)[
                "accuracy"
            ]
        else:
            model = build_pointwise_ranker("memcom", num_items=spec.output_vocab, **kwargs)
            Trainer(config.train_config()).fit(model, data.x_train, data.y_train, task="ranking")
            evaluate = lambda mdl: evaluate_ranking(
                mdl, data.x_eval, data.y_eval, k=config.ndcg_k
            )["ndcg"]

        dense_state = model.state_dict()
        baseline = evaluate(model)
        for fraction in fractions:
            model.load_state_dict(dense_state)
            report = prune_module(model, fraction)
            metric = evaluate(model)
            points.append(
                SparsityPoint(
                    dataset=name,
                    fraction=fraction,
                    metric=metric,
                    relative_loss_pct=relative_loss_percent(baseline, metric),
                    on_disk_mb=report.on_disk_bytes / 2**20,
                    size_reduction=report.size_reduction,
                )
            )
            log(
                f"[ext-prune] {name} @{fraction:.0%}: {metric:.4f} "
                f"({points[-1].relative_loss_pct:+.2f}%), {report.on_disk_bytes / 2**20:.3f} MB"
            )
        model.load_state_dict(dense_state)
    return points


def render(points: list[SparsityPoint]) -> str:
    datasets = sorted({p.dataset for p in points})
    fractions = sorted({p.fraction for p in points})
    rows = []
    for name in datasets:
        row = [name]
        for f in fractions:
            match = [p for p in points if p.dataset == name and p.fraction == f]
            row.append(
                f"{match[0].relative_loss_pct:+.1f}% ({match[0].size_reduction:.1f}x)"
                if match
                else "-"
            )
        rows.append(row)
    return format_table(
        ["dataset"] + [f"{f:.0%} pruned" for f in fractions],
        rows,
        title="Extension — metric loss (and disk shrink) vs. magnitude-pruning sparsity",
    )
