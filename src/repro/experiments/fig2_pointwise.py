"""Figure 2 — compression vs. nDCG tradeoff (pointwise ranking).

Paper setup (§5.2): the pointwise ranker (classifier minus the post-pooling
Dense) on MovieLens, Million Songs, Google Local Reviews and Netflix; up to
five examples per user, softmax training, softmax-score ranking.  Headline:
MEmCom loses only ≈4% nDCG while compressing the input embeddings by
16×/12×/4×/40× respectively, beating all other techniques.
"""

from __future__ import annotations

from repro.data.datasets import RANKING_DATASETS
from repro.experiments.report import (
    render_embedding_headline,
    render_sweep_plot,
    render_sweep_series,
)
from repro.experiments.runner import ExperimentConfig, SweepResult, run_sweep

__all__ = ["run", "render"]

#: Curves drawn in the panel charts (the full grid makes the ASCII canvas
#: unreadable; these four carry the paper's story).
PLOT_TECHNIQUES = ("memcom", "hash", "double_hash", "qr_mult")


def run(
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = RANKING_DATASETS,
) -> dict[str, SweepResult]:
    """Train the full technique grid on each Figure 2 dataset."""
    config = config or ExperimentConfig()
    return {
        name: run_sweep(name, "pointwise", config, rng=config.seed) for name in datasets
    }


def render(results: dict[str, SweepResult]) -> str:
    parts = []
    for r in results.values():
        parts.append(render_sweep_series(r))
        parts.append(render_sweep_plot(r, techniques=PLOT_TECHNIQUES))
    parts.append(render_embedding_headline(results.values()))
    return "\n\n".join(parts)
