"""Table 3 — on-device inference time and memory footprint.

Paper setup (§5.3): MEmCom (no bias) vs. Weinberger's hashing trick, both
with hash size 10K and otherwise identical layers, at batch size 1 in FP32,
on an iPhone 12 Pro (CoreML: all / cpuOnly / cpuAndGPU) and a Pixel 2
(TF-Lite: CPU; the GPU delegate fails on ``reduce_sum`` and is excluded).

This harness builds the models at the paper's *full* vocabulary sizes — no
training is needed, since latency and footprint depend only on shapes — and
runs them through the device simulator.  Shapes to reproduce: MEmCom faster
on every unit, and an order of magnitude smaller footprint (mmap'd lookups
vs. the materialized one-hot matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import DATASETS
from repro.device.cost_model import InferenceReport
from repro.device.runtime import benchmark_on_all_devices
from repro.models.builder import build_classifier, build_pointwise_ranker
from repro.utils.logging import log
from repro.utils.tables import format_table

__all__ = ["Table3Row", "run", "render", "TABLE3_HASH_SIZE"]

#: "the same fixed hash size of 10K is used in both models" (§5.3)
TABLE3_HASH_SIZE = 10_000


@dataclass(frozen=True)
class Table3Row:
    """One dataset × technique row across all device/unit columns."""

    dataset: str
    technique: str
    reports: tuple[InferenceReport, ...]

    def cell(self, framework: str, unit: str) -> InferenceReport:
        for r in self.reports:
            if r.framework == framework and r.compute_unit == unit:
                return r
        raise KeyError(f"no report for {framework}/{unit}")


def _build_table3_model(name: str, technique: str, embedding_dim: int = 256):
    """The §5.1/§5.2 model for ``name`` at the paper's full vocab sizes."""
    spec = DATASETS[name]
    hash_size = min(TABLE3_HASH_SIZE, spec.input_vocab)
    kwargs = dict(
        vocab_size=spec.input_vocab,
        input_length=spec.input_length,
        embedding_dim=embedding_dim,
        rng=0,
        num_hash_embeddings=hash_size,
    )
    if spec.task == "classification":
        return build_classifier(technique, num_labels=spec.output_vocab, **kwargs)
    return build_pointwise_ranker(technique, num_items=spec.output_vocab, **kwargs)


def run(
    datasets: tuple[str, ...] = tuple(DATASETS),
    embedding_dim: int = 256,
) -> list[Table3Row]:
    """Benchmark MEmCom (no bias) vs Weinberger on every dataset."""
    rows: list[Table3Row] = []
    for name in datasets:
        for technique in ("memcom_nobias", "hashed_onehot"):
            model = _build_table3_model(name, technique, embedding_dim)
            reports = tuple(benchmark_on_all_devices(model, batch_size=1))
            rows.append(Table3Row(dataset=name, technique=technique, reports=reports))
            log(f"[table3] {name} {technique}: {len(reports)} device cells")
    return rows


def render(rows: list[Table3Row]) -> str:
    """Render in the paper's layout: latency block then footprint block."""
    headers = ["dataset", "model"]
    sample = rows[0].reports
    cols = [(r.framework, r.compute_unit) for r in sample]
    headers += [f"{fw}/{unit} ms" for fw, unit in cols]
    latency_rows = []
    memory_rows = []
    for row in rows:
        label = "MEmCom" if row.technique == "memcom_nobias" else "Weinberger"
        latency_rows.append(
            [row.dataset, label]
            + [f"{row.cell(fw, u).latency_ms:.2f}" for fw, u in cols]
        )
        memory_rows.append(
            [row.dataset, label]
            + [f"{row.cell(fw, u).footprint_mb:.2f}" for fw, u in cols]
        )
    mem_headers = ["dataset", "model"] + [f"{fw}/{unit} MB" for fw, unit in cols]
    return (
        format_table(headers, latency_rows, title="Table 3 — inference time (ms, batch 1, FP32)")
        + "\n\n"
        + format_table(mem_headers, memory_rows, title="Table 3 — memory footprint (MB)")
    )
