"""Quotient-remainder trick of Shi et al. 2019 (Algorithm 1 in the paper).

Two tables replace the full one: ``U ∈ R^{m×e}`` indexed by the remainder
``i mod m`` and ``V ∈ R^{⌈v/m⌉×e}`` indexed by the quotient ``i \\ m``.  The
compositional operator is elementwise multiplication (the variant Shi et al.
recommend) or concatenation; the paper evaluates both and argues in §4 that
this operator is "relatively complex to generalize" compared with MEmCom's
scalar multiply.

For the concat variant each table holds ``e/2``-dim rows so the composed
embedding keeps the same output width as every other technique in a sweep.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["QREmbedding"]


class QREmbedding(CompressedEmbedding):
    """Quotient-remainder compositional embedding.

    Parameters
    ----------
    vocab_size, embedding_dim:
        Logical vocabulary ``v`` and composed output width ``e``.
    num_remainder_embeddings:
        The modulus ``m``; the quotient table gets ``⌈v/m⌉`` rows so every id
        ``i < v`` maps to a valid ``(i mod m, i \\ m)`` pair — a
        "complementary partition" in Shi et al.'s terms.
    operation:
        ``"mult"`` (elementwise product, tables e-dim) or ``"concat"``
        (tables e/2-dim each, concatenated).
    """

    technique = "qr_mult"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_remainder_embeddings: int,
        operation: str = "mult",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if num_remainder_embeddings <= 0:
            raise ValueError("num_remainder_embeddings must be positive")
        if operation not in ("mult", "concat"):
            raise ValueError(f"unknown QR operation {operation!r}")
        if operation == "concat" and embedding_dim % 2 != 0:
            raise ValueError("concat variant needs an even embedding_dim")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.num_remainder_embeddings = int(num_remainder_embeddings)
        self.num_quotient_embeddings = math.ceil(vocab_size / self.num_remainder_embeddings)
        self.operation = operation
        self.technique = f"qr_{operation}"
        per_table_dim = embedding_dim if operation == "mult" else embedding_dim // 2
        self.remainder = Parameter(
            init.uniform((self.num_remainder_embeddings, per_table_dim), rng),
            name="remainder",
        )
        self.quotient = Parameter(
            init.uniform((self.num_quotient_embeddings, per_table_dim), rng),
            name="quotient",
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        rem_idx = indices % self.num_remainder_embeddings
        quo_idx = indices // self.num_remainder_embeddings
        x_rem = ops.embedding_lookup(self.remainder, rem_idx)
        x_quo = ops.embedding_lookup(self.quotient, quo_idx)
        if self.operation == "mult":
            return ops.mul(x_rem, x_quo)
        return ops.concat([x_rem, x_quo], axis=-1)
