"""TT-Rec — tensor-train compressed embedding table (Yin et al. 2021).

The paper (§5, "State-of-the-art techniques") reports that TT-Rec results
"were similar to 'factorized embedding' for all datasets; likely because
both these approaches have large number of shared parameters".  This module
implements the technique so that claim can be checked empirically (see
``benchmarks/bench_ablations.py``).

A ``v × e`` table is viewed as a tensor of shape
``(v₁, v₂, v₃) × (e₁, e₂, e₃)`` with ``v₁v₂v₃ ≥ v`` and ``e₁e₂e₃ = e``, and
factorized into three cores::

    G₁ ∈ R^{v₁ × e₁ × r}     G₂ ∈ R^{v₂ × r × e₂ × r}     G₃ ∈ R^{v₃ × r × e₃}

Row ``i`` decomposes into digits ``(i₁, i₂, i₃)`` in the mixed radix
``(v₂·v₃, v₃)``, and its embedding is the chained contraction::

    emb(i) = G₁[i₁] · G₂[i₂] · G₃[i₃]          # (e₁×r)·(r×e₂r)·(r×e₃) → e

Parameters drop from ``v·e`` to ``v₁e₁r + v₂re₂r + v₃re₃`` — cube-root in
``v``.  Every id gets a structurally unique embedding (property 1 of §4),
but the contraction is a heavily *shared* multilinear map, which is exactly
why it behaves like a low-rank factorization on skewed data.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["TTRecEmbedding", "factor_three"]


def factor_three(n: int) -> tuple[int, int, int]:
    """Split ``n`` into three factors with product exactly ``n``, as balanced
    as possible (ascending).  Primes degrade gracefully to ``(1, 1, n)``."""
    if n <= 0:
        raise ValueError("n must be positive")
    best: tuple[int, int, int] = (1, 1, n)
    for a in range(1, int(round(n ** (1 / 3))) + 2):
        if n % a:
            continue
        rest = n // a
        for b in range(a, int(math.isqrt(rest)) + 1):
            if rest % b:
                continue
            c = rest // b
            if c >= b and c - a < best[2] - best[0]:
                best = (a, b, c)
    return best


def _vocab_shape(v: int) -> tuple[int, int, int]:
    """Three index factors with ``v₁·v₂·v₃ ≥ v``, each ≈ v^(1/3).

    Unlike the embedding-dim split, the index space may over-cover the
    vocabulary (padding rows are simply never addressed).
    """
    base = max(1, math.ceil(v ** (1 / 3)))
    v1 = base
    v2 = max(1, math.ceil(math.sqrt(v / v1)))
    v3 = max(1, math.ceil(v / (v1 * v2)))
    return v1, v2, v3


class TTRecEmbedding(CompressedEmbedding):
    """Tensor-train embedding with a single rank knob.

    Parameters
    ----------
    vocab_size:
        Logical vocabulary ``v``; the index space over-covers it.
    embedding_dim:
        Output width ``e``; internally split into three balanced factors.
    tt_rank:
        The train rank ``r`` shared by both internal bonds — the technique's
        compression knob (Yin et al. sweep 8…64 at DLRM scale).
    """

    technique = "tt_rec"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        tt_rank: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if tt_rank <= 0:
            raise ValueError(f"tt_rank must be positive, got {tt_rank}")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.tt_rank = int(tt_rank)
        self.vocab_shape = _vocab_shape(vocab_size)
        self.dim_shape = factor_three(embedding_dim)
        v1, v2, v3 = self.vocab_shape
        e1, e2, e3 = self.dim_shape
        r = self.tt_rank
        # Cores are stored as 2-D (index, flattened-slice) tables so the
        # shared embedding_lookup primitive (and its scatter-add backward)
        # applies; forward reshapes slices back to matrix form.
        # Scale ~ r^(-1/3) per core keeps the product's variance near that of
        # a plain uniform-initialized table.
        scale = 0.05 / r ** (1 / 3)
        self.core1 = Parameter(
            init.uniform((v1, e1 * r), rng, low=-scale, high=scale), name="core1"
        )
        self.core2 = Parameter(
            init.uniform((v2, r * e2 * r), rng, low=-scale, high=scale), name="core2"
        )
        self.core3 = Parameter(
            init.uniform((v3, r * e3), rng, low=-scale, high=scale), name="core3"
        )

    def index_digits(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mixed-radix digits ``(i₁, i₂, i₃)`` addressing the three cores."""
        indices = self._check_indices(indices)
        _, v2, v3 = self.vocab_shape
        return indices // (v2 * v3), (indices // v3) % v2, indices % v3

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        i1, i2, i3 = self.index_digits(indices.ravel())
        e1, e2, e3 = self.dim_shape
        r = self.tt_rank
        n = i1.size
        g1 = ops.reshape(ops.embedding_lookup(self.core1, i1), (n, e1, r))
        g2 = ops.reshape(ops.embedding_lookup(self.core2, i2), (n, r, e2 * r))
        g3 = ops.reshape(ops.embedding_lookup(self.core3, i3), (n, r, e3))
        left = ops.reshape(ops.bmm(g1, g2), (n, e1 * e2, r))  # (n, e1, e2·r) → fold e2
        out = ops.bmm(left, g3)  # (n, e1·e2, e3)
        return ops.reshape(out, tuple(indices.shape) + (self.output_dim,))

    def core_parameters(self) -> tuple[int, int, int]:
        """Per-core parameter counts (for sizing tests and reports)."""
        return (self.core1.size, self.core2.size, self.core3.size)
