"""Hashing-based compression baselines.

* :class:`NaiveHashEmbedding` — the hashing trick on the *number of
  embeddings*: one table of ``m`` rows addressed by ``i mod m``.  Entities in
  the same bucket are indistinguishable; expected per-bucket collision rate
  is ``v/m − 1 + (1 − 1/m)^v`` (§4).
* :class:`DoubleHashEmbedding` — Zhang et al. 2020: two independent hash
  functions into two tables; the concatenated pair collides only when *both*
  hashes collide, dropping the rate to ``v/m² − 1 + (1 − 1/m²)^v``.
* :class:`FrequencyDoubleHashEmbedding` — Zhang et al.'s full
  frequency-based scheme: the most frequent entities keep dedicated rows and
  only the long tail is double-hashed, concentrating collision noise on the
  ids that matter least.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding, universal_hash
from repro.nn import init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["NaiveHashEmbedding", "DoubleHashEmbedding", "FrequencyDoubleHashEmbedding"]


class NaiveHashEmbedding(CompressedEmbedding):
    """Single-table hashed embedding: ``emb(i) = U[i mod m]``.

    The paper's "naive hashing" baseline performs the mod directly on the
    (frequency-sorted) id, which is what ``hash_family="mod"`` does; a
    universal hash family is available for the ablation bench.
    """

    technique = "hash"
    # The salt is state, not a weight: restoring a checkpoint under a
    # different salt would address different rows entirely.
    buffer_names = ("hash_salt",)

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_hash_embeddings: int,
        hash_family: str = "mod",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if num_hash_embeddings <= 0:
            raise ValueError("num_hash_embeddings must be positive")
        if hash_family not in ("mod", "universal"):
            raise ValueError(f"unknown hash_family {hash_family!r}")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.num_hash_embeddings = int(num_hash_embeddings)
        self.hash_family = hash_family
        if hash_family == "universal":
            self.hash_salt = np.array(
                [int(rng.integers(1, 1 << 31)), int(rng.integers(0, 1 << 31))], dtype=np.int64
            )
        else:
            self.hash_salt = np.zeros(2, dtype=np.int64)  # unused for mod
        self.table = Parameter(
            init.uniform((self.num_hash_embeddings, embedding_dim), rng), name="table"
        )

    def hash_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        if self.hash_family == "mod":
            return indices % self.num_hash_embeddings
        a, b = (int(x) for x in self.hash_salt)
        return universal_hash(indices, self.num_hash_embeddings, a, b)

    def forward(self, indices: np.ndarray) -> Tensor:
        return ops.embedding_lookup(self.table, self.hash_indices(indices))


class DoubleHashEmbedding(CompressedEmbedding):
    """Two-hash embedding (Zhang et al. 2020): concat of two hashed lookups.

    Each table holds ``e/2``-dim rows so the concatenated output matches the
    sweep's common width.  The two hash functions are independent draws from
    a 2-universal family; ids collide in the *composed* representation only
    if they collide under both, which the collision analytics in
    :mod:`repro.core.collisions` quantify.
    """

    technique = "double_hash"
    buffer_names = ("hash_salt",)

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_hash_embeddings: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if num_hash_embeddings <= 0:
            raise ValueError("num_hash_embeddings must be positive")
        if embedding_dim % 2 != 0:
            raise ValueError("double hashing needs an even embedding_dim")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.num_hash_embeddings = int(num_hash_embeddings)
        half = embedding_dim // 2
        self.hash_salt = np.array(
            [
                int(rng.integers(1, 1 << 31)),
                int(rng.integers(0, 1 << 31)),
                int(rng.integers(1, 1 << 31)),
                int(rng.integers(0, 1 << 31)),
            ],
            dtype=np.int64,
        )
        self.table1 = Parameter(
            init.uniform((self.num_hash_embeddings, half), rng), name="table1"
        )
        self.table2 = Parameter(
            init.uniform((self.num_hash_embeddings, half), rng), name="table2"
        )

    def hash_indices(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        indices = self._check_indices(indices)
        a1, b1, a2, b2 = (int(x) for x in self.hash_salt)
        h1 = universal_hash(indices, self.num_hash_embeddings, a1, b1)
        h2 = universal_hash(indices, self.num_hash_embeddings, a2, b2)
        return h1, h2

    def forward(self, indices: np.ndarray) -> Tensor:
        h1, h2 = self.hash_indices(indices)
        return ops.concat(
            [ops.embedding_lookup(self.table1, h1), ops.embedding_lookup(self.table2, h2)],
            axis=-1,
        )


class FrequencyDoubleHashEmbedding(CompressedEmbedding):
    """Frequency-based double hashing (Zhang et al. 2020, RecSys).

    The ``keep`` most frequent ids (which, under the §5.1 frequency-sorted
    id assignment, are simply ids ``0 … keep−1``) each own a dedicated
    full-width row; all rarer ids share a :class:`DoubleHashEmbedding` of
    ``m`` rows per half-table.  This is the variant Twitter deployed: head
    entities dominate both traffic and metric impact, so giving them
    collision-free rows buys most of the accuracy of a full table at a
    fraction of the size.
    """

    technique = "freq_double_hash"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_hash_embeddings: int,
        keep: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if num_hash_embeddings <= 0:
            raise ValueError("num_hash_embeddings must be positive")
        rng = ensure_rng(rng)
        keep = num_hash_embeddings if keep is None else int(keep)
        if not 0 < keep <= vocab_size:
            raise ValueError(f"keep must be in (0, {vocab_size}], got {keep}")
        self.embedding_dim = embedding_dim
        self.num_hash_embeddings = int(num_hash_embeddings)
        self.keep = keep
        self.head = Parameter(init.uniform((keep, embedding_dim), rng), name="head")
        self.tail = DoubleHashEmbedding(
            vocab_size, embedding_dim, num_hash_embeddings, rng=rng
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        is_head = indices < self.keep
        # Both paths are evaluated batch-wide and gated by the mask: out-of-
        # path ids are clamped into range so the lookups stay vectorized, and
        # the mask zeroes both their forward value and backward gradient.
        head = ops.embedding_lookup(self.head, np.where(is_head, indices, 0))
        tail = self.tail(indices)
        gate = is_head.astype(np.float32)[..., None]
        return ops.add(ops.mul(head, Tensor(gate)), ops.mul(tail, Tensor(1.0 - gate)))
