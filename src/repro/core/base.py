"""Common interface for embedding-compression techniques.

Every technique in :mod:`repro.core` maps integer category ids (any shape,
typically ``(batch, input_length)``) to dense vectors, exposing:

* ``vocab_size`` — the logical vocabulary ``v`` being represented,
* ``output_dim`` — the dimensionality downstream layers receive,
* ``forward(indices) -> Tensor`` of shape ``indices.shape + (output_dim,)``.

Ids are assumed **frequency-sorted**: id 1 is the most popular entity, as the
paper prescribes in §5.1 ("we used frequency-based mapping for the
vocabulary") and as Algorithm 2 requires ("determine index i of category x
(sorted by frequency)").  :mod:`repro.data.vocab` produces such mappings.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["CompressedEmbedding", "universal_hash", "HASH_PRIME"]

# A Mersenne prime comfortably above every vocabulary in Table 2; universal
# hashing needs p > max id.
HASH_PRIME = (1 << 61) - 1


class CompressedEmbedding(Module):
    """Abstract base for all embedding representations (including the full
    uncompressed table, which is the identity 'compression')."""

    #: registry name, set by subclasses
    technique: str = "abstract"

    def __init__(self, vocab_size: int, output_dim: int) -> None:
        super().__init__()
        if vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {vocab_size}")
        if output_dim <= 0:
            raise ValueError(f"output_dim must be positive, got {output_dim}")
        self.vocab_size = vocab_size
        self.output_dim = output_dim

    def forward(self, indices: np.ndarray) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.dtype.kind not in "iu":
            raise TypeError(f"category ids must be integers, got {indices.dtype}")
        if indices.size and (indices.min() < 0 or indices.max() >= self.vocab_size):
            raise IndexError(
                f"category id out of range [0, {self.vocab_size}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return indices

    def table_parameters(self) -> int:
        """Parameters belonging to the embedding representation itself."""
        return self.num_parameters()

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(technique={self.technique!r}, v={self.vocab_size}, "
            f"dim={self.output_dim}, params={self.table_parameters()})"
        )


def universal_hash(indices: np.ndarray, m: int, a: int, b: int) -> np.ndarray:
    """Salted 64-bit mixing hash of ids into ``[0, m)``.

    ``(a, b)`` select a member of the family (two members behave like
    independent hash functions, which double hashing requires).  The mixer
    is the splitmix64 finalizer — a naive affine hash ``(a·i + b) mod m``
    is *not* good enough here: for ids below the modulus it degenerates to
    a function of ``i mod m``, making the two double-hashing functions
    perfectly correlated and destroying the ``1/m²`` collision rate the
    technique is built on.
    """
    if m <= 0:
        raise ValueError("hash range m must be positive")
    if not 1 <= a < HASH_PRIME or not 0 <= b < HASH_PRIME:
        raise ValueError("hash coefficients out of range")
    idx = np.asarray(indices)
    if idx.dtype.kind not in "iu":
        raise TypeError(f"hash input must be integers, got {idx.dtype}")
    with np.errstate(over="ignore"):
        z = idx.astype(np.uint64) + np.uint64(a & 0xFFFFFFFFFFFFFFFF)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = z + np.uint64(b & 0xFFFFFFFFFFFFFFFF) * np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(m)).astype(np.int64)
