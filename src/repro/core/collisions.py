"""Collision analytics and the §4 properties table.

The paper motivates MEmCom with collision-rate formulas:

* naive hashing:   ``v/m − 1 + (1 − 1/m)^v``
* double hashing:  ``v/m² − 1 + (1 − 1/m²)^v``

Both are the expected number of *colliding entities per bucket*: with ``v``
balls in ``m`` bins, the expected number of occupied bins is
``m(1 − (1 − 1/m)^v)``, so ``v − m(1 − (1 − 1/m)^v)`` entities share a bin
with an earlier one; dividing by ``m`` gives the paper's expression.  Double
hashing behaves like hashing into ``m²`` composite bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "expected_occupied_buckets",
    "expected_colliding_entities",
    "naive_hash_collision_rate",
    "double_hash_collision_rate",
    "empirical_collision_stats",
    "PROPERTIES_TABLE",
    "TechniqueProperties",
]


def expected_occupied_buckets(v: int, m: int) -> float:
    """E[# occupied bins] after throwing ``v`` balls into ``m`` bins."""
    _check(v, m)
    return m * (1.0 - (1.0 - 1.0 / m) ** v)


def expected_colliding_entities(v: int, m: int) -> float:
    """E[# entities that share a bin with an earlier entity]."""
    _check(v, m)
    return v - expected_occupied_buckets(v, m)


def naive_hash_collision_rate(v: int, m: int) -> float:
    """Per-bucket collision rate of naive hashing: ``v/m − 1 + (1 − 1/m)^v``."""
    _check(v, m)
    return v / m - 1.0 + (1.0 - 1.0 / m) ** v


def double_hash_collision_rate(v: int, m: int) -> float:
    """Per-bucket rate for double hashing: ``v/m² − 1 + (1 − 1/m²)^v``."""
    _check(v, m)
    m2 = float(m) * m
    return v / m2 - 1.0 + (1.0 - 1.0 / m2) ** v


@dataclass(frozen=True)
class CollisionStats:
    """Empirical collision measurement over one hashed representation.

    ``num_colliding_entities`` counts entities that landed in a bucket
    already claimed by an earlier entity (``v − occupied buckets``) — the
    quantity the paper's rate formula describes.  ``num_shared_entities``
    counts every entity whose bucket holds ≥ 2 entities (none of them has
    a private representation).
    """

    num_entities: int
    num_buckets_used: int
    num_colliding_entities: int
    num_shared_entities: int
    max_bucket_load: int

    @property
    def collision_fraction(self) -> float:
        """Fraction of entities without a private representation."""
        return self.num_shared_entities / self.num_entities if self.num_entities else 0.0


def empirical_collision_stats(hashed_ids: np.ndarray) -> CollisionStats:
    """Measure collisions of a concrete hash assignment.

    ``hashed_ids[i]`` is entity ``i``'s representation key.  For composed
    schemes (double hashing), pass the composite key, e.g.
    ``h1 * m + h2``.
    """
    hashed_ids = np.asarray(hashed_ids)
    if hashed_ids.ndim != 1:
        raise ValueError("hashed_ids must be a flat per-entity array")
    v = hashed_ids.size
    if v == 0:
        return CollisionStats(0, 0, 0, 0, 0)
    _, counts = np.unique(hashed_ids, return_counts=True)
    used = counts.size
    shared = int((counts[counts > 1]).sum())
    return CollisionStats(v, used, v - used, shared, int(counts.max()))


@dataclass(frozen=True)
class TechniqueProperties:
    """One row of the §4 properties table."""

    technique: str
    unique_vector: bool | None  # None = N/A in the paper's table
    simple_operator: bool | None
    handles_power_law: bool


#: The paper's §4 summary table, as data the properties bench renders.
PROPERTIES_TABLE: tuple[TechniqueProperties, ...] = (
    TechniqueProperties("low_rank", True, None, False),
    TechniqueProperties("quotient_remainder", True, False, True),
    TechniqueProperties("hash", False, None, True),
    TechniqueProperties("double_hash", False, True, True),
    TechniqueProperties("memcom", True, True, True),
)


def _check(v: int, m: int) -> None:
    if v <= 0 or m <= 0:
        raise ValueError("v and m must be positive")
