"""Technique registry: build any compression technique by name.

The experiment sweeps are driven by (technique-name, hyperparameter) pairs;
this registry is the single place that maps those names to constructors, so
harnesses, examples and tests all agree on spelling and required knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.core.full import FullEmbedding
from repro.core.hashing import (
    DoubleHashEmbedding,
    FrequencyDoubleHashEmbedding,
    NaiveHashEmbedding,
)
from repro.core.low_rank import FactorizedEmbedding, ReducedDimEmbedding
from repro.core.memcom import MEmComEmbedding
from repro.core.mixed_dim import MixedDimEmbedding
from repro.core.onehot import HashedOneHotEncoder
from repro.core.quotient_remainder import QREmbedding
from repro.core.truncate import TruncateRareEmbedding
from repro.core.tt_rec import TTRecEmbedding

__all__ = ["TechniqueSpec", "available_techniques", "build_embedding", "technique_spec"]


@dataclass(frozen=True)
class TechniqueSpec:
    """Registry entry: how to build a technique and what knobs it needs."""

    name: str
    builder: Callable[..., CompressedEmbedding]
    #: hyperparameter names the builder requires beyond (vocab, dim, rng)
    requires: tuple[str, ...]
    #: one-line description used in reports
    summary: str


def _build_full(vocab_size, embedding_dim, rng, **_):
    return FullEmbedding(vocab_size, embedding_dim, rng=rng)


def _build_memcom(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **kw):
    return MEmComEmbedding(
        vocab_size,
        embedding_dim,
        num_hash_embeddings,
        bias=True,
        multiplier_init=kw.get("multiplier_init", "ones"),
        rng=rng,
    )


def _build_memcom_nobias(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **kw):
    return MEmComEmbedding(
        vocab_size,
        embedding_dim,
        num_hash_embeddings,
        bias=False,
        multiplier_init=kw.get("multiplier_init", "ones"),
        rng=rng,
    )


def _build_qr_mult(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **_):
    return QREmbedding(vocab_size, embedding_dim, num_hash_embeddings, operation="mult", rng=rng)


def _build_qr_concat(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **_):
    return QREmbedding(
        vocab_size, embedding_dim, num_hash_embeddings, operation="concat", rng=rng
    )


def _build_hash(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **kw):
    return NaiveHashEmbedding(
        vocab_size,
        embedding_dim,
        num_hash_embeddings,
        hash_family=kw.get("hash_family", "mod"),
        rng=rng,
    )


def _build_double_hash(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **_):
    return DoubleHashEmbedding(vocab_size, embedding_dim, num_hash_embeddings, rng=rng)


def _build_factorized(vocab_size, embedding_dim, rng, *, hidden_dim, **_):
    return FactorizedEmbedding(vocab_size, embedding_dim, hidden_dim, rng=rng)


def _build_reduce_dim(vocab_size, embedding_dim, rng, *, reduced_dim, **_):
    # embedding_dim (the sweep's nominal width) is ignored: this technique's
    # whole point is that the output is narrower.
    return ReducedDimEmbedding(vocab_size, reduced_dim, rng=rng)


def _build_truncate_rare(vocab_size, embedding_dim, rng, *, keep, **_):
    return TruncateRareEmbedding(vocab_size, embedding_dim, keep, rng=rng)


def _build_hashed_onehot(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **kw):
    return HashedOneHotEncoder(
        vocab_size,
        embedding_dim,
        num_hash_embeddings,
        signed=kw.get("signed", True),
        rng=rng,
    )


def _build_freq_double_hash(vocab_size, embedding_dim, rng, *, num_hash_embeddings, **kw):
    return FrequencyDoubleHashEmbedding(
        vocab_size,
        embedding_dim,
        num_hash_embeddings,
        keep=kw.get("keep"),
        rng=rng,
    )


def _build_tt_rec(vocab_size, embedding_dim, rng, *, tt_rank, **_):
    return TTRecEmbedding(vocab_size, embedding_dim, tt_rank, rng=rng)


def _build_mixed_dim(vocab_size, embedding_dim, rng, *, num_blocks, **kw):
    return MixedDimEmbedding(
        vocab_size,
        embedding_dim,
        num_blocks,
        temperature=kw.get("temperature", 0.63),
        rng=rng,
    )


_REGISTRY: dict[str, TechniqueSpec] = {
    spec.name: spec
    for spec in [
        TechniqueSpec("full", _build_full, (), "uncompressed v×e table (baseline)"),
        TechniqueSpec(
            "memcom",
            _build_memcom,
            ("num_hash_embeddings",),
            "MEmCom with per-entity scalar bias (Algorithm 3)",
        ),
        TechniqueSpec(
            "memcom_nobias",
            _build_memcom_nobias,
            ("num_hash_embeddings",),
            "MEmCom without bias (Algorithm 2)",
        ),
        TechniqueSpec(
            "qr_mult",
            _build_qr_mult,
            ("num_hash_embeddings",),
            "quotient-remainder trick, elementwise-multiply composition",
        ),
        TechniqueSpec(
            "qr_concat",
            _build_qr_concat,
            ("num_hash_embeddings",),
            "quotient-remainder trick, concat composition",
        ),
        TechniqueSpec(
            "hash", _build_hash, ("num_hash_embeddings",), "naive hashing (i mod m)"
        ),
        TechniqueSpec(
            "double_hash",
            _build_double_hash,
            ("num_hash_embeddings",),
            "double hashing (Zhang et al. 2020)",
        ),
        TechniqueSpec(
            "factorized",
            _build_factorized,
            ("hidden_dim",),
            "factorized embedding parameterization (Lan et al. 2019)",
        ),
        TechniqueSpec(
            "reduce_dim", _build_reduce_dim, ("reduced_dim",), "smaller embedding dimension"
        ),
        TechniqueSpec(
            "truncate_rare", _build_truncate_rare, ("keep",), "drop rare entities to one OOV row"
        ),
        TechniqueSpec(
            "hashed_onehot",
            _build_hashed_onehot,
            ("num_hash_embeddings",),
            "Weinberger feature hashing on one-hot inputs",
        ),
        TechniqueSpec(
            "freq_double_hash",
            _build_freq_double_hash,
            ("num_hash_embeddings",),
            "frequency-based double hashing: dedicated head rows + hashed tail",
        ),
        TechniqueSpec(
            "tt_rec",
            _build_tt_rec,
            ("tt_rank",),
            "tensor-train factorized table (TT-Rec, Yin et al. 2021)",
        ),
        TechniqueSpec(
            "mixed_dim",
            _build_mixed_dim,
            ("num_blocks",),
            "mixed-dimension blocked embedding (Ginart et al. 2019)",
        ),
    ]
}


def available_techniques() -> list[str]:
    """Names accepted by :func:`build_embedding`, in registry order."""
    return list(_REGISTRY)


def technique_spec(name: str) -> TechniqueSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown technique {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def build_embedding(
    technique: str,
    vocab_size: int,
    embedding_dim: int,
    rng: np.random.Generator | int | None = None,
    **hyper,
) -> CompressedEmbedding:
    """Instantiate ``technique`` for a ``vocab_size`` vocabulary.

    ``hyper`` must include the keys listed in the technique's
    :class:`TechniqueSpec.requires`; extra keys that a builder does not
    understand are rejected to catch sweep typos early.
    """
    spec = technique_spec(technique)
    missing = [k for k in spec.requires if k not in hyper]
    if missing:
        raise TypeError(f"technique {technique!r} requires hyperparameters {missing}")
    known = set(spec.requires) | {"multiplier_init", "hash_family", "signed", "keep", "temperature"}
    unknown = set(hyper) - known
    if unknown:
        raise TypeError(f"technique {technique!r} got unknown hyperparameters {sorted(unknown)}")
    return spec.builder(vocab_size, embedding_dim, rng, **hyper)
