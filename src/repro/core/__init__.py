"""`repro.core` — MEmCom and every embedding-compression baseline.

The paper's contribution (:class:`MEmComEmbedding`, Algorithms 2–3) plus all
techniques it compares against, a name-based registry for sweeps, analytic
sizing math, collision analytics, and the Appendix A.4 uniqueness audit.
"""

from repro.core.base import HASH_PRIME, CompressedEmbedding, universal_hash
from repro.core.collisions import (
    PROPERTIES_TABLE,
    CollisionStats,
    TechniqueProperties,
    double_hash_collision_rate,
    empirical_collision_stats,
    expected_colliding_entities,
    expected_occupied_buckets,
    naive_hash_collision_rate,
)
from repro.core.full import FullEmbedding, ShardedFullEmbedding
from repro.core.hashing import (
    DoubleHashEmbedding,
    FrequencyDoubleHashEmbedding,
    NaiveHashEmbedding,
)
from repro.core.low_rank import FactorizedEmbedding, ReducedDimEmbedding
from repro.core.memcom import MEmComEmbedding, ShardedMEmComEmbedding
from repro.core.mixed_dim import MixedDimEmbedding, block_dims, block_partition
from repro.core.onehot import HashedOneHotEncoder
from repro.core.quotient_remainder import QREmbedding
from repro.core.tt_rec import TTRecEmbedding, factor_three
from repro.core.registry import (
    TechniqueSpec,
    available_techniques,
    build_embedding,
    technique_spec,
)
from repro.core.sizing import (
    bytes_for_params,
    compression_ratio,
    embedding_param_count,
    params_for_bytes,
    solve_embedding_dim,
)
from repro.core.truncate import TruncateRareEmbedding
from repro.core.uniqueness import UniquenessReport, audit_uniqueness, count_close_pairs

__all__ = [
    "HASH_PRIME",
    "PROPERTIES_TABLE",
    "CollisionStats",
    "CompressedEmbedding",
    "DoubleHashEmbedding",
    "FactorizedEmbedding",
    "FrequencyDoubleHashEmbedding",
    "FullEmbedding",
    "HashedOneHotEncoder",
    "MEmComEmbedding",
    "MixedDimEmbedding",
    "NaiveHashEmbedding",
    "QREmbedding",
    "ReducedDimEmbedding",
    "ShardedFullEmbedding",
    "ShardedMEmComEmbedding",
    "TTRecEmbedding",
    "TechniqueProperties",
    "TechniqueSpec",
    "TruncateRareEmbedding",
    "UniquenessReport",
    "audit_uniqueness",
    "available_techniques",
    "block_dims",
    "block_partition",
    "build_embedding",
    "factor_three",
    "bytes_for_params",
    "compression_ratio",
    "count_close_pairs",
    "double_hash_collision_rate",
    "embedding_param_count",
    "empirical_collision_stats",
    "expected_colliding_entities",
    "expected_occupied_buckets",
    "naive_hash_collision_rate",
    "params_for_bytes",
    "solve_embedding_dim",
    "technique_spec",
    "universal_hash",
]
