"""Uniqueness audits: A.4's multiplier check plus the §4 empirical table.

The paper's A.4 sanity check: after training, group entities by shared hash
bucket and measure the fraction of same-bucket multiplier *pairs* that
differ by more than a tolerance (1e-5 in the paper; they report > 99.98%
distinct at 40× compression on Arcade).

The pair count is computed exactly in O(k log k) per bucket: sort the
bucket's multipliers and count pairs within tolerance with a vectorized
binary search (``np.searchsorted`` of the sorted values against their
tolerance-shifted selves), instead of materializing the O(k²) pair matrix.

:func:`unique_embedding_fraction` generalizes the audit to *any* technique:
the fraction of vocabulary entries with an embedding distinct from every
other entry — the measurable form of §4's "unique vector" column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.core.memcom import MEmComEmbedding

__all__ = [
    "UniquenessReport",
    "audit_uniqueness",
    "count_close_pairs",
    "unique_embedding_fraction",
]


@dataclass(frozen=True)
class UniquenessReport:
    """Outcome of the A.4 audit."""

    total_pairs: int
    distinct_pairs: int
    tolerance: float
    buckets_with_collisions: int
    largest_bucket: int

    @property
    def fraction_distinct(self) -> float:
        """Fraction of same-bucket pairs whose multipliers differ > tolerance."""
        if self.total_pairs == 0:
            # No two entities share a bucket — uniqueness holds trivially.
            return 1.0
        return self.distinct_pairs / self.total_pairs

    def passes(self, threshold: float = 0.999) -> bool:
        return self.fraction_distinct >= threshold


def count_close_pairs(values: np.ndarray, tolerance: float) -> int:
    """Number of unordered pairs with ``|a − b| <= tolerance`` (exact).

    Vectorized over sorted values: for each j, the i < j with
    ``v[j] − v[i] <= tol`` form the contiguous run ``[left(j), j)`` where
    ``left(j)`` is the first index with ``v[i] >= v[j] − tol`` — one
    ``np.searchsorted`` of the array against its shifted self replaces the
    former O(v) Python two-pointer sweep (kept as
    :func:`_count_close_pairs_loop` for the regression tests) while counting
    exactly the same pairs.

    Non-finite values (a diverged multiplier is still auditable data):
    **NaN** is within tolerance of nothing, itself included, and contributes
    no pairs — it is dropped up front, which also keeps the sorted-array
    boundary search well-defined (NaNs sort last and would otherwise poison
    the searchsorted invariant).  **Equal infinities** are distance 0 and
    count as close; an infinity and any finite value are never close.
    ``tests/core/test_close_pairs_edges.py`` pins these edges against the
    loop and a brute-force reference.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    v = np.asarray(values, dtype=np.float64)
    v = np.sort(v[~np.isnan(v)])
    if v.size < 2:
        return 0
    if np.isinf(tolerance):
        # Every pair is within an infinite tolerance — and the shifted
        # search below would produce inf − inf = NaN keys, which break the
        # sorted-search invariant.
        return v.size * (v.size - 1) // 2
    left = np.searchsorted(v, v - tolerance, side="left")
    idx = np.arange(v.size)
    # ``v - tolerance`` rounds, so near the boundary the candidate can sit
    # off the predicate the reference loop evaluates (``v[j] - v[i] <= tol``
    # in float subtraction, which is monotone in i).  Correct each boundary
    # until it agrees exactly, jumping over whole runs of equal values per
    # pass (the predicate depends on ``v[i]`` only, so a run flips as one) —
    # passes are bounded by distinct values crossed, almost always 0.
    # ``inf − inf = NaN`` compares false on both predicates, which is what
    # keeps equal-infinity runs intact (distance 0, close).
    with np.errstate(invalid="ignore"):
        while True:
            over = (left < idx) & (v - v[left] > tolerance)
            if not over.any():
                break
            left[over] = np.searchsorted(v, v[left[over]], side="right")
        while True:
            expand = (left > 0) & (v - v[np.maximum(left - 1, 0)] <= tolerance)
            if not expand.any():
                break
            left[expand] = np.searchsorted(v, v[left[expand] - 1], side="left")
    return int((idx - left).sum())


def _count_close_pairs_loop(values: np.ndarray, tolerance: float) -> int:
    """Reference implementation: the original Python two-pointer sweep.

    Shares :func:`count_close_pairs`' non-finite semantics (NaNs dropped;
    ``inf − inf = NaN > tol`` is false, so equal infinities stay close).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    v = np.asarray(values, dtype=np.float64)
    v = np.sort(v[~np.isnan(v)])
    close = 0
    left = 0
    with np.errstate(invalid="ignore"):
        for j in range(v.size):
            while v[j] - v[left] > tolerance:
                left += 1
            close += j - left
    return close


def audit_uniqueness(
    embedding: MEmComEmbedding,
    tolerance: float = 1e-5,
) -> UniquenessReport:
    """Run the A.4 audit on a (trained) MEmCom embedding.

    Considers every bucket ``j = i mod m`` with ≥ 2 member ids; within each,
    counts multiplier pairs that are within ``tolerance`` (i.e. effectively
    equal ⇒ the two entities share an embedding).
    """
    mults = embedding.multipliers()
    v = embedding.vocab_size
    m = embedding.num_hash_embeddings
    buckets = np.arange(v) % m
    order = np.argsort(buckets, kind="stable")
    sorted_buckets = buckets[order]
    boundaries = np.flatnonzero(np.diff(sorted_buckets)) + 1
    groups = np.split(order, boundaries)

    total_pairs = 0
    close_pairs = 0
    buckets_with_collisions = 0
    largest = 0
    for member_ids in groups:
        k = member_ids.size
        largest = max(largest, k)
        if k < 2:
            continue
        buckets_with_collisions += 1
        total_pairs += k * (k - 1) // 2
        close_pairs += count_close_pairs(mults[member_ids], tolerance)

    return UniquenessReport(
        total_pairs=total_pairs,
        distinct_pairs=total_pairs - close_pairs,
        tolerance=tolerance,
        buckets_with_collisions=buckets_with_collisions,
        largest_bucket=largest,
    )


def unique_embedding_fraction(
    embedding: CompressedEmbedding,
    sample: int | None = None,
    decimals: int = 6,
    rng: np.random.Generator | int | None = None,
    batch: int = 4096,
) -> float:
    """Fraction of (sampled) ids whose embedding no other sampled id shares.

    This is §4's "unique vector" property measured instead of asserted:
    naive hashing scores ≈ m/v, double hashing close to but below 1, and
    MEmCom / QR / factorized ≈ 1.  Embeddings are compared after rounding to
    ``decimals`` so float noise does not mask true sharing.
    """
    from repro.utils.rng import ensure_rng

    v = embedding.vocab_size
    if sample is not None and sample < v:
        ids = np.sort(ensure_rng(rng).choice(v, size=sample, replace=False))
    else:
        ids = np.arange(v)
    rows = []
    for start in range(0, ids.size, batch):
        # Probe as length-1 windows: pooling encoders (hashed one-hot)
        # require a (batch, length) shape; lookup techniques broadcast.
        out = embedding(ids[start : start + batch, None]).numpy()
        rows.append(out.reshape(out.shape[0], -1))
    table = np.round(np.concatenate(rows, axis=0), decimals)
    _, inverse, counts = np.unique(
        table, axis=0, return_inverse=True, return_counts=True
    )
    return float((counts[inverse] == 1).mean())
