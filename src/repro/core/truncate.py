"""Truncate-rare baseline ("a dumb compression technique", §5.1).

Keep a private embedding row for the ``keep`` most popular entities and
collapse everything rarer into one shared out-of-vocabulary row.  Because ids
are frequency-sorted (id 0 = padding, low ids = popular), truncation is the
range test ``i <= keep``.  On heavily skewed data (Arcade) this is a strong
baseline — the paper reports it beating several sophisticated techniques —
yet MEmCom still outperforms it by 2×.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["TruncateRareEmbedding"]


class TruncateRareEmbedding(CompressedEmbedding):
    """Top-``keep`` private rows plus one shared OOV row.

    Row layout: rows ``0…keep`` are the private rows for ids ``0…keep``
    (id 0 is the padding id and keeps its own row); row ``keep+1`` is the
    shared OOV row for every id ``> keep``.
    """

    technique = "truncate_rare"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        keep: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if not 0 < keep <= vocab_size:
            raise ValueError(f"keep must be in (0, {vocab_size}], got {keep}")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.keep = int(keep)
        self.table = Parameter(
            init.uniform((self.keep + 2, embedding_dim), rng), name="table"
        )

    def truncated_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        return np.where(indices <= self.keep, indices, self.keep + 1)

    def forward(self, indices: np.ndarray) -> Tensor:
        return ops.embedding_lookup(self.table, self.truncated_indices(indices))
