"""Dimension-reducing baselines.

* :class:`FactorizedEmbedding` — factorized embedding parameterization (Lan
  et al. 2019 / ALBERT): a narrow ``v × h`` table followed by a linear
  ``h → e`` projection, keeping the downstream width at ``e``.
* :class:`ReducedDimEmbedding` — simply train a ``v × d`` table with
  ``d < e``; downstream layer widths shrink with it (the paper's "reduce
  embedding dim" sweep over 128…4).

Both satisfy the unique-vector property of §4 but ignore the power-law
distribution of categories, which is why the paper finds them weak outside
Newsgroup.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.layers import Dense
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["FactorizedEmbedding", "ReducedDimEmbedding"]


class FactorizedEmbedding(CompressedEmbedding):
    """Low-rank factorization ``E ≈ A·B`` with ``A: v×h``, ``B: h×e``.

    ``h`` (the hidden size) is the compression knob; parameters drop from
    ``v·e`` to ``v·h + h·e``.  The projection has no bias, matching ALBERT's
    factorized embedding parameterization.
    """

    technique = "factorized"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.hidden_dim = int(hidden_dim)
        self.table = Parameter(init.uniform((vocab_size, self.hidden_dim), rng), name="table")
        self.projection = Dense(self.hidden_dim, embedding_dim, use_bias=False, rng=rng)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        narrow = ops.embedding_lookup(self.table, indices)
        return self.projection(narrow)


class ReducedDimEmbedding(CompressedEmbedding):
    """Plain table with a smaller embedding dimension ``d``.

    ``output_dim`` equals ``d``, so the model builder shrinks every
    downstream layer accordingly — this is the only technique in the sweep
    whose output width differs from the baseline's 256.
    """

    technique = "reduce_dim"

    def __init__(
        self,
        vocab_size: int,
        reduced_dim: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, reduced_dim)
        rng = ensure_rng(rng)
        self.embedding_dim = reduced_dim
        self.table = Parameter(init.uniform((vocab_size, reduced_dim), rng), name="table")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        return ops.embedding_lookup(self.table, indices)
