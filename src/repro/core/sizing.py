"""Analytic parameter counting and the fixed-budget solver (Figure 6).

The experiment harness needs parameter counts *before* building models —
to pick sweep grids and, for the fixed-model-size experiment (Appendix A.1),
to binary-search the embedding size that exactly exhausts a byte budget for
a given number of hash embeddings.  Tests pin these formulas to the actual
``num_parameters()`` of built modules so they can never drift.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = [
    "embedding_param_count",
    "bytes_for_params",
    "params_for_bytes",
    "solve_embedding_dim",
    "compression_ratio",
]


def embedding_param_count(
    technique: str,
    vocab_size: int,
    embedding_dim: int,
    **hyper: int,
) -> int:
    """Parameters of ``technique``'s embedding representation.

    Mirrors the constructors in :mod:`repro.core`; see
    ``tests/core/test_sizing.py`` for the pinning tests.
    """
    v, e = vocab_size, embedding_dim
    if v <= 0 or e <= 0:
        raise ValueError("vocab_size and embedding_dim must be positive")
    if technique == "full":
        return v * e
    if technique in ("memcom", "memcom_nobias"):
        m = _require(hyper, "num_hash_embeddings")
        per_entity = 2 if technique == "memcom" else 1
        return m * e + per_entity * v
    if technique == "qr_mult":
        m = _require(hyper, "num_hash_embeddings")
        return m * e + math.ceil(v / m) * e
    if technique == "qr_concat":
        m = _require(hyper, "num_hash_embeddings")
        if e % 2:
            raise ValueError("qr_concat needs an even embedding_dim")
        return (m + math.ceil(v / m)) * (e // 2)
    if technique == "hash":
        m = _require(hyper, "num_hash_embeddings")
        return m * e
    if technique == "double_hash":
        m = _require(hyper, "num_hash_embeddings")
        if e % 2:
            raise ValueError("double_hash needs an even embedding_dim")
        return 2 * m * (e // 2)
    if technique == "factorized":
        h = _require(hyper, "hidden_dim")
        return v * h + h * e
    if technique == "reduce_dim":
        d = _require(hyper, "reduced_dim")
        return v * d
    if technique == "truncate_rare":
        keep = _require(hyper, "keep")
        return (keep + 2) * e
    if technique == "hashed_onehot":
        m = _require(hyper, "num_hash_embeddings")
        return m * e
    if technique == "freq_double_hash":
        m = _require(hyper, "num_hash_embeddings")
        if e % 2:
            raise ValueError("freq_double_hash needs an even embedding_dim")
        keep = int(hyper.get("keep") or m)
        return keep * e + 2 * m * (e // 2)
    if technique == "tt_rec":
        from repro.core.tt_rec import _vocab_shape, factor_three

        r = _require(hyper, "tt_rank")
        v1, v2, v3 = _vocab_shape(v)
        e1, e2, e3 = factor_three(e)
        return v1 * e1 * r + v2 * r * e2 * r + v3 * r * e3
    if technique == "mixed_dim":
        from repro.core.mixed_dim import block_dims, block_partition

        blocks = block_partition(v, _require(hyper, "num_blocks"))
        dims = block_dims(e, len(blocks), float(hyper.get("temperature", 0.63)))
        return sum(
            (stop - start) * d + (d * e if d != e else 0)
            for (start, stop), d in zip(blocks, dims)
        )
    raise KeyError(f"unknown technique {technique!r}")


def bytes_for_params(num_params: int, precision_bits: int = 32) -> int:
    """On-disk bytes for ``num_params`` weights at ``precision_bits`` each."""
    if precision_bits not in (32, 16, 8, 4, 2, 1):
        raise ValueError(f"unsupported precision {precision_bits} bits")
    return math.ceil(num_params * precision_bits / 8)


def params_for_bytes(num_bytes: int, precision_bits: int = 32) -> int:
    """Largest parameter count that fits in ``num_bytes``."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return num_bytes * 8 // precision_bits


def solve_embedding_dim(
    target_params: int,
    params_for_dim: Callable[[int], int],
    min_dim: int = 1,
    max_dim: int = 4096,
) -> int:
    """Largest ``e`` with ``params_for_dim(e) <= target_params``.

    This is the "simple binary search to find the embedding size for the
    corresponding number of embeddings" of Appendix A.1.  ``params_for_dim``
    must be non-decreasing in ``e`` (total model parameters always are).
    Raises ``ValueError`` when even ``min_dim`` exceeds the budget.
    """
    if params_for_dim(min_dim) > target_params:
        raise ValueError(
            f"budget {target_params} too small: dim {min_dim} already needs "
            f"{params_for_dim(min_dim)} parameters"
        )
    lo, hi = min_dim, max_dim
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if params_for_dim(mid) <= target_params:
            lo = mid
        else:
            hi = mid - 1
    return lo


def compression_ratio(baseline_params: int, compressed_params: int) -> float:
    """The paper's x-axis: baseline params / technique params (all layers)."""
    if baseline_params <= 0 or compressed_params <= 0:
        raise ValueError("parameter counts must be positive")
    return baseline_params / compressed_params


def _require(hyper: dict[str, int], key: str) -> int:
    try:
        value = int(hyper[key])
    except KeyError:
        raise TypeError(f"missing hyperparameter {key!r}") from None
    if value <= 0:
        raise ValueError(f"{key} must be positive, got {value}")
    return value
