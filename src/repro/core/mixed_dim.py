"""Mixed-dimension embeddings (Ginart et al. 2019).

The paper (§5) evaluates mixed-dimension embeddings as "a blocked extension
of 'factorized embedding'": the frequency-sorted vocabulary is partitioned
into blocks, each block gets its own narrow table whose width shrinks with
popularity (popularity-based dimension sizing, controlled by a temperature),
and a per-block linear projection restores the common output width.

With frequency-sorted ids the blocks are contiguous ranges, so block
membership is a pair of comparisons.  Block sizes grow geometrically — the
head block holds few, popular entities at (near) full width; tail blocks
hold the long tail at a fraction of it.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.layers import Dense
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["MixedDimEmbedding", "block_partition", "block_dims"]


def block_partition(vocab_size: int, num_blocks: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges with geometrically growing sizes.

    Block k holds ~2× the entities of block k−1, so the most popular sliver
    of the vocabulary sits alone in the smallest (widest) block.  Always
    returns exactly ``num_blocks`` non-empty ranges covering ``vocab_size``
    (the block count is clipped when the vocabulary is too small).
    """
    if vocab_size <= 0:
        raise ValueError("vocab_size must be positive")
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    num_blocks = min(num_blocks, vocab_size)
    weights = np.asarray([2.0**k for k in range(num_blocks)])
    sizes = np.maximum(1, np.floor(vocab_size * weights / weights.sum()).astype(int))
    # Fix rounding drift on the last (largest) block.
    sizes[-1] += vocab_size - int(sizes.sum())
    if sizes[-1] < 1:  # tiny vocabularies: rebalance by flattening
        sizes = np.full(num_blocks, vocab_size // num_blocks, dtype=int)
        sizes[: vocab_size % num_blocks] += 1
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    return [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]


def block_dims(embedding_dim: int, num_blocks: int, temperature: float) -> list[int]:
    """Per-block widths ``d_k = e / 2^(k·τ)``, floored at 1.

    ``temperature`` τ controls how aggressively the tail narrows: τ = 0
    degenerates to factorized-everywhere at full width; Ginart et al.'s rule
    of thumb is τ ≈ 0.63 for power-law data.
    """
    if temperature < 0:
        raise ValueError("temperature must be non-negative")
    return [max(1, int(round(embedding_dim / 2 ** (k * temperature)))) for k in range(num_blocks)]


class MixedDimEmbedding(CompressedEmbedding):
    """Popularity-blocked embedding with per-block width and projection.

    Parameters
    ----------
    vocab_size:
        Number of entities (ids must be frequency-sorted — the paper's §5.1
        id assignment; the head block assumes the popular ids come first).
    embedding_dim:
        Common output width every block projects back to.
    num_blocks:
        Number of popularity blocks.  The paper sets this to the number of
        distinct categorical features (1 in their single-feature models),
        which collapses to plain factorization; >1 exercises the blocked
        sizing this class exists for.
    temperature:
        Popularity-based dimension-sizing temperature (see
        :func:`block_dims`).
    """

    technique = "mixed_dim"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_blocks: int,
        temperature: float = 0.63,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.blocks = block_partition(vocab_size, num_blocks)
        self.num_blocks = len(self.blocks)
        self.temperature = float(temperature)
        dims = block_dims(embedding_dim, self.num_blocks, self.temperature)
        self.block_widths = dims
        self.tables = [
            Parameter(init.uniform((stop - start, d), rng), name=f"block{k}")
            for k, ((start, stop), d) in enumerate(zip(self.blocks, dims))
        ]
        # Full-width blocks skip the projection entirely (identity), matching
        # the reference implementation's special case.
        self.projections = [
            Dense(d, embedding_dim, use_bias=False, rng=rng) if d != embedding_dim else None
            for d in dims
        ]

    def block_of(self, indices: np.ndarray) -> np.ndarray:
        """Block index of each id (vectorized binary search over bounds)."""
        indices = self._check_indices(indices)
        bounds = np.asarray([stop for _, stop in self.blocks])
        return np.searchsorted(bounds, indices, side="right")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        flat = indices.ravel()
        block = self.block_of(flat)
        out: Tensor | None = None
        for k, (start, stop) in enumerate(self.blocks):
            mask = block == k
            # Clamp out-of-block ids into the table so a single vectorized
            # lookup works; their rows are zeroed by the mask below, and the
            # mask also zeroes their backward gradient.
            local = np.where(mask, flat - start, 0)
            emb = ops.embedding_lookup(self.tables[k], local)
            if self.projections[k] is not None:
                emb = self.projections[k](emb)
            gated = ops.mul(emb, Tensor(mask.astype(np.float32)[:, None]))
            out = gated if out is None else ops.add(out, gated)
        return ops.reshape(out, tuple(indices.shape) + (self.output_dim,))
