"""MEmCom — Multi-Embedding Compression (the paper's contribution).

Algorithm 2 (no bias)::

    j      = i mod m
    emb(i) = U[j] ⊙ V[i]          U ∈ R^{m×e},  V ∈ R^{v×1}

Algorithm 3 (with bias)::

    emb(i) = U[j] ⊙ V[i] + W[i]   W ∈ R^{v×1}

``V`` (and ``W``) hold one scalar per entity, so two entities sharing a
hashed row of ``U`` still receive distinct embeddings — the network learns
``v`` distinct functions while storing ``m·e + v`` (``+ v``) parameters
instead of ``v·e``.  The multiplication broadcasts a ``(…, 1)`` column
against ``(…, e)`` rows, the "ubiquitous broadcasting operator" of §4.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.sharding import ShardedTable
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["MEmComEmbedding", "ShardedMEmComEmbedding"]


class MEmComEmbedding(CompressedEmbedding):
    """MEmCom embedding (Algorithms 2 and 3).

    Parameters
    ----------
    vocab_size:
        Number of entities ``v`` (ids must be frequency-sorted).
    embedding_dim:
        Row-vector size ``e`` of the shared table.
    num_hash_embeddings:
        Hashed-table size ``m``; entities collide via ``i mod m``.
    bias:
        ``True`` selects Algorithm 3 (adds the per-entity scalar bias W).
    multiplier_init:
        ``"ones"`` starts every per-entity multiplier at the multiplicative
        identity (the shared row passes through unchanged at step 0);
        ``"uniform"`` uses the Keras-style uniform(0.95, 1.05) perturbation.
        The ablation bench compares the two.
    """

    technique = "memcom"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_hash_embeddings: int,
        bias: bool = True,
        multiplier_init: str = "ones",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if num_hash_embeddings <= 0:
            raise ValueError(f"num_hash_embeddings must be positive, got {num_hash_embeddings}")
        if multiplier_init not in ("ones", "uniform"):
            raise ValueError(f"unknown multiplier_init {multiplier_init!r}")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.num_hash_embeddings = int(num_hash_embeddings)
        self.bias = bias
        self.multiplier_init = multiplier_init
        self.shared = Parameter(
            init.uniform((self.num_hash_embeddings, embedding_dim), rng), name="shared"
        )
        if multiplier_init == "ones":
            mult = init.ones((vocab_size, 1))
        else:
            mult = init.uniform((vocab_size, 1), rng, low=0.95, high=1.05)
        self.multiplier = Parameter(mult, name="multiplier")
        self.bias_table = (
            Parameter(init.zeros((vocab_size, 1)), name="bias") if bias else None
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        hashed = indices % self.num_hash_embeddings
        x_rem = ops.embedding_lookup(self.shared, hashed)
        x_mult = ops.embedding_lookup(self.multiplier, indices)
        if self.bias_table is not None:
            # Fused (…, e) * (…, 1) + (…, 1): one graph node on the hot path.
            return ops.muladd(x_rem, x_mult, ops.embedding_lookup(self.bias_table, indices))
        return ops.mul(x_rem, x_mult)  # (…, e) * (…, 1) broadcast

    def multipliers(self) -> np.ndarray:
        """Per-entity multiplier column as a flat (v,) array (for the A.4
        uniqueness audit)."""
        return self.multiplier.data[:, 0].copy()

    def bucket_of(self, indices: np.ndarray) -> np.ndarray:
        """Hash bucket ``i mod m`` for each id."""
        return self._check_indices(indices) % self.num_hash_embeddings

    def to_sharded(self, n_shards: int) -> "ShardedMEmComEmbedding":
        """Hash-partition the per-entity tables across ``n_shards``."""
        return ShardedMEmComEmbedding.from_monolithic(self, n_shards)


class ShardedMEmComEmbedding(MEmComEmbedding):
    """MEmCom with its per-entity ``V``/``W`` columns sharded row-wise.

    The ``(v, 1)`` multiplier and bias columns are the tables that grow with
    the vocabulary; each becomes a :class:`repro.nn.sharding.ShardedTable`
    (hash-partitioned, sparse per-shard gradients).  The shared ``(m, e)``
    table is already compressed to a fixed small size and stays monolithic.

    Forward values are bit-identical to the monolithic layer (a routed
    gather reads the same floats), and per-shard sparse optimizer steps
    perform the same per-row math — ``tests/nn/test_sharding.py`` pins the
    equivalence across every model architecture.
    """

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_hash_embeddings: int,
        n_shards: int,
        bias: bool = True,
        multiplier_init: str = "ones",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        # Consume the rng exactly as the monolithic layer does, then
        # partition — same seed, same logical table values.
        super().__init__(
            vocab_size,
            embedding_dim,
            num_hash_embeddings,
            bias=bias,
            multiplier_init=multiplier_init,
            rng=rng,
        )
        self.n_shards = int(n_shards)
        self.multiplier = ShardedTable(self.multiplier.data, n_shards, name="multiplier")
        if self.bias_table is not None:
            self.bias_table = ShardedTable(self.bias_table.data, n_shards, name="bias")

    @classmethod
    def from_monolithic(
        cls, embedding: MEmComEmbedding, n_shards: int
    ) -> "ShardedMEmComEmbedding":
        """Partition an existing (possibly trained) MEmCom layer's tables.

        Copies the source values straight into the shard layout — no
        throwaway random init of a second full-size table.
        """
        out = cls.__new__(cls)
        CompressedEmbedding.__init__(
            out, embedding.vocab_size, embedding.embedding_dim
        )
        out.embedding_dim = embedding.embedding_dim
        out.num_hash_embeddings = embedding.num_hash_embeddings
        out.bias = embedding.bias
        out.multiplier_init = embedding.multiplier_init
        out.shared = Parameter(embedding.shared.data.copy(), name="shared")
        out.multiplier = ShardedTable(
            embedding.multiplier.data, n_shards, name="multiplier"
        )
        out.bias_table = (
            ShardedTable(embedding.bias_table.data, n_shards, name="bias")
            if embedding.bias_table is not None
            else None
        )
        out.n_shards = int(n_shards)
        return out

    def to_monolithic(self) -> MEmComEmbedding:
        """Reassemble a plain MEmCom layer (for export/interop)."""
        out = MEmComEmbedding(
            self.vocab_size,
            self.embedding_dim,
            self.num_hash_embeddings,
            bias=self.bias,
            multiplier_init=self.multiplier_init,
            rng=0,
        )
        out.shared.data = self.shared.data.copy()
        out.multiplier.data = self.multiplier.dense()
        if self.bias_table is not None:
            out.bias_table.data = self.bias_table.dense()
        return out

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        hashed = indices % self.num_hash_embeddings
        x_rem = ops.embedding_lookup(self.shared, hashed)
        x_mult = self.multiplier.lookup(indices)
        if self.bias_table is not None:
            return ops.muladd(x_rem, x_mult, self.bias_table.lookup(indices))
        return ops.mul(x_rem, x_mult)

    def multipliers(self) -> np.ndarray:
        return self.multiplier.dense()[:, 0]
