"""MEmCom — Multi-Embedding Compression (the paper's contribution).

Algorithm 2 (no bias)::

    j      = i mod m
    emb(i) = U[j] ⊙ V[i]          U ∈ R^{m×e},  V ∈ R^{v×1}

Algorithm 3 (with bias)::

    emb(i) = U[j] ⊙ V[i] + W[i]   W ∈ R^{v×1}

``V`` (and ``W``) hold one scalar per entity, so two entities sharing a
hashed row of ``U`` still receive distinct embeddings — the network learns
``v`` distinct functions while storing ``m·e + v`` (``+ v``) parameters
instead of ``v·e``.  The multiplication broadcasts a ``(…, 1)`` column
against ``(…, e)`` rows, the "ubiquitous broadcasting operator" of §4.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["MEmComEmbedding"]


class MEmComEmbedding(CompressedEmbedding):
    """MEmCom embedding (Algorithms 2 and 3).

    Parameters
    ----------
    vocab_size:
        Number of entities ``v`` (ids must be frequency-sorted).
    embedding_dim:
        Row-vector size ``e`` of the shared table.
    num_hash_embeddings:
        Hashed-table size ``m``; entities collide via ``i mod m``.
    bias:
        ``True`` selects Algorithm 3 (adds the per-entity scalar bias W).
    multiplier_init:
        ``"ones"`` starts every per-entity multiplier at the multiplicative
        identity (the shared row passes through unchanged at step 0);
        ``"uniform"`` uses the Keras-style uniform(0.95, 1.05) perturbation.
        The ablation bench compares the two.
    """

    technique = "memcom"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_hash_embeddings: int,
        bias: bool = True,
        multiplier_init: str = "ones",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if num_hash_embeddings <= 0:
            raise ValueError(f"num_hash_embeddings must be positive, got {num_hash_embeddings}")
        if multiplier_init not in ("ones", "uniform"):
            raise ValueError(f"unknown multiplier_init {multiplier_init!r}")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.num_hash_embeddings = int(num_hash_embeddings)
        self.bias = bias
        self.multiplier_init = multiplier_init
        self.shared = Parameter(
            init.uniform((self.num_hash_embeddings, embedding_dim), rng), name="shared"
        )
        if multiplier_init == "ones":
            mult = init.ones((vocab_size, 1))
        else:
            mult = init.uniform((vocab_size, 1), rng, low=0.95, high=1.05)
        self.multiplier = Parameter(mult, name="multiplier")
        self.bias_table = (
            Parameter(init.zeros((vocab_size, 1)), name="bias") if bias else None
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        hashed = indices % self.num_hash_embeddings
        x_rem = ops.embedding_lookup(self.shared, hashed)
        x_mult = ops.embedding_lookup(self.multiplier, indices)
        if self.bias_table is not None:
            # Fused (…, e) * (…, 1) + (…, 1): one graph node on the hot path.
            return ops.muladd(x_rem, x_mult, ops.embedding_lookup(self.bias_table, indices))
        return ops.mul(x_rem, x_mult)  # (…, e) * (…, 1) broadcast

    def multipliers(self) -> np.ndarray:
        """Per-entity multiplier column as a flat (v,) array (for the A.4
        uniqueness audit)."""
        return self.multiplier.data[:, 0].copy()

    def bucket_of(self, indices: np.ndarray) -> np.ndarray:
        """Hash bucket ``i mod m`` for each id."""
        return self._check_indices(indices) % self.num_hash_embeddings
