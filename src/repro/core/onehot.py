"""Weinberger's feature-hashing trick on one-hot inputs (Table 3 baseline).

Weinberger et al. 2009 hash each raw feature index into an ``m``-dimensional
vector with a sign hash: ``φ_j(x) = Σ_{i : h(i)=j} ξ(i)·x_i``.  Applied to a
bag of category ids this produces a dense ``(batch, m)`` encoding that is
then multiplied by an ``m × e`` weight matrix — the "matrix approach" of §3,
whose runtime memory is ``O(v·e + b·(e+v))`` rather than the table
approach's ``O(v·e + b·(e+1))``.

This layer therefore *replaces* Embedding→AveragePooling in the model: it
directly emits the pooled ``(batch, e)`` representation.  The on-device
simulator charges it the one-hot materialization and the full dense matmul,
which is exactly why Table 3 shows it slower and far more memory-hungry than
MEmCom's lookups.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding, universal_hash
from repro.nn import init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["HashedOneHotEncoder"]


class HashedOneHotEncoder(CompressedEmbedding):
    """Hashed bag-of-categories encoder + linear projection to ``e`` dims.

    Parameters
    ----------
    vocab_size, embedding_dim:
        Logical vocabulary and output width (matches other techniques).
    num_hash_buckets:
        Hash range ``m`` (both Table 3 models use 10K).
    signed:
        Use the ±1 sign hash ξ of Weinberger et al. (reduces collision bias);
        disable for the plain counting variant.
    average:
        Divide the bag encoding by the sequence length so magnitudes match
        the average pooling used by the lookup-based models.
    """

    technique = "hashed_onehot"
    buffer_names = ("hash_salt",)

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        num_hash_buckets: int,
        signed: bool = True,
        average: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        if num_hash_buckets <= 0:
            raise ValueError("num_hash_buckets must be positive")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.num_hash_buckets = int(num_hash_buckets)
        self.signed = signed
        self.average = average
        self.hash_salt = np.array(
            [
                int(rng.integers(1, 1 << 31)),
                int(rng.integers(0, 1 << 31)),
                int(rng.integers(1, 1 << 31)),
                int(rng.integers(0, 1 << 31)),
            ],
            dtype=np.int64,
        )
        self.weight = Parameter(
            init.glorot_uniform((self.num_hash_buckets, embedding_dim), rng), name="weight"
        )

    def encode(self, indices: np.ndarray) -> np.ndarray:
        """Hash a (batch, length) id matrix into a (batch, m) dense encoding.

        This materializes the one-hot aggregation the hashing trick implies;
        it is *not* differentiable (ids carry no gradient) and is the memory
        hot spot the paper's Table 3 measures.
        """
        indices = self._check_indices(indices)
        if indices.ndim != 2:
            raise ValueError(f"expected (batch, length) ids, got shape {indices.shape}")
        batch, length = indices.shape
        a, b, sign_a, sign_b = (int(x) for x in self.hash_salt)
        buckets = universal_hash(indices, self.num_hash_buckets, a, b)
        if self.signed:
            signs = (universal_hash(indices, 2, sign_a, sign_b) * 2 - 1).astype(np.float32)
        else:
            signs = np.ones(indices.shape, dtype=np.float32)
        encoded = np.zeros((batch, self.num_hash_buckets), dtype=np.float32)
        rows = np.repeat(np.arange(batch), length)
        np.add.at(encoded, (rows, buckets.ravel()), signs.ravel())
        if self.average:
            encoded /= length
        return encoded

    def forward(self, indices: np.ndarray) -> Tensor:
        encoded = Tensor(self.encode(indices))
        return ops.matmul(encoded, self.weight)
