"""The uncompressed embedding wrapped in the common technique interface.

Every sweep's compression ratios are measured against this model (ratio 1.0
by construction).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.sharding import ShardedTable
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["FullEmbedding", "ShardedFullEmbedding"]


class FullEmbedding(CompressedEmbedding):
    """Plain ``v × e`` table — the baseline 'technique'."""

    technique = "full"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.table = Parameter(init.uniform((vocab_size, embedding_dim), rng), name="table")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        return ops.embedding_lookup(self.table, indices)

    def to_sharded(self, n_shards: int) -> "ShardedFullEmbedding":
        """Hash-partition the table rows across ``n_shards``."""
        return ShardedFullEmbedding.from_monolithic(self, n_shards)


class ShardedFullEmbedding(FullEmbedding):
    """The uncompressed table, hash-partitioned row-wise across shards.

    Forward values are bit-identical to :class:`FullEmbedding`; gradients
    arrive as per-shard local-row sparse grads and the optimizers' sparse
    branches apply them shard by shard (see :mod:`repro.nn.sharding`).
    """

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        n_shards: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim, rng=rng)
        self.n_shards = int(n_shards)
        self.table = ShardedTable(self.table.data, n_shards, name="table")

    @classmethod
    def from_monolithic(
        cls, embedding: FullEmbedding, n_shards: int
    ) -> "ShardedFullEmbedding":
        """Partition the source table directly (no throwaway random init)."""
        out = cls.__new__(cls)
        CompressedEmbedding.__init__(
            out, embedding.vocab_size, embedding.embedding_dim
        )
        out.embedding_dim = embedding.embedding_dim
        out.n_shards = int(n_shards)
        out.table = ShardedTable(embedding.table.data, n_shards, name="table")
        return out

    def to_monolithic(self) -> FullEmbedding:
        out = FullEmbedding(self.vocab_size, self.embedding_dim, rng=0)
        out.table.data = self.table.dense()
        return out

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        return self.table.lookup(indices)
