"""The uncompressed embedding wrapped in the common technique interface.

Every sweep's compression ratios are measured against this model (ratio 1.0
by construction).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.nn import init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["FullEmbedding"]


class FullEmbedding(CompressedEmbedding):
    """Plain ``v × e`` table — the baseline 'technique'."""

    technique = "full"

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__(vocab_size, embedding_dim)
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.table = Parameter(init.uniform((vocab_size, embedding_dim), rng), name="table")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = self._check_indices(indices)
        return ops.embedding_lookup(self.table, indices)
