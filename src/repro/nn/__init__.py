"""`repro.nn` — a from-scratch NumPy training substrate.

Reverse-mode autograd (:mod:`~repro.nn.tensor`, :mod:`~repro.nn.ops`), the
layer vocabulary of the paper's Code 1 network (:mod:`~repro.nn.layers`,
:mod:`~repro.nn.embedding`), fused losses, optimizers, and serialization.
"""

from repro.nn import functional, init, ops
from repro.nn.embedding import Embedding
from repro.nn.layers import (
    AveragePooling1D,
    BatchNorm,
    Dense,
    Dropout,
    Flatten,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    mse_loss,
    ranknet_loss,
    softmax_cross_entropy,
)
from repro.nn.optim import (
    SGD,
    Adagrad,
    Adam,
    Optimizer,
    RMSProp,
    clip_global_norm,
    global_grad_norm,
)
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealing,
    ExponentialDecay,
    LinearWarmup,
    ReduceOnPlateau,
    Scheduler,
    StepDecay,
    build_scheduler,
)
from repro.nn.serialization import (
    compression_ratio,
    load_npz,
    on_disk_bytes,
    parameter_breakdown,
    save_npz,
)
from repro.nn.sharding import ShardedEmbedding, ShardedTable, shard_of_rows
from repro.nn.sparse_grad import SparseRowGrad, sparse_grads, sparse_grads_enabled
from repro.nn.tensor import DEFAULT_DTYPE, Parameter, Tensor, is_grad_enabled, no_grad

__all__ = [
    "DEFAULT_DTYPE",
    "Adagrad",
    "Adam",
    "AveragePooling1D",
    "BatchNorm",
    "ConstantLR",
    "CosineAnnealing",
    "Dense",
    "Dropout",
    "Embedding",
    "ExponentialDecay",
    "Flatten",
    "LinearWarmup",
    "Module",
    "Optimizer",
    "Parameter",
    "RMSProp",
    "ReLU",
    "ReduceOnPlateau",
    "SGD",
    "Scheduler",
    "Sequential",
    "ShardedEmbedding",
    "ShardedTable",
    "SparseRowGrad",
    "StepDecay",
    "Tensor",
    "binary_cross_entropy_with_logits",
    "build_scheduler",
    "clip_global_norm",
    "compression_ratio",
    "functional",
    "global_grad_norm",
    "init",
    "is_grad_enabled",
    "load_npz",
    "mse_loss",
    "no_grad",
    "on_disk_bytes",
    "ops",
    "parameter_breakdown",
    "ranknet_loss",
    "save_npz",
    "shard_of_rows",
    "softmax_cross_entropy",
    "sparse_grads",
    "sparse_grads_enabled",
]
