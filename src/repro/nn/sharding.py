"""Sharded embedding tables: hash-partitioned rows with sparse routing.

A monolithic ``(v, e)`` table caps out at one array on one host.  Serving
heavy multi-user traffic (ROADMAP north star) needs the id→row path to be
*partitionable*: each row lives in exactly one of ``n_shards`` smaller
arrays, lookups route each id to its shard, and the sparse row gradients of
:mod:`repro.nn.sparse_grad` route the same way — so a training step applies
per-shard sparse updates that are bit-for-bit the per-row math of the
monolithic table (each row's gather, gradient sum, and optimizer update
involve exactly the same floats, just addressed through a shard).

Partitioning is by a salted 64-bit mixing hash of the row id (the splitmix64
finalizer, the same mixer :func:`repro.core.base.universal_hash` uses —
re-derived here because :mod:`repro.nn` sits below :mod:`repro.core` in the
layering).  Hashing, rather than contiguous range partition, spreads the
Zipf-head rows of a frequency-sorted vocabulary evenly across shards, so no
shard becomes the hot shard under skewed traffic.

Because every shard is an ordinary :class:`~repro.nn.tensor.Parameter`, the
optimizers' existing sparse branches *are* the sharded apply: a
:class:`ShardedTable` hands each optimizer one parameter per shard, and each
touched shard gets a compact :class:`~repro.nn.sparse_grad.SparseRowGrad` in
its local row numbering.  ``Optimizer`` also accepts a ``ShardedTable``
directly in its parameter list (see :mod:`repro.nn.optim`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module
from repro.nn.sparse_grad import SparseRowGrad
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["ShardedTable", "ShardedEmbedding", "shard_of_rows"]

# Fixed salts: partitioning must be a pure function of (row id, n_shards) so
# a table sharded on one host routes identically on every other.
_SALT_A = np.uint64(0x9E3779B97F4A7C15)
_SALT_B = np.uint64(0xD1B54A32D192ED03)


def shard_of_rows(rows: np.ndarray, n_shards: int) -> np.ndarray:
    """Deterministic shard assignment: splitmix64-mixed row id mod shards.

    The mixer decorrelates shard choice from the id's low bits — adjacent
    (equally popular) ids land on different shards, which is what balances
    load when ids are frequency-sorted.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    z = np.asarray(rows).astype(np.uint64) + _SALT_A
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = z + _SALT_B
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(n_shards)).astype(np.int64)


class ShardedTable(Module):
    """A 2-D parameter table hash-partitioned row-wise across ``n_shards``.

    Logical row ``i`` lives at local row ``local_of[i]`` of shard
    ``shard_of[i]``.  :meth:`lookup` is the autograd-aware gather whose
    backward emits one local-row :class:`SparseRowGrad` per *touched* shard;
    shards no id hit receive no gradient at all (their optimizer state is
    untouched, exactly like an un-looked-up monolithic table).

    The shard parameters are regular autograd leaves discovered by module
    traversal (state-dict keys ``shards.0 … shards.{n-1}``), so optimizers,
    clipping and serialization all work unchanged.  The routing arrays are
    deterministic from ``(num_rows, n_shards)`` and are recomputed on
    construction, never serialized.
    """

    def __init__(self, dense: np.ndarray, n_shards: int, name: str = "table") -> None:
        super().__init__()
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError(f"ShardedTable needs a 2-D table, got shape {dense.shape}")
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        v = dense.shape[0]
        self.num_rows = int(v)
        self.num_cols = int(dense.shape[1])
        self.n_shards = int(n_shards)
        self.name = name
        self._shard_of = shard_of_rows(np.arange(v), n_shards)
        self._local_of = np.empty(v, dtype=np.int64)
        self._shard_rows: list[np.ndarray] = []
        shards: list[Parameter] = []
        for s in range(n_shards):
            rows = np.flatnonzero(self._shard_of == s)
            self._local_of[rows] = np.arange(rows.size)
            self._shard_rows.append(rows)
            shards.append(Parameter(dense[rows].copy(), name=f"{name}.shard{s}"))
        self.shards = shards

    # -- geometry ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """The logical (monolithic) table shape."""
        return (self.num_rows, self.num_cols)

    @property
    def dtype(self) -> np.dtype:
        return self.shards[0].data.dtype

    def shard_sizes(self) -> list[int]:
        """Rows per shard (sums to ``num_rows``)."""
        return [p.data.shape[0] for p in self.shards]

    def shard_parameters(self) -> list[Parameter]:
        """The per-shard autograd leaves, in shard order."""
        return list(self.shards)

    # -- routed access ---------------------------------------------------------

    def take_rows(self, rows: np.ndarray) -> np.ndarray:
        """Forward-only routed gather of logical rows (no autograd graph).

        The serving engine's path: returns exactly the bytes the monolithic
        table would, assembled from per-shard gathers.
        """
        rows = np.asarray(rows).ravel()
        out = np.empty((rows.size, self.num_cols), dtype=self.dtype)
        sid = self._shard_of[rows]
        loc = self._local_of[rows]
        for s, p in enumerate(self.shards):
            sel = np.flatnonzero(sid == s)
            if sel.size:
                out[sel] = p.data[loc[sel]]
        return out

    def lookup(self, indices: np.ndarray) -> Tensor:
        """Autograd gather: ``out[..., :] = table[indices[...], :]``.

        Forward values are bit-identical to a monolithic
        :func:`repro.nn.ops.embedding_lookup`; backward routes each touched
        row's gradient to its owning shard as a local-row
        :class:`SparseRowGrad`, so duplicate ids coalesce inside one shard
        with the same float sums the monolithic path performs.
        """
        indices = np.asarray(indices)
        if indices.dtype.kind not in "iu":
            raise TypeError(f"embedding indices must be integers, got {indices.dtype}")
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_rows):
            raise IndexError(
                f"embedding index out of range: [{indices.min()}, {indices.max()}] "
                f"vs table rows {self.num_rows}"
            )
        flat = indices.ravel()
        e = self.num_cols
        sid = self._shard_of[flat]
        loc = self._local_of[flat]
        out = np.empty((flat.size, e), dtype=self.dtype)
        selections: list[np.ndarray] = []
        for s, p in enumerate(self.shards):
            sel = np.flatnonzero(sid == s)
            if sel.size:
                out[sel] = p.data[loc[sel]]
            selections.append(sel)

        def backward(g: np.ndarray) -> None:
            g2d = g.reshape(-1, e)
            for p, sel in zip(self.shards, selections):
                if sel.size and p.requires_grad:
                    # Fancy indexing copies, so the emitted grad owns its
                    # buffers (same contract as embedding_lookup backward).
                    p._accumulate(SparseRowGrad(loc[sel], g2d[sel], p.data.shape))

        return Tensor._make(
            out.reshape(indices.shape + (e,)), tuple(self.shards), backward
        )

    # -- monolithic interchange -----------------------------------------------

    def dense(self) -> np.ndarray:
        """Materialize the logical ``(v, e)`` table (row-exact reassembly)."""
        out = np.empty((self.num_rows, self.num_cols), dtype=self.dtype)
        for p, rows in zip(self.shards, self._shard_rows):
            out[rows] = p.data
        return out

    def load_dense(self, dense: np.ndarray) -> None:
        """Scatter a monolithic table's values into the shards in place."""
        dense = np.asarray(dense)
        if dense.shape != self.shape:
            raise ValueError(f"dense shape {dense.shape} != table shape {self.shape}")
        for p, rows in zip(self.shards, self._shard_rows):
            p.data = dense[rows].astype(p.data.dtype)

    def __repr__(self) -> str:
        return (
            f"ShardedTable(shape={self.shape}, n_shards={self.n_shards}, "
            f"sizes={self.shard_sizes()})"
        )


class ShardedEmbedding(Module):
    """Drop-in :class:`repro.nn.embedding.Embedding` with a sharded table.

    Same init distribution and forward semantics; the weight lives in a
    :class:`ShardedTable` instead of one Parameter.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        n_shards: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError(
                f"embedding dims must be positive, got {num_embeddings}x{embedding_dim}"
            )
        from repro.nn import init  # local import: init is tiny, avoids cycles

        rng = ensure_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.output_dim = embedding_dim
        self.table = ShardedTable(
            init.uniform((num_embeddings, embedding_dim), rng), n_shards, name="weight"
        )

    @classmethod
    def from_embedding(cls, embedding, n_shards: int) -> "ShardedEmbedding":
        """Partition an existing (possibly trained) ``Embedding``'s weight."""
        out = cls.__new__(cls)
        Module.__init__(out)
        out.num_embeddings = embedding.num_embeddings
        out.embedding_dim = embedding.embedding_dim
        out.output_dim = embedding.output_dim
        out.table = ShardedTable(embedding.weight.data, n_shards, name="weight")
        return out

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.table.lookup(indices)
