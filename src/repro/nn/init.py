"""Weight initializers.

Defaults mirror the Keras layers the paper's Code 1 uses: Dense uses
Glorot-uniform, Embedding uses uniform(-0.05, 0.05), biases start at zero.
Every initializer takes the target shape and a ``numpy.random.Generator``.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.nn.tensor import DEFAULT_DTYPE

__all__ = [
    "glorot_uniform",
    "he_uniform",
    "uniform",
    "normal",
    "zeros",
    "ones",
    "constant",
    "lazy_init",
]

#: >0 while inside :func:`lazy_init` — random initializers return zeros
_lazy_depth = 0


@contextlib.contextmanager
def lazy_init():
    """Make random initializers return untouched zero pages.

    Rebuilding a module whose every parameter is about to be replaced by a
    strict ``load_state_dict`` (the artifact path) pays for random fills it
    immediately discards — for a vocab-size table, that is the entire cost
    of "instantiate the class".  Inside this context the random
    initializers return ``np.zeros`` instead: calloc'd virtual pages the
    kernel never materializes, so construction is O(metadata) regardless
    of table size.  Deterministic initializers are untouched.  Only safe
    when the constructed values are guaranteed dead — a strict state load
    raises on any missing key, which is exactly that guarantee.
    """
    global _lazy_depth
    _lazy_depth += 1
    try:
        yield
    finally:
        _lazy_depth -= 1


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-l, l), l = sqrt(6 / (fan_in + fan_out))."""
    if _lazy_depth:
        return np.zeros(shape, dtype=DEFAULT_DTYPE)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform: U(-l, l), l = sqrt(6 / fan_in) — for ReLU stacks."""
    if _lazy_depth:
        return np.zeros(shape, dtype=DEFAULT_DTYPE)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    low: float = -0.05,
    high: float = 0.05,
) -> np.ndarray:
    """Uniform init; defaults match Keras' Embedding ``RandomUniform``."""
    if _lazy_depth:
        return np.zeros(shape, dtype=DEFAULT_DTYPE)
    return rng.uniform(low, high, size=shape).astype(DEFAULT_DTYPE)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.05) -> np.ndarray:
    if _lazy_depth:
        return np.zeros(shape, dtype=DEFAULT_DTYPE)
    return (rng.standard_normal(size=shape) * std).astype(DEFAULT_DTYPE)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.ones(shape, dtype=DEFAULT_DTYPE)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    return np.full(shape, value, dtype=DEFAULT_DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
