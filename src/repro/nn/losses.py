"""Loss functions.

``softmax_cross_entropy`` is the training loss for both the classification
experiment (§5.1) and the pointwise ranking experiment (§5.2 — "we use the
softmax as our loss function as in the classification experiments").
``ranknet_loss`` is the pairwise logistic loss of Burges et al. 2005 used by
the Arcade pairwise experiment (Figure 3).

Both are implemented as fused ops: the forward uses log-sum-exp stabilized
arithmetic and the backward is the closed-form gradient, avoiding the
numerical trouble (and graph overhead) of composing exp/log primitives.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax_cross_entropy",
    "distillation_loss",
    "ranknet_loss",
    "binary_cross_entropy_with_logits",
    "mse_loss",
]


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``softmax(logits)`` and integer ``labels``.

    ``logits``: (B, C) Tensor.  ``labels``: (B,) integer ndarray.
    Gradient: ``(softmax(logits) - onehot(labels)) / B``.
    """
    labels = np.asarray(labels)
    if labels.dtype.kind not in "iu":
        raise TypeError(f"labels must be integers, got {labels.dtype}")
    if logits.ndim != 2:
        raise ValueError(f"logits must be (B, C), got {logits.shape}")
    b, c = logits.shape
    if labels.shape != (b,):
        raise ValueError(f"labels shape {labels.shape} != ({b},)")
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        raise IndexError(f"label out of range [0, {c})")

    x = logits.data
    x_max = x.max(axis=1, keepdims=True)
    shifted = x - x_max
    lse = np.log(np.exp(shifted).sum(axis=1)) + x_max[:, 0]
    per_example = lse - x[np.arange(b), labels]
    loss_val = per_example.mean(dtype=np.float64)

    def backward(g: np.ndarray) -> None:
        probs = np.exp(x - lse[:, None])
        probs[np.arange(b), labels] -= 1.0
        logits._accumulate((probs * (float(g) / b)).astype(x.dtype))

    return Tensor._make(np.asarray(loss_val, dtype=x.dtype), (logits,), backward)


def distillation_loss(
    logits: Tensor,
    teacher_logits: np.ndarray,
    labels: np.ndarray,
    temperature: float = 2.0,
    alpha: float = 0.5,
) -> Tensor:
    """Hinton-style distillation: soft teacher targets blended with hard CE.

    ``loss = α·T²·CE(softmax(t/T), softmax(x/T)) + (1-α)·CE(x, labels)``

    where ``x`` are the student ``logits`` (B, C), ``t`` the frozen
    ``teacher_logits`` (B, C — a constant, no gradient flows to the
    teacher), ``T`` the ``temperature`` and ``α`` the soft/hard blend.  The
    ``T²`` factor keeps the soft term's gradient magnitude independent of
    the temperature (Hinton et al. 2015), so ``α`` means the same thing at
    every ``T``.  Fused closed-form backward:

    ``∂loss/∂x = [α·T·(softmax(x/T) − softmax(t/T))
                  + (1−α)·(softmax(x) − onehot(labels))] / B``

    At ``α = 0`` this is bit-identical to :func:`softmax_cross_entropy`.
    """
    labels = np.asarray(labels)
    if labels.dtype.kind not in "iu":
        raise TypeError(f"labels must be integers, got {labels.dtype}")
    if logits.ndim != 2:
        raise ValueError(f"logits must be (B, C), got {logits.shape}")
    teacher = np.asarray(teacher_logits, dtype=logits.data.dtype)
    if teacher.shape != logits.shape:
        raise ValueError(
            f"teacher logits shape {teacher.shape} != student shape {logits.shape}"
        )
    b, c = logits.shape
    if labels.shape != (b,):
        raise ValueError(f"labels shape {labels.shape} != ({b},)")
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        raise IndexError(f"label out of range [0, {c})")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")

    x = logits.data
    t_inv = 1.0 / temperature

    # Hard term — same arithmetic as softmax_cross_entropy, so α = 0
    # degenerates to it exactly.
    x_max = x.max(axis=1, keepdims=True)
    lse = np.log(np.exp(x - x_max).sum(axis=1)) + x_max[:, 0]
    hard = (lse - x[np.arange(b), labels]).mean(dtype=np.float64)

    # Soft term — cross-entropy of the temperature-softened distributions:
    # mean_b[ lse(x/T) − Σ_c p_bc · x_bc/T ] with p = softmax(t/T) constant.
    xt = x * t_inv
    xt_max = xt.max(axis=1, keepdims=True)
    lse_t = np.log(np.exp(xt - xt_max).sum(axis=1)) + xt_max[:, 0]
    tt = teacher * t_inv
    tt_max = tt.max(axis=1, keepdims=True)
    p = np.exp(tt - tt_max)
    p /= p.sum(axis=1, keepdims=True)
    soft = (lse_t - (p * xt).sum(axis=1)).mean(dtype=np.float64)

    loss_val = alpha * temperature**2 * soft + (1.0 - alpha) * hard

    def backward(g: np.ndarray) -> None:
        probs = np.exp(x - lse[:, None])
        probs[np.arange(b), labels] -= 1.0
        grad = (1.0 - alpha) * probs
        grad += (alpha * temperature) * (np.exp(xt - lse_t[:, None]) - p)
        logits._accumulate((grad * (float(g) / b)).astype(x.dtype))

    return Tensor._make(np.asarray(loss_val, dtype=x.dtype), (logits,), backward)


def ranknet_loss(score_pos: Tensor, score_neg: Tensor) -> Tensor:
    """RankNet pairwise loss: ``mean(log(1 + exp(-(s+ - s-))))``.

    During training the network "maximizes the difference between these
    scores" (§5.2); this is the cross-entropy of Burges et al. with target
    probability 1 that the first item outranks the second.
    """
    if score_pos.shape != score_neg.shape:
        raise ValueError(f"score shapes differ: {score_pos.shape} vs {score_neg.shape}")
    diff = score_pos.data - score_neg.data
    per_pair = np.logaddexp(0.0, -diff)
    loss_val = per_pair.mean(dtype=np.float64)
    n = diff.size

    def backward(g: np.ndarray) -> None:
        # d/d diff log(1+exp(-diff)) = -sigmoid(-diff)
        d = (-_sigmoid(-diff) * (float(g) / n)).astype(diff.dtype)
        if score_pos.requires_grad:
            score_pos._accumulate(d)
        if score_neg.requires_grad:
            score_neg._accumulate(-d)

    return Tensor._make(
        np.asarray(loss_val, dtype=diff.dtype), (score_pos, score_neg), backward
    )


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE with a stable log-sum-exp formulation.

    ``loss = mean(max(x,0) - x*t + log(1+exp(-|x|)))``.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    if targets.shape != logits.shape:
        raise ValueError(f"target shape {targets.shape} != logits shape {logits.shape}")
    x = logits.data
    per = np.maximum(x, 0.0) - x * targets + np.log1p(np.exp(-np.abs(x)))
    loss_val = per.mean(dtype=np.float64)
    n = x.size

    def backward(g: np.ndarray) -> None:
        logits._accumulate(((_sigmoid(x) - targets) * (float(g) / n)).astype(x.dtype))

    return Tensor._make(np.asarray(loss_val, dtype=x.dtype), (logits,), backward)


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    targets = np.asarray(targets, dtype=pred.data.dtype)
    if targets.shape != pred.shape:
        raise ValueError(f"target shape {targets.shape} != prediction shape {pred.shape}")
    diff = pred.data - targets
    loss_val = np.mean(diff * diff, dtype=np.float64)
    n = diff.size

    def backward(g: np.ndarray) -> None:
        pred._accumulate((2.0 * diff * (float(g) / n)).astype(diff.dtype))

    return Tensor._make(np.asarray(loss_val, dtype=pred.data.dtype), (pred,), backward)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
