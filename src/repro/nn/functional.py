"""Composite differentiable functions and ndarray helpers.

These compose :mod:`repro.nn.ops` primitives (dropout, pooling) or provide
plain-NumPy counterparts used at evaluation time (softmax over logits for
ranking scores).
"""

from __future__ import annotations

import numpy as np

from repro.nn import ops
from repro.nn.tensor import Tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "dropout",
    "average_pool1d",
    "softmax_np",
    "log_softmax_np",
]

relu = ops.relu
sigmoid = ops.sigmoid
tanh = ops.tanh


def dropout(
    x: Tensor,
    rate: float,
    rng: np.random.Generator,
    training: bool,
) -> Tensor:
    """Inverted dropout: zero each unit with prob ``rate``, scale by 1/(1-rate).

    Identity when not training or when ``rate`` is 0, so eval passes are free.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return ops.mul(x, Tensor(mask))


def average_pool1d(x: Tensor, pool_size: int) -> Tensor:
    """Average pooling over the sequence axis of a (B, L, E) tensor.

    Matches Keras ``AveragePooling1D``: non-overlapping windows of
    ``pool_size``; the paper pools with ``pool_size = input_length`` so the
    output has a single time step.
    """
    if x.ndim != 3:
        raise ValueError(f"average_pool1d expects (B, L, E), got shape {x.shape}")
    b, length, e = x.shape
    if length % pool_size != 0:
        raise ValueError(f"sequence length {length} not divisible by pool_size {pool_size}")
    windows = ops.reshape(x, (b, length // pool_size, pool_size, e))
    return ops.mean(windows, axis=2)


def softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on a raw ndarray (evaluation path)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax on a raw ndarray."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
