"""Differentiable operations over :class:`repro.nn.tensor.Tensor`.

Every function here computes a forward result with vectorized NumPy and
registers a backward closure on the output node.  Broadcasting follows NumPy
semantics; gradients of broadcast operands are reduced back to the operand
shape by :func:`unbroadcast` (sum over the broadcast axes), which is the
adjoint of broadcasting.

The embedding-specific primitive is :func:`embedding_lookup`, whose backward
emits a row-sparse :class:`repro.nn.sparse_grad.SparseRowGrad` — the same
``IndexedSlices`` semantics TF 1.x gives ``tf.gather``, so optimizers update
only the rows a batch touched (see DESIGN.md §5).  The dense scatter-add
baseline is kept behind ``sparse_grads(False)`` for benchmarking.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn import sparse_grad as _sg
from repro.nn.sparse_grad import SparseRowGrad
from repro.nn.tensor import Tensor

__all__ = [
    "as_tensor",
    "unbroadcast",
    "add",
    "sub",
    "mul",
    "muladd",
    "div",
    "neg",
    "pow",
    "matmul",
    "bmm",
    "sum",
    "mean",
    "reshape",
    "transpose",
    "concat",
    "exp",
    "log",
    "sqrt",
    "sigmoid",
    "tanh",
    "relu",
    "embedding_lookup",
    "batch_norm",
]


def as_tensor(value: object) -> Tensor:
    """Coerce scalars/arrays to constant Tensors; pass Tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (the gradient of a broadcast result) to ``shape``.

    Summing over broadcast axes is the exact adjoint of NumPy broadcasting:
    an operand value that was replicated k times receives the sum of the k
    downstream gradients.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        i for i, (g_dim, s_dim) in enumerate(zip(grad.shape, shape)) if s_dim == 1 and g_dim != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# -- arithmetic ----------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g, a.data.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(g, b.data.shape))

    return Tensor._make(out_data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data - b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g, a.data.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(-g, b.data.shape))

    return Tensor._make(out_data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g * b.data, a.data.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(g * a.data, b.data.shape))

    return Tensor._make(out_data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data / b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g / b.data, a.data.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(-g * a.data / (b.data * b.data), b.data.shape))

    return Tensor._make(out_data, (a, b), backward)


def muladd(a: Tensor, b: Tensor, c: Tensor) -> Tensor:
    """Fused ``a * b + c`` with NumPy broadcasting.

    One graph node and one output buffer instead of two — this is the
    MEmCom composition ``U[j] ⊙ V[i] + W[i]`` (Algorithm 3), fused because
    it sits on the training hot path of every embedding lookup.
    """
    out_data = a.data * b.data
    if out_data.shape == np.broadcast_shapes(out_data.shape, c.data.shape) and (
        out_data.dtype == np.result_type(out_data.dtype, c.data.dtype)
    ):
        out_data += c.data  # in-place fast path: c broadcasts into the product
    else:
        out_data = out_data + c.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(g * b.data, a.data.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(g * a.data, b.data.shape))
        if c.requires_grad:
            c._accumulate(unbroadcast(g, c.data.shape))

    return Tensor._make(out_data, (a, b, c), backward)


def neg(a: Tensor) -> Tensor:
    def backward(g: np.ndarray) -> None:
        a._accumulate(-g)

    return Tensor._make(-a.data, (a,), backward)


def pow(a: Tensor, exponent: float) -> Tensor:
    """Elementwise power with a *scalar* exponent (all the paper needs)."""
    if isinstance(exponent, Tensor):
        raise TypeError("pow supports scalar exponents only")
    exponent = float(exponent)
    out_data = a.data**exponent

    def backward(g: np.ndarray) -> None:
        a._accumulate(g * exponent * a.data ** (exponent - 1.0))

    return Tensor._make(out_data, (a,), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product: 2-D×2-D, or N-D×2-D (dense layer over leading dims)."""
    if b.data.ndim != 2:
        raise ValueError(f"matmul rhs must be 2-D, got {b.data.shape}")
    if a.data.ndim < 2:
        raise ValueError(f"matmul lhs must be at least 2-D, got {a.data.shape}")
    out_data = a.data @ b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(g @ b.data.T)
        if b.requires_grad:
            if a.data.ndim == 2:
                b._accumulate(a.data.T @ g)
            else:
                k = a.data.shape[-1]
                n = b.data.shape[-1]
                b._accumulate(a.data.reshape(-1, k).T @ g.reshape(-1, n))

    return Tensor._make(out_data, (a, b), backward)


def bmm(a: Tensor, b: Tensor) -> Tensor:
    """Batched matrix product of two 3-D tensors: ``(N,p,q) @ (N,q,r)``.

    Used by tensor-train embeddings, which contract one core slice per
    looked-up index.  No broadcasting across the batch axis — both operands
    must carry the same leading ``N``.
    """
    if a.data.ndim != 3 or b.data.ndim != 3:
        raise ValueError(f"bmm needs 3-D operands, got {a.data.shape} and {b.data.shape}")
    if a.data.shape[0] != b.data.shape[0] or a.data.shape[2] != b.data.shape[1]:
        raise ValueError(f"bmm shape mismatch: {a.data.shape} @ {b.data.shape}")
    out_data = a.data @ b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(g @ b.data.transpose(0, 2, 1))
        if b.requires_grad:
            b._accumulate(a.data.transpose(0, 2, 1) @ g)

    return Tensor._make(out_data, (a, b), backward)


# -- reductions ----------------------------------------------------------------


def _expand_reduced(
    g: np.ndarray, in_shape: tuple[int, ...], axis: object, keepdims: bool
) -> np.ndarray:
    """Broadcast a reduction gradient back over the reduced axes."""
    if axis is None:
        return np.broadcast_to(g, in_shape)
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(ax % len(in_shape) for ax in axes)
    if not keepdims:
        for ax in sorted(axes):
            g = np.expand_dims(g, ax)
    return np.broadcast_to(g, in_shape)


def sum(a: Tensor, axis: object = None, keepdims: bool = False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g: np.ndarray) -> None:
        a._accumulate(_expand_reduced(g, a.data.shape, axis, keepdims).astype(a.data.dtype))

    return Tensor._make(np.asarray(out_data), (a,), backward)


def mean(a: Tensor, axis: object = None, keepdims: bool = False) -> Tensor:
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else int(
        np.prod(
            [a.data.shape[ax % a.data.ndim] for ax in ((axis,) if isinstance(axis, int) else axis)]
        )
    )

    def backward(g: np.ndarray) -> None:
        expanded = _expand_reduced(g, a.data.shape, axis, keepdims)
        a._accumulate((expanded / count).astype(a.data.dtype))

    return Tensor._make(np.asarray(out_data), (a,), backward)


# -- shape manipulation ----------------------------------------------------------


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    out_data = a.data.reshape(shape)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g.reshape(a.data.shape))

    return Tensor._make(out_data, (a,), backward)


def transpose(a: Tensor, axes: tuple[int, ...] | None = None) -> Tensor:
    out_data = a.data.transpose(axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(g: np.ndarray) -> None:
        a._accumulate(g.transpose(inverse))

    return Tensor._make(out_data, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate along ``axis`` (used by double-hashing / QR-concat)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(start), int(stop))
                t._accumulate(np.ascontiguousarray(g[tuple(sl)]))

    return Tensor._make(out_data, tuple(tensors), backward)


# -- elementwise nonlinearities -----------------------------------------------


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g * out_data)

    return Tensor._make(out_data, (a,), backward)


def log(a: Tensor) -> Tensor:
    out_data = np.log(a.data)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g / a.data)

    return Tensor._make(out_data, (a,), backward)


def sqrt(a: Tensor) -> Tensor:
    out_data = np.sqrt(a.data)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g / (2.0 * out_data))

    return Tensor._make(out_data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    # Stable: never exponentiates a positive argument.
    x = a.data
    out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))
    out_data = out_data.astype(x.dtype)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g * (1.0 - out_data * out_data))

    return Tensor._make(out_data, (a,), backward)


def relu(a: Tensor) -> Tensor:
    out_data = np.maximum(a.data, 0.0)

    def backward(g: np.ndarray) -> None:
        a._accumulate(g * (a.data > 0))

    return Tensor._make(out_data, (a,), backward)


# -- embedding lookup -----------------------------------------------------------


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows: ``out[..., :] = table[indices[...], :]``.

    ``indices`` is a raw integer ndarray (not a Tensor — ids are not
    differentiable).  Backward emits a :class:`SparseRowGrad` carrying one
    value row per lookup, so an id looked up k times in the batch accumulates
    k gradient contributions on coalescing — exactly the scatter-add a
    framework embedding layer performs, without ever materializing the
    ``(v, e)`` table gradient.  Optimizers then update only the touched rows
    (the TF 1.x ``IndexedSlices`` fast path the paper trained on).

    Under ``sparse_grads(False)`` backward falls back to densifying via a
    sparse one-hot matmul (the pre-sparse-path baseline, kept for the
    throughput benchmark).
    """
    indices = np.asarray(indices)
    if indices.dtype.kind not in "iu":
        raise TypeError(f"embedding indices must be integers, got {indices.dtype}")
    if table.data.ndim != 2:
        raise ValueError(f"embedding table must be 2-D, got shape {table.data.shape}")
    v = table.data.shape[0]
    if indices.size and (indices.min() < 0 or indices.max() >= v):
        raise IndexError(
            f"embedding index out of range: [{indices.min()}, {indices.max()}] vs table rows {v}"
        )
    out_data = table.data[indices]

    def backward(g: np.ndarray) -> None:
        e = table.data.shape[1]
        # Snapshot the ids: callers may legally refill a preallocated index
        # buffer between backward() and optimizer step(), and the sparse
        # grad reads its rows only at coalesce/apply time.
        flat = indices.ravel().copy()
        g2d = g.reshape(-1, e)
        if _sg.sparse_grads_enabled():
            # Copy the values too: ``g`` may be the backward *root's* grad
            # buffer, which outlives this call and is mutated in place by a
            # repeated backward() (interior buffers die, the root's does
            # not).  The emitted SparseRowGrad owns both its arrays.
            table._accumulate(SparseRowGrad(flat, g2d.copy(), table.data.shape))
            return
        # Dense baseline: scatter-add over the whole table — still O(v·e).
        table._accumulate(_sg.onehot_rowsum(flat, g2d, table.data.shape[0]))

    return Tensor._make(out_data, (table,), backward)


# -- batch normalization (fused) -------------------------------------------------


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    eps: float,
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Training-mode batch norm over all axes except the last.

    Returns ``(out, batch_mean, batch_var)``; the layer owns running-stat
    bookkeeping.  The backward pass uses the standard fused formula, which is
    both faster and more numerically stable than composing primitives.
    """
    axes = tuple(range(x.data.ndim - 1))
    mu = x.data.mean(axis=axes)
    var = x.data.var(axis=axes)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mu) * inv_std
    out_data = (x_hat * gamma.data + beta.data).astype(x.data.dtype)
    n = x.data.size // x.data.shape[-1]

    def backward(g: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma._accumulate((g * x_hat).sum(axis=axes).astype(gamma.data.dtype))
        if beta.requires_grad:
            beta._accumulate(g.sum(axis=axes).astype(beta.data.dtype))
        if x.requires_grad:
            g_mean = g.mean(axis=axes)
            gx_mean = (g * x_hat).mean(axis=axes)
            dx = gamma.data * inv_std * (g - g_mean - x_hat * gx_mean)
            x._accumulate(dx.astype(x.data.dtype))

    out = Tensor._make(out_data, (x, gamma, beta), backward)
    return out, mu, var
