"""Optimizers: SGD (+momentum), Adam, Adagrad, RMSProp, and gradient clipping.

Adam with Keras-default hyperparameters is what the experiments use; DP-SGD
(for the Figure 5 privacy experiment) lives in :mod:`repro.train.dp` and
composes :func:`clip_global_norm` with Gaussian noise before calling any of
these optimizers.

Sparse fast path
----------------
Embedding lookups emit row-sparse gradients
(:class:`repro.nn.sparse_grad.SparseRowGrad`); every ``step()`` here has a
sparse branch that updates **only the touched rows** with fancy indexing, so
a step over a ``v``-row table costs O(batch) instead of O(v) — the TF 1.x
``IndexedSlices`` sparse-apply the paper trained on.  Semantics (DESIGN.md
§5):

* **SGD (no momentum, no weight decay)** and **Adagrad** are *exactly*
  equivalent to the dense update: untouched rows receive a zero gradient,
  and zero gradient means zero dense update for both.
* **SGD with momentum / weight decay**, **Adam**, and **RMSProp** apply
  *lazy* updates: first/second-moment decay (and the decoupled weight-decay
  term) are applied only on touched rows, when they are touched.  Untouched
  rows keep stale state and do not drift — this is ``tf.contrib.opt.
  LazyAdamOptimizer`` / Keras sparse-apply behaviour, and deviates from
  dense Adam, which keeps moving every row on momentum alone.  Tests bound
  the deviation (``tests/nn/test_optim_sparse.py``).

:func:`global_grad_norm` and :func:`clip_global_norm` consume sparse grads
without densifying (the norm is over coalesced rows; clipping scales the
value rows in place).

Sharded apply
-------------
A :class:`repro.nn.sharding.ShardedTable` may appear directly in a parameter
list; :class:`Optimizer` expands it into its per-shard parameters, and each
shard then rides the sparse branches above with its own state slices.  A
sharded lookup routes every touched row to exactly one shard (local row
numbering), so the per-shard sparse apply performs exactly the monolithic
table's per-row update — shards no batch id hit carry no gradient and skip
the step entirely.
"""

from __future__ import annotations

import numpy as np

from repro.nn.sparse_grad import SparseRowGrad
from repro.nn.tensor import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "Adagrad",
    "RMSProp",
    "clip_global_norm",
    "global_grad_norm",
]


def _expand_sharded(params: list) -> list[Parameter]:
    """Replace any sharded table in ``params`` with its shard parameters.

    Duck-typed on ``shard_parameters()`` (rather than importing
    :mod:`repro.nn.sharding`) so the optimizer layer stays below sharding in
    the import graph.
    """
    out: list[Parameter] = []
    for p in params:
        shard_parameters = getattr(p, "shard_parameters", None)
        if shard_parameters is not None and not isinstance(p, Parameter):
            out.extend(shard_parameters())
        else:
            out.append(p)
    return out


class Optimizer:
    """Base optimizer over a fixed parameter list.

    The list may mix plain :class:`Parameter`\\ s and
    :class:`repro.nn.sharding.ShardedTable`\\ s; sharded tables expand into
    their per-shard parameters (the sharded-apply path — each shard gets its
    own optimizer state and rides the sparse branches independently).
    """

    def __init__(self, params: list[Parameter], lr: float) -> None:
        params = _expand_sharded(list(params))
        if not params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr
        #: cumulative count of parameter rows the applied gradients touched —
        #: a sparse batch advances this by its distinct embedding rows, a
        #: dense gradient by the parameter's full first dimension.  Row-aware
        #: warmup schedules (:class:`repro.nn.schedulers.RowWarmup`) read
        #: this clock instead of counting steps.
        self.rows_applied = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Advance the row clock, then apply the subclass update."""
        self.rows_applied += self._grad_rows()
        self._apply_step()

    def _apply_step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _grad_rows(self) -> int:
        """Rows the pending gradients touch (first-axis convention).

        Sparse grads count their distinct (coalesced) rows; a dense gradient
        touches every row of its parameter — for a non-embedding parameter
        (a tower weight matrix, a bias vector) that is its full first
        dimension, which keeps the clock identical to a step counter scaled
        by total rows when training is fully dense.
        """
        rows = 0
        for p in self.params:
            if p.raw_grad is None:
                continue
            sg = p.sparse_grad
            if sg is not None:
                rows += sg.nnz_rows
            else:
                rows += int(p.data.shape[0]) if p.data.ndim else 1
        return rows

    # -- state (for resumable training checkpoints) ---------------------------

    def state_slots(self) -> dict[str, list[np.ndarray] | None]:
        """Named per-parameter slot lists (``None`` = slot unused).

        Subclasses expose their moment/velocity/accumulator arrays here;
        the base optimizer keeps no per-parameter state.
        """
        return {}

    def state_scalars(self) -> dict[str, float | int]:
        """Scalar state (step counters) serialized alongside the slots.

        ``lr`` is included so a schedule-mutated rate survives a resume;
        ``rows_applied`` keeps the row-warmup clock continuous.
        """
        return {"lr": float(self.lr), "rows_applied": int(self.rows_applied)}

    def load_state_scalars(self, scalars: dict) -> None:
        self.lr = float(scalars["lr"])
        # Checkpoints from before the row clock existed carry no counter;
        # resuming them starts the clock at zero rather than failing.
        self.rows_applied = int(scalars.get("rows_applied", 0))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Slot arrays keyed ``<slot>.<param index>`` — the layout a
        checkpoint stores and :meth:`load_state_dict` restores exactly."""
        out: dict[str, np.ndarray] = {}
        for slot, arrays in self.state_slots().items():
            if arrays is None:
                continue
            for i, a in enumerate(arrays):
                out[f"{slot}.{i}"] = a.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Adopt slot arrays saved by :meth:`state_dict`.

        The optimizer must have been constructed over the same parameter
        list (same order, same shapes); mismatches raise ``KeyError`` /
        ``ValueError`` rather than silently training with fresh slots.
        """
        slots = {k: v for k, v in self.state_slots().items() if v is not None}
        expected = {f"{slot}.{i}" for slot, arrays in slots.items() for i in range(len(arrays))}
        missing = expected - state.keys()
        unexpected = state.keys() - expected
        if missing or unexpected:
            raise KeyError(
                f"optimizer state mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for slot, arrays in slots.items():
            for i, a in enumerate(arrays):
                value = np.asarray(state[f"{slot}.{i}"])
                if value.shape != a.shape:
                    raise ValueError(
                        f"optimizer slot {slot}.{i}: shape {value.shape} != "
                        f"expected {a.shape}"
                    )
                a[...] = value.astype(a.dtype)


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov lookahead and weight decay.

    The sparse branch is exact for plain SGD; with momentum or weight decay
    it is *lazy* (velocity decay / decay term only on touched rows).
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_slots(self) -> dict[str, list[np.ndarray] | None]:
        return {"velocity": self._velocity}

    def _apply_step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.raw_grad is None:
                continue
            sg = p.sparse_grad
            if sg is not None:
                self._step_sparse(p, v, sg)
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v -= self.lr * g
                if self.nesterov:
                    p.data += self.momentum * v - self.lr * g
                else:
                    p.data += v
            else:
                p.data -= self.lr * g

    def _step_sparse(self, p: Parameter, v: np.ndarray, sg: SparseRowGrad) -> None:
        rows, g = sg.rows, sg.values
        if rows.size == 0:
            return
        if self.weight_decay:
            g = g + self.weight_decay * p.data[rows]
        if self.momentum:
            # Lazy momentum: rows not in the batch keep a frozen velocity.
            v_rows = self.momentum * v[rows] - self.lr * g
            v[rows] = v_rows
            if self.nesterov:
                p.data[rows] += self.momentum * v_rows - self.lr * g
            else:
                p.data[rows] += v_rows
        else:
            p.data[rows] -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction; Keras-default eps.

    Sparse grads get the **lazy Adam** update: moments decay and the row
    moves only when the row appears in a batch, with the bias correction of
    the current global step.  Dense Adam instead updates every row each step
    (momentum keeps rows moving after their last occurrence); DESIGN.md §5
    documents and tests bound the divergence.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-7,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_slots(self) -> dict[str, list[np.ndarray] | None]:
        return {"m": self._m, "v": self._v}

    def state_scalars(self) -> dict[str, float | int]:
        return {**super().state_scalars(), "t": int(self._t)}

    def load_state_scalars(self, scalars: dict) -> None:
        super().load_state_scalars(scalars)
        self._t = int(scalars["t"])

    def _apply_step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.raw_grad is None:
                continue
            sg = p.sparse_grad
            if sg is not None:
                self._step_sparse(p, m, v, sg, bias1, bias2)
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_sparse(
        self,
        p: Parameter,
        m: np.ndarray,
        v: np.ndarray,
        sg: SparseRowGrad,
        bias1: float,
        bias2: float,
    ) -> None:
        rows, g = sg.rows, sg.values
        if rows.size == 0:
            return
        if self.weight_decay:
            g = g + self.weight_decay * np.take(p.data, rows, axis=0)
        # np.take + in-place arithmetic: measurably faster than fancy
        # indexing on the per-step row counts the models produce.
        m_rows = np.take(m, rows, axis=0)
        m_rows *= self.beta1
        m_rows += (1.0 - self.beta1) * g
        v_rows = np.take(v, rows, axis=0)
        v_rows *= self.beta2
        v_rows += (1.0 - self.beta2) * (g * g)
        m[rows] = m_rows
        v[rows] = v_rows
        update = np.sqrt(v_rows / bias2)
        update += self.eps
        np.divide(m_rows, update, out=update)
        update *= self.lr / bias1
        p.data[rows] -= update


class Adagrad(Optimizer):
    """Adagrad — per-coordinate adaptive rates; effective for sparse
    embedding gradients where rare ids need larger steps.

    The sparse branch is *exactly* the dense update: an untouched row has a
    zero gradient, which leaves both the accumulator and the weights alone.
    """

    def __init__(self, params: list[Parameter], lr: float = 0.01, eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._acc = [np.zeros_like(p.data) for p in self.params]

    def state_slots(self) -> dict[str, list[np.ndarray] | None]:
        return {"acc": self._acc}

    def _apply_step(self) -> None:
        for p, acc in zip(self.params, self._acc):
            if p.raw_grad is None:
                continue
            sg = p.sparse_grad
            if sg is not None:
                self._step_sparse(p, acc, sg)
                continue
            acc += p.grad * p.grad
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)

    def _step_sparse(self, p: Parameter, acc: np.ndarray, sg: SparseRowGrad) -> None:
        rows, g = sg.rows, sg.values
        if rows.size == 0:
            return
        acc_rows = acc[rows] + g * g
        acc[rows] = acc_rows
        p.data[rows] -= self.lr * g / (np.sqrt(acc_rows) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (Hinton) — exponentially decayed squared-gradient scaling,
    with optional momentum on the scaled update (TensorFlow semantics).

    Sparse grads get a lazy update (squared-average decay and momentum only
    on touched rows), mirroring TF's sparse apply for RMSProp.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        rho: float = 0.9,
        momentum: float = 0.0,
        eps: float = 1e-7,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.rho = rho
        self.momentum = momentum
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]
        self._vel = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def state_slots(self) -> dict[str, list[np.ndarray] | None]:
        return {"sq": self._sq, "vel": self._vel}

    def _apply_step(self) -> None:
        for i, (p, sq) in enumerate(zip(self.params, self._sq)):
            if p.raw_grad is None:
                continue
            sg = p.sparse_grad
            if sg is not None:
                self._step_sparse(p, sq, self._vel[i] if self._vel is not None else None, sg)
                continue
            sq *= self.rho
            sq += (1.0 - self.rho) * (p.grad * p.grad)
            update = self.lr * p.grad / (np.sqrt(sq) + self.eps)
            if self._vel is not None:
                vel = self._vel[i]
                vel *= self.momentum
                vel += update
                update = vel
            p.data -= update

    def _step_sparse(
        self, p: Parameter, sq: np.ndarray, vel: np.ndarray | None, sg: SparseRowGrad
    ) -> None:
        rows, g = sg.rows, sg.values
        if rows.size == 0:
            return
        sq_rows = self.rho * sq[rows] + (1.0 - self.rho) * (g * g)
        sq[rows] = sq_rows
        update = self.lr * g / (np.sqrt(sq_rows) + self.eps)
        if vel is not None:
            vel_rows = self.momentum * vel[rows] + update
            vel[rows] = vel_rows
            update = vel_rows
        p.data[rows] -= update


def global_grad_norm(params: list[Parameter]) -> float:
    """L2 norm of the concatenated gradients of ``params`` (None = zero).

    Sparse grads contribute the norm of their coalesced rows — identical to
    the dense norm, since untouched rows are exactly zero — without ever
    materializing the table-shaped gradient.  Sharded tables expand to their
    shard parameters, same as :class:`Optimizer`.
    """
    total = 0.0
    for p in _expand_sharded(list(params)):
        g = p.raw_grad
        if g is None:
            continue
        if isinstance(g, SparseRowGrad):
            # sparse_grad coalesces and caches back, so the optimizer step
            # that follows a clip does not re-coalesce.
            total += p.sparse_grad.sq_norm()
        else:
            total += float(np.sum(g.astype(np.float64) ** 2))
    return float(np.sqrt(total))


def clip_global_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  This is the constant-l2-clip the paper's
    DP setup uses (Appendix A.3).  Sparse grads are scaled in place on their
    value rows (scaling is linear, so coalescing order does not matter).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = _expand_sharded(list(params))
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            g = p.raw_grad
            if g is None:
                continue
            if isinstance(g, SparseRowGrad):
                g.scale_(scale)
            else:
                g *= scale
    return norm
