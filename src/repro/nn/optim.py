"""Optimizers: SGD (+momentum), Adam, Adagrad, and gradient clipping.

Adam with Keras-default hyperparameters is what the experiments use; DP-SGD
(for the Figure 5 privacy experiment) lives in :mod:`repro.train.dp` and
composes :func:`clip_global_norm` with Gaussian noise before calling any of
these optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "Adagrad",
    "RMSProp",
    "clip_global_norm",
    "global_grad_norm",
]


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov lookahead and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v -= self.lr * g
                if self.nesterov:
                    p.data += self.momentum * v - self.lr * g
                else:
                    p.data += v
            else:
                p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction; Keras-default eps."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-7,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class Adagrad(Optimizer):
    """Adagrad — per-coordinate adaptive rates; effective for sparse
    embedding gradients where rare ids need larger steps."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._acc = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._acc):
            if p.grad is None:
                continue
            acc += p.grad * p.grad
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (Hinton) — exponentially decayed squared-gradient scaling,
    with optional momentum on the scaled update (TensorFlow semantics)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        rho: float = 0.9,
        momentum: float = 0.0,
        eps: float = 1e-7,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= rho < 1.0:
            raise ValueError("rho must be in [0, 1)")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.rho = rho
        self.momentum = momentum
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]
        self._vel = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, (p, sq) in enumerate(zip(self.params, self._sq)):
            if p.grad is None:
                continue
            sq *= self.rho
            sq += (1.0 - self.rho) * (p.grad * p.grad)
            update = self.lr * p.grad / (np.sqrt(sq) + self.eps)
            if self._vel is not None:
                vel = self._vel[i]
                vel *= self.momentum
                vel += update
                update = vel
            p.data -= update


def global_grad_norm(params: list[Parameter]) -> float:
    """L2 norm of the concatenated gradients of ``params`` (None = zero)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad.astype(np.float64) ** 2))
    return float(np.sqrt(total))


def clip_global_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  This is the constant-l2-clip the paper's
    DP setup uses (Appendix A.3).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
