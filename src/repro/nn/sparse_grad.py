"""Sparse row gradients for embedding tables (IndexedSlices semantics).

The paper trains on TF 1.12, where ``tf.gather`` emits an ``IndexedSlices``
gradient — (indices, values) pairs naming only the table rows a batch
actually read — and the optimizer's sparse apply touches only those rows.
:class:`SparseRowGrad` is that representation for our NumPy substrate: the
backward pass of :func:`repro.nn.ops.embedding_lookup` emits one, Tensors
hold and merge them (see :meth:`repro.nn.tensor.Tensor._accumulate`), and
every optimizer in :mod:`repro.nn.optim` applies them with per-row fancy
indexing instead of dense whole-table math.  A 1M-row table trained with a
128-row batch then costs O(batch) per step instead of O(vocab).

Semantics (see DESIGN.md §5):

* ``rows`` may contain duplicates until :meth:`coalesce` — an id looked up
  k times in a batch contributes k value rows that sum on coalescing,
  exactly matching the dense scatter-add.
* ``Tensor.grad`` densifies lazily, so any consumer that asks for a plain
  ndarray (DP noise injection, tests, serialization) still gets one.
* Optimizers with per-step decay (Adam, RMSProp, momentum-SGD) apply
  **lazy** updates on the sparse path: state decay happens only on touched
  rows.  SGD (no momentum/weight-decay) and Adagrad are exactly equivalent
  to their dense updates.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np
from scipy import sparse as _sparse

__all__ = ["SparseRowGrad", "onehot_rowsum", "sparse_grads", "sparse_grads_enabled"]

_SPARSE_GRADS_ENABLED = True


def onehot_rowsum(col_ids: np.ndarray, values: np.ndarray, num_cols: int) -> np.ndarray:
    """``out[c] = Σ values[col_ids == c]`` via a CSR one-hot matmul.

    The shared scatter-add kernel of the embedding backward: ~20× faster
    than ``np.add.at`` on batch-sized inputs.  Used both to densify a
    lookup gradient over a whole table and to coalesce duplicate rows onto
    a compact id range.
    """
    k = col_ids.size
    onehot = _sparse.csr_matrix(
        (np.ones(k, dtype=values.dtype), col_ids, np.arange(k + 1)),
        shape=(k, num_cols),
    )
    return np.asarray(onehot.T @ values)


def sparse_grads_enabled() -> bool:
    """Whether embedding backward emits :class:`SparseRowGrad`."""
    return _SPARSE_GRADS_ENABLED


@contextlib.contextmanager
def sparse_grads(enabled: bool) -> Iterator[None]:
    """Toggle the sparse embedding-gradient path (for benchmarks/tests).

    ``sparse_grads(False)`` restores the dense scatter-add baseline in which
    ``embedding_lookup`` backward materializes a full ``(v, e)`` gradient.
    """
    global _SPARSE_GRADS_ENABLED
    prev = _SPARSE_GRADS_ENABLED
    _SPARSE_GRADS_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _SPARSE_GRADS_ENABLED = prev


class SparseRowGrad:
    """Row-sparse gradient of a 2-D table: ``dense[rows[i]] += values[i]``.

    Parameters
    ----------
    rows:
        ``(k,)`` integer row ids, duplicates allowed (coalescing sums them).
    values:
        ``(k, e)`` per-lookup gradient rows.
    shape:
        Full table shape ``(v, e)`` — what :meth:`to_dense` materializes and
        what shape checks in the autograd engine compare against.
    coalesced:
        ``True`` asserts ``rows`` is sorted and duplicate-free (trusted, not
        re-verified; :meth:`coalesce` sets it).
    """

    __slots__ = ("rows", "values", "shape", "coalesced")

    def __init__(
        self,
        rows: np.ndarray,
        values: np.ndarray,
        shape: tuple[int, ...],
        coalesced: bool = False,
    ) -> None:
        rows = np.asarray(rows)
        values = np.asarray(values)
        if rows.ndim != 1:
            raise ValueError(f"rows must be 1-D, got shape {rows.shape}")
        if rows.dtype.kind not in "iu":
            raise TypeError(f"rows must be integers, got {rows.dtype}")
        if len(shape) != 2:
            raise ValueError(f"SparseRowGrad targets 2-D tables, got shape {shape}")
        if values.shape != (rows.size, shape[1]):
            raise ValueError(
                f"values shape {values.shape} != (rows {rows.size}, cols {shape[1]})"
            )
        self.rows = rows
        self.values = values
        self.shape = tuple(int(s) for s in shape)
        self.coalesced = bool(coalesced)

    # -- properties ----------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def nnz_rows(self) -> int:
        """Distinct touched rows (cheap when coalesced)."""
        if self.coalesced:
            return self.rows.size
        return int(np.unique(self.rows).size)

    # -- transformations -----------------------------------------------------

    def copy(self) -> "SparseRowGrad":
        """Deep copy — owns its buffers (the producing op may reuse its)."""
        return SparseRowGrad(
            self.rows.copy(), self.values.copy(), self.shape, self.coalesced
        )

    def astype(self, dtype: np.dtype) -> "SparseRowGrad":
        if self.values.dtype == dtype:
            return self
        return SparseRowGrad(self.rows, self.values.astype(dtype), self.shape, self.coalesced)

    def coalesce(self) -> "SparseRowGrad":
        """Sum duplicate rows; result has sorted, unique ``rows``.

        This is the point where "id looked up k times accumulates k gradient
        contributions" becomes a single summed row — the same contraction the
        dense scatter-add performs implicitly.
        """
        if self.coalesced:
            return self
        if self.rows.size == 0:
            return SparseRowGrad(self.rows, self.values, self.shape, True)
        unique_rows, inverse = np.unique(self.rows, return_inverse=True)
        if unique_rows.size == self.rows.size:
            # Duplicate-free; np.unique sorted the rows for us.
            order = np.argsort(self.rows, kind="stable")
            return SparseRowGrad(unique_rows, self.values[order], self.shape, True)
        inverse = inverse.ravel()
        if self.shape[1] == 1:
            # Per-entity scalar tables (MEmCom multiplier/bias, QR-style
            # columns): one weighted bincount beats any 2-D reduction.
            summed = np.bincount(
                inverse, weights=self.values[:, 0], minlength=unique_rows.size
            ).astype(self.values.dtype)[:, None]
            return SparseRowGrad(unique_rows, summed, self.shape, True)
        # Sum duplicate rows onto the compact unique-id range — ~3× faster
        # than np.add.reduceat over sorted values.
        summed = onehot_rowsum(inverse, self.values, unique_rows.size)
        return SparseRowGrad(unique_rows, summed, self.shape, True)

    def merge(self, other: "SparseRowGrad") -> "SparseRowGrad":
        """Concatenate two sparse grads of the same table (sum semantics)."""
        if other.shape != self.shape:
            raise ValueError(f"cannot merge shapes {self.shape} and {other.shape}")
        values = other.values
        if values.dtype != self.values.dtype:
            values = values.astype(self.values.dtype)
        return SparseRowGrad(
            np.concatenate([self.rows, other.rows]),
            np.concatenate([self.values, values]),
            self.shape,
        )

    # -- consumption ---------------------------------------------------------

    def to_dense(self, dtype: np.dtype | None = None) -> np.ndarray:
        """Materialize the full ``(v, e)`` gradient (scatter-add)."""
        out = np.zeros(self.shape, dtype=dtype or self.values.dtype)
        self.add_to_dense(out)
        return out

    def add_to_dense(self, dense: np.ndarray) -> None:
        """Scatter-add into an existing dense array in place."""
        if dense.shape != self.shape:
            raise ValueError(f"dense shape {dense.shape} != sparse shape {self.shape}")
        g = self.coalesce()
        # Coalesced rows are unique, so plain fancy-index += is exact.
        dense[g.rows] += g.values

    def scale_(self, factor: float) -> None:
        """In-place multiply (gradient clipping); linear, so coalescing-order
        independent."""
        self.values *= factor

    def sq_norm(self) -> float:
        """Sum of squares of the *coalesced* gradient (float64).

        Coalescing first is load-bearing: duplicates must sum before
        squaring or the norm of a batch with repeated ids is wrong.
        """
        g = self.coalesce()
        return float(np.sum(g.values.astype(np.float64) ** 2))

    def __repr__(self) -> str:
        tag = ", coalesced" if self.coalesced else ""
        return (
            f"SparseRowGrad(rows={self.rows.size}, shape={self.shape}, "
            f"dtype={self.values.dtype}{tag})"
        )
