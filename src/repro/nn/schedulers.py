"""Learning-rate schedules for the training loop.

The paper trains with a fixed rate; schedulers are part of making the
substrate complete enough for downstream use (and the fixed-size experiment
benefits from a short warmup at small batch counts).  A scheduler wraps an
:class:`repro.nn.optim.Optimizer` and mutates its ``lr`` in place when
``step()`` is called once per epoch (or per batch — the unit is whatever the
caller picks; ``t`` counts calls).
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer

__all__ = [
    "Scheduler",
    "ConstantLR",
    "StepDecay",
    "ExponentialDecay",
    "CosineAnnealing",
    "LinearWarmup",
    "RowWarmup",
    "ReduceOnPlateau",
    "build_scheduler",
]


class Scheduler:
    """Base: owns the optimizer and the step counter."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.t = 0

    def step(self, metric: float | None = None) -> float:
        """Advance one unit and apply the new rate; returns it."""
        self.t += 1
        self.optimizer.lr = self.lr_at(self.t)
        return self.optimizer.lr

    def lr_at(self, t: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(Scheduler):
    """No-op schedule (keeps the configured rate)."""

    def lr_at(self, t: int) -> float:
        return self.base_lr


class StepDecay(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, t: int) -> float:
        return self.base_lr * self.gamma ** (t // self.step_size)


class ExponentialDecay(Scheduler):
    """``lr_t = lr₀ · gamma^t``."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = gamma

    def lr_at(self, t: int) -> float:
        return self.base_lr * self.gamma**t


class CosineAnnealing(Scheduler):
    """Cosine decay from ``lr₀`` to ``min_lr`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.t_max = t_max
        self.min_lr = min_lr

    def lr_at(self, t: int) -> float:
        frac = min(t, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * frac))


class LinearWarmup(Scheduler):
    """Ramp 0 → lr₀ over ``warmup`` steps, then delegate to ``after``.

    ``after`` is an already-constructed scheduler on the same optimizer; its
    clock starts when the warmup ends.
    """

    def __init__(self, optimizer: Optimizer, warmup: int, after: Scheduler | None = None) -> None:
        super().__init__(optimizer)
        if warmup <= 0:
            raise ValueError("warmup must be positive")
        if after is not None and after.optimizer is not optimizer:
            raise ValueError("after-scheduler must wrap the same optimizer")
        self.warmup = warmup
        self.after = after

    def lr_at(self, t: int) -> float:
        if t <= self.warmup:
            return self.base_lr * t / self.warmup
        if self.after is None:
            return self.base_lr
        return self.after.lr_at(t - self.warmup)


class RowWarmup(Scheduler):
    """Warmup driven by the optimizer's cumulative *touched-row* clock.

    :class:`LinearWarmup` counts scheduler steps, which over-trusts early
    steps under row-sparse training: a sparse batch updates only its touched
    embedding rows, so after ``warmup`` steps most of the table has seen far
    fewer updates than the step count suggests.  ``RowWarmup`` instead ramps
    ``0 → lr₀`` as ``optimizer.rows_applied`` (advanced by every
    ``Optimizer.step``) approaches ``row_target`` — the warmup ends when a
    target *volume of row-updates* has actually been applied, not when a
    step quota has elapsed.

    At full density the two are identical: every step applies all ``R``
    rows, so ``row_target = warmup · R`` reproduces ``LinearWarmup(warmup)``
    exactly.  Under sparse batches the row clock advances slower and the
    warmup holds the rate down until the same update volume has landed.

    ``after`` delegates post-warmup, with its clock starting at the step
    the row target was reached (mirroring ``LinearWarmup``).
    """

    def __init__(
        self, optimizer: Optimizer, row_target: int, after: Scheduler | None = None
    ) -> None:
        super().__init__(optimizer)
        if row_target <= 0:
            raise ValueError("row_target must be positive")
        if after is not None and after.optimizer is not optimizer:
            raise ValueError("after-scheduler must wrap the same optimizer")
        self.row_target = int(row_target)
        self.after = after
        #: step at which the row target was reached (None = still warming);
        #: checkpointed so the after-schedule clock survives a resume.
        self._done_t: int | None = None

    def step(self, metric: float | None = None) -> float:
        self.t += 1
        if self._done_t is not None:
            self.optimizer.lr = (
                self.base_lr if self.after is None
                else self.after.lr_at(self.t - self._done_t)
            )
        elif self.optimizer.rows_applied >= self.row_target:
            self._done_t = self.t
            self.optimizer.lr = self.base_lr
        else:
            self.optimizer.lr = self.base_lr * self.optimizer.rows_applied / self.row_target
        return self.optimizer.lr

    def lr_at(self, t: int) -> float:  # the row clock is stateful
        return self.optimizer.lr


class ReduceOnPlateau(Scheduler):
    """Multiply the rate by ``factor`` when the metric stalls.

    ``step(metric)`` must receive the validation metric (higher = better,
    matching the trainer's accuracy/nDCG).  After ``patience`` steps without
    improvement the rate is cut, bounded below by ``min_lr``.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 2,
        min_lr: float = 1e-6,
    ) -> None:
        super().__init__(optimizer)
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self._best = -math.inf
        self._stale = 0

    def step(self, metric: float | None = None) -> float:
        if metric is None:
            raise ValueError("ReduceOnPlateau.step requires the validation metric")
        self.t += 1
        if metric > self._best:
            self._best = metric
            self._stale = 0
        else:
            self._stale += 1
            if self._stale >= self.patience:
                self.optimizer.lr = max(self.min_lr, self.optimizer.lr * self.factor)
                self._stale = 0
        return self.optimizer.lr

    def lr_at(self, t: int) -> float:  # plateau decisions are stateful
        return self.optimizer.lr


def build_scheduler(
    name: str,
    optimizer: Optimizer,
    total_steps: int,
    row_target: int | None = None,
) -> Scheduler:
    """Construct a schedule by name (the trainer's ``lr_schedule`` knob).

    ``total_steps`` sizes the horizon-dependent schedules (cosine's period,
    step decay's interval); ``row_target`` is required by (and only by)
    ``row_warmup`` — the cumulative touched-row volume that ends the warmup.
    """
    if name == "constant":
        return ConstantLR(optimizer)
    if name == "cosine":
        return CosineAnnealing(optimizer, t_max=max(total_steps, 1))
    if name == "step":
        return StepDecay(optimizer, step_size=max(total_steps // 3, 1), gamma=0.3)
    if name == "exponential":
        return ExponentialDecay(optimizer, gamma=0.05 ** (1.0 / max(total_steps, 1)))
    if name == "plateau":
        return ReduceOnPlateau(optimizer)
    if name == "row_warmup":
        if row_target is None:
            raise ValueError("lr schedule 'row_warmup' requires row_target (warmup_rows)")
        return RowWarmup(optimizer, row_target=row_target)
    raise KeyError(
        f"unknown lr schedule {name!r}; available: constant, cosine, step, "
        "exponential, plateau, row_warmup"
    )
