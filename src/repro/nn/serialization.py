"""Model persistence and size accounting.

The paper's compression ratios are ratios of *parameter counts over all
layers* (§5.1), and its on-device concern is *on-disk bytes shipped to the
phone*.  This module provides both: npz round-tripping of state dicts, and
byte-size accounting at a given floating-point precision (the quantization
experiment re-uses it with 2/1-byte parameters).
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module

__all__ = [
    "save_npz",
    "load_npz",
    "parameter_breakdown",
    "on_disk_bytes",
    "compression_ratio",
]


def save_npz(module: Module, path: str) -> int:
    """Serialize ``module.state_dict()`` to ``path`` (npz); returns file bytes."""
    state = module.state_dict()
    # npz forbids '/' in member names on some platforms; state keys use '.'.
    np.savez(path, **state)
    real = path if path.endswith(".npz") else path + ".npz"
    return os.path.getsize(real)


def load_npz(module: Module, path: str) -> None:
    """Load parameters saved by :func:`save_npz` into ``module``."""
    with np.load(path) as archive:
        module.load_state_dict({k: archive[k] for k in archive.files})


def parameter_breakdown(module: Module) -> dict[str, int]:
    """Per-parameter element counts, keyed by state-dict name."""
    return {name: p.size for name, p in module.named_parameters()}


def on_disk_bytes(module: Module, bytes_per_param: float = 4.0) -> int:
    """Model size if every parameter is stored at ``bytes_per_param`` bytes.

    FP32 export is 4 bytes/param; fp16 is 2; int8 is 1; int4 is 0.5.  Running
    statistics of BatchNorm layers are included — frameworks ship them.
    """
    n = module.num_parameters()
    for m in module.modules():
        running_mean = getattr(m, "running_mean", None)
        if isinstance(running_mean, np.ndarray):
            n += running_mean.size + m.running_var.size
    return int(round(n * bytes_per_param))


def compression_ratio(baseline: Module | int, compressed: Module | int) -> float:
    """Paper's compression ratio: baseline params / compressed params."""
    base_n = baseline if isinstance(baseline, int) else baseline.num_parameters()
    comp_n = compressed if isinstance(compressed, int) else compressed.num_parameters()
    if comp_n <= 0:
        raise ValueError("compressed model has no parameters")
    return base_n / comp_n
