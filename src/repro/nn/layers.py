"""Module system and the layer vocabulary of the paper's Code 1 network.

The paper builds every model from: ``Embedding → AveragePooling1D → Flatten →
ReLU → Dropout → BatchNormalization → Dense → Dropout → BatchNormalization →
Dense(softmax)``.  This module provides exactly those layers (plus
``Sequential``) on top of the autograd engine; embedding variants live in
:mod:`repro.nn.embedding` and :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import functional, init, ops
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = [
    "Module",
    "Dense",
    "ReLU",
    "Dropout",
    "BatchNorm",
    "AveragePooling1D",
    "Flatten",
    "Sequential",
]


class Module:
    """Base class: parameter discovery, train/eval mode, state dicts.

    Subclasses assign :class:`Parameter` and sub-``Module`` instances (or
    lists thereof) as attributes; discovery walks ``vars(self)`` in
    definition order, so state-dict keys are deterministic.

    Non-trainable state that must survive serialization — BatchNorm running
    statistics, hash salts — is declared via the class attribute
    ``buffer_names``: each named attribute must be a ``numpy.ndarray`` and is
    included in :meth:`state_dict` / restored by :meth:`load_state_dict`.
    """

    #: attribute names of non-trainable ndarrays serialized with the module
    buffer_names: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.training: bool = True

    # -- forward ---------------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal ---------------------------------------------------------------

    def _children(self) -> Iterator[tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def modules(self) -> Iterator["Module"]:
        """Yield self and all descendant modules, depth-first."""
        yield self
        for _, child in self._children():
            yield from child.modules()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total trainable parameter count (the paper's 'model size' unit)."""
        return sum(p.size for p in self.parameters())

    # -- modes / grads -----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state -------------------------------------------------------------------

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Non-trainable serialized state: (name, ndarray) pairs, recursive."""
        for name in type(self).buffer_names:
            yield f"{prefix}{name}", np.asarray(getattr(self, name))
        for child_name, child in self._children():
            yield from child.named_buffers(f"{prefix}{child_name}.")

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameters plus buffers — everything a checkpoint must carry.

        Buffers matter for fidelity: without BatchNorm running statistics an
        eval-mode model normalizes wrongly, and without hash salts a
        double-hashed embedding addresses different rows entirely.
        """
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, b in self.named_buffers():
            state[name] = b.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], copy: bool = True) -> None:
        """Strict-load ``state`` (exact key match, exact shapes).

        ``copy=False`` adopts matching-dtype arrays by reference instead of
        copying — the zero-copy path for mmap-backed artifact loads, where
        the arrays are read-only views over the container file.  Only pass
        it when the module will not be trained (eval-mode serving rebuilds).
        """
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        own = own_params.keys() | own_buffers.keys()
        missing = own - state.keys()
        unexpected = state.keys() - own
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, p in own_params.items():
            value = np.asarray(state[name])
            if value.shape != p.data.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != expected {p.data.shape}"
                )
            if copy or value.dtype != p.data.dtype:
                value = value.astype(p.data.dtype)  # astype copies
            p.data = value
        for name, current in own_buffers.items():
            value = np.asarray(state[name])
            if value.shape != current.shape:
                raise ValueError(
                    f"buffer {name!r}: shape {value.shape} != expected {current.shape}"
                )
            # Walk to the owning module so the attribute itself is replaced
            # (path segments are attribute names or list indices).
            *path, attr = name.split(".")
            target = self
            for part in path:
                target = target[int(part)] if isinstance(target, (list, tuple)) else vars(target)[part]
            setattr(target, attr, value.astype(current.dtype))


class Dense(Module):
    """Fully connected layer ``y = activation(x @ W + b)``.

    Accepts 2-D inputs (B, in) or N-D inputs whose last axis is ``in_features``
    (needed by factorized embeddings projecting (B, L, h) → (B, L, e)).
    """

    def __init__(
        self,
        in_features: int,
        units: int,
        use_bias: bool = True,
        activation: str | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or units <= 0:
            raise ValueError(f"Dense dims must be positive, got {in_features}x{units}")
        if activation not in (None, "relu", "sigmoid", "tanh"):
            raise ValueError(f"unsupported activation {activation!r}")
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.units = units
        self.activation = activation
        self.weight = Parameter(init.glorot_uniform((in_features, units), rng), name="weight")
        self.bias = Parameter(init.zeros((units,)), name="bias") if use_bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        if self.activation == "relu":
            out = ops.relu(out)
        elif self.activation == "sigmoid":
            out = ops.sigmoid(out)
        elif self.activation == "tanh":
            out = ops.tanh(out)
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return functional.dropout(x, self.rate, self.rng, self.training)


class BatchNorm(Module):
    """Batch normalization over all axes except the last (feature) axis.

    Defaults follow Keras ``BatchNormalization``: momentum 0.99, eps 1e-3.
    Training uses batch statistics and updates exponential running averages;
    eval normalizes with the running statistics.
    """

    buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, momentum: float = 0.99, eps: float = 1e-3) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")
        # Running statistics are buffers, not Parameters: they are state, not
        # trainable weights, but they do count toward on-disk model size.
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"BatchNorm expected last dim {self.num_features}, got {x.shape[-1]}"
            )
        if self.training:
            out, mu, var = ops.batch_norm(x, self.gamma, self.beta, self.eps)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1.0 - m) * mu.astype(np.float32)
            self.running_var = m * self.running_var + (1.0 - m) * var.astype(np.float32)
            return out
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        x_hat = ops.mul(ops.sub(x, Tensor(self.running_mean)), Tensor(inv_std))
        return ops.add(ops.mul(x_hat, self.gamma), self.beta)


class AveragePooling1D(Module):
    """Non-overlapping average pooling along the sequence axis (B, L, E)."""

    def __init__(self, pool_size: int) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size

    def forward(self, x: Tensor) -> Tensor:
        return functional.average_pool1d(x, self.pool_size)


class Flatten(Module):
    """Collapse all axes after the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        b = x.shape[0]
        return ops.reshape(x, (b, int(np.prod(x.shape[1:]))))


class Sequential(Module):
    """Apply layers in order; indexable like a list."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)
