"""The uncompressed embedding layer — the paper's baseline.

``Embedding(v, e)`` stores the full `v × e` table; every compression
technique in :mod:`repro.core` is measured against this layer's parameter
count.  Lookup is the "table approach" of §3 (an O(b·e) gather), not the
one-hot "matrix approach"; :class:`repro.core.onehot.HashedOneHotEncoder`
implements the latter for the Table 3 comparison.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.layers import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils.rng import ensure_rng

__all__ = ["Embedding"]


class Embedding(Module):
    """Full embedding table: maps integer ids (any shape) to vectors.

    Matches Keras ``Embedding(input_dim=v, output_dim=e)`` with
    uniform(-0.05, 0.05) init and ``mask_zero=False`` (padding id 0 is a
    learned row included in pooling, exactly as in the paper's Code 1).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError(
                f"embedding dims must be positive, got {num_embeddings}x{embedding_dim}"
            )
        rng = ensure_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        # output_dim is what downstream layers see; for the full table it is
        # the embedding dim itself, but compressed variants may differ.
        self.output_dim = embedding_dim
        self.weight = Parameter(
            init.uniform((num_embeddings, embedding_dim), rng), name="weight"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return ops.embedding_lookup(self.weight, indices)
