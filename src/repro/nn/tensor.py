"""Reverse-mode automatic differentiation over NumPy arrays.

This is the training substrate the reproduction runs on (the paper used
TensorFlow 1.12 + Keras; see DESIGN.md for the substitution argument).  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it; :meth:`Tensor.backward` walks the recorded graph in reverse
topological order accumulating gradients.

Design notes
------------
* Gradients are plain ``numpy.ndarray``s or row-sparse
  :class:`repro.nn.sparse_grad.SparseRowGrad`s, never Tensors — no
  higher-order derivatives are needed for the paper.  Embedding-table
  gradients stay sparse through accumulation, clipping and the optimizer
  step; reading ``.grad`` densifies lazily for backward compatibility,
  while sparse-aware consumers use :attr:`Tensor.raw_grad` /
  :attr:`Tensor.sparse_grad`.
* All arithmetic is defined in :mod:`repro.nn.ops`; the dunder methods here
  delegate to it (imported lazily to avoid an import cycle).
* ``float32`` is the default dtype, matching the paper's FP32 training and
  on-device export setting.
* A global no-grad switch (:func:`no_grad`) lets evaluation skip graph
  construction entirely, which roughly halves inference cost.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.nn.sparse_grad import SparseRowGrad

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled", "DEFAULT_DTYPE"]

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether new operations will record autograd graph edges."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph recording (for inference/eval)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _as_array(data: object, dtype: np.dtype | None) -> np.ndarray:
    if isinstance(data, np.ndarray):
        arr = data
    else:
        arr = np.asarray(data)
    if dtype is not None and arr.dtype != dtype:
        arr = arr.astype(dtype)
    elif arr.dtype.kind not in "fc":
        # Integers/bools promote to the default float dtype: Tensors carry
        # differentiable values only; integer indices stay raw ndarrays.
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


class Tensor:
    """A differentiable node: an ndarray plus the closure that backprops it."""

    __slots__ = ("data", "_grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        dtype: np.dtype | None = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data, dtype)
        self._grad: np.ndarray | SparseRowGrad | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # -- gradient access -------------------------------------------------------

    @property
    def grad(self) -> np.ndarray | None:
        """The accumulated gradient as a dense ndarray.

        A sparse row gradient densifies (and is cached dense) on first
        access, so legacy consumers — DP noise injection, tests, direct
        ``p.grad`` math — keep working.  Sparse-aware code (the optimizers)
        reads :attr:`raw_grad` instead and never pays the densification.
        """
        if isinstance(self._grad, SparseRowGrad):
            self._grad = self._grad.to_dense(dtype=self.data.dtype)
        return self._grad

    @grad.setter
    def grad(self, value: np.ndarray | SparseRowGrad | None) -> None:
        self._grad = value

    @property
    def raw_grad(self) -> np.ndarray | SparseRowGrad | None:
        """The gradient in whatever form it is held — no densification."""
        return self._grad

    @property
    def sparse_grad(self) -> SparseRowGrad | None:
        """The gradient as a coalesced :class:`SparseRowGrad`, if sparse.

        Returns ``None`` when the gradient is dense or absent.  The
        coalesced form is cached back, so repeated consumers (norm clipping
        followed by the optimizer step) coalesce once.
        """
        if isinstance(self._grad, SparseRowGrad):
            self._grad = self._grad.coalesce()
            return self._grad
        return None

    # -- graph construction (used by repro.nn.ops) ---------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node whose gradient flows to ``parents``.

        When grad mode is off or no parent requires grad, the node is a
        constant and no closure is retained.
        """
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray | SparseRowGrad) -> None:
        """Add ``grad`` into the held gradient (allocating on first touch).

        Handles all four held/incoming combinations: dense+dense adds in
        place, sparse+sparse merges lazily (coalescing is deferred to the
        consumer), sparse+dense densifies the held sparse grad first, and
        dense+sparse scatter-adds the incoming rows into the dense buffer —
        so a table read by several lookups (e.g. both arms of a RankNet
        pair) accumulates correctly whatever mix of forms arrives.
        """
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )
        if isinstance(grad, SparseRowGrad):
            if self._grad is None:
                # No defensive copy here: the producer (embedding_lookup
                # backward) already emits owned row/value buffers, so the
                # incoming SparseRowGrad never aliases a live grad buffer.
                self._grad = grad.astype(self.data.dtype)
            elif isinstance(self._grad, SparseRowGrad):
                self._grad = self._grad.merge(grad)
            else:
                grad.add_to_dense(self._grad)
            return
        if self._grad is None:
            # Copy: the incoming buffer may be reused by the producing op.
            if grad.dtype == self.data.dtype:
                self._grad = grad.copy()
            else:
                self._grad = grad.astype(self.data.dtype)
        elif isinstance(self._grad, SparseRowGrad):
            dense = self._grad.to_dense(dtype=self.data.dtype)
            dense += grad
            self._grad = dense
        else:
            self._grad += grad

    # -- autodiff ------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (so ``loss.backward()`` on a scalar yields
        d loss/d θ in every reachable parameter's ``.grad``).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:  # iterative DFS: graphs can exceed Python's recursion limit
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node._grad is not None:
                # Interior nodes hold dense grads (only leaf tables receive
                # sparse ones), so the closures always see an ndarray.
                node._backward(node.grad)
                # Interior activations are single-use; free their grad buffers
                # eagerly so large models do not hold every activation grad.
                if not isinstance(node, Parameter) and node is not self:
                    node._grad = None

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a view of the same data cut out of the autograd graph."""
        return Tensor(self.data)

    # -- conveniences ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{flag})"

    # -- operator sugar (delegates to repro.nn.ops) ----------------------------

    def __add__(self, other: object) -> "Tensor":
        from repro.nn import ops

        return ops.add(self, ops.as_tensor(other))

    __radd__ = __add__

    def __sub__(self, other: object) -> "Tensor":
        from repro.nn import ops

        return ops.sub(self, ops.as_tensor(other))

    def __rsub__(self, other: object) -> "Tensor":
        from repro.nn import ops

        return ops.sub(ops.as_tensor(other), self)

    def __mul__(self, other: object) -> "Tensor":
        from repro.nn import ops

        return ops.mul(self, ops.as_tensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "Tensor":
        from repro.nn import ops

        return ops.div(self, ops.as_tensor(other))

    def __rtruediv__(self, other: object) -> "Tensor":
        from repro.nn import ops

        return ops.div(ops.as_tensor(other), self)

    def __neg__(self) -> "Tensor":
        from repro.nn import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.nn import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.nn import ops

        return ops.matmul(self, other)

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.nn import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from repro.nn import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.nn import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        from repro.nn import ops

        return ops.transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()


class Parameter(Tensor):
    """A trainable tensor.

    Parameters always require grad, are never freed during backprop, and are
    what :class:`repro.nn.layers.Module` collects for optimizers and
    serialization.
    """

    __slots__ = ("name",)

    def __init__(self, data: object, name: str = "", dtype: np.dtype | None = None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)
        self.name = name

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Parameter{label}(shape={self.data.shape}, dtype={self.data.dtype})"
