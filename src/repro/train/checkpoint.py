"""Snapshot / restore a trainer's :class:`~repro.train.trainer.TrainState`.

A resumable checkpoint is *all* of the loop's mutable context, not just the
weights: model parameters and buffers, optimizer slot arrays and step
counters, the LR-scheduler clock, the data-order RNG position, the dropout
RNG positions inside the model, the running :class:`History`, and the
early-stopping bookkeeping (best weights, staleness).  :func:`capture_state`
flattens that into ``(meta, arrays)`` — a JSON-able dict plus named float
arrays — which is exactly what the v2 artifact container stores
(:mod:`repro.artifact.container`), and :func:`restore_state` rebuilds a
:class:`TrainState` that continues **bit-identically** to a run that was
never interrupted (DESIGN.md §9).

This module is deliberately pipeline-agnostic: it knows trainers and
models, not datasets or artifact files — :mod:`repro.pipeline.session`
owns the container glue.
"""

from __future__ import annotations

import numpy as np

from repro.train.trainer import History, Trainer, TrainState
from repro.utils.rng import (
    module_rng_states,
    rng_state,
    set_module_rng_states,
    set_rng_state,
)

__all__ = ["capture_state", "restore_state"]

_MODEL = "model/"
_OPT = "opt/"
_BEST = "best/"


def _encode_metrics(values: list[float]) -> list[float | None]:
    """NaN → None: the manifest must stay strict JSON (no NaN tokens)."""
    return [None if np.isnan(v) else float(v) for v in values]


def _decode_metrics(values: list) -> list[float]:
    return [float("nan") if v is None else float(v) for v in values]


def _scheduler_meta(scheduler) -> dict | None:
    if scheduler is None:
        return None
    meta = {"t": int(scheduler.t)}
    # ReduceOnPlateau keeps decision state beyond the step clock.
    if hasattr(scheduler, "_best"):
        meta["best"] = None if not np.isfinite(scheduler._best) else float(scheduler._best)
        meta["stale"] = int(scheduler._stale)
    # RowWarmup remembers the step its row target was reached at.
    if hasattr(scheduler, "_done_t"):
        meta["done_t"] = None if scheduler._done_t is None else int(scheduler._done_t)
    return meta


def _restore_scheduler(scheduler, meta: dict) -> None:
    scheduler.t = int(meta["t"])
    if hasattr(scheduler, "_best"):
        best = meta.get("best")
        scheduler._best = -np.inf if best is None else float(best)
        scheduler._stale = int(meta.get("stale", 0))
    if hasattr(scheduler, "_done_t"):
        done = meta.get("done_t")
        scheduler._done_t = None if done is None else int(done)


def capture_state(trainer: Trainer, model, state: TrainState) -> tuple[dict, dict]:
    """``(meta, arrays)`` snapshot of a (possibly mid-run) training state.

    ``meta`` is strict-JSON-able; ``arrays`` maps payload names
    (``model/…``, ``opt/…``, ``best/…``) to ndarrays.  Together they are
    sufficient for :func:`restore_state` to continue the run bit-exactly.
    """
    arrays: dict[str, np.ndarray] = {}
    for key, arr in model.state_dict().items():
        arrays[_MODEL + key] = arr
    for key, arr in state.optimizer.state_dict().items():
        arrays[_OPT + key] = arr
    if state.best_state is not None:
        for key, arr in state.best_state.items():
            arrays[_BEST + key] = arr

    h = state.history
    meta = {
        "epoch": int(state.epoch),
        "stopped": bool(state.stopped),
        "best_metric": (
            None if not np.isfinite(state.best_metric) else float(state.best_metric)
        ),
        "stale_epochs": int(state.stale_epochs),
        "has_best_state": state.best_state is not None,
        "history": {
            "train_loss": [float(v) for v in h.train_loss],
            "val_metric": _encode_metrics(h.val_metric),
            "metric_name": h.metric_name,
            "best_epoch": int(h.best_epoch),
            "steps": int(h.steps),
            "seconds": float(h.seconds),
        },
        "rng": rng_state(state.rng),
        "model_rngs": module_rng_states(model),
        "optimizer": {
            "name": trainer.config.optimizer,
            "scalars": {k: v for k, v in state.optimizer.state_scalars().items()},
        },
        "scheduler": _scheduler_meta(state.scheduler),
        "trainer_extra": trainer.extra_state(),
    }
    return meta, arrays


def restore_state(trainer: Trainer, model, meta: dict, arrays: dict) -> TrainState:
    """Rebuild the :class:`TrainState` captured by :func:`capture_state`.

    ``model`` must be a freshly built instance of the checkpointed
    architecture (same shapes); the trainer must carry the same config
    (``optimizer`` name is cross-checked).  Raises ``KeyError`` /
    ``ValueError`` on any structural mismatch — the caller wraps those in
    typed artifact errors.
    """
    declared = meta["optimizer"]["name"]
    if declared != trainer.config.optimizer:
        raise ValueError(
            f"checkpoint was taken with optimizer {declared!r}, trainer "
            f"config says {trainer.config.optimizer!r}"
        )

    model.load_state_dict(
        {k[len(_MODEL):]: v for k, v in arrays.items() if k.startswith(_MODEL)}
    )
    set_module_rng_states(model, meta["model_rngs"])

    # init_state wires optimizer + scheduler exactly as a fresh fit would
    # (scheduler base_lr = config.lr); the captured state then overwrites
    # every mutable part, including a schedule-decayed optimizer lr.
    state = trainer.init_state(model)
    state.optimizer.load_state_dict(
        {k[len(_OPT):]: v for k, v in arrays.items() if k.startswith(_OPT)}
    )
    sched_meta = meta.get("scheduler")
    if (sched_meta is None) != (state.scheduler is None):
        raise ValueError(
            "checkpoint and trainer config disagree on whether an LR "
            "schedule is active"
        )
    if state.scheduler is not None:
        _restore_scheduler(state.scheduler, sched_meta)
    # After the scheduler rebuild: the restored lr wins over base_lr.
    state.optimizer.load_state_scalars(meta["optimizer"]["scalars"])
    set_rng_state(state.rng, meta["rng"])

    h = meta["history"]
    state.history = History(
        train_loss=[float(v) for v in h["train_loss"]],
        val_metric=_decode_metrics(h["val_metric"]),
        metric_name=h["metric_name"],
        best_epoch=int(h["best_epoch"]),
        steps=int(h["steps"]),
        seconds=float(h["seconds"]),
    )
    state.epoch = int(meta["epoch"])
    state.stopped = bool(meta["stopped"])
    best = meta["best_metric"]
    state.best_metric = -np.inf if best is None else float(best)
    state.stale_epochs = int(meta["stale_epochs"])
    if meta["has_best_state"]:
        state.best_state = {
            k[len(_BEST):]: np.asarray(v).copy()
            for k, v in arrays.items()
            if k.startswith(_BEST)
        }
    trainer.load_extra_state(meta.get("trainer_extra", {}))
    trainer.last_state = state
    return state
