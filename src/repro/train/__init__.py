"""`repro.train` — training loops: standard, differentially private
(Appendix A.3), and simulated federated averaging; epoch callbacks."""

from repro.train.callbacks import (
    Callback,
    CheckpointBest,
    CSVLogger,
    EpochEvent,
    LambdaCallback,
    StopOnMetric,
)
from repro.train.dp import DPConfig, DPTrainer, rdp_epsilon
from repro.train.federated import FederatedConfig, federated_train, split_clients
from repro.train.trainer import History, TrainConfig, Trainer

__all__ = [
    "CSVLogger",
    "Callback",
    "CheckpointBest",
    "DPConfig",
    "DPTrainer",
    "EpochEvent",
    "FederatedConfig",
    "History",
    "LambdaCallback",
    "StopOnMetric",
    "TrainConfig",
    "Trainer",
    "federated_train",
    "rdp_epsilon",
    "split_clients",
]
