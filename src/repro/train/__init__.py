"""`repro.train` — the unified task-dispatched training loop (standard and
differentially private, Appendix A.3), simulated federated averaging,
epoch callbacks, and resumable :class:`TrainState` checkpointing."""

from repro.train.callbacks import (
    Callback,
    CheckpointBest,
    CSVLogger,
    EpochEvent,
    LambdaCallback,
    StopOnMetric,
)
from repro.train.checkpoint import capture_state, restore_state
from repro.train.distill import DistillConfig, teacher_spec_for
from repro.train.dp import DPConfig, DPTrainer, rdp_epsilon
from repro.train.federated import FederatedConfig, federated_train, split_clients
from repro.train.trainer import History, TrainConfig, Trainer, TrainState

__all__ = [
    "CSVLogger",
    "Callback",
    "CheckpointBest",
    "DPConfig",
    "DPTrainer",
    "DistillConfig",
    "EpochEvent",
    "FederatedConfig",
    "History",
    "LambdaCallback",
    "StopOnMetric",
    "TrainConfig",
    "TrainState",
    "Trainer",
    "capture_state",
    "federated_train",
    "rdp_epsilon",
    "restore_state",
    "split_clients",
    "teacher_spec_for",
]
