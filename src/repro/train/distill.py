"""Knowledge-distillation configuration and teacher plumbing.

The paper's production question is "best accuracy-per-byte under a device
budget"; distilling a compressed *student* against a full-table *teacher*
consistently beats training the same student from scratch (see the
on-device distillation papers in PAPERS.md).  This module owns the
declarative config; the loss lives in :func:`repro.nn.losses.
distillation_loss`, the ``Trainer.fit`` dispatch gains a ``"distillation"``
task, and :class:`repro.pipeline.TrainSession` acquires the teacher logits
(injected, loaded from a frozen artifact, or trained inline).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DistillConfig", "teacher_spec_for"]


@dataclass(frozen=True)
class DistillConfig:
    """How a compressed student learns from a full-table teacher.

    Parameters
    ----------
    temperature:
        Softening temperature ``T`` of both distributions; the soft term is
        scaled by ``T²`` so ``alpha`` means the same thing at every ``T``.
    alpha:
        Blend weight of the soft (teacher) term; ``1 - alpha`` weighs the
        hard cross-entropy against the true labels.
    teacher_path:
        Serving artifact of a frozen teacher (``ServeSession.load``-able).
        When ``None``, a full-table teacher is trained inline from the
        student's spec (deterministic in the spec's seed, so resumed runs
        recompute identical logits).
    teacher_epochs:
        Epoch override for the inline teacher (``None`` = the student's
        epoch count).  Ignored when ``teacher_path`` is set.
    """

    temperature: float = 2.0
    alpha: float = 0.5
    teacher_path: str | None = None
    teacher_epochs: int | None = None

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.teacher_epochs is not None and self.teacher_epochs <= 0:
            raise ValueError(
                f"teacher_epochs must be positive or None, got {self.teacher_epochs}"
            )
        if self.teacher_path is not None and not isinstance(self.teacher_path, str):
            raise ValueError("teacher_path must be a string path or None")


def teacher_spec_for(spec):
    """The inline-teacher :class:`~repro.pipeline.PipelineSpec` of ``spec``.

    A full-table FP32 model on the same dataset/architecture/seed — the
    strongest same-capacity reference — with the student's distillation,
    sharding and quantized-export knobs stripped.  Both the sweep runner
    (which pre-trains one shared teacher per grid) and
    ``TrainSession``'s inline fallback derive the teacher from this one
    function, so the two paths produce bit-identical logits.
    """
    distill = spec.distill
    if distill is None:
        raise ValueError("spec carries no distillation config")
    train = spec.train
    if distill.teacher_epochs is not None:
        train = replace(train, epochs=distill.teacher_epochs)
    return replace(
        spec,
        technique="full",
        hyper={},
        distill=None,
        shards=0,
        bits=32,
        percentile=None,
        train=train,
    )
