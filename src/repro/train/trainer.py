"""The mini-batch training loop for the paper's three model families.

One :class:`Trainer` covers all three tasks behind a single task-dispatched
:meth:`Trainer.fit` — classification (§5.1) and pointwise ranking (§5.2)
train with softmax cross-entropy, the pairwise RankNet loop (Figure 3)
trains with the pairwise logistic loss — and every task shares the same
``_loop``: optimizer construction, LR schedules, early stopping, callbacks,
and the gradient-treatment hook differentially-private training overrides
(:mod:`repro.train.dp`).

Embedding-table gradients flow through this loop row-sparse end-to-end
(lookup backward → ``clip_global_norm`` → optimizer sparse apply; see
DESIGN.md §5), so per-step cost scales with the batch, not the vocabulary —
``benchmarks/bench_train_throughput.py`` measures the win.

Resumable training
------------------
The loop's entire mutable context lives in a :class:`TrainState` — the
optimizer (with its slots), the LR scheduler, the data-order RNG, the
running :class:`History`, and the early-stopping bookkeeping.  ``fit``
creates one when none is given, advances it epoch by epoch, and hands it to
``epoch_hook`` after every epoch so a caller (``repro.pipeline``'s
checkpointing) can persist it.  Re-entering ``fit`` with a restored state
continues the run bit-identically to one that was never interrupted
(DESIGN.md §9, ``tests/pipeline/test_checkpoint.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.loader import iterate_batches
from repro.metrics.evaluator import evaluate_classification, evaluate_ranking
from repro.nn.layers import Module
from repro.nn.losses import distillation_loss, ranknet_loss, softmax_cross_entropy
from repro.nn.optim import SGD, Adagrad, Adam, Optimizer, RMSProp, clip_global_norm
from repro.nn.schedulers import Scheduler, build_scheduler
from repro.utils.logging import log
from repro.utils.rng import ensure_rng

__all__ = ["TrainConfig", "History", "TrainState", "Trainer"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters shared by every experiment sweep."""

    epochs: int = 5
    batch_size: int = 128
    lr: float = 1e-3
    optimizer: str = "adam"  # adam | sgd | adagrad | rmsprop
    momentum: float = 0.9  # used by sgd
    shuffle: bool = True
    #: drop trailing partial batches — keeps BatchNorm statistics sane
    drop_last: bool = True
    #: stop after this many epochs without val-metric improvement (None = off)
    early_stopping_patience: int | None = None
    #: cap batches per epoch — lets sweeps subsample huge datasets
    max_batches_per_epoch: int | None = None
    #: per-epoch LR schedule:
    #: constant | cosine | step | exponential | plateau | row_warmup
    lr_schedule: str = "constant"
    #: row_warmup's target: cumulative optimizer-touched rows that end the
    #: warmup (required by, and only valid with, ``lr_schedule="row_warmup"``)
    warmup_rows: int | None = None
    #: clip the global gradient norm each step (None = off)
    grad_clip_norm: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "sgd", "adagrad", "rmsprop"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.early_stopping_patience is not None and self.early_stopping_patience <= 0:
            raise ValueError("early_stopping_patience must be positive or None")
        if self.lr_schedule not in (
            "constant", "cosine", "step", "exponential", "plateau", "row_warmup"
        ):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")
        if self.lr_schedule == "row_warmup":
            if self.warmup_rows is None or self.warmup_rows <= 0:
                raise ValueError("lr_schedule 'row_warmup' requires a positive warmup_rows")
        elif self.warmup_rows is not None:
            raise ValueError("warmup_rows is only valid with lr_schedule 'row_warmup'")
        if self.grad_clip_norm is not None and self.grad_clip_norm <= 0:
            raise ValueError("grad_clip_norm must be positive or None")


@dataclass
class History:
    """Per-epoch training record returned by the trainer.

    ``steps`` counts optimizer steps and ``seconds`` accumulates wall-clock
    training time (epoch loops only, not validation) — together they give
    the wall-clock-per-step trajectory the throughput bench records.
    """

    train_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    metric_name: str = ""
    best_epoch: int = -1
    steps: int = 0
    seconds: float = 0.0

    @property
    def best_metric(self) -> float:
        if not self.val_metric:
            raise ValueError("no validation metric recorded")
        return max(self.val_metric)


@dataclass
class TrainState:
    """Everything mutable about a training run — the checkpointable unit.

    ``epoch`` is the *next* epoch index to run; a state with
    ``epoch == config.epochs`` (or ``stopped``) is a finished run.
    """

    optimizer: Optimizer
    rng: np.random.Generator
    history: History
    scheduler: Scheduler | None = None
    epoch: int = 0
    best_metric: float = -np.inf
    best_state: dict[str, np.ndarray] | None = None
    stale_epochs: int = 0
    stopped: bool = False

    def finished(self, total_epochs: int) -> bool:
        return self.stopped or self.epoch >= total_epochs


#: task name → (validation-metric name, needs-neg).  "ranking" is the
#: historical name for the pointwise task; both spellings dispatch the same.
#: "distillation" resolves its metric from the ``hard_task`` it wraps.
_TASKS = {
    "classification": ("accuracy", False),
    "ranking": ("ndcg", False),
    "pointwise": ("ndcg", False),
    "pairwise": ("ndcg", True),
    "distillation": (None, False),
}


class Trainer:
    """Runs the optimization loop; one instance per model fit.

    ``callbacks`` (see :mod:`repro.train.callbacks`) observe epoch
    boundaries and may request early stopping.  Subclasses customize the
    *step treatment* — not the loop — by overriding
    :meth:`_process_gradients` (DP-SGD clips and adds noise there).
    """

    def __init__(self, config: TrainConfig | None = None, callbacks: list | None = None) -> None:
        self.config = config or TrainConfig()
        self.callbacks = list(callbacks or [])
        #: the state of the most recent (possibly still-resumable) fit
        self.last_state: TrainState | None = None

    # -- public API -----------------------------------------------------------

    def fit(
        self,
        model: Module,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        task: str = "classification",
        *,
        neg: np.ndarray | None = None,
        teacher: np.ndarray | None = None,
        distill=None,
        hard_task: str = "classification",
        state: TrainState | None = None,
        epoch_hook=None,
        max_epochs: int | None = None,
    ) -> History:
        """Train ``model`` on ``task``; validate with the task's metric.

        ``task`` dispatches the loss and the validation metric:

        * ``"classification"`` — softmax cross-entropy, accuracy;
        * ``"ranking"`` / ``"pointwise"`` — softmax cross-entropy over the
          catalog, nDCG@10 (the softmax scores are the ranking scores, §5.2);
        * ``"pairwise"`` — RankNet logistic loss over ``(x, y=pos, neg)``
          triples (Figure 3), nDCG@10 on ``(x_val, y_val)``;
        * ``"distillation"`` — temperature-scaled soft-target loss against
          frozen ``teacher`` logits (one row per example, shuffled jointly
          with ``x``/``y``), blended with the hard loss per ``distill``
          (a :class:`~repro.train.distill.DistillConfig`); the validation
          metric is ``hard_task``'s (accuracy or nDCG).

        ``state`` resumes a previous run (see :class:`TrainState`);
        ``epoch_hook(state)`` fires after every completed epoch;
        ``max_epochs`` cuts the run early *without* marking it finished —
        the harness's simulated interruption.
        """
        try:
            metric, needs_neg = _TASKS[task]
        except KeyError:
            raise ValueError(
                f"unknown task {task!r}; available: {', '.join(_TASKS)}"
            ) from None
        if needs_neg and neg is None:
            raise ValueError("task 'pairwise' requires the neg array")

        if task == "pairwise":
            arrays = (x, y, neg)

            def batch_loss(batch):
                xb, pb, nb = batch
                s_pos, s_neg = model.score_pair(xb, pb, nb)
                return ranknet_loss(s_pos, s_neg)

        elif task == "distillation":
            if distill is None or teacher is None:
                raise ValueError(
                    "task 'distillation' requires a DistillConfig and teacher logits"
                )
            if hard_task not in ("classification", "ranking", "pointwise"):
                raise ValueError(
                    f"distillation cannot wrap hard task {hard_task!r}"
                )
            metric, _ = _TASKS[hard_task]
            teacher = np.asarray(teacher)
            if teacher.ndim != 2 or len(teacher) != len(x):
                raise ValueError(
                    f"teacher logits must be ({len(x)}, C), got {teacher.shape}"
                )
            arrays = (x, y, teacher)
            temperature, blend = distill.temperature, distill.alpha

            def batch_loss(batch):
                xb, yb, tb = batch
                return distillation_loss(
                    model(xb), tb, yb, temperature=temperature, alpha=blend
                )

        else:
            arrays = (x, y)

            def batch_loss(batch):
                xb, yb = batch
                return softmax_cross_entropy(model(xb), yb)

        eval_task = hard_task if task == "distillation" else task

        def eval_metric() -> float:
            if x_val is None or y_val is None:
                return float("nan")
            if eval_task == "classification":
                return evaluate_classification(model, x_val, y_val)["accuracy"]
            return evaluate_ranking(model, x_val, y_val)["ndcg"]

        return self._loop(
            model, arrays, batch_loss, eval_metric, metric,
            state=state, epoch_hook=epoch_hook, max_epochs=max_epochs,
        )

    def fit_pairwise(
        self,
        model: "Module",
        x: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        **kwargs,
    ) -> History:
        """Train a RankNet with the pairwise logistic loss (Figure 3).

        Thin shim over ``fit(task="pairwise")`` — kept as the historical
        entry point for the Figure 3 harnesses.
        """
        return self.fit(model, x, pos, x_val, y_val, task="pairwise", neg=neg, **kwargs)

    def init_state(self, model: Module) -> TrainState:
        """A fresh :class:`TrainState` for ``model`` under this config."""
        cfg = self.config
        opt = self._make_optimizer(model)
        scheduler: Scheduler | None = None
        if cfg.lr_schedule != "constant":
            scheduler = build_scheduler(
                cfg.lr_schedule, opt, total_steps=cfg.epochs,
                row_target=cfg.warmup_rows,
            )
        return TrainState(
            optimizer=opt, rng=ensure_rng(cfg.seed), history=History(), scheduler=scheduler
        )

    # -- subclass hooks ----------------------------------------------------------

    def _process_gradients(self, opt: Optimizer, batch_size: int) -> None:
        """Between ``loss.backward()`` and ``opt.step()``.

        The default applies the configured global-norm clip; DP training
        replaces this with clip-to-sensitivity plus Gaussian noise.
        """
        if self.config.grad_clip_norm is not None:
            clip_global_norm(opt.params, self.config.grad_clip_norm)

    def extra_state(self) -> dict:
        """Trainer-specific JSON-able state a checkpoint should carry
        (DP's noise-stream position and step count).  Default: nothing."""
        return {}

    def load_extra_state(self, extra: dict) -> None:  # noqa: B027 - optional hook
        pass

    # -- internals --------------------------------------------------------------

    def _make_optimizer(self, model: Module) -> Optimizer:
        cfg = self.config
        params = model.parameters()
        if cfg.optimizer == "adam":
            return Adam(params, lr=cfg.lr)
        if cfg.optimizer == "sgd":
            return SGD(params, lr=cfg.lr, momentum=cfg.momentum)
        if cfg.optimizer == "rmsprop":
            return RMSProp(params, lr=cfg.lr)
        return Adagrad(params, lr=cfg.lr)

    def _loop(
        self,
        model,
        arrays,
        batch_loss,
        eval_metric,
        metric_name,
        state: TrainState | None = None,
        epoch_hook=None,
        max_epochs: int | None = None,
    ) -> History:
        from repro.train.callbacks import EpochEvent

        cfg = self.config
        if state is None:
            state = self.init_state(model)
        self.last_state = state
        history = state.history
        history.metric_name = metric_name
        opt, rng, scheduler = state.optimizer, state.rng, state.scheduler
        limit = cfg.epochs if max_epochs is None else min(cfg.epochs, max_epochs)

        for cb in self.callbacks:
            cb.on_train_begin(model)
        model.train()
        while state.epoch < limit and not state.stopped:
            epoch = state.epoch
            epoch_start = time.perf_counter()
            epoch_loss = 0.0
            n_batches = 0
            for batch in iterate_batches(
                arrays,
                cfg.batch_size,
                rng=rng,
                shuffle=cfg.shuffle,
                drop_last=cfg.drop_last,
            ):
                opt.zero_grad()
                loss = batch_loss(batch)
                if not np.isfinite(loss.item()):
                    raise FloatingPointError(
                        f"non-finite training loss at epoch {epoch + 1}, "
                        f"batch {n_batches + 1} (lr={opt.lr:g}) — lower the "
                        "learning rate or enable grad_clip_norm"
                    )
                loss.backward()
                self._process_gradients(opt, len(batch[0]))
                opt.step()
                epoch_loss += loss.item()
                n_batches += 1
                if cfg.max_batches_per_epoch and n_batches >= cfg.max_batches_per_epoch:
                    break
            if n_batches == 0:
                raise ValueError(
                    f"no batches: {len(arrays[0])} examples < batch_size {cfg.batch_size} "
                    "with drop_last"
                )
            history.train_loss.append(epoch_loss / n_batches)
            history.steps += n_batches
            history.seconds += time.perf_counter() - epoch_start

            val = eval_metric()
            history.val_metric.append(val)
            val_part = "" if np.isnan(val) else f" {metric_name}={val:.4f}"
            log(f"epoch {epoch + 1}/{cfg.epochs}: loss={history.train_loss[-1]:.4f}{val_part}")
            if scheduler is not None:
                # Plateau schedules need the metric; when no validation data
                # was provided, fall back to (negated) train loss so "no
                # improvement" still means something.
                signal = val if not np.isnan(val) else -history.train_loss[-1]
                scheduler.step(signal)

            stop = False
            if not np.isnan(val) and val > state.best_metric:
                state.best_metric = val
                history.best_epoch = epoch
                state.stale_epochs = 0
                if cfg.early_stopping_patience is not None:
                    state.best_state = model.state_dict()
            else:
                state.stale_epochs += 1
                if (
                    cfg.early_stopping_patience is not None
                    and state.stale_epochs >= cfg.early_stopping_patience
                ):
                    log(f"early stop at epoch {epoch + 1} (best epoch {history.best_epoch + 1})")
                    stop = True

            event = EpochEvent(
                epoch=epoch,
                total_epochs=cfg.epochs,
                train_loss=history.train_loss[-1],
                val_metric=val,
                metric_name=metric_name,
                model=model,
            )
            # Every callback observes every epoch (no short-circuit), then
            # any single stop request ends training.
            requests = [cb.on_epoch_end(event) for cb in self.callbacks]
            if any(requests):
                log(f"callback requested stop at epoch {epoch + 1}")
                stop = True
            state.epoch = epoch + 1
            state.stopped = stop
            if epoch_hook is not None:
                epoch_hook(state)

        # Finalization (restore the best weights) only when the run truly
        # ended — a max_epochs interruption leaves the state continuable.
        if state.finished(cfg.epochs) and state.best_state is not None:
            model.load_state_dict(state.best_state)
        model.eval()
        for cb in self.callbacks:
            cb.on_train_end(model)
        return history
