"""Mini-batch training loops for the paper's three model families.

One :class:`Trainer` covers classification (§5.1) and pointwise ranking
(§5.2) — both train with softmax cross-entropy — plus the pairwise RankNet
loop (Figure 3).  Early stopping monitors the validation metric and restores
the best weights, mirroring the paper's train-to-convergence setup at a CPU
budget.

Embedding-table gradients flow through this loop row-sparse end-to-end
(lookup backward → ``clip_global_norm`` → optimizer sparse apply; see
DESIGN.md §5), so per-step cost scales with the batch, not the vocabulary —
``benchmarks/bench_train_throughput.py`` measures the win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loader import iterate_batches
from repro.metrics.evaluator import evaluate_classification, evaluate_ranking
from repro.nn.layers import Module
from repro.nn.losses import ranknet_loss, softmax_cross_entropy
from repro.nn.optim import SGD, Adagrad, Adam, Optimizer, RMSProp, clip_global_norm
from repro.nn.schedulers import Scheduler, build_scheduler
from repro.utils.logging import log
from repro.utils.rng import ensure_rng

__all__ = ["TrainConfig", "History", "Trainer"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters shared by every experiment sweep."""

    epochs: int = 5
    batch_size: int = 128
    lr: float = 1e-3
    optimizer: str = "adam"  # adam | sgd | adagrad | rmsprop
    momentum: float = 0.9  # used by sgd
    shuffle: bool = True
    #: drop trailing partial batches — keeps BatchNorm statistics sane
    drop_last: bool = True
    #: stop after this many epochs without val-metric improvement (None = off)
    early_stopping_patience: int | None = None
    #: cap batches per epoch — lets sweeps subsample huge datasets
    max_batches_per_epoch: int | None = None
    #: per-epoch LR schedule: constant | cosine | step | exponential | plateau
    lr_schedule: str = "constant"
    #: clip the global gradient norm each step (None = off)
    grad_clip_norm: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "sgd", "adagrad", "rmsprop"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.early_stopping_patience is not None and self.early_stopping_patience <= 0:
            raise ValueError("early_stopping_patience must be positive or None")
        if self.lr_schedule not in ("constant", "cosine", "step", "exponential", "plateau"):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")
        if self.grad_clip_norm is not None and self.grad_clip_norm <= 0:
            raise ValueError("grad_clip_norm must be positive or None")


@dataclass
class History:
    """Per-epoch training record returned by the trainer."""

    train_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    metric_name: str = ""
    best_epoch: int = -1

    @property
    def best_metric(self) -> float:
        if not self.val_metric:
            raise ValueError("no validation metric recorded")
        return max(self.val_metric)


class Trainer:
    """Runs the optimization loop; one instance per model fit.

    ``callbacks`` (see :mod:`repro.train.callbacks`) observe epoch
    boundaries and may request early stopping.
    """

    def __init__(self, config: TrainConfig | None = None, callbacks: list | None = None) -> None:
        self.config = config or TrainConfig()
        self.callbacks = list(callbacks or [])

    # -- public API -----------------------------------------------------------

    def fit(
        self,
        model: Module,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        task: str = "classification",
    ) -> History:
        """Train with softmax cross-entropy; validate with the task metric.

        ``task`` selects the validation metric: ``accuracy`` for
        classification, nDCG@10 for ranking (the softmax scores are the
        ranking scores, §5.2).
        """
        if task not in ("classification", "ranking"):
            raise ValueError(f"unknown task {task!r}")
        metric = "accuracy" if task == "classification" else "ndcg"

        def eval_metric() -> float:
            if x_val is None or y_val is None:
                return float("nan")
            if task == "classification":
                return evaluate_classification(model, x_val, y_val)["accuracy"]
            return evaluate_ranking(model, x_val, y_val)["ndcg"]

        def batch_loss(batch: tuple[np.ndarray, ...]) -> "Tensor":
            xb, yb = batch
            return softmax_cross_entropy(model(xb), yb)

        return self._loop(model, (x, y), batch_loss, eval_metric, metric)

    def fit_pairwise(
        self,
        model: "Module",
        x: np.ndarray,
        pos: np.ndarray,
        neg: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> History:
        """Train a RankNet with the pairwise logistic loss (Figure 3)."""

        def eval_metric() -> float:
            if x_val is None or y_val is None:
                return float("nan")
            return evaluate_ranking(model, x_val, y_val)["ndcg"]

        def batch_loss(batch: tuple[np.ndarray, ...]) -> "Tensor":
            xb, pb, nb = batch
            s_pos, s_neg = model.score_pair(xb, pb, nb)
            return ranknet_loss(s_pos, s_neg)

        return self._loop(model, (x, pos, neg), batch_loss, eval_metric, "ndcg")

    # -- internals --------------------------------------------------------------

    def _make_optimizer(self, model: Module) -> Optimizer:
        cfg = self.config
        params = model.parameters()
        if cfg.optimizer == "adam":
            return Adam(params, lr=cfg.lr)
        if cfg.optimizer == "sgd":
            return SGD(params, lr=cfg.lr, momentum=cfg.momentum)
        if cfg.optimizer == "rmsprop":
            return RMSProp(params, lr=cfg.lr)
        return Adagrad(params, lr=cfg.lr)

    def _loop(self, model, arrays, batch_loss, eval_metric, metric_name) -> History:
        from repro.train.callbacks import EpochEvent

        cfg = self.config
        rng = ensure_rng(cfg.seed)
        opt = self._make_optimizer(model)
        scheduler: Scheduler | None = None
        if cfg.lr_schedule != "constant":
            scheduler = build_scheduler(cfg.lr_schedule, opt, total_steps=cfg.epochs)
        history = History(metric_name=metric_name)
        best_metric = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        stale_epochs = 0

        for cb in self.callbacks:
            cb.on_train_begin(model)
        model.train()
        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch in iterate_batches(
                arrays,
                cfg.batch_size,
                rng=rng,
                shuffle=cfg.shuffle,
                drop_last=cfg.drop_last,
            ):
                opt.zero_grad()
                loss = batch_loss(batch)
                if not np.isfinite(loss.item()):
                    raise FloatingPointError(
                        f"non-finite training loss at epoch {epoch + 1}, "
                        f"batch {n_batches + 1} (lr={opt.lr:g}) — lower the "
                        "learning rate or enable grad_clip_norm"
                    )
                loss.backward()
                if cfg.grad_clip_norm is not None:
                    clip_global_norm(opt.params, cfg.grad_clip_norm)
                opt.step()
                epoch_loss += loss.item()
                n_batches += 1
                if cfg.max_batches_per_epoch and n_batches >= cfg.max_batches_per_epoch:
                    break
            if n_batches == 0:
                raise ValueError(
                    f"no batches: {len(arrays[0])} examples < batch_size {cfg.batch_size} "
                    "with drop_last"
                )
            history.train_loss.append(epoch_loss / n_batches)

            val = eval_metric()
            history.val_metric.append(val)
            val_part = "" if np.isnan(val) else f" {metric_name}={val:.4f}"
            log(f"epoch {epoch + 1}/{cfg.epochs}: loss={history.train_loss[-1]:.4f}{val_part}")
            if scheduler is not None:
                # Plateau schedules need the metric; when no validation data
                # was provided, fall back to (negated) train loss so "no
                # improvement" still means something.
                signal = val if not np.isnan(val) else -history.train_loss[-1]
                scheduler.step(signal)

            stop = False
            if not np.isnan(val) and val > best_metric:
                best_metric = val
                history.best_epoch = epoch
                stale_epochs = 0
                if cfg.early_stopping_patience is not None:
                    best_state = model.state_dict()
            else:
                stale_epochs += 1
                if (
                    cfg.early_stopping_patience is not None
                    and stale_epochs >= cfg.early_stopping_patience
                ):
                    log(f"early stop at epoch {epoch + 1} (best epoch {history.best_epoch + 1})")
                    stop = True

            event = EpochEvent(
                epoch=epoch,
                total_epochs=cfg.epochs,
                train_loss=history.train_loss[-1],
                val_metric=val,
                metric_name=metric_name,
                model=model,
            )
            # Every callback observes every epoch (no short-circuit), then
            # any single stop request ends training.
            requests = [cb.on_epoch_end(event) for cb in self.callbacks]
            if any(requests):
                log(f"callback requested stop at epoch {epoch + 1}")
                stop = True
            if stop:
                break

        if best_state is not None:
            model.load_state_dict(best_state)
        model.eval()
        for cb in self.callbacks:
            cb.on_train_end(model)
        return history
