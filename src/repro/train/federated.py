"""Simulated federated learning (§3 / Appendix A.3 context).

The paper motivates small on-device models partly because "training
(typically done via Federated Learning)" must ship models and updates over
constrained links.  This module simulates FedAvg (McMahan et al. 2017) over
our substrate so the examples can demonstrate the full on-device story:
clients hold disjoint shards, each round a sampled cohort trains locally and
the server averages their weight deltas, optionally clipping each client's
update and adding Gaussian noise for differential privacy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import iterate_batches
from repro.metrics.evaluator import evaluate_classification
from repro.nn.layers import Module
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import SGD
from repro.utils.logging import log
from repro.utils.rng import ensure_rng

__all__ = ["FederatedConfig", "split_clients", "federated_train"]


@dataclass(frozen=True)
class FederatedConfig:
    """FedAvg simulation knobs."""

    num_clients: int = 20
    clients_per_round: int = 5
    rounds: int = 10
    local_epochs: int = 1
    local_batch_size: int = 32
    local_lr: float = 0.05
    #: Dirichlet concentration for label skew across clients; None = IID
    non_iid_alpha: float | None = None
    #: clip each client's weight delta to this l2 norm (None = off)
    update_clip: float | None = None
    #: Gaussian noise multiplier on the aggregated update (needs update_clip)
    noise_multiplier: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients_per_round > self.num_clients:
            raise ValueError("clients_per_round cannot exceed num_clients")
        if self.noise_multiplier > 0 and self.update_clip is None:
            raise ValueError("noise_multiplier requires update_clip")


def split_clients(
    y: np.ndarray,
    num_clients: int,
    rng: np.random.Generator | int | None = None,
    non_iid_alpha: float | None = None,
) -> list[np.ndarray]:
    """Partition example indices across clients.

    IID: a random equal split.  Non-IID: each client draws a Dirichlet
    label-preference vector and examples are routed proportionally —
    the standard label-skew benchmark construction.
    """
    rng = ensure_rng(rng)
    n = len(y)
    if num_clients <= 0 or num_clients > n:
        raise ValueError(f"num_clients must be in [1, {n}]")
    if non_iid_alpha is None:
        perm = rng.permutation(n)
        return [np.sort(part) for part in np.array_split(perm, num_clients)]
    labels = np.asarray(y)
    classes = np.unique(labels)
    prefs = rng.dirichlet(np.full(num_clients, non_iid_alpha), size=classes.size)
    shards: list[list[int]] = [[] for _ in range(num_clients)]
    for ci, cls in enumerate(classes):
        idx = np.flatnonzero(labels == cls)
        rng.shuffle(idx)
        counts = rng.multinomial(idx.size, prefs[ci])
        start = 0
        for client, cnt in enumerate(counts):
            shards[client].extend(idx[start : start + cnt])
            start += cnt
    # Guarantee no empty client (FedAvg weights by shard size).
    for client in range(num_clients):
        if not shards[client]:
            donor = int(np.argmax([len(s) for s in shards]))
            shards[client].append(shards[donor].pop())
    return [np.sort(np.asarray(s)) for s in shards]


def federated_train(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    config: FederatedConfig,
    x_val: np.ndarray | None = None,
    y_val: np.ndarray | None = None,
) -> list[float]:
    """Run FedAvg; returns per-round validation accuracy (NaN if no val set).

    The server state lives in ``model``; each round it is broadcast to the
    cohort, locally fine-tuned with SGD, and updated with the shard-size
    weighted average of client deltas.
    """
    rng = ensure_rng(config.seed)
    shards = split_clients(y, config.num_clients, rng, config.non_iid_alpha)
    history: list[float] = []

    for rnd in range(config.rounds):
        cohort = rng.choice(config.num_clients, size=config.clients_per_round, replace=False)
        global_state = model.state_dict()
        deltas: list[dict[str, np.ndarray]] = []
        weights: list[float] = []

        for client in cohort:
            idx = shards[client]
            model.load_state_dict(global_state)
            model.train()
            opt = SGD(model.parameters(), lr=config.local_lr)
            for _ in range(config.local_epochs):
                for xb, yb in iterate_batches(
                    (x[idx], y[idx]), config.local_batch_size, rng=rng, drop_last=False
                ):
                    opt.zero_grad()
                    loss = softmax_cross_entropy(model(xb), yb)
                    loss.backward()
                    opt.step()
            delta = {
                k: model.state_dict()[k] - global_state[k] for k in global_state
            }
            if config.update_clip is not None:
                norm = np.sqrt(
                    sum(float((d.astype(np.float64) ** 2).sum()) for d in delta.values())
                )
                if norm > config.update_clip:
                    scale = config.update_clip / norm
                    delta = {k: d * scale for k, d in delta.items()}
            deltas.append(delta)
            weights.append(float(len(idx)))

        total = sum(weights)
        new_state = {}
        for key in global_state:
            agg = sum(w * d[key] for w, d in zip(weights, deltas)) / total
            if config.noise_multiplier > 0:
                noise_scale = (
                    config.noise_multiplier * config.update_clip / config.clients_per_round
                )
                agg = agg + rng.standard_normal(agg.shape) * noise_scale
            new_state[key] = global_state[key] + agg.astype(global_state[key].dtype)
        model.load_state_dict(new_state)

        if x_val is not None and y_val is not None:
            acc = evaluate_classification(model, x_val, y_val)["accuracy"]
            history.append(acc)
            log(f"round {rnd + 1}/{config.rounds}: val accuracy {acc:.4f}")
        else:
            history.append(float("nan"))
    model.eval()
    return history
