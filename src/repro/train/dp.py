"""Differentially private training (Appendix A.3 / Figure 5).

The paper trains with "the Rényi Differential Privacy (RDP) framework …
global DP setup, constant l2 norm clip" and sweeps the *noise multiplier*.
This module implements that mechanism over our substrate:

* every step, the batch gradient's **global** l2 norm is clipped to ``C``
  (global DP setup — the whole-batch gradient is the unit, not per-example),
* Gaussian noise ``N(0, (σ·C)² / B²)`` is added to each coordinate (noise is
  applied to the *mean* gradient of a batch of ``B`` examples),
* an RDP accountant converts (σ, steps, δ) into an ε guarantee using the
  Gaussian-mechanism RDP curve ``ε_RDP(α) = α/(2σ²)`` composed over steps —
  conservative (no subsampling amplification), which only overstates ε.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.optim import Optimizer, clip_global_norm
from repro.train.trainer import TrainConfig, Trainer
from repro.utils.rng import ensure_rng, rng_state, set_rng_state

__all__ = ["DPConfig", "DPTrainer", "rdp_epsilon"]


@dataclass(frozen=True)
class DPConfig:
    """Privacy knobs of the A.3 experiment."""

    noise_multiplier: float
    l2_clip: float = 1.0
    #: δ of the (ε, δ) guarantee; the paper uses 1/num_training_points
    delta: float | None = None

    def __post_init__(self) -> None:
        if self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if self.l2_clip <= 0:
            raise ValueError("l2_clip must be positive")
        if self.delta is not None and not 0 < self.delta < 1:
            raise ValueError("delta must be in (0, 1)")


class DPTrainer(Trainer):
    """Trainer whose step clips the global gradient norm and adds noise.

    With ``noise_multiplier == 0`` this reduces to clipped (non-private)
    training — the Figure 5 x-axis origin.

    This is *not* a fork of the training loop: the only override is the
    per-step gradient treatment (:meth:`_process_gradients`), so DP
    training shares ``Trainer``'s epochs, validation, callbacks, early
    stopping and resumable :class:`~repro.train.trainer.TrainState` — the
    noise-stream position and step count ride along via
    :meth:`extra_state`.
    """

    def __init__(self, config: TrainConfig, dp: DPConfig, callbacks: list | None = None) -> None:
        super().__init__(config, callbacks)
        self.dp = dp
        self._noise_rng = ensure_rng(config.seed + 0x9E3779B9)
        self.steps_taken = 0

    def _process_gradients(self, opt: Optimizer, batch_size: int) -> None:
        dp = self.dp
        # clip_global_norm handles sparse embedding grads without
        # densifying; the Gaussian mechanism below perturbs *every*
        # coordinate, so sparse row-grads are densified here —
        # unconditionally, so the σ=0 sweep origin trains with the
        # same dense-Adam semantics as every σ>0 point (the DP path
        # trades the sparse fast path for the privacy guarantee).
        clip_global_norm(opt.params, dp.l2_clip)
        scale = dp.noise_multiplier * dp.l2_clip / batch_size
        for p in opt.params:
            g = p.grad  # property read densifies sparse row-grads
            if g is not None and dp.noise_multiplier > 0:
                g += (self._noise_rng.standard_normal(g.shape) * scale).astype(g.dtype)
        self.steps_taken += 1

    def extra_state(self) -> dict:
        return {"noise_rng": rng_state(self._noise_rng), "steps_taken": int(self.steps_taken)}

    def load_extra_state(self, extra: dict) -> None:
        set_rng_state(self._noise_rng, extra["noise_rng"])
        self.steps_taken = int(extra["steps_taken"])

    def epsilon(self, num_examples: int) -> float:
        """ε spent so far, with δ defaulting to 1/num_examples (the paper's
        choice for RDP's δ parameter)."""
        delta = self.dp.delta if self.dp.delta is not None else 1.0 / num_examples
        return rdp_epsilon(self.dp.noise_multiplier, self.steps_taken, delta)


def rdp_epsilon(
    noise_multiplier: float,
    steps: int,
    delta: float,
    orders: np.ndarray | None = None,
) -> float:
    """(ε, δ)-DP bound from Rényi composition of the Gaussian mechanism.

    Each step is a Gaussian mechanism with sensitivity ``C`` and noise
    ``σ·C``, whose RDP is ``α / (2σ²)``; ``steps`` compositions add.
    Conversion (Mironov 2017): ``ε = min_α [steps·α/(2σ²) + ln(1/δ)/(α−1)]``.
    Returns ``inf`` for σ = 0 (no privacy).
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if noise_multiplier == 0:
        return float("inf")
    if steps == 0:
        return 0.0
    if orders is None:
        orders = np.concatenate([np.linspace(1.25, 16, 60), np.linspace(17, 512, 100)])
    rdp = steps * orders / (2.0 * noise_multiplier**2)
    eps = rdp + np.log(1.0 / delta) / (orders - 1.0)
    return float(eps.min())
