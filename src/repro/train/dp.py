"""Differentially private training (Appendix A.3 / Figure 5).

The paper trains with "the Rényi Differential Privacy (RDP) framework …
global DP setup, constant l2 norm clip" and sweeps the *noise multiplier*.
This module implements that mechanism over our substrate:

* every step, the batch gradient's **global** l2 norm is clipped to ``C``
  (global DP setup — the whole-batch gradient is the unit, not per-example),
* Gaussian noise ``N(0, (σ·C)² / B²)`` is added to each coordinate (noise is
  applied to the *mean* gradient of a batch of ``B`` examples),
* an RDP accountant converts (σ, steps, δ) into an ε guarantee using the
  Gaussian-mechanism RDP curve ``ε_RDP(α) = α/(2σ²)`` composed over steps —
  conservative (no subsampling amplification), which only overstates ε.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import iterate_batches
from repro.metrics.evaluator import evaluate_classification, evaluate_ranking
from repro.nn.layers import Module
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import clip_global_norm
from repro.train.trainer import History, TrainConfig, Trainer
from repro.utils.logging import log
from repro.utils.rng import ensure_rng

__all__ = ["DPConfig", "DPTrainer", "rdp_epsilon"]


@dataclass(frozen=True)
class DPConfig:
    """Privacy knobs of the A.3 experiment."""

    noise_multiplier: float
    l2_clip: float = 1.0
    #: δ of the (ε, δ) guarantee; the paper uses 1/num_training_points
    delta: float | None = None

    def __post_init__(self) -> None:
        if self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if self.l2_clip <= 0:
            raise ValueError("l2_clip must be positive")
        if self.delta is not None and not 0 < self.delta < 1:
            raise ValueError("delta must be in (0, 1)")


class DPTrainer(Trainer):
    """Trainer whose step clips the global gradient norm and adds noise.

    With ``noise_multiplier == 0`` this reduces to clipped (non-private)
    training — the Figure 5 x-axis origin.
    """

    def __init__(self, config: TrainConfig, dp: DPConfig) -> None:
        super().__init__(config)
        self.dp = dp
        self._noise_rng = ensure_rng(config.seed + 0x9E3779B9)
        self.steps_taken = 0

    def fit(
        self,
        model: Module,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        task: str = "classification",
    ) -> History:
        if task not in ("classification", "ranking"):
            raise ValueError(f"unknown task {task!r}")
        metric = "accuracy" if task == "classification" else "ndcg"
        cfg = self.config
        dp = self.dp
        rng = ensure_rng(cfg.seed)
        opt = self._make_optimizer(model)
        params = model.parameters()
        history = History(metric_name=metric)

        model.train()
        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            n_batches = 0
            for xb, yb in iterate_batches(
                (x, y), cfg.batch_size, rng=rng, shuffle=cfg.shuffle, drop_last=True
            ):
                opt.zero_grad()
                loss = softmax_cross_entropy(model(xb), yb)
                loss.backward()
                # clip_global_norm handles sparse embedding grads without
                # densifying; the Gaussian mechanism below perturbs *every*
                # coordinate, so sparse row-grads are densified here —
                # unconditionally, so the σ=0 sweep origin trains with the
                # same dense-Adam semantics as every σ>0 point (the DP path
                # trades the sparse fast path for the privacy guarantee).
                clip_global_norm(params, dp.l2_clip)
                scale = dp.noise_multiplier * dp.l2_clip / len(xb)
                for p in params:
                    g = p.grad  # property read densifies sparse row-grads
                    if g is not None and dp.noise_multiplier > 0:
                        g += (
                            self._noise_rng.standard_normal(g.shape) * scale
                        ).astype(g.dtype)
                opt.step()
                self.steps_taken += 1
                epoch_loss += loss.item()
                n_batches += 1
                if cfg.max_batches_per_epoch and n_batches >= cfg.max_batches_per_epoch:
                    break
            history.train_loss.append(epoch_loss / max(n_batches, 1))
            if x_val is not None and y_val is not None:
                if task == "classification":
                    val = evaluate_classification(model, x_val, y_val)["accuracy"]
                else:
                    val = evaluate_ranking(model, x_val, y_val)["ndcg"]
                history.val_metric.append(val)
                log(f"dp epoch {epoch + 1}: loss={history.train_loss[-1]:.4f} {metric}={val:.4f}")
                if val >= max(history.val_metric):
                    history.best_epoch = epoch
            model.train()
        model.eval()
        return history

    def epsilon(self, num_examples: int) -> float:
        """ε spent so far, with δ defaulting to 1/num_examples (the paper's
        choice for RDP's δ parameter)."""
        delta = self.dp.delta if self.dp.delta is not None else 1.0 / num_examples
        return rdp_epsilon(self.dp.noise_multiplier, self.steps_taken, delta)


def rdp_epsilon(
    noise_multiplier: float,
    steps: int,
    delta: float,
    orders: np.ndarray | None = None,
) -> float:
    """(ε, δ)-DP bound from Rényi composition of the Gaussian mechanism.

    Each step is a Gaussian mechanism with sensitivity ``C`` and noise
    ``σ·C``, whose RDP is ``α / (2σ²)``; ``steps`` compositions add.
    Conversion (Mironov 2017): ``ε = min_α [steps·α/(2σ²) + ln(1/δ)/(α−1)]``.
    Returns ``inf`` for σ = 0 (no privacy).
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if noise_multiplier == 0:
        return float("inf")
    if steps == 0:
        return 0.0
    if orders is None:
        orders = np.concatenate([np.linspace(1.25, 16, 60), np.linspace(17, 512, 100)])
    rdp = steps * orders / (2.0 * noise_multiplier**2)
    eps = rdp + np.log(1.0 / delta) / (orders - 1.0)
    return float(eps.min())
