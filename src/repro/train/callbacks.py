"""Trainer callbacks: observation hooks that run at epoch boundaries.

The :class:`repro.train.trainer.Trainer` owns the optimization loop; these
callbacks let users attach side effects — checkpointing the best model,
logging a CSV learning curve, early custom stopping — without subclassing.
Each callback receives an :class:`EpochEvent` after every epoch and may
request a stop by returning ``True``.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Module
from repro.nn.serialization import save_npz
from repro.utils.logging import log

__all__ = [
    "EpochEvent",
    "Callback",
    "CheckpointBest",
    "CSVLogger",
    "StopOnMetric",
    "LambdaCallback",
]


@dataclass(frozen=True)
class EpochEvent:
    """What a callback sees at the end of one epoch."""

    epoch: int  # 0-based
    total_epochs: int
    train_loss: float
    val_metric: float  # NaN when no validation data was given
    metric_name: str
    model: Module

    @property
    def has_validation(self) -> bool:
        return not np.isnan(self.val_metric)


class Callback:
    """Base callback; override :meth:`on_epoch_end`."""

    def on_train_begin(self, model: Module) -> None:  # noqa: B027 - optional hook
        pass

    def on_epoch_end(self, event: EpochEvent) -> bool:
        """Return ``True`` to request stopping after this epoch."""
        return False

    def on_train_end(self, model: Module) -> None:  # noqa: B027 - optional hook
        pass


class CheckpointBest(Callback):
    """Save the model whenever the validation metric improves.

    Writes npz checkpoints via :func:`repro.nn.serialization.save_npz`
    (parameters *and* buffers, so BatchNorm statistics and hash salts
    restore).  Falls back to (negated) train loss when no validation data is
    provided.
    """

    def __init__(self, path: str, verbose: bool = True) -> None:
        self.path = path
        self.verbose = verbose
        self.best = -np.inf
        self.saves = 0

    def on_epoch_end(self, event: EpochEvent) -> bool:
        signal = event.val_metric if event.has_validation else -event.train_loss
        if signal > self.best:
            self.best = signal
            save_npz(event.model, self.path)
            self.saves += 1
            if self.verbose:
                log(f"checkpoint: epoch {event.epoch + 1} ({signal:.4f}) -> {self.path}")
        return False


class CSVLogger(Callback):
    """Append one row per epoch to a CSV learning-curve file."""

    FIELDS = ("epoch", "train_loss", "val_metric", "metric_name")

    def __init__(self, path: str) -> None:
        self.path = path
        self._started = False

    def on_train_begin(self, model: Module) -> None:
        # Truncate on each fit so a re-used logger starts a fresh curve.
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "w", newline="") as f:
            csv.writer(f).writerow(self.FIELDS)
        self._started = True

    def on_epoch_end(self, event: EpochEvent) -> bool:
        if not self._started:  # fit() without on_train_begin (defensive)
            self.on_train_begin(event.model)
        with open(self.path, "a", newline="") as f:
            csv.writer(f).writerow(
                [event.epoch + 1, f"{event.train_loss:.6f}",
                 f"{event.val_metric:.6f}", event.metric_name]
            )
        return False


class StopOnMetric(Callback):
    """Stop as soon as the validation metric reaches ``target``.

    Useful for time-boxed sweeps: "train until nDCG 0.25 or the epoch budget
    runs out".
    """

    def __init__(self, target: float) -> None:
        self.target = target
        self.triggered_epoch: int | None = None

    def on_epoch_end(self, event: EpochEvent) -> bool:
        if event.has_validation and event.val_metric >= self.target:
            self.triggered_epoch = event.epoch
            log(f"target {self.target} reached at epoch {event.epoch + 1}; stopping")
            return True
        return False


class LambdaCallback(Callback):
    """Wrap a plain function ``(EpochEvent) -> bool | None``."""

    def __init__(self, fn) -> None:
        self.fn = fn

    def on_epoch_end(self, event: EpochEvent) -> bool:
        return bool(self.fn(event))
