"""Calibrate a trained ``CompressedEmbedding`` into integer storage.

``quantize_embedding`` converts any technique into a :class:`QuantizedEmbedding`
— the serving-side object whose row values are *exactly representable* as
``(codes, scale)`` pairs.  Three real-storage modes cover the paper's
techniques:

* **table** — the technique's forward is a (possibly id-remapped) gather
  from one ``(rows, e)`` table (full, reduce_dim, truncate_rare, sharded
  full, plain ``nn.Embedding``).  The table itself is stored as a
  :class:`QuantizedTable`; serving is the fused gather→dequantize kernel and
  the cache stores the *stored* codes — one rounding, end to end.
* **memcom** — MEmCom's three tables are stored quantized (per-row scales
  for the shared ``(m, e)`` table; per-tensor scales for the ``(v, 1)``
  columns, where a 4-byte per-row scale would outweigh the 1-byte payload).
  A served row is composed from dequantized components and then
  *row-quantized* — the composed row is what the cache stores as codes, so
  the hit and miss paths decode the same ``(codes, scale)``.
* **tt_rec** — the three TT cores are stored quantized per-row; rows are
  contracted from dequantized core slices (mirroring the layer's bmm
  association order) and row-quantized like memcom.

Sharded variants quantize to the same codes as their monolithic forms by
construction (the shard layout is reassembled row-exact before
calibration), so *quantize → shard* and *quantize → monolithic* serve
bit-identical values.

Every other per-id technique (hash families, QR, mixed-dim, factorized)
falls back to **module** mode: a deep-copied module whose parameters are
round-tripped through the quantization grid composes rows in FP32, and the
composed rows are row-quantized.  The fallback's *values* follow the same
rounding contract, but its working copy stays FP32-resident —
``storage_bytes()`` reports that honestly (``packed_bytes()`` gives the
shippable size).  The pooled one-hot encoder is not per-row and cannot be
served quantized.

``QuantizedEmbedding.dequantized()`` materializes the exact served rows
into a plain FP32 :class:`~repro.core.full.FullEmbedding` — the reference a
quantized engine must match bit-for-bit (same rounding path, FP32 tower).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.base import CompressedEmbedding
from repro.core.full import FullEmbedding, ShardedFullEmbedding
from repro.core.low_rank import ReducedDimEmbedding
from repro.core.memcom import MEmComEmbedding, ShardedMEmComEmbedding
from repro.core.onehot import HashedOneHotEncoder
from repro.core.truncate import TruncateRareEmbedding
from repro.core.tt_rec import TTRecEmbedding
from repro.nn.embedding import Embedding
from repro.nn.sharding import ShardedEmbedding, ShardedTable
from repro.nn.tensor import no_grad
from repro.quant.kernels import codes_bytes_per_row, decode_rows, encode_rows
from repro.quant.table import SUPPORTED_STORAGE_BITS, QuantizedTable

__all__ = ["QuantizedEmbedding", "quantize_embedding"]

_CHUNK = 4096  # row-materialization granularity for dequantized()


def _dense_of(table) -> np.ndarray:
    """Monolithic FP32 values of a Parameter or ShardedTable (row-exact)."""
    if isinstance(table, ShardedTable):
        return table.dense()
    return table.data


def _simulate_param(w: np.ndarray, bits: int, percentile: float | None) -> np.ndarray:
    """Round-trip one parameter through the storage grid (module fallback).

    Multi-column 2-D tables get per-row scales; single columns and 1-D
    vectors share one scale — the same layout rule the real storage uses.
    """
    if w.ndim == 2 and w.shape[1] > 1:
        codes, scales = encode_rows(w, bits, percentile=percentile)
        return decode_rows(codes, scales, bits, w.shape[1])
    flat = w.reshape(1, -1)
    q = QuantizedTable.from_dense(flat, bits, percentile=percentile, per_row=False)
    return q.dense().reshape(w.shape)


class QuantizedEmbedding:
    """Integer-storage serving form of one trained embedding technique.

    Not a :class:`~repro.nn.layers.Module` — there is no autograd graph and
    nothing trains; this is a frozen deployment artifact the
    :class:`~repro.serve.engine.InferenceEngine` (and the export path)
    consume.
    """

    def __init__(
        self,
        source: CompressedEmbedding,
        bits: int,
        percentile: float | None = None,
    ) -> None:
        if bits not in SUPPORTED_STORAGE_BITS:
            raise ValueError(
                f"serving storage bits must be one of {SUPPORTED_STORAGE_BITS}, "
                f"got {bits}"
            )
        if isinstance(source, HashedOneHotEncoder):
            raise TypeError(
                "HashedOneHotEncoder output is pooled, not per-row; it has no "
                "quantized row storage (serve it FP32)"
            )
        self.bits = int(bits)
        self.percentile = percentile
        self.technique = getattr(source, "technique", type(source).__name__)
        self.vocab_size = int(
            getattr(source, "vocab_size", None) or source.num_embeddings
        )
        self.output_dim = int(source.output_dim)
        self._remap = None
        self._remap_keep: int | None = None
        self._module = None

        if isinstance(source, (MEmComEmbedding, ShardedMEmComEmbedding)):
            self.mode = "memcom"
            self._num_hash = source.num_hash_embeddings
            self._q_shared = QuantizedTable.from_dense(
                source.shared.data, bits, percentile=percentile
            )
            self._q_mult = QuantizedTable.from_dense(
                _dense_of(source.multiplier), bits, percentile=percentile,
                per_row=False,
            )
            self._q_bias = (
                QuantizedTable.from_dense(
                    _dense_of(source.bias_table), bits, percentile=percentile,
                    per_row=False,
                )
                if source.bias_table is not None
                else None
            )
        elif isinstance(
            source,
            (FullEmbedding, ReducedDimEmbedding, TruncateRareEmbedding),
        ) or isinstance(source, (Embedding, ShardedEmbedding)):
            self.mode = "table"
            if isinstance(source, TruncateRareEmbedding):
                keep = source.keep
                self._remap = lambda ids: np.where(ids <= keep, ids, keep + 1)
                self._remap_keep = int(keep)
            table = (
                _dense_of(source.table)
                if hasattr(source, "table")
                else source.weight.data
            )
            self._q_table = QuantizedTable.from_dense(
                table, bits, percentile=percentile
            )
        elif isinstance(source, TTRecEmbedding):
            self.mode = "tt_rec"
            self._vocab_shape = source.vocab_shape
            self._dim_shape = source.dim_shape
            self._tt_rank = source.tt_rank
            self._q_cores = tuple(
                QuantizedTable.from_dense(c.data, bits, percentile=percentile)
                for c in (source.core1, source.core2, source.core3)
            )
        else:
            self.mode = "module"
            frozen = copy.deepcopy(source)
            frozen.eval()
            for p in frozen.parameters():
                p.data = _simulate_param(p.data, bits, percentile)
            self._module = frozen

    # -- persistence ------------------------------------------------------------

    def state(self) -> tuple[dict, dict[str, QuantizedTable], object]:
        """``(meta, tables, module)`` — the persistable decomposition.

        ``meta`` is JSON-serializable; ``tables`` holds the integer-storage
        payloads by stable name; ``module`` is the FP32 working copy (only
        non-None in ``module`` mode, where the caller persists its rebuild
        spec + state dict).  :meth:`from_state` inverts this exactly, so a
        round-tripped embedding serves bit-identical rows — no
        recalibration happens on load.
        """
        meta = {
            "bits": self.bits,
            "percentile": self.percentile,
            "technique": self.technique,
            "vocab_size": self.vocab_size,
            "output_dim": self.output_dim,
            "mode": self.mode,
        }
        tables: dict[str, QuantizedTable] = {}
        if self.mode == "table":
            meta["remap_keep"] = self._remap_keep
            tables["table"] = self._q_table
        elif self.mode == "memcom":
            meta["num_hash"] = self._num_hash
            tables["shared"] = self._q_shared
            tables["multiplier"] = self._q_mult
            if self._q_bias is not None:
                tables["bias"] = self._q_bias
        elif self.mode == "tt_rec":
            meta["vocab_shape"] = list(self._vocab_shape)
            meta["dim_shape"] = list(self._dim_shape)
            meta["tt_rank"] = self._tt_rank
            for i, core in enumerate(self._q_cores, start=1):
                tables[f"core{i}"] = core
        return meta, tables, self._module

    @classmethod
    def from_state(
        cls,
        meta: dict,
        tables: dict[str, QuantizedTable] | None = None,
        module=None,
    ) -> "QuantizedEmbedding":
        """Reconstitute a serving embedding from :meth:`state` output.

        The inverse of calibration-then-:meth:`state`: integer payloads are
        adopted as-is (single rounding, done at save time), so a loaded
        artifact's rows match the freshly calibrated embedding bit for bit.
        """
        bits = int(meta["bits"])
        if bits not in SUPPORTED_STORAGE_BITS:
            raise ValueError(
                f"serving storage bits must be one of {SUPPORTED_STORAGE_BITS}, "
                f"got {bits}"
            )
        tables = tables or {}
        self = object.__new__(cls)
        self.bits = bits
        self.percentile = meta.get("percentile")
        self.technique = meta["technique"]
        self.vocab_size = int(meta["vocab_size"])
        self.output_dim = int(meta["output_dim"])
        self.mode = meta["mode"]
        self._remap = None
        self._remap_keep = None
        self._module = None
        if self.mode == "table":
            keep = meta.get("remap_keep")
            if keep is not None:
                keep = int(keep)
                self._remap = lambda ids: np.where(ids <= keep, ids, keep + 1)
                self._remap_keep = keep
            self._q_table = tables["table"]
        elif self.mode == "memcom":
            self._num_hash = int(meta["num_hash"])
            self._q_shared = tables["shared"]
            self._q_mult = tables["multiplier"]
            self._q_bias = tables.get("bias")
        elif self.mode == "tt_rec":
            self._vocab_shape = tuple(int(v) for v in meta["vocab_shape"])
            self._dim_shape = tuple(int(d) for d in meta["dim_shape"])
            self._tt_rank = int(meta["tt_rank"])
            self._q_cores = tuple(tables[f"core{i}"] for i in (1, 2, 3))
        elif self.mode == "module":
            if module is None:
                raise ValueError("module-mode state needs the rebuilt module")
            module.eval()
            self._module = module
        else:
            raise ValueError(f"unknown quantized mode {self.mode!r}")
        return self

    # -- row composition --------------------------------------------------------

    def _compose_fp32(self, flat: np.ndarray) -> np.ndarray:
        """FP32 rows composed from dequantized components (pre row-quant)."""
        if self.mode == "memcom":
            out = self._q_shared.gather(flat % self._num_hash)
            np.multiply(out, self._q_mult.gather(flat), out=out)
            if self._q_bias is not None:
                np.add(out, self._q_bias.gather(flat), out=out)
            return out
        if self.mode == "tt_rec":
            _, v2, v3 = self._vocab_shape
            e1, e2, e3 = self._dim_shape
            r = self._tt_rank
            n = flat.size
            q1, q2, q3 = self._q_cores
            g1 = q1.gather(flat // (v2 * v3)).reshape(n, e1, r)
            g2 = q2.gather((flat // v3) % v2).reshape(n, r, e2 * r)
            g3 = q3.gather(flat % v3).reshape(n, r, e3)
            left = np.matmul(g1, g2).reshape(n, e1 * e2, r)
            return np.matmul(left, g3).reshape(n, self.output_dim)
        # module fallback
        with no_grad():
            return self._module(flat).numpy().reshape(flat.size, self.output_dim)

    def encode(self, flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Storage-form ``(codes, scales)`` for each id — the cache payload.

        Table mode hands back the *stored* codes (no recompute, single
        rounding); composed modes quantize the freshly composed rows.
        """
        flat = np.asarray(flat).ravel()
        if self.mode == "table":
            ids = self._remap(flat) if self._remap is not None else flat
            return self._q_table.gather_codes(ids)
        return encode_rows(self._compose_fp32(flat), self.bits)

    def rows(self, flat: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Served FP32 rows: ``decode(encode(ids))``, fused per mode.

        Single-row and batched calls run the same elementwise decode, so
        row values never depend on batch grouping.
        """
        codes, scales = self.encode(flat)
        return decode_rows(codes, scales, self.bits, self.output_dim, out=out)

    # -- reference / accounting -------------------------------------------------

    def dequantized(self) -> FullEmbedding:
        """Materialize the exact served rows as an FP32 ``FullEmbedding``.

        Serving this through a plain FP32 engine is the bit-for-bit
        reference for the quantized engine (same rounding path; the tower
        is FP32 in both).
        """
        table = np.empty((self.vocab_size, self.output_dim), dtype=np.float32)
        for start in range(0, self.vocab_size, _CHUNK):
            ids = np.arange(start, min(start + _CHUNK, self.vocab_size))
            table[ids] = self.rows(ids)
        out = FullEmbedding(self.vocab_size, self.output_dim, rng=0)
        out.table.data = table
        return out

    def _tables(self) -> list[QuantizedTable]:
        if self.mode == "table":
            return [self._q_table]
        if self.mode == "memcom":
            tables = [self._q_shared, self._q_mult]
            if self._q_bias is not None:
                tables.append(self._q_bias)
            return tables
        if self.mode == "tt_rec":
            return list(self._q_cores)
        return []

    def storage_bytes(self) -> int:
        """Actually-resident bytes of the embedding representation.

        Real-storage modes count codes + scales; the module fallback counts
        its FP32 working copy (its honesty caveat — see module docstring).
        """
        if self.mode == "module":
            return int(sum(p.data.nbytes for p in self._module.parameters()))
        return int(sum(q.nbytes for q in self._tables()))

    def packed_bytes(self) -> int:
        """Shippable size: ceil-packed codes plus scale overhead, all modes."""
        if self.mode != "module":
            return self.storage_bytes()
        total = 0
        for p in self._module.parameters():
            w = p.data
            if w.ndim == 2 and w.shape[1] > 1:
                total += w.shape[0] * codes_bytes_per_row(w.shape[1], self.bits)
            else:
                total += codes_bytes_per_row(w.size, self.bits)
        return int(total)

    def __repr__(self) -> str:
        return (
            f"QuantizedEmbedding({self.technique}, v={self.vocab_size}, "
            f"e={self.output_dim}, bits={self.bits}, mode={self.mode}, "
            f"{self.storage_bytes()} bytes)"
        )


def quantize_embedding(
    emb: CompressedEmbedding, bits: int, percentile: float | None = None
) -> QuantizedEmbedding:
    """Calibration pass: trained embedding → integer serving storage.

    ``percentile`` enables outlier-clipped calibration (e.g. ``99.9``): each
    row's scale comes from that percentile of its magnitudes and the tail
    saturates, tightening the grid for the bulk of the distribution.
    """
    return QuantizedEmbedding(emb, bits, percentile=percentile)
