"""``repro.quant`` — integer-storage quantized embedding runtime.

The on-device story of the paper (Table 3, Figure 4, Appendix A.2) ships
weights at 8/4 bits.  :mod:`repro.device.quantize` *simulates* that
(quantize→dequantize, FP32 resident); this package is the real thing:

* :class:`QuantizedTable` — int8 codes with per-row FP32 scales, or int4
  packed two-codes-per-byte with unpack-on-gather;
* :func:`quantize_embedding` — calibration (per-row absmax, optional
  percentile clipping) converting any trained ``CompressedEmbedding`` —
  including sharded and MEmCom/TT-Rec composed forms — into
  :class:`QuantizedEmbedding` storage;
* fused gather→dequantize kernels (:mod:`repro.quant.kernels`) whose
  outputs are bit-identical between the single-row and batched paths.

The serving integration lives in :mod:`repro.serve` (``InferenceEngine``'s
``bits=8|4`` plan and the cache-of-codes) and :mod:`repro.device.export`
(honest packed payload sizes).  See DESIGN.md §7.
"""

from repro.quant.embedding import QuantizedEmbedding, quantize_embedding
from repro.quant.kernels import (
    QUANT_BITS,
    codes_bytes_per_row,
    decode_rows,
    encode_rows,
    pack_int4,
    qmax_for,
    row_scales,
    unpack_int4,
)
from repro.quant.table import SUPPORTED_STORAGE_BITS, QuantizedTable

__all__ = [
    "QUANT_BITS",
    "SUPPORTED_STORAGE_BITS",
    "QuantizedEmbedding",
    "QuantizedTable",
    "codes_bytes_per_row",
    "decode_rows",
    "encode_rows",
    "pack_int4",
    "qmax_for",
    "quantize_embedding",
    "row_scales",
    "unpack_int4",
]
