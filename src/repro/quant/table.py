"""``QuantizedTable`` — an embedding table stored as integer codes.

The FP32 ``(v, e)`` table becomes:

* ``codes`` — ``(v, e)`` int8 at 8 bits, or ``(v, ceil(e/2))`` packed uint8
  at 4 bits (two codes per byte, unpacked on gather);
* ``scales`` — one FP32 scale per row (``per_row=True``, the default for
  multi-column tables) or a single shared scale (``per_row=False``, used
  for the ``(v, 1)`` per-entity columns of MEmCom, where a 4-byte per-row
  scale would outweigh the 1-byte payload).

Unlike :func:`repro.device.quantize.quantize_array` — which *simulates*
quantization by round-tripping to FP32 — this is the real storage: resident
bytes are ``codes.nbytes + scales.nbytes``, roughly ``bits/32`` of the FP32
table.  :meth:`gather` is the fused gather→dequantize kernel; its output for
row ``i`` is bit-identical whether ``i`` is fetched alone, in a batch, or
through :meth:`dense` (decoding is elementwise — see
:mod:`repro.quant.kernels`).
"""

from __future__ import annotations

import numpy as np

from repro.quant.kernels import decode_rows, encode_rows, qmax_for, unpack_int4

__all__ = ["QuantizedTable", "SUPPORTED_STORAGE_BITS"]

#: widths with a real packed storage layout (2-bit stays a simulation-only
#: mode in repro.device.quantize)
SUPPORTED_STORAGE_BITS = (8, 4)


class QuantizedTable:
    """Integer-code storage of one ``(num_rows, dim)`` table."""

    __slots__ = ("bits", "num_rows", "dim", "per_row", "codes", "scales")

    def __init__(
        self,
        codes: np.ndarray,
        scales: np.ndarray,
        bits: int,
        dim: int,
        per_row: bool = True,
    ) -> None:
        if bits not in SUPPORTED_STORAGE_BITS:
            raise ValueError(
                f"storage bits must be one of {SUPPORTED_STORAGE_BITS}, got {bits}"
            )
        self.bits = int(bits)
        self.num_rows = int(codes.shape[0])
        self.dim = int(dim)
        self.per_row = bool(per_row)
        self.codes = codes
        self.scales = scales

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_dense(
        cls,
        table: np.ndarray,
        bits: int,
        percentile: float | None = None,
        per_row: bool = True,
    ) -> "QuantizedTable":
        """Calibrate and quantize an FP32 table.

        ``per_row=True`` gives every row its own symmetric scale (absmax, or
        the ``percentile``-th magnitude with outliers saturating).
        ``per_row=False`` shares one scale across the table — exactly the
        per-tensor path of ``quantize_array``.
        """
        table = np.asarray(table, dtype=np.float32)
        if table.ndim != 2:
            raise ValueError(f"expected a 2-D table, got shape {table.shape}")
        if bits not in SUPPORTED_STORAGE_BITS:
            raise ValueError(
                f"storage bits must be one of {SUPPORTED_STORAGE_BITS}, got {bits}"
            )
        if per_row:
            codes, scales = encode_rows(table, bits, percentile=percentile)
        else:
            qmax = qmax_for(bits)
            mags = np.abs(table)
            cal = (
                float(mags.max())
                if percentile is None
                else float(np.percentile(mags, percentile))
            ) if table.size else 0.0
            scale = np.float32(cal / qmax)
            # Same rounding path as the per-row kernel, one shared scale.
            codes, _ = encode_rows(
                table, bits,
                scales=np.full(table.shape[0], scale, dtype=np.float32),
            )
            scales = np.array([scale], dtype=np.float32)
        return cls(codes, scales, bits, table.shape[1], per_row=per_row)

    # -- geometry / accounting --------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.dim)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the integer storage (codes + scales)."""
        return int(self.codes.nbytes + self.scales.nbytes)

    # -- fused gather→dequantize ------------------------------------------------

    def _row_scales(self, ids: np.ndarray) -> np.ndarray:
        if self.per_row:
            return self.scales[ids]
        return np.broadcast_to(self.scales, (ids.size,))

    def gather_codes(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Storage-form codes + per-row scales of the requested rows.

        The cache-of-codes path: what gets stored per cached row.
        """
        ids = np.asarray(ids).ravel()
        return self.codes[ids], np.ascontiguousarray(self._row_scales(ids))

    def gather(self, ids: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Dequantized FP32 rows for ``ids`` (any shape, flattened)."""
        ids = np.asarray(ids).ravel()
        return decode_rows(
            self.codes[ids], self._row_scales(ids), self.bits, self.dim, out=out
        )

    def row(self, i: int) -> np.ndarray:
        """One dequantized row — the single-row serving path.

        Goes through the same decode kernel as :meth:`gather`, so the result
        is bit-identical to ``gather([i])[0]``.
        """
        return self.gather(np.array([i]))[0]

    def dense(self) -> np.ndarray:
        """The full dequantized FP32 table (reference / export use)."""
        if self.bits == 4:
            codes = unpack_int4(self.codes, self.dim)
        else:
            codes = self.codes
        scales = (
            self.scales[:, None]
            if self.per_row
            else np.broadcast_to(self.scales, (self.num_rows,))[:, None]
        )
        return codes.astype(np.float32) * scales.astype(np.float32)

    def __repr__(self) -> str:
        kind = "per-row" if self.per_row else "per-tensor"
        return (
            f"QuantizedTable(shape={self.shape}, bits={self.bits}, {kind}, "
            f"{self.nbytes} bytes)"
        )
