"""Integer quantization kernels: per-row encode, fused decode, int4 packing.

The storage format of the :mod:`repro.quant` subsystem is *symmetric linear
per-row* quantization — the same rounding path as
:func:`repro.device.quantize.quantize_array`, applied one table row at a
time::

    scale[i] = absmax(w[i]) / (2^(bits−1) − 1)
    code[i]  = clip(round(w[i] / scale[i]), −qmax−1, qmax)
    row[i]   = code[i] · scale[i]                    # the served FP32 value

so the served value of every row is exactly representable as
``(codes, scale)`` and decoding is a single fused multiply.  int8 codes are
stored as one ``int8`` per element; int4 codes pack two per byte (low
nibble first, biased by +8 into ``[0, 15]``) and unpack on gather.

Determinism contract (the serving engine and the row cache both rely on
it): ``decode_rows`` is elementwise, so decoding any subset of rows —
single row, batch, cache hit, cache miss splice — produces bit-identical
floats from the same ``(codes, scale)``.

Calibration may clip outliers: with ``percentile=p`` the scale derives from
the p-th percentile of each row's magnitudes instead of the max, and the
tail saturates at the signed grid edge — codes clamp to
``[−2^(bits−1), 2^(bits−1)−1]``, the same asymmetric clamp
``quantize_array`` applies (Appendix A.2's quantization study motivates
the knob: absmax calibration lets one outlier stretch the grid for the
whole row).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "QUANT_BITS",
    "qmax_for",
    "row_scales",
    "encode_rows",
    "decode_rows",
    "pack_int4",
    "unpack_int4",
    "codes_bytes_per_row",
]

#: integer storage widths the runtime serves (16/32 stay dtype casts and
#: never enter the code path)
QUANT_BITS = (8, 4, 2)

_SCALE_BYTES = 4  # one FP32 scale per row


def qmax_for(bits: int) -> int:
    """Largest positive code of the signed ``bits``-wide grid."""
    if bits not in QUANT_BITS:
        raise ValueError(f"bits must be one of {QUANT_BITS}, got {bits}")
    return 2 ** (bits - 1) - 1


def row_scales(w: np.ndarray, bits: int, percentile: float | None = None) -> np.ndarray:
    """Per-row scale of the symmetric grid: calibration magnitude / qmax.

    ``percentile`` ∈ (0, 100] replaces each row's absmax with the given
    percentile of its magnitudes (outlier clipping); values beyond the
    calibrated range saturate at the signed grid edge (``−qmax−1``/``qmax``)
    when encoded.
    """
    w = np.asarray(w)
    if w.ndim != 2:
        raise ValueError(f"expected (rows, dim) array, got shape {w.shape}")
    qmax = qmax_for(bits)
    mags = np.abs(w)
    if percentile is None:
        cal = mags.max(axis=1) if w.shape[1] else np.zeros(w.shape[0], np.float32)
    else:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        cal = np.percentile(mags, percentile, axis=1)
    return (cal / qmax).astype(np.float32)


def encode_rows(
    w: np.ndarray,
    bits: int,
    percentile: float | None = None,
    scales: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``(n, dim)`` FP32 rows to storage-form codes + FP32 scales.

    Returns ``(codes, scales)`` where ``codes`` is ``(n, dim)`` int8 for
    ``bits=8`` / ``bits=2``, or ``(n, ceil(dim/2))`` packed uint8 for
    ``bits=4``.  Zero rows encode to all-zero codes with scale 0.  Pass
    precomputed ``scales`` to reuse a prior calibration.
    """
    w = np.asarray(w, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError(f"expected (rows, dim) array, got shape {w.shape}")
    qmax = qmax_for(bits)
    if scales is None:
        scales = row_scales(w, bits, percentile)
    else:
        scales = np.asarray(scales, dtype=np.float32)
        if scales.shape != (w.shape[0],):
            raise ValueError(f"scales shape {scales.shape} != ({w.shape[0]},)")
    live = scales > 0.0
    q = np.zeros_like(w)
    np.divide(w, scales[:, None], out=q, where=live[:, None])
    codes = np.clip(np.round(q), -qmax - 1, qmax).astype(np.int8)
    if bits == 4:
        codes = pack_int4(codes)
    return codes, scales


def decode_rows(
    codes: np.ndarray,
    scales: np.ndarray,
    bits: int,
    dim: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Fused unpack→dequantize gather tail: ``(n, dim)`` FP32 rows.

    The single kernel both the batched and the single-row serving paths go
    through — outputs are bit-identical for the same ``(codes, scales)``
    regardless of how rows are grouped into calls.
    """
    if bits == 4:
        unpacked = unpack_int4(codes, dim)
    else:
        unpacked = codes
    if out is None:
        out = np.empty((unpacked.shape[0], dim), dtype=np.float32)
    # One broadcast multiply: row = code · scale (the int8→float32 cast is
    # exact and happens inside the ufunc — no (n, dim) temp, no scale copy).
    scales = np.asarray(scales, dtype=np.float32)
    np.multiply(unpacked, scales[:, None], out=out)
    return out


def pack_int4(codes: np.ndarray) -> np.ndarray:
    """Pack int4 codes (int8 values in [−8, 7]) two per byte, low nibble
    first.  Odd widths pad the last high nibble with the zero code."""
    codes = np.asarray(codes)
    n, dim = codes.shape
    biased = (codes.astype(np.int16) + 8).astype(np.uint8)  # [0, 15]
    if dim % 2:
        biased = np.concatenate(
            [biased, np.full((n, 1), 8, dtype=np.uint8)], axis=1
        )
    return (biased[:, 0::2] | (biased[:, 1::2] << 4)).astype(np.uint8)


def unpack_int4(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_int4`: ``(n, ceil(dim/2))`` bytes → ``(n, dim)``
    int8 codes."""
    packed = np.asarray(packed)
    n = packed.shape[0]
    nibbles = np.empty((n, packed.shape[1] * 2), dtype=np.int8)
    nibbles[:, 0::2] = (packed & 0x0F).astype(np.int8)
    nibbles[:, 1::2] = (packed >> 4).astype(np.int8)
    nibbles -= 8
    return nibbles[:, :dim]


def codes_bytes_per_row(dim: int, bits: int) -> int:
    """Stored bytes per row: ceil-packed codes plus the FP32 scale."""
    qmax_for(bits)  # validates bits
    return -(-dim * bits // 8) + _SCALE_BYTES
