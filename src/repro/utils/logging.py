"""Tiny opt-in progress logging.

Experiments emit progress through :func:`log`; it is silenced by default so
test runs stay quiet, and enabled by the example scripts and benchmark
harness via :func:`set_verbose`.
"""

from __future__ import annotations

import sys
import time

__all__ = ["set_verbose", "log", "Timer"]

_VERBOSE = False


def set_verbose(flag: bool) -> None:
    """Globally enable or disable :func:`log` output."""
    global _VERBOSE
    _VERBOSE = bool(flag)


def log(msg: str) -> None:
    """Print ``msg`` to stderr when verbose mode is on."""
    if _VERBOSE:
        print(msg, file=sys.stderr, flush=True)


class Timer:
    """Context manager measuring wall-clock seconds into ``self.elapsed``."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._t0
        if self.label:
            log(f"{self.label}: {self.elapsed:.3f}s")
