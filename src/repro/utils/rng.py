"""Central random-number utilities.

Everything in ``repro`` that needs randomness accepts either an integer seed
or a ``numpy.random.Generator``.  Funnelling construction through
:func:`ensure_rng` keeps experiments reproducible: a harness passes one seed
and every substream is derived deterministically via :func:`spawn`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn", "DEFAULT_SEED"]

DEFAULT_SEED = 0x5EED


def ensure_rng(seed_or_rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    ``None`` yields a generator seeded with :data:`DEFAULT_SEED` so that
    library defaults stay deterministic; pass an explicit generator to share
    a stream across components.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        seed_or_rng = DEFAULT_SEED
    return np.random.default_rng(seed_or_rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are produced by jumping the parent's bit generator state via
    fresh seeds drawn from the parent, which keeps substreams decoupled: a
    change in how many draws one consumer makes never perturbs another.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
