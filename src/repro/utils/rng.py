"""Central random-number utilities.

Everything in ``repro`` that needs randomness accepts either an integer seed
or a ``numpy.random.Generator``.  Funnelling construction through
:func:`ensure_rng` keeps experiments reproducible: a harness passes one seed
and every substream is derived deterministically via :func:`spawn`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_rng",
    "spawn",
    "DEFAULT_SEED",
    "rng_state",
    "set_rng_state",
    "module_rng_states",
    "set_module_rng_states",
]

DEFAULT_SEED = 0x5EED


def ensure_rng(seed_or_rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    ``None`` yields a generator seeded with :data:`DEFAULT_SEED` so that
    library defaults stay deterministic; pass an explicit generator to share
    a stream across components.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        seed_or_rng = DEFAULT_SEED
    return np.random.default_rng(seed_or_rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are produced by jumping the parent's bit generator state via
    fresh seeds drawn from the parent, which keeps substreams decoupled: a
    change in how many draws one consumer makes never perturbs another.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def rng_state(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state as a JSON-able dict.

    Everything inside is plain ints/strings (PCG64 state words are Python
    ints, which JSON carries exactly), so a checkpoint can persist the
    stream position and :func:`set_rng_state` can resume it bit-exactly.
    """
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Restore a state captured by :func:`rng_state` into ``rng`` in place.

    The generator's bit-generator type must match the one the state was
    captured from (``repro`` only ever constructs NumPy's default PCG64).
    """
    expected = type(rng.bit_generator).__name__
    declared = state.get("bit_generator")
    if declared != expected:
        raise ValueError(
            f"rng state is for bit generator {declared!r}, not {expected!r}"
        )
    rng.bit_generator.state = state
    return rng


def module_rng_states(module) -> list[dict]:
    """States of every generator owned by ``module``'s submodules, in
    deterministic ``modules()`` traversal order.

    Layers that draw randomness *during training* (Dropout) hold their
    generator as an ``rng`` attribute; those streams advance every forward
    pass, so a bit-identical training resume must capture and restore them
    alongside the weights.
    """
    return [
        rng_state(m.rng)
        for m in module.modules()
        if isinstance(getattr(m, "rng", None), np.random.Generator)
    ]


def set_module_rng_states(module, states: list[dict]) -> None:
    """Restore states captured by :func:`module_rng_states` (same module
    structure required — count mismatches raise)."""
    owners = [
        m for m in module.modules()
        if isinstance(getattr(m, "rng", None), np.random.Generator)
    ]
    if len(owners) != len(states):
        raise ValueError(
            f"module has {len(owners)} rng-owning layers, state has {len(states)}"
        )
    for m, state in zip(owners, states):
        set_rng_state(m.rng, state)
