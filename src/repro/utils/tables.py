"""Minimal text-table rendering for experiment reports.

The experiment harness prints the same rows the paper reports; this module
renders them as aligned monospace tables (and optionally CSV) without any
third-party dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_csv", "format_series"]


def _cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as CSV (no quoting — experiment values never contain commas)."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(str(v) for v in row))
    return "\n".join(out)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any], float_fmt: str = ".4g") -> str:
    """Render an (x, y) series — one figure line — as ``name: x→y`` pairs."""
    pairs = ", ".join(
        f"{_cell(x, float_fmt)}→{_cell(y, float_fmt)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
