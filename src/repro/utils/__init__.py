"""Shared utilities: RNG plumbing, text tables, ASCII charts, logging."""

from repro.utils.logging import Timer, log, set_verbose
from repro.utils.plot import ascii_plot
from repro.utils.rng import DEFAULT_SEED, ensure_rng, spawn
from repro.utils.tables import format_csv, format_series, format_table

__all__ = [
    "DEFAULT_SEED",
    "Timer",
    "ascii_plot",
    "ensure_rng",
    "format_csv",
    "format_series",
    "format_table",
    "log",
    "set_verbose",
    "spawn",
]
