"""ASCII line plots for rendering the paper's figures in a terminal.

The benchmark harness regenerates every figure as (x, y) series; this module
draws them on a character grid so the *shape* of each curve — who wins,
where the cliffs are, where lines cross — is visible without matplotlib
(which is not installed in the offline environment).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_plot", "MARKERS"]

#: Series markers, assigned in order; a legend maps them back to names.
MARKERS = "ox+*#@%&sdvt"


def _ticks(lo: float, hi: float, count: int) -> list[float]:
    if count < 2:
        raise ValueError("need at least 2 ticks")
    if math.isclose(lo, hi):
        hi = lo + 1.0
    return [lo + (hi - lo) * i / (count - 1) for i in range(count)]


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
    logx: bool = False,
) -> str:
    """Render named (xs, ys) series on one character grid.

    Each series gets a marker from :data:`MARKERS`; collisions show the
    marker of the later series.  ``logx`` plots x on a log axis, which is
    how the paper draws compression ratios.
    """
    series = {name: (list(xs), list(ys)) for name, (xs, ys) in series.items()}
    if not series:
        raise ValueError("no series to plot")
    if len(series) > len(MARKERS):
        raise ValueError(f"too many series ({len(series)}) for {len(MARKERS)} markers")
    if width < 16 or height < 6:
        raise ValueError("plot area too small")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        if logx and min(xs) <= 0:
            raise ValueError(f"series {name!r}: log x-axis needs positive x")

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    all_x = [tx(x) for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if math.isclose(x_lo, x_hi):
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if math.isclose(y_lo, y_hi):
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return (height - 1 - row), col

    for marker, (name, (xs, ys)) in zip(MARKERS, series.items()):
        # Connect consecutive points with interpolated dots, then overdraw
        # the data points with the series marker.
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            r0, c0 = cell(x0, y0)
            r1, c1 = cell(x1, y1)
            steps = max(abs(r1 - r0), abs(c1 - c0))
            for s in range(1, steps):
                rr = r0 + (r1 - r0) * s // max(steps, 1)
                cc = c0 + (c1 - c0) * s // max(steps, 1)
                if grid[rr][cc] == " ":
                    grid[rr][cc] = "."
        for x, y in zip(xs, ys):
            r, c = cell(x, y)
            grid[r][c] = marker

    y_ticks = _ticks(y_lo, y_hi, 4)
    label_width = max(len(f"{t:.4g}") for t in y_ticks)
    lines: list[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label}")
    tick_rows = {height - 1 - round((t - y_lo) / (y_hi - y_lo) * (height - 1)): t for t in y_ticks}
    for r, row in enumerate(grid):
        label = f"{tick_rows[r]:.4g}" if r in tick_rows else ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    x_ticks = _ticks(x_lo, x_hi, 4)
    shown = [(10.0**t if logx else t) for t in x_ticks]
    tick_text = "  ".join(f"{v:.4g}" for v in shown)
    suffix = f"  [{x_label}{', log' if logx else ''}]" if x_label or logx else ""
    lines.append(f"{'':>{label_width}}  {tick_text}{suffix}")
    legend = "  ".join(f"{m}={name}" for m, name in zip(MARKERS, series))
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)
