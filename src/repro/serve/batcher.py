"""Request coalescing: many single requests → one batched engine call.

Serving traffic arrives as independent requests (one user's id sequence, or
a single id when ``input_length`` is 1).  Running the engine per request
wastes the substrate's vectorization; the :class:`Batcher` queues requests
and serves the whole queue in ``(max_batch, L)`` stacked batches, then
hands each request exactly the score row it would have received alone —
coalescing changes throughput, never results
(``tests/serve/test_batcher_cache.py``).
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["Batcher", "PendingRequest"]


class PendingRequest:
    """A submitted request; ``result`` is populated by the next ``flush()``.

    ``latency_ms`` is the request's *own* wall-clock wait, submit→resolve:
    the clock starts when :meth:`Batcher.submit` accepts the request and
    stops when its result row is assigned.  Two riders of the same flush
    can therefore report different latencies — the one that queued longer
    waited longer — which is what makes replay percentiles honest (a
    flush-granularity number would hide exactly the queueing delay a
    latency SLO exists to bound).  A request requeued by a failed flush
    keeps its original start, so recovery time counts against it too.
    """

    __slots__ = ("ids", "result", "submitted_at", "latency_ms")

    def __init__(self, ids: np.ndarray) -> None:
        self.ids = ids
        self.result: np.ndarray | None = None
        self.submitted_at = time.perf_counter()
        self.latency_ms: float | None = None

    @property
    def done(self) -> bool:
        return self.result is not None


class Batcher:
    """Coalesce single requests into batched :meth:`InferenceEngine.predict` calls.

    By default flushing is explicit (the measurement loops own their batch
    boundaries).  With ``max_delay_ms`` set, the batcher self-flushes on
    :meth:`submit` once the batch is full **or** the oldest queued request
    has waited past the deadline — a latency SLO for trickling traffic: no
    request waits longer than ``max_delay_ms`` for co-riders, and a full
    batch never waits at all.  Auto-flushed requests carry their results on
    ``PendingRequest.result`` exactly as a manual flush would set them.
    """

    def __init__(
        self,
        engine,
        max_batch: int = 256,
        max_delay_ms: float | None = None,
    ) -> None:
        # ``engine`` is anything with predict/input_length/vocab_size — an
        # InferenceEngine, or the multi-process ServingRuntime.
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_delay_ms is not None and max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be non-negative, got {max_delay_ms}")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms) if max_delay_ms is not None else None
        self._pending: list[PendingRequest] = []
        self._oldest_pending_at: float | None = None
        self.auto_flushes = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, ids: np.ndarray | int) -> PendingRequest:
        """Queue one request: an ``(input_length,)`` id sequence, or a bare
        id when the model's input length is 1.

        Invalid requests are rejected *here* — shape and id range — so one
        bad request can never poison a later batched flush for everyone
        coalesced with it.
        """
        ids = np.asarray(ids)
        if ids.ndim == 0:
            ids = ids[None]
        if ids.ndim != 1 or ids.shape[0] != self.engine.input_length:
            raise ValueError(
                f"request must be ({self.engine.input_length},) ids, got shape {ids.shape}"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= self.engine.vocab_size):
            raise ValueError(
                f"request ids out of range [0, {self.engine.vocab_size}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        request = PendingRequest(ids)
        self._pending.append(request)
        if self.max_delay_ms is not None:
            if self._oldest_pending_at is None:
                self._oldest_pending_at = time.monotonic()
            overdue = (
                1e3 * (time.monotonic() - self._oldest_pending_at) >= self.max_delay_ms
            )
            if len(self._pending) >= self.max_batch or overdue:
                self.auto_flushes += 1
                self.flush()
        return request

    def flush(self) -> list[np.ndarray]:
        """Serve every pending request in ``max_batch``-sized stacked batches.

        Returns the per-request score rows in submission order (also set on
        each request's ``.result``) and clears the queue.  Results are
        assigned per sub-batch as computed; if the engine fails mid-flush —
        with *any* exception, ``BaseException`` included, so a
        ``KeyboardInterrupt`` or an alarm-driven timeout cannot silently
        drop traffic — already-served requests keep their results and every
        undelivered request goes back on the queue.  The latency-deadline
        clock is restored along with them: a requeued request keeps its
        original wait start, so ``max_delay_ms`` still counts from when it
        was first submitted, not from when the engine recovered.
        """
        pending, self._pending = self._pending, []
        oldest, self._oldest_pending_at = self._oldest_pending_at, None
        if not pending:
            return []
        batch = np.stack([r.ids for r in pending])
        results: list[np.ndarray] = []
        for start in range(0, batch.shape[0], self.max_batch):
            try:
                scores = self.engine.predict(batch[start : start + self.max_batch])
            except BaseException:
                self._pending = pending[start:] + self._pending
                if self.max_delay_ms is not None:
                    self._oldest_pending_at = (
                        oldest if oldest is not None else time.monotonic()
                    )
                raise
            resolved_at = time.perf_counter()
            for request, row in zip(pending[start:], scores):
                request.result = row
                request.latency_ms = 1e3 * (resolved_at - request.submitted_at)
            results.extend(scores)
        return results

    def serve(self, requests) -> list[np.ndarray]:
        """Convenience: submit an iterable of requests and flush once."""
        for ids in requests:
            self.submit(ids)
        return self.flush()
