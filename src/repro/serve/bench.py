"""Serving-throughput measurement under Zipf traffic.

The measurement protocol: generate ``num_requests`` independent requests
whose ids follow the bounded Zipf law of the paper's §4 (head entities
dominate — the regime the LRU hot-row cache exploits), stream them through
a :class:`~repro.serve.batcher.Batcher` one batch at a time, and report
steady-state requests/sec.  A warmup pass (untimed) primes allocator pools
and the cache, so cached numbers reflect the steady hit rate rather than a
cold start — the same convention the on-device cost model uses
("initialization/compilation excluded", §5.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.zipf import ZipfSampler
from repro.serve.batcher import Batcher
from repro.serve.engine import InferenceEngine
from repro.utils.rng import ensure_rng

__all__ = ["ServeReport", "zipf_requests", "measure_throughput"]


@dataclass(frozen=True)
class ServeReport:
    """Wall-clock serving outcome for one engine configuration."""

    label: str
    num_requests: int
    batch_size: int
    elapsed_s: float
    requests_per_sec: float
    mean_batch_latency_ms: float
    #: LRU hit rate over the timed window, or None when uncached
    cache_hit_rate: float | None = None

    def row(self) -> tuple:
        """(label, requests, batch, req/s, ms/batch, hit%) for table rendering."""
        hit = f"{100.0 * self.cache_hit_rate:.1f}%" if self.cache_hit_rate is not None else "—"
        return (
            self.label,
            self.num_requests,
            self.batch_size,
            f"{self.requests_per_sec:,.0f}",
            f"{self.mean_batch_latency_ms:.2f}",
            hit,
        )


def zipf_requests(
    vocab: int,
    input_length: int,
    num_requests: int,
    alpha: float = 1.1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """``(num_requests, input_length)`` ids drawn from bounded Zipf(alpha)."""
    sampler = ZipfSampler(vocab, alpha)
    return sampler.sample(ensure_rng(rng), (num_requests, input_length))


def measure_throughput(
    engine: InferenceEngine,
    requests: np.ndarray,
    batch_size: int = 64,
    label: str = "engine",
    warmup_batches: int = 1,
) -> ServeReport:
    """Stream ``requests`` through a Batcher; report steady-state req/s.

    The first ``warmup_batches`` batches run untimed (cache/allocator
    warmup); the remaining requests are timed batch by batch.
    """
    requests = np.asarray(requests)
    if requests.ndim != 2:
        raise ValueError(f"requests must be (R, L), got shape {requests.shape}")
    batcher = Batcher(engine, max_batch=batch_size)
    warm = min(warmup_batches * batch_size, requests.shape[0])
    for ids in requests[:warm]:
        batcher.submit(ids)
    batcher.flush()

    timed = requests[warm:]
    if timed.shape[0] == 0:
        raise ValueError("no timed requests left after warmup; lower warmup_batches")
    if engine.cache is not None:
        # Hit rate should describe the timed window, not the cold warmup.
        engine.cache.hits = engine.cache.misses = 0
    num_batches = 0
    start = time.perf_counter()
    for batch_start in range(0, timed.shape[0], batch_size):
        for ids in timed[batch_start : batch_start + batch_size]:
            batcher.submit(ids)
        batcher.flush()
        num_batches += 1
    elapsed = time.perf_counter() - start

    return ServeReport(
        label=label,
        num_requests=int(timed.shape[0]),
        batch_size=batch_size,
        elapsed_s=elapsed,
        requests_per_sec=timed.shape[0] / elapsed,
        mean_batch_latency_ms=1e3 * elapsed / num_batches,
        cache_hit_rate=engine.cache.hit_rate if engine.cache is not None else None,
    )
