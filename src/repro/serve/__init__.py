"""`repro.serve` — batched inference serving over frozen models.

The request-time half of the ROADMAP's north star: freeze a trained model
into a forward-only NumPy plan (:class:`InferenceEngine`), coalesce many
single requests into batched lookups (:class:`Batcher`), and absorb Zipf
traffic with an LRU hot-row cache (:class:`LRUCache`).  Sharded tables
(:mod:`repro.nn.sharding`) serve through the same routed gather they train
with, and ``InferenceEngine(bits=8|4)`` serves :mod:`repro.quant` integer
storage with a cache of codes (:class:`QuantizedRowCache`).  See DESIGN.md
§6–§7 and ``repro serve-bench``.
"""

from repro.serve.batcher import Batcher, PendingRequest
from repro.serve.bench import ServeReport, measure_throughput, zipf_requests
from repro.serve.cache import LRUCache, QuantizedRowCache, rows_for_budget
from repro.serve.engine import InferenceEngine

__all__ = [
    "Batcher",
    "InferenceEngine",
    "LRUCache",
    "PendingRequest",
    "QuantizedRowCache",
    "ServeReport",
    "measure_throughput",
    "rows_for_budget",
    "zipf_requests",
]
