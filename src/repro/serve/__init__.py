"""`repro.serve` — batched inference serving over frozen models.

The request-time half of the ROADMAP's north star, fronted by one API:
build a :class:`ServeConfig`, then :meth:`ServeSession.from_model` (freeze
a live model) or :meth:`ServeSession.load` (serve a
:mod:`repro.artifact` container straight off disk).  The session wires the
forward-only :class:`InferenceEngine` plan, the coalescing
:class:`Batcher`, the LRU hot-row caches (:class:`LRUCache` /
:class:`QuantizedRowCache` with admission + TTL decay) and the
:mod:`repro.quant` integer-storage widths from that single config.  The
engine/batcher/cache classes remain public — they are the moving parts,
the session is the front door.  See DESIGN.md §6–§8 and
``repro serve-bench`` / ``repro export-artifact``.

``ServeConfig(workers=N)`` on a loaded artifact puts the fault-tolerant
multi-process :mod:`repro.serve.runtime` in front of the same contract:
supervised shard workers, retry/backoff, graceful degradation, QoS
percentiles — bit-identical predictions under induced faults
(DESIGN.md §10, ``repro serve-bench --chaos``).
"""

from repro.serve.batcher import Batcher, PendingRequest
from repro.serve.bench import ServeReport, measure_throughput, zipf_requests
from repro.serve.cache import LRUCache, QuantizedRowCache, rows_for_budget
from repro.serve.engine import InferenceEngine
from repro.serve.runtime import (
    ChaosReport,
    FaultSpec,
    QoSStats,
    RetryPolicy,
    ServingRuntime,
    run_chaos,
)
from repro.serve.session import ServeConfig, ServeSession

__all__ = [
    "Batcher",
    "ChaosReport",
    "FaultSpec",
    "InferenceEngine",
    "LRUCache",
    "PendingRequest",
    "QoSStats",
    "QuantizedRowCache",
    "RetryPolicy",
    "ServeConfig",
    "ServeReport",
    "ServeSession",
    "ServingRuntime",
    "measure_throughput",
    "rows_for_budget",
    "run_chaos",
    "zipf_requests",
]
